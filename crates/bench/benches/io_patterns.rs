//! Criterion benchmark of reads and overwrites through the user-space
//! (mmap) path versus the kernel path — the Figure 4 contrast in
//! wall-clock terms.

use bench::{make_fs, FsKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vfs::OpenFlags;

const FILE_SIZE: u64 = 8 * 1024 * 1024;

fn prepared_fd(fixture: &bench::Fixture) -> vfs::Fd {
    let fd = fixture.fs.open("/data.bin", OpenFlags::create()).unwrap();
    let block = vec![0x11u8; 64 * 1024];
    let mut off = 0;
    while off < FILE_SIZE {
        fixture.fs.write_at(fd, off, &block).unwrap();
        off += block.len() as u64;
    }
    fixture.fs.fsync(fd).unwrap();
    fd
}

fn bench_read4k(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_4k");
    group.sample_size(30);
    for kind in [FsKind::Ext4Dax, FsKind::NovaStrict, FsKind::SplitPosix] {
        let fixture = make_fs(kind, 256 * 1024 * 1024);
        let fd = prepared_fd(&fixture);
        let mut buf = vec![0u8; 4096];
        let mut offset = 0u64;
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                fixture.fs.read_at(fd, black_box(offset), &mut buf).unwrap();
                offset = (offset + 4096) % FILE_SIZE;
            });
        });
    }
    group.finish();
}

fn bench_overwrite4k(c: &mut Criterion) {
    let mut group = c.benchmark_group("overwrite_4k");
    group.sample_size(30);
    for kind in [
        FsKind::Ext4Dax,
        FsKind::Pmfs,
        FsKind::SplitPosix,
        FsKind::SplitStrict,
    ] {
        let fixture = make_fs(kind, 256 * 1024 * 1024);
        let fd = prepared_fd(&fixture);
        let block = vec![0x77u8; 4096];
        let mut offset = 0u64;
        let mut ops = 0u64;
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                fixture.fs.write_at(fd, black_box(offset), &block).unwrap();
                offset = (offset + 4096) % FILE_SIZE;
                ops += 1;
                // Periodic fsync keeps strict-mode staging bounded (staged
                // overwrites are relinked and their old blocks freed).
                if ops.is_multiple_of(2_048) {
                    fixture.fs.fsync(fd).unwrap();
                }
            });
        });
        fixture.fs.fsync(fd).unwrap();
    }
    group.finish();
}

criterion_group!(benches, bench_read4k, bench_overwrite4k);
criterion_main!(benches);
