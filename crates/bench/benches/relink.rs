//! Criterion benchmark of fsync-after-appends: relink versus copying the
//! staged data (the Figure 3 "staging without relink" ablation) versus the
//! kernel file system.

use bench::{make_fs, make_splitfs, FsKind};
// The no-relink (copy) ablation is measured in simulated time by the harness
// (fig3); it is omitted here because without relink the staging blocks are
// never reclaimed and criterion's unbounded iteration count would exhaust
// the emulated device.
use criterion::{criterion_group, criterion_main, Criterion};
use splitfs::{Mode, SplitConfig};
use std::hint::black_box;
use vfs::OpenFlags;

const APPENDS_PER_FSYNC: usize = 10;

fn bench_fsync_after_appends(c: &mut Criterion) {
    let mut group = c.benchmark_group("fsync_after_10x4k_appends");
    group.sample_size(20);

    let configs: Vec<(&str, bench::Fixture)> = vec![
        ("ext4-DAX", make_fs(FsKind::Ext4Dax, 512 * 1024 * 1024)),
        (
            "SplitFS(relink)",
            make_splitfs(
                SplitConfig::new(Mode::Posix).with_staging(4, 32 * 1024 * 1024),
                512 * 1024 * 1024,
            ),
        ),
    ];

    for (label, fixture) in configs {
        let fd = fixture.fs.open("/wal.log", OpenFlags::create()).unwrap();
        let block = vec![0xEEu8; 4096];
        // Reset the file periodically so unbounded criterion iteration
        // counts cannot exhaust the emulated device.
        let mut batches = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                for _ in 0..APPENDS_PER_FSYNC {
                    fixture.fs.append(fd, black_box(&block)).unwrap();
                }
                fixture.fs.fsync(fd).unwrap();
                batches += 1;
                if batches.is_multiple_of(1_000) {
                    fixture.fs.ftruncate(fd, 0).unwrap();
                }
            });
        });
        fixture.fs.close(fd).unwrap();
    }
    group.finish();
}

criterion_group!(benches, bench_fsync_after_appends);
criterion_main!(benches);
