//! Criterion micro-benchmark of the 4 KiB append path (the Table 1
//! operation) on every file system.  Wall-clock numbers here measure the
//! emulation itself, not persistent memory; the simulated-time results the
//! paper's tables use come from `cargo run -p bench --bin harness`.

use bench::{make_fs, FsKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vfs::OpenFlags;

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("append_4k");
    group.sample_size(20);
    for kind in [
        FsKind::Ext4Dax,
        FsKind::Pmfs,
        FsKind::NovaStrict,
        FsKind::SplitPosix,
        FsKind::SplitStrict,
    ] {
        let fixture = make_fs(kind, 512 * 1024 * 1024);
        let fd = fixture.fs.open("/bench.dat", OpenFlags::create()).unwrap();
        let block = vec![0xABu8; 4096];
        // Reset the file periodically so unbounded criterion iteration
        // counts cannot exhaust the emulated device.
        let mut appended = 0u64;
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                fixture.fs.append(fd, black_box(&block)).unwrap();
                appended += 1;
                if appended.is_multiple_of(4_096) {
                    // Relink staged data, then release the blocks, so the
                    // emulated device is not exhausted by criterion's
                    // unbounded iteration count.
                    fixture.fs.fsync(fd).unwrap();
                    fixture.fs.ftruncate(fd, 0).unwrap();
                }
            });
        });
        fixture.fs.fsync(fd).unwrap();
        fixture.fs.close(fd).unwrap();
    }
    group.finish();
}

fn bench_append_fsync(c: &mut Criterion) {
    let mut group = c.benchmark_group("append_4k_plus_fsync_every_10");
    group.sample_size(20);
    for kind in [FsKind::Ext4Dax, FsKind::SplitPosix, FsKind::SplitStrict] {
        let fixture = make_fs(kind, 512 * 1024 * 1024);
        let fd = fixture.fs.open("/bench.dat", OpenFlags::create()).unwrap();
        let block = vec![0xCDu8; 4096];
        let mut i = 0u64;
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                fixture.fs.append(fd, black_box(&block)).unwrap();
                i += 1;
                if i.is_multiple_of(10) {
                    fixture.fs.fsync(fd).unwrap();
                }
                if i.is_multiple_of(8_192) {
                    fixture.fs.fsync(fd).unwrap();
                    fixture.fs.ftruncate(fd, 0).unwrap();
                }
            });
        });
        fixture.fs.close(fd).unwrap();
    }
    group.finish();
}

criterion_group!(benches, bench_append, bench_append_fsync);
criterion_main!(benches);
