//! Criterion benchmark of the SplitFS operation log against a NOVA-style
//! two-line / two-fence log write, isolating the §3.3 logging optimization.

use criterion::{criterion_group, criterion_main, Criterion};
use kernelfs::{DaxMapping, MapSegment};
use pmem::{PersistMode, PmemBuilder, TimeCategory};
use splitfs::oplog::{LogEntry, LogOp, OpLog};
use std::hint::black_box;
use std::sync::Arc;

fn bench_oplog_append(c: &mut Criterion) {
    let device = PmemBuilder::new(64 * 1024 * 1024)
        .track_persistence(false)
        .build();
    let size = 32 * 1024 * 1024u64;
    let mapping = DaxMapping {
        ino: 1,
        file_offset: 0,
        len: size,
        segments: vec![MapSegment {
            file_offset: 0,
            device_offset: 1024 * 1024,
            len: size,
        }],
        huge: true,
    };
    let oplog = OpLog::new(Arc::clone(&device), mapping, size);

    let mut group = c.benchmark_group("logging");
    group.sample_size(30);
    group.bench_function("splitfs_oplog_entry(1 line, 1 fence)", |b| {
        b.iter(|| {
            let entry = LogEntry {
                op: LogOp::StagedWrite,
                target_ino: 10,
                target_offset: 4096,
                len: 4096,
                staging_ino: 20,
                staging_offset: 8192,
                seq: oplog.next_seq(),
                instance_id: 0,
            };
            if oplog.append(black_box(&entry)).is_err() {
                oplog.reset();
            }
        });
    });

    // NOVA-style: a 128-byte entry + fence, then a 64-byte tail + fence.
    let mut head = 40 * 1024 * 1024u64;
    let nova_region_end = 60 * 1024 * 1024u64;
    group.bench_function("nova_style_log_entry(2 lines, 2 fences)", |b| {
        b.iter(|| {
            if head + 192 > nova_region_end {
                head = 40 * 1024 * 1024;
            }
            device.write(
                head,
                &[0u8; 128],
                PersistMode::NonTemporal,
                TimeCategory::Journal,
            );
            device.fence(TimeCategory::Journal);
            device.write(
                head + 128,
                &[0u8; 64],
                PersistMode::NonTemporal,
                TimeCategory::Journal,
            );
            device.fence(TimeCategory::Journal);
            head += 192;
        });
    });
    group.finish();
}

criterion_group!(benches, bench_oplog_append);
criterion_main!(benches);
