//! Shared fixtures and reporting helpers for the experiment harness and the
//! criterion benches.
//!
//! Every experiment needs the same thing: a fresh emulated PM device with a
//! particular file system mounted on it.  [`FsKind`] enumerates the eight
//! configurations the paper compares and [`make_fs`] builds one.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;

use std::sync::Arc;

use baselines::{Nova, NovaMode, Pmfs, Strata};
use kernelfs::Ext4Dax;
use pmem::{PmemBuilder, PmemDevice};
use splitfs::{Mode, SplitConfig, SplitFs};
use vfs::FileSystem;

/// The file-system configurations evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsKind {
    /// ext4 DAX (kernel file system alone) — POSIX class.
    Ext4Dax,
    /// PMFS — sync class.
    Pmfs,
    /// NOVA with in-place data updates — sync class.
    NovaRelaxed,
    /// NOVA with copy-on-write data updates — strict class.
    NovaStrict,
    /// Strata (PM layer) — strict class.
    Strata,
    /// SplitFS in POSIX mode.
    SplitPosix,
    /// SplitFS in sync mode.
    SplitSync,
    /// SplitFS in strict mode.
    SplitStrict,
}

impl FsKind {
    /// Every configuration, grouped roughly as the paper's figures list
    /// them.
    pub const ALL: [FsKind; 8] = [
        FsKind::Ext4Dax,
        FsKind::SplitPosix,
        FsKind::Pmfs,
        FsKind::NovaRelaxed,
        FsKind::SplitSync,
        FsKind::NovaStrict,
        FsKind::Strata,
        FsKind::SplitStrict,
    ];

    /// Display name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            FsKind::Ext4Dax => "ext4-DAX",
            FsKind::Pmfs => "PMFS",
            FsKind::NovaRelaxed => "NOVA-relaxed",
            FsKind::NovaStrict => "NOVA-strict",
            FsKind::Strata => "Strata",
            FsKind::SplitPosix => "SplitFS-POSIX",
            FsKind::SplitSync => "SplitFS-sync",
            FsKind::SplitStrict => "SplitFS-strict",
        }
    }

    /// The baseline each SplitFS mode is compared against in Figure 4/6
    /// (same guarantee class).
    pub fn comparable_baselines(self) -> &'static [FsKind] {
        match self {
            FsKind::SplitPosix => &[FsKind::Ext4Dax],
            FsKind::SplitSync => &[FsKind::Pmfs, FsKind::NovaRelaxed],
            FsKind::SplitStrict => &[FsKind::NovaStrict, FsKind::Strata],
            _ => &[],
        }
    }
}

/// A mounted file system plus the device it lives on.
pub struct Fixture {
    /// The file system under test.
    pub fs: Arc<dyn FileSystem>,
    /// The emulated device (for clock/stats access).
    pub device: Arc<PmemDevice>,
    /// The configuration that was built.
    pub kind: FsKind,
}

/// Builds a fresh device of `device_size` bytes with `kind` mounted on it.
///
/// Persistence tracking (the crash-simulation shadow copy) is disabled —
/// performance experiments never crash the device and the tracking would
/// double memory use.
pub fn make_fs(kind: FsKind, device_size: usize) -> Fixture {
    let device = PmemBuilder::new(device_size)
        .track_persistence(false)
        .build();
    let fs: Arc<dyn FileSystem> = match kind {
        FsKind::Ext4Dax => Ext4Dax::mkfs(Arc::clone(&device)).expect("mkfs ext4-dax"),
        FsKind::Pmfs => Pmfs::new(Arc::clone(&device)),
        FsKind::NovaRelaxed => Nova::new(Arc::clone(&device), NovaMode::Relaxed),
        FsKind::NovaStrict => Nova::new(Arc::clone(&device), NovaMode::Strict),
        FsKind::Strata => Strata::new(Arc::clone(&device)),
        FsKind::SplitPosix | FsKind::SplitSync | FsKind::SplitStrict => {
            let kernel = Ext4Dax::mkfs(Arc::clone(&device)).expect("mkfs ext4-dax");
            let mode = match kind {
                FsKind::SplitPosix => Mode::Posix,
                FsKind::SplitSync => Mode::Sync,
                _ => Mode::Strict,
            };
            let config = SplitConfig::new(mode).with_staging(4, 16 * 1024 * 1024);
            SplitFs::new(kernel, config).expect("splitfs init")
        }
    };
    Fixture { fs, device, kind }
}

/// Builds a SplitFS fixture with an explicit configuration (used by the
/// Figure 3 ablation and the tunable-parameter sweeps).
pub fn make_splitfs(config: SplitConfig, device_size: usize) -> Fixture {
    let device = PmemBuilder::new(device_size)
        .track_persistence(false)
        .build();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).expect("mkfs ext4-dax");
    let kind = match config.mode {
        Mode::Posix => FsKind::SplitPosix,
        Mode::Sync => FsKind::SplitSync,
        Mode::Strict => FsKind::SplitStrict,
    };
    let fs = SplitFs::new(kernel, config).expect("splitfs init");
    Fixture { fs, device, kind }
}

/// Resets the fixture's clock and statistics; used between the setup phase
/// and the measured phase of an experiment.
pub fn reset_measurement(fixture: &Fixture) {
    fixture.device.clock().reset();
    fixture.device.stats().reset();
}

/// Formats a simulated-nanosecond value for table output.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Prints a markdown-style table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::OpenFlags;

    #[test]
    fn every_fs_kind_builds_and_does_basic_io() {
        for kind in FsKind::ALL {
            let fixture = make_fs(kind, 128 * 1024 * 1024);
            let fs = &fixture.fs;
            assert_eq!(fs.name(), kind.label(), "{kind:?}");
            let fd = fs.open("/smoke.dat", OpenFlags::create()).unwrap();
            fs.write_at(fd, 0, b"smoke test payload").unwrap();
            fs.fsync(fd).unwrap();
            let mut buf = vec![0u8; 18];
            fs.read_at(fd, 0, &mut buf).unwrap();
            assert_eq!(&buf, b"smoke test payload", "{kind:?}");
            fs.close(fd).unwrap();
        }
    }

    #[test]
    fn comparable_baselines_share_guarantee_class() {
        for kind in [FsKind::SplitPosix, FsKind::SplitSync, FsKind::SplitStrict] {
            let split = make_fs(kind, 192 * 1024 * 1024);
            for &baseline in kind.comparable_baselines() {
                let base = make_fs(baseline, 192 * 1024 * 1024);
                assert_eq!(
                    split.fs.consistency(),
                    base.fs.consistency(),
                    "{kind:?} vs {baseline:?}"
                );
            }
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(2500.0), "2.50 us");
        assert_eq!(fmt_ns(3_000_000.0), "3.00 ms");
    }
}
