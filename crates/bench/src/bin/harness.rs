//! Experiment harness: regenerates every table and figure of the SplitFS
//! paper's evaluation section on the emulated persistent-memory stack.
//!
//! ```text
//! cargo run --release -p bench --bin harness -- <experiment> [--full]
//!
//! experiments:
//!   table1     software overhead of a 4 KiB append (Table 1)
//!   table2     cost-model constants vs paper Table 2
//!   table6     system-call latencies, Varmail-like sequence (Table 6)
//!   table7     SplitFS-strict vs Strata, YCSB on the LSM store (Table 7)
//!   fig3       contribution of each SplitFS technique (Figure 3)
//!   fig4       IO-pattern throughput by guarantee class (Figure 4)
//!   fig5       relative software overhead in applications (Figure 5)
//!   fig6       application performance and utilities (Figure 6)
//!   recovery   operation-log replay time vs entries (§5.3)
//!   daemon     inline vs daemon-backed maintenance on concurrent appends
//!   scaling    WAL-per-shard saturation throughput at 1/2/4/8/16 threads
//!   vectored   N x append vs one appendv of N slices (fences, journal txns)
//!   multi      aggregate throughput at 1/2/4 U-Split instances on one kernel
//!   latency    per-op latency percentiles + software overhead (five FSes)
//!   openloop   async-ring offered-load sweep vs the synchronous baseline
//!   metadata   concurrent create/resolve scale-out at 1/2/4/8 threads
//!   resources  U-Split DRAM footprint after a YCSB run (§5.10)
//!   crashfuzz  crash-point fuzzing: oracle-checked recovery at sampled
//!              fence boundaries, differential triage, media faults
//!   tiering    hot-set throughput on a tiered device vs all-PM and
//!              all-cold layouts (dataset 4x the PM tier)
//!   all        everything above
//!
//! `--full` switches from the quick sizes to paper-scale inputs.
//! `CHAOS_SEED` steers the crashfuzz workload and sampled boundaries;
//! `CRASHFUZZ_EXTENDED=1` selects the nightly-depth crashfuzz profile.
//! ```

use bench::experiments::{self, Scale};
use bench::print_table;
use pmem::CostModel;

fn run(which: &str, scale: Scale) {
    match which {
        "table1" => print_table(
            "Table 1 — software overhead of appending a 4 KiB block",
            &[
                "File system",
                "Append (ns)",
                "Overhead (ns)",
                "Overhead (%)",
            ],
            &experiments::table1(scale),
        ),
        "table2" => {
            let m = CostModel::calibrated();
            print_table(
                "Table 2 — device cost model (calibrated to Izraelevitz et al.)",
                &["Property", "Model value", "Paper value"],
                &[
                    vec![
                        "Sequential read latency".into(),
                        format!("{} ns", m.pm_read_seq_latency_ns),
                        "169 ns".into(),
                    ],
                    vec![
                        "Random read latency".into(),
                        format!("{} ns", m.pm_read_rand_latency_ns),
                        "305 ns".into(),
                    ],
                    vec![
                        "4 KiB write".into(),
                        format!("{:.0} ns", m.pm_write_cost(4096)),
                        "671 ns (derived from Table 1)".into(),
                    ],
                    vec![
                        "Store + flush + fence".into(),
                        format!("{:.0} ns", m.pm_write_cost(64) + m.persist_cost(1)),
                        "91 ns".into(),
                    ],
                ],
            );
        }
        "table6" => print_table(
            "Table 6 — system-call latency (us)",
            &["Syscall", "Strict", "Sync", "POSIX", "ext4 DAX"],
            &experiments::table6(scale),
        ),
        "table7" => print_table(
            "Table 7 — SplitFS-strict vs Strata (YCSB on the LSM store)",
            &["Workload", "Strata", "SplitFS (normalized)"],
            &experiments::table7(scale),
        ),
        "fig3" => print_table(
            "Figure 3 — contribution of SplitFS techniques (normalized to ext4 DAX)",
            &["Configuration", "Sequential overwrites", "Appends"],
            &experiments::fig3(scale),
        ),
        "fig4" => print_table(
            "Figure 4 — IO-pattern throughput by guarantee class",
            &[
                "Class",
                "File system",
                "Pattern",
                "Throughput",
                "vs baseline",
            ],
            &experiments::fig4(scale),
        ),
        "fig5" => print_table(
            "Figure 5 — relative software overhead (lower is better, SplitFS = 1.0)",
            &["Class", "File system", "YCSB Load A", "YCSB Run A", "TPC-C"],
            &experiments::fig5(scale),
        ),
        "fig6" => print_table(
            "Figure 6 — application performance",
            &["Class", "File system", "Workload", "Result", "vs baseline"],
            &experiments::fig6(scale),
        ),
        "recovery" => print_table(
            "§5.3 — recovery time vs valid log entries",
            &["Log entries", "Replayed", "Recovery time"],
            &experiments::recovery(scale),
        ),
        "daemon" => print_table(
            "Background maintenance — inline vs daemon-backed append/fsync",
            &[
                "Configuration",
                "ns/append",
                "Inline creates",
                "BG creates",
                "Relink batches",
                "Ops/batch",
                "Group commits",
                "BG checkpoints",
            ],
            &experiments::daemon_maintenance(scale),
        ),
        "scaling" => {
            let report = experiments::scaling_report(scale);
            print_table(
                "Scaling — WAL-per-shard distinct-file appends (SplitFS-strict, lane per writer)",
                &[
                    "Threads",
                    "Throughput",
                    "vs 1 thread",
                    "Wall-clock",
                    "Staging lock waits",
                    "Lane steals",
                    "Adaptive resizes",
                    "Shard lock waits",
                    "Epoch swaps",
                    "Epoch truncates",
                    "Log grows",
                    "Checkpoint stalls",
                    "Staging recycles",
                ],
                &report.rows,
            );
            // Machine-readable mirror of the table for the CI smoke gate.
            for line in &report.json {
                println!("SCALING_JSON {line}");
            }
        }
        "vectored" => print_table(
            "Vectored I/O — N x append vs one appendv of N slices",
            &[
                "File system",
                "Shape",
                "ns/record",
                "Fences/record",
                "Journal txns/record",
                "Group commits",
                "appendv calls",
            ],
            &experiments::vectored(scale),
        ),
        "multi" => print_table(
            "Multi-instance — N U-Split instances over one kernel file system",
            &[
                "Instances",
                "Aggregate",
                "vs 1 instance",
                "Wall-clock",
                "Lease acquires",
                "Lease releases",
                "Lease conflicts",
                "Epoch swaps",
                "Checkpoint stalls",
            ],
            &experiments::multi(scale),
        ),
        "latency" => {
            let report = experiments::latency_report(scale);
            print_table(
                "Latency — per-op percentiles on the closed-loop mixed workload (4 threads)",
                &[
                    "File system",
                    "Op",
                    "Count",
                    "p50",
                    "p90",
                    "p99",
                    "p999",
                    "max",
                    "SW overhead/op",
                ],
                &report.rows,
            );
            // Machine-readable mirror of the table for the CI smoke gate.
            for line in &report.json {
                println!("METRICS_JSON {line}");
            }
        }
        "openloop" => {
            let report = experiments::openloop_report(scale);
            print_table(
                "Open-loop rings — offered-load sweep on SplitFS-strict (4 threads)",
                &[
                    "In flight/thread",
                    "Completions",
                    "p50",
                    "p99",
                    "p999",
                    "Fences/op",
                    "Sync fences/op",
                    "Epoch violations",
                ],
                &report.rows,
            );
            // Machine-readable mirror of the table for the CI smoke gate.
            for line in &report.json {
                println!("OPENLOOP_JSON {line}");
            }
        }
        "metadata" => {
            let report = experiments::metadata_report(scale);
            print_table(
                "Metadata — concurrent create/resolve scale-out (SplitFS-strict, sharded namespace)",
                &[
                    "Threads",
                    "Creates",
                    "vs 1 thread",
                    "Resolves",
                    "Cache hit rate",
                    "NS shard waits",
                    "Cache invalidations",
                    "Consistency failures",
                ],
                &report.rows,
            );
            // Machine-readable mirror of the table for the CI smoke gate.
            for line in &report.json {
                println!("METADATA_JSON {line}");
            }
        }
        "resources" => print_table(
            "§5.10 — resource consumption after YCSB-A on SplitFS-strict",
            &["Metric", "Value"],
            &experiments::resources(scale),
        ),
        "crashfuzz" => {
            let report = experiments::crashfuzz_report(scale);
            print_table(
                "Crash-point fuzzing — oracle-checked recovery at sampled fence boundaries",
                &[
                    "Mode",
                    "Policy",
                    "Fences",
                    "Points",
                    "Unreached",
                    "Violations",
                    "Fsck failures",
                    "Promises checked",
                ],
                &report.rows,
            );
            // Machine-readable mirror of the table for the CI smoke gate.
            for line in &report.json {
                println!("CRASHFUZZ_JSON {line}");
            }
        }
        "tiering" => {
            let report = experiments::tiering_report(scale);
            print_table(
                "Tiered capacity — hot-set reads vs all-PM and all-cold (dataset 4x PM)",
                &[
                    "Configuration",
                    "Read throughput",
                    "vs all-PM",
                    "Demotions",
                    "Promotions",
                    "Cap reads",
                    "Fsck failures",
                ],
                &report.rows,
            );
            // Machine-readable mirror of the table for the CI smoke gate.
            for line in &report.json {
                println!("TIERING_JSON {line}");
            }
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "valid: table1 table2 table6 table7 fig3 fig4 fig5 fig6 recovery daemon scaling vectored multi latency openloop metadata resources crashfuzz tiering all"
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    // A panicking experiment dumps every thread's recent span events
    // (the flight recorder) before the backtrace.
    obs::install_panic_hook();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::Full } else { Scale::Quick };
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };

    let everything = [
        "table1",
        "table2",
        "table6",
        "table7",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "recovery",
        "daemon",
        "scaling",
        "vectored",
        "multi",
        "latency",
        "openloop",
        "metadata",
        "resources",
        "crashfuzz",
        "tiering",
    ];
    for experiment in which {
        if experiment == "all" {
            for e in everything {
                run(e, scale);
            }
        } else {
            run(experiment, scale);
        }
    }
}
