//! The experiments behind every table and figure of the paper's evaluation.
//!
//! Each function reproduces one table or figure: it builds the relevant
//! file-system configurations, runs the workload the paper describes, and
//! returns printable rows.  The `harness` binary wraps these in a CLI; the
//! EXPERIMENTS.md file records representative output next to the paper's
//! own numbers.

use std::sync::Arc;

use splitfs::{Mode, SplitConfig, SplitFs};
use vfs::FileSystem;
use workloads::appbench::{self, YcsbRunConfig};
use workloads::io_patterns::{self, IoBenchConfig, IoPattern};
use workloads::tpcc::TpccConfig;
use workloads::utilities;
use workloads::varmail;
use workloads::ycsb::YcsbWorkload;

use crate::{make_fs, make_splitfs, reset_measurement, FsKind};

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs so the whole suite finishes in a couple of minutes.
    Quick,
    /// Paper-sized inputs (128 MiB files, 10⁵-record YCSB, …).
    Full,
}

impl Scale {
    fn io_bytes(self) -> u64 {
        match self {
            Scale::Quick => 16 * 1024 * 1024,
            Scale::Full => 128 * 1024 * 1024,
        }
    }

    fn device_bytes(self) -> usize {
        match self {
            Scale::Quick => 320 * 1024 * 1024,
            Scale::Full => 1024 * 1024 * 1024,
        }
    }

    fn ycsb_records(self) -> u64 {
        match self {
            Scale::Quick => 3_000,
            Scale::Full => 100_000,
        }
    }

    fn ycsb_ops(self) -> u64 {
        match self {
            Scale::Quick => 3_000,
            Scale::Full => 100_000,
        }
    }

    fn tpcc_txns(self) -> u64 {
        match self {
            Scale::Quick => 300,
            Scale::Full => 3_000,
        }
    }

    fn redis_sets(self) -> u64 {
        match self {
            Scale::Quick => 10_000,
            Scale::Full => 200_000,
        }
    }

    fn varmail_iterations(self) -> u64 {
        match self {
            Scale::Quick => 50,
            Scale::Full => 500,
        }
    }

    fn tree(self) -> utilities::TreeConfig {
        match self {
            Scale::Quick => utilities::TreeConfig {
                dirs: 4,
                files_per_dir: 32,
                mean_file_size: 4096,
                seed: 11,
            },
            Scale::Full => utilities::TreeConfig {
                dirs: 16,
                files_per_dir: 128,
                mean_file_size: 8192,
                seed: 11,
            },
        }
    }
}

/// One row of printable output.
pub type Row = Vec<String>;

/// Builds a fresh emulated device with a formatted kernel file system on
/// it — the setup every hand-rolled experiment shares.  The shape decides
/// the geometry: flat shapes format the classic all-PM layout, tiered
/// shapes reserve a capacity region behind the PM tier.  Persistence
/// tracking (the crash-simulation shadow copy) stays off except for the
/// experiments that actually crash the device.
fn setup_device(
    shape: pmem::DeviceShape,
    track_persistence: bool,
) -> (Arc<pmem::PmemDevice>, Arc<kernelfs::Ext4Dax>) {
    let device = pmem::PmemBuilder::new(shape.total_bytes())
        .track_persistence(track_persistence)
        .build();
    let kernel = if shape.is_tiered() {
        kernelfs::Ext4Dax::mkfs_shaped(Arc::clone(&device), shape.pm_bytes)
            .expect("mkfs tiered ext4-dax")
    } else {
        kernelfs::Ext4Dax::mkfs(Arc::clone(&device)).expect("mkfs ext4-dax")
    };
    (device, kernel)
}

// ----------------------------------------------------------------------
// Table 1 — software overhead of a 4 KiB append
// ----------------------------------------------------------------------

/// Reproduces Table 1: the mean cost of a 4 KiB append and its software
/// overhead over the raw device write, for the five file systems the paper
/// lists.
pub fn table1(scale: Scale) -> Vec<Row> {
    let kinds = [
        FsKind::Ext4Dax,
        FsKind::Pmfs,
        FsKind::NovaStrict,
        FsKind::SplitStrict,
        FsKind::SplitPosix,
    ];
    let mut rows = Vec::new();
    for kind in kinds {
        let fixture = make_fs(kind, scale.device_bytes());
        let row = io_patterns::append_software_overhead(&fixture.fs, scale.io_bytes())
            .expect("append overhead run");
        rows.push(vec![
            kind.label().to_string(),
            format!("{:.0}", row.append_ns),
            format!("{:.0}", row.overhead_ns),
            format!("{:.0}%", row.overhead_pct),
        ]);
    }
    rows
}

// ----------------------------------------------------------------------
// Table 6 — system-call latencies (Varmail-like sequence)
// ----------------------------------------------------------------------

/// Reproduces Table 6: mean latency (µs) of each system call in the
/// Varmail-like sequence for the three SplitFS modes and ext4 DAX.
pub fn table6(scale: Scale) -> Vec<Row> {
    let kinds = [
        FsKind::SplitStrict,
        FsKind::SplitSync,
        FsKind::SplitPosix,
        FsKind::Ext4Dax,
    ];
    let mut per_fs = Vec::new();
    for kind in kinds {
        let fixture = make_fs(kind, scale.device_bytes());
        reset_measurement(&fixture);
        let lat = varmail::run(&fixture.fs, scale.varmail_iterations()).expect("varmail run");
        per_fs.push((kind, lat));
    }
    let calls = ["open", "close", "append", "fsync", "read", "unlink"];
    let mut rows = Vec::new();
    for (i, call) in calls.iter().enumerate() {
        let mut row = vec![call.to_string()];
        for (_, lat) in &per_fs {
            row.push(format!("{:.2}", lat.as_rows()[i].1));
        }
        rows.push(row);
    }
    // The extra row the sharded namespace adds to Table 6: the full-path
    // lookup cache hit rate over the run (the second and third open of
    // each file and its unlink resolve in one hash probe).
    let mut row = vec!["cache hit %".to_string()];
    for (_, lat) in &per_fs {
        row.push(format!("{:.1}", lat.cache_hit_rate * 100.0));
    }
    rows.push(row);
    rows
}

// ----------------------------------------------------------------------
// Table 7 — SplitFS-strict vs Strata, YCSB on the LSM store
// ----------------------------------------------------------------------

/// Reproduces Table 7: raw Strata throughput and SplitFS-strict throughput
/// normalized to it, for the scaled-down YCSB workloads.
pub fn table7(scale: Scale) -> Vec<Row> {
    let workloads = [
        ("Load A", YcsbWorkload::A, true),
        ("Run A", YcsbWorkload::A, false),
        ("Run B", YcsbWorkload::B, false),
        ("Run C", YcsbWorkload::C, false),
        ("Run D", YcsbWorkload::D, false),
        ("Load E", YcsbWorkload::E, true),
        ("Run E", YcsbWorkload::E, false),
        ("Run F", YcsbWorkload::F, false),
    ];
    let config = YcsbRunConfig {
        record_count: scale.ycsb_records(),
        op_count: scale.ycsb_ops(),
        ..YcsbRunConfig::default()
    };
    let mut rows = Vec::new();
    for (label, workload, use_load) in workloads {
        let pick = |r: appbench::YcsbResult| if use_load { r.load } else { r.run };
        let strata = {
            let fixture = make_fs(FsKind::Strata, scale.device_bytes());
            reset_measurement(&fixture);
            pick(appbench::run_ycsb(&fixture.fs, workload, &config).expect("ycsb on strata"))
        };
        let split = {
            let fixture = make_fs(FsKind::SplitStrict, scale.device_bytes());
            reset_measurement(&fixture);
            pick(appbench::run_ycsb(&fixture.fs, workload, &config).expect("ycsb on splitfs"))
        };
        rows.push(vec![
            label.to_string(),
            format!("{:.1} kops/s", strata.kops_per_sec()),
            format!("{:.2}x", split.kops_per_sec() / strata.kops_per_sec()),
        ]);
    }
    rows
}

// ----------------------------------------------------------------------
// Figure 3 — contribution of each technique
// ----------------------------------------------------------------------

/// Reproduces Figure 3: 4 KiB sequential overwrites and 4 KiB appends
/// (fsync every 10 operations) on ext4 DAX and on SplitFS-POSIX with the
/// techniques enabled one after another: split architecture only, plus
/// staging, plus relink.  Values are throughput normalized to ext4 DAX.
pub fn fig3(scale: Scale) -> Vec<Row> {
    let configs: Vec<(&str, Option<SplitConfig>)> = vec![
        ("ext4 DAX", None),
        (
            "+ split architecture",
            Some(SplitConfig::new(Mode::Posix).without_staging()),
        ),
        (
            "+ staging",
            Some(SplitConfig::new(Mode::Posix).without_relink()),
        ),
        ("+ relink", Some(SplitConfig::new(Mode::Posix))),
    ];
    let io = IoBenchConfig {
        total_bytes: scale.io_bytes(),
        fsync_every: 10,
        ..IoBenchConfig::default()
    };

    let mut results: Vec<(String, f64, f64)> = Vec::new();
    for (label, config) in configs {
        let fixture = match config {
            None => make_fs(FsKind::Ext4Dax, scale.device_bytes()),
            Some(c) => make_splitfs(c.with_staging(4, 16 * 1024 * 1024), scale.device_bytes()),
        };
        let overwrite =
            io_patterns::run_pattern(&fixture.fs, IoPattern::SequentialWrite, &io).unwrap();
        let append = io_patterns::run_pattern(&fixture.fs, IoPattern::Append, &io).unwrap();
        results.push((
            label.to_string(),
            overwrite.kops_per_sec(),
            append.kops_per_sec(),
        ));
    }
    let base_overwrite = results[0].1;
    let base_append = results[0].2;
    results
        .into_iter()
        .map(|(label, ow, ap)| {
            vec![
                label,
                format!("{:.2}x", ow / base_overwrite),
                format!("{:.2}x", ap / base_append),
            ]
        })
        .collect()
}

// ----------------------------------------------------------------------
// Figure 4 — IO patterns, grouped by guarantee class
// ----------------------------------------------------------------------

/// Reproduces Figure 4: throughput of the five IO patterns for every file
/// system, normalized to the baseline of its guarantee class (ext4 DAX for
/// POSIX, PMFS for sync, NOVA-strict for strict).
pub fn fig4(scale: Scale) -> Vec<Row> {
    let groups: [(&str, FsKind, Vec<FsKind>); 3] = [
        ("POSIX", FsKind::Ext4Dax, vec![FsKind::SplitPosix]),
        ("sync", FsKind::Pmfs, vec![FsKind::SplitSync]),
        (
            "strict",
            FsKind::NovaStrict,
            vec![FsKind::Strata, FsKind::SplitStrict],
        ),
    ];
    // §5.6: each benchmark reads/writes the whole file in 4 KiB units; no
    // periodic fsync is part of the measured loop.
    let io = IoBenchConfig {
        total_bytes: scale.io_bytes(),
        fsync_every: 0,
        ..IoBenchConfig::default()
    };
    let mut rows = Vec::new();
    for (group, baseline, others) in groups {
        let mut base_results: Vec<(IoPattern, f64)> = Vec::new();
        {
            let fixture = make_fs(baseline, scale.device_bytes());
            for pattern in IoPattern::ALL {
                let r = io_patterns::run_pattern(&fixture.fs, pattern, &io).unwrap();
                base_results.push((pattern, r.kops_per_sec()));
            }
        }
        for (pattern, kops) in &base_results {
            rows.push(vec![
                group.to_string(),
                baseline.label().to_string(),
                pattern.label().to_string(),
                format!("{kops:.1} kops/s"),
                "1.00x".to_string(),
            ]);
        }
        for other in others {
            let fixture = make_fs(other, scale.device_bytes());
            for (pattern, base_kops) in &base_results {
                let r = io_patterns::run_pattern(&fixture.fs, *pattern, &io).unwrap();
                rows.push(vec![
                    group.to_string(),
                    other.label().to_string(),
                    pattern.label().to_string(),
                    format!("{:.1} kops/s", r.kops_per_sec()),
                    format!("{:.2}x", r.kops_per_sec() / base_kops),
                ]);
            }
        }
    }
    rows
}

// ----------------------------------------------------------------------
// Figure 5 — relative software overhead in applications
// ----------------------------------------------------------------------

/// Reproduces Figure 5: file-system software overhead of YCSB Load A,
/// YCSB Run A and TPC-C, relative to the SplitFS mode providing the same
/// guarantees (lower is better; SplitFS is 1.0 by construction).
pub fn fig5(scale: Scale) -> Vec<Row> {
    let groups: [(&str, FsKind, Vec<FsKind>); 3] = [
        ("POSIX", FsKind::SplitPosix, vec![FsKind::Ext4Dax]),
        (
            "sync",
            FsKind::SplitSync,
            vec![FsKind::Pmfs, FsKind::NovaRelaxed],
        ),
        ("strict", FsKind::SplitStrict, vec![FsKind::NovaStrict]),
    ];
    let ycsb_config = YcsbRunConfig {
        record_count: scale.ycsb_records(),
        op_count: scale.ycsb_ops(),
        ..YcsbRunConfig::default()
    };
    let tpcc_config = TpccConfig::default();

    let overheads = |fs: &Arc<dyn FileSystem>| -> (f64, f64, f64) {
        let ycsb = appbench::run_ycsb(fs, YcsbWorkload::A, &ycsb_config).expect("ycsb");
        let tpcc = appbench::run_tpcc(fs, &tpcc_config, scale.tpcc_txns()).expect("tpcc");
        (
            ycsb.load.software_overhead_ns(),
            ycsb.run.software_overhead_ns(),
            tpcc.software_overhead_ns(),
        )
    };

    let mut rows = Vec::new();
    for (group, split_kind, baselines) in groups {
        let split = make_fs(split_kind, scale.device_bytes());
        let split_overheads = overheads(&split.fs);
        rows.push(vec![
            group.to_string(),
            split_kind.label().to_string(),
            "1.00x".into(),
            "1.00x".into(),
            "1.00x".into(),
        ]);
        for baseline in baselines {
            let fixture = make_fs(baseline, scale.device_bytes());
            let other = overheads(&fixture.fs);
            rows.push(vec![
                group.to_string(),
                baseline.label().to_string(),
                format!("{:.2}x", other.0 / split_overheads.0),
                format!("{:.2}x", other.1 / split_overheads.1),
                format!("{:.2}x", other.2 / split_overheads.2),
            ]);
        }
    }
    rows
}

// ----------------------------------------------------------------------
// Figure 6 — application throughput / runtime
// ----------------------------------------------------------------------

/// Reproduces Figure 6: data-intensive application throughput (YCSB A–F,
/// Redis SET, TPC-C) and metadata-heavy utility runtimes (git/tar/rsync),
/// for every file system grouped by guarantee class.  Throughput rows are
/// normalized to the group's baseline (higher is better); utility rows are
/// runtimes (lower is better).
pub fn fig6(scale: Scale) -> Vec<Row> {
    let groups: [(&str, FsKind, Vec<FsKind>); 3] = [
        ("POSIX", FsKind::Ext4Dax, vec![FsKind::SplitPosix]),
        (
            "sync",
            FsKind::Pmfs,
            vec![FsKind::NovaRelaxed, FsKind::SplitSync],
        ),
        ("strict", FsKind::NovaStrict, vec![FsKind::SplitStrict]),
    ];
    let ycsb_config = YcsbRunConfig {
        record_count: scale.ycsb_records(),
        op_count: scale.ycsb_ops(),
        ..YcsbRunConfig::default()
    };
    let tpcc_config = TpccConfig::default();

    let run_apps = |fs: &Arc<dyn FileSystem>| -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for wl in YcsbWorkload::ALL {
            let r = appbench::run_ycsb(fs, wl, &ycsb_config).expect("ycsb");
            if wl == YcsbWorkload::A {
                out.push(("YCSB Load A".to_string(), r.load.kops_per_sec()));
            }
            out.push((format!("YCSB Run {}", wl.label()), r.run.kops_per_sec()));
        }
        let redis = appbench::run_redis_set(fs, scale.redis_sets(), 100).expect("redis");
        out.push(("Redis SET".to_string(), redis.kops_per_sec()));
        let tpcc = appbench::run_tpcc(fs, &tpcc_config, scale.tpcc_txns()).expect("tpcc");
        out.push(("TPC-C".to_string(), tpcc.kops_per_sec()));
        out
    };

    let mut rows = Vec::new();
    for (group, baseline, others) in &groups {
        let base_fixture = make_fs(*baseline, scale.device_bytes());
        let base = run_apps(&base_fixture.fs);
        for (wl, kops) in &base {
            rows.push(vec![
                group.to_string(),
                baseline.label().to_string(),
                wl.clone(),
                format!("{kops:.1} kops/s"),
                "1.00x".to_string(),
            ]);
        }
        for other in others {
            let fixture = make_fs(*other, scale.device_bytes());
            let results = run_apps(&fixture.fs);
            for ((wl, kops), (_, base_kops)) in results.iter().zip(base.iter()) {
                rows.push(vec![
                    group.to_string(),
                    other.label().to_string(),
                    wl.clone(),
                    format!("{kops:.1} kops/s"),
                    format!("{:.2}x", kops / base_kops),
                ]);
            }
        }
    }

    // Metadata-heavy utilities (right half of Figure 6): runtimes in
    // simulated milliseconds, POSIX-class comparison.
    for kind in [FsKind::Ext4Dax, FsKind::NovaRelaxed, FsKind::SplitPosix] {
        let fixture = make_fs(kind, scale.device_bytes());
        let tree = scale.tree();
        let paths = utilities::build_tree(&fixture.fs, "/src", &tree).expect("tree");
        let git = utilities::git_like(&fixture.fs, "/src", &paths).expect("git");
        let tar = utilities::tar_like(&fixture.fs, &paths, "/archive.tar").expect("tar");
        let rsync = utilities::rsync_like(&fixture.fs, "/src", &paths, "/dst").expect("rsync");
        for result in [git, tar, rsync] {
            rows.push(vec![
                "utilities".to_string(),
                kind.label().to_string(),
                result.workload.clone(),
                format!("{:.2} ms", result.elapsed_ns / 1e6),
                String::new(),
            ]);
        }
    }
    rows
}

// ----------------------------------------------------------------------
// §5.3 — recovery time vs log entries
// ----------------------------------------------------------------------

/// Reproduces the recovery-time discussion of §5.3: time to replay an
/// operation log with an increasing number of valid entries.
pub fn recovery(scale: Scale) -> Vec<Row> {
    let entry_counts: &[u64] = match scale {
        Scale::Quick => &[100, 1_000, 5_000],
        Scale::Full => &[1_000, 10_000, 18_000, 50_000],
    };
    let mut rows = Vec::new();
    for &entries in entry_counts {
        // Persistence tracking stays on: this experiment crashes the device.
        let (device, kernel) = setup_device(pmem::DeviceShape::flat(scale.device_bytes()), true);
        // The daemon is disabled here on purpose: this experiment measures
        // how recovery cost scales with the number of *surviving* log
        // entries, and a background checkpoint would relink the staged
        // data and truncate the log mid-run.
        let config = SplitConfig::new(Mode::Strict)
            .with_staging(4, 16 * 1024 * 1024)
            .with_oplog_size((entries + 16) * 64)
            .without_daemon();
        let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).expect("splitfs");
        let fd = fs
            .open("/recover-me", vfs::OpenFlags::create())
            .expect("open");
        // Cache-line-sized appends, as in the paper's worst-case experiment.
        for i in 0..entries {
            fs.append(fd, &[i as u8; 64]).expect("append");
        }
        drop(fs);
        device.crash();

        let kernel2 = kernelfs::Ext4Dax::mount(Arc::clone(&device)).expect("mount");
        let start = device.clock().now_ns_f64();
        let report = splitfs::recover(&kernel2, &config).expect("recover");
        let elapsed_ms = (device.clock().now_ns_f64() - start) / 1e6;
        rows.push(vec![
            entries.to_string(),
            format!("{}", report.replayed),
            format!("{elapsed_ms:.2} ms"),
        ]);
    }
    rows
}

// ----------------------------------------------------------------------
// §5.10 — resource consumption
// ----------------------------------------------------------------------

/// Reproduces §5.10: DRAM used by U-Split bookkeeping and the number of
/// staging files / operation-log entries after a write-heavy run.
pub fn resources(scale: Scale) -> Vec<Row> {
    let (_device, kernel) = setup_device(pmem::DeviceShape::flat(scale.device_bytes()), false);
    let config = SplitConfig::new(Mode::Strict).with_staging(4, 16 * 1024 * 1024);
    let fs = SplitFs::new(Arc::clone(&kernel), config).expect("splitfs");
    let fs_dyn: Arc<dyn FileSystem> = Arc::clone(&fs) as Arc<dyn FileSystem>;

    let ycsb_config = YcsbRunConfig {
        record_count: scale.ycsb_records(),
        op_count: scale.ycsb_ops(),
        ..YcsbRunConfig::default()
    };
    appbench::run_ycsb(&fs_dyn, YcsbWorkload::A, &ycsb_config).expect("ycsb");

    let usage = fs.memory_usage();
    vec![
        vec!["cached files".into(), usage.cached_files.to_string()],
        vec!["staged extents".into(), usage.staged_extents.to_string()],
        vec!["mmap segments".into(), usage.mmap_segments.to_string()],
        vec![
            "approx DRAM".into(),
            format!("{:.2} MiB", usage.approx_bytes as f64 / (1024.0 * 1024.0)),
        ],
        vec!["oplog entries".into(), fs.oplog_entries().to_string()],
    ]
}

// ----------------------------------------------------------------------
// Background maintenance daemon — inline vs daemon-backed append/fsync
// ----------------------------------------------------------------------

/// Raw metrics of one [`daemon_maintenance`] configuration run.
#[derive(Debug, Clone, Copy)]
pub struct DaemonRunResult {
    /// Total simulated nanoseconds for the measured phase.
    pub elapsed_ns: f64,
    /// Append operations performed across all threads.
    pub ops: u64,
    /// Device statistics delta for the measured phase.
    pub stats: pmem::StatsSnapshot,
}

/// Runs the concurrent append/fsync workload behind the daemon experiment:
/// four threads, each appending 4 KiB blocks to its own file with an
/// `fsync` every 64 appends, over a deliberately small staging pool that
/// the workload exhausts many times over.  With `daemon_enabled` the
/// maintenance workers replenish the pool asynchronously and checkpoint
/// the log; without it every replenishment happens inline on the append
/// path (the seed's behaviour).
pub fn daemon_run(scale: Scale, daemon_enabled: bool) -> DaemonRunResult {
    let (device, kernel) = setup_device(pmem::DeviceShape::flat(scale.device_bytes()), false);
    // The log holds 4096 entries, so the append stream crosses the
    // daemon's 50% checkpoint threshold (and, without the daemon, fills
    // the log and forces the stop-the-world foreground checkpoint).
    let mut config = SplitConfig::new(Mode::Strict)
        .with_staging(4, 2 * 1024 * 1024)
        .with_staging_watermarks(3, 8)
        .with_oplog_size(256 * 1024);
    if !daemon_enabled {
        config = config.without_daemon();
    }
    let fs = SplitFs::new(Arc::clone(&kernel), config).expect("splitfs");

    const THREADS: usize = 4;
    const APPENDS_PER_FSYNC: usize = 64;
    // Sized so the workload pushes several times the initial pool capacity
    // (4 × 2 MiB) through staging, forcing replenishment to happen.
    let rounds = match scale {
        Scale::Quick => 24,
        Scale::Full => 96,
    };

    let before = device.stats().snapshot();
    let start = device.clock().now_ns_f64();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let fs = Arc::clone(&fs);
            scope.spawn(move || {
                let fd = fs
                    .open(&format!("/appender-{t}"), vfs::OpenFlags::create())
                    .expect("open");
                let block = vec![t as u8; 4096];
                for round in 0..rounds {
                    for _ in 0..APPENDS_PER_FSYNC {
                        fs.append(fd, &block).expect("append");
                    }
                    fs.fsync(fd).expect("fsync");
                    if round % 4 == 3 {
                        // Deterministic pacing point: nudged background
                        // work (provisioning, checkpoints) has landed.
                        fs.maintenance_quiesce();
                    }
                }
                fs.close(fd).expect("close");
            });
        }
    });
    fs.maintenance_quiesce();
    let elapsed_ns = device.clock().now_ns_f64() - start;
    let stats = device.stats().snapshot().delta(&before);
    DaemonRunResult {
        elapsed_ns,
        ops: (THREADS * APPENDS_PER_FSYNC * rounds) as u64,
        stats,
    }
}

/// Compares inline maintenance (the seed's behaviour, daemon disabled)
/// against daemon-backed maintenance on the concurrent append/fsync
/// workload.  The daemon row must show zero inline staging-file creations
/// and multi-extent relink batches.
pub fn daemon_maintenance(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for (label, enabled) in [("inline (daemon off)", false), ("daemon-backed", true)] {
        let result = daemon_run(scale, enabled);
        let s = result.stats;
        let ops_per_batch = if s.batched_relinks > 0 {
            s.relink_batch_ops as f64 / s.batched_relinks as f64
        } else {
            0.0
        };
        rows.push(vec![
            label.to_string(),
            crate::fmt_ns(result.elapsed_ns / result.ops as f64),
            s.staging_inline_creates.to_string(),
            s.staging_bg_creates.to_string(),
            s.batched_relinks.to_string(),
            format!("{ops_per_batch:.1}"),
            s.oplog_group_commits.to_string(),
            s.daemon_checkpoints.to_string(),
        ]);
    }
    rows
}

// ----------------------------------------------------------------------
// Vectored / batch-durable API — N appends vs one appendv of N slices
// ----------------------------------------------------------------------

/// Raw metrics of one [`vectored`] configuration run.
#[derive(Debug, Clone, Copy)]
pub struct VectoredRunResult {
    /// Simulated nanoseconds per 4 KiB record.
    pub ns_per_record: f64,
    /// Device statistics delta for the measured phase.
    pub stats: pmem::StatsSnapshot,
    /// Records written.
    pub records: u64,
}

/// Runs the vectored-append workload on `kind`: every 4 KiB record is
/// assembled from `slices` parts and committed either as `slices` plain
/// `append` calls or one gathered `appendv`, with an `fsync` per 16
/// records.  The returned stats carry the fence / journal-transaction /
/// group-commit counters the comparison is scored on.
pub fn vectored_run(
    scale: Scale,
    kind: FsKind,
    slices: usize,
    vectored: bool,
) -> VectoredRunResult {
    let fixture = make_fs(kind, scale.device_bytes());
    let io = IoBenchConfig {
        total_bytes: scale.io_bytes() / 4,
        fsync_every: 16,
        path: "/vectored.dat".to_string(),
        seed: 3,
    };
    let result = io_patterns::run_appendv(&fixture.fs, &io, slices, vectored).expect("appendv run");
    VectoredRunResult {
        ns_per_record: result.elapsed_ns / result.ops.max(1) as f64,
        stats: result.stats,
        records: result.ops,
    }
}

/// Compares N× `append` against one `appendv` of N slices (N = 8) on
/// SplitFS-strict and ext4 DAX.  The win the API claims is visible in the
/// counters, not asserted: fences per record collapse to 2 on SplitFS (one
/// for the gathered staging write, one group-committing its log entries),
/// and the journal-transaction column shows `fsync` batching.
pub fn vectored(scale: Scale) -> Vec<Row> {
    const SLICES: usize = 8;
    let mut rows = Vec::new();
    for kind in [FsKind::SplitStrict, FsKind::SplitPosix, FsKind::Ext4Dax] {
        for (label, is_vectored) in [("8x append", false), ("1x appendv(8)", true)] {
            let r = vectored_run(scale, kind, SLICES, is_vectored);
            let per_record = |v: u64| v as f64 / r.records.max(1) as f64;
            rows.push(vec![
                kind.label().to_string(),
                label.to_string(),
                crate::fmt_ns(r.ns_per_record),
                format!("{:.2}", per_record(r.stats.fences)),
                format!("{:.2}", per_record(r.stats.journal_txns)),
                r.stats.oplog_group_commits.to_string(),
                r.stats.appendv_calls.to_string(),
            ]);
        }
    }
    rows
}

// ----------------------------------------------------------------------
// Scaling — WAL-per-shard saturation at 1/2/4/8/16 threads
// ----------------------------------------------------------------------

/// Raw metrics of one [`scaling`] configuration run.
#[derive(Debug, Clone)]
pub struct ScalingRunResult {
    /// Worker threads.
    pub threads: usize,
    /// Critical-path simulated throughput in kops/s (the scaling metric:
    /// ops over the slowest thread's own simulated work plus its waits on
    /// contended locks — see `workloads::walshard`).
    pub kops: f64,
    /// Host wall-clock throughput in kops/s (informational; depends on
    /// the machine's real core count).
    pub kops_wall: f64,
    /// Total records appended.
    pub ops: u64,
    /// Device statistics delta for the measured phase.
    pub stats: pmem::StatsSnapshot,
}

/// Runs the WAL-per-shard saturation workload on SplitFS-strict with
/// `threads` appender threads, each owning one WAL file.  Per-thread work
/// is fixed, so a file system whose hot path is properly sharded keeps
/// wall time roughly flat as threads grow — under the seed's global
/// locks the curve was ~flat in *throughput* instead.
///
/// The staging pool runs one **lane per writer thread**, so disjoint
/// writers bump disjoint staging cursors: `staging_lock_waits` (the
/// counter the CI gate watches) stays ~zero where the old single-mutex
/// pool serialized every `take`.
pub fn scaling_run(scale: Scale, threads: usize) -> ScalingRunResult {
    // A deliberately small operation log (1024 entries) so the append
    // stream crosses its capacity many times over: every crossing must be
    // absorbed by an epoch swap or a growth, never a stall.  The device
    // is sized for the widest (16-lane) configuration's staging reserve.
    let fixture = make_splitfs(
        SplitConfig::new(Mode::Strict)
            .with_staging(4, 8 * 1024 * 1024)
            .with_staging_lanes(threads.max(1))
            .with_oplog_size(64 * 1024),
        scale.device_bytes().max(512 * 1024 * 1024),
    );
    let config = workloads::walshard::WalShardConfig {
        threads,
        records_per_shard: match scale {
            Scale::Quick => 1024,
            Scale::Full => 8192,
        },
        record_size: 1008,
        fsync_every: 64,
        ..workloads::walshard::WalShardConfig::default()
    };
    reset_measurement(&fixture);
    let result = workloads::walshard::run(&fixture.fs, &config).expect("walshard run");
    workloads::walshard::verify(&fixture.fs, &config).expect("walshard verify");
    ScalingRunResult {
        threads,
        kops: result.kops_per_sec(),
        kops_wall: result.kops_per_sec_wall(),
        ops: result.ops,
        stats: result.stats,
    }
}

/// The scaling experiment's printable table plus one machine-readable
/// JSON line per thread count (the CI smoke gate parses the JSON instead
/// of scraping table columns).
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// The rows of the human-readable table.
    pub rows: Vec<Row>,
    /// One JSON object per row, stable key order, for the CI gate.
    pub json: Vec<String>,
}

/// The scaling experiment: distinct-file append throughput at
/// 1/2/4/8/16 threads on SplitFS-strict (one staging lane per writer),
/// with the contention counters that explain the curve.  The acceptance
/// bar: 4-thread throughput ≥ 2× the single-thread figure, **zero**
/// checkpoint stalls (log truncation happens by epoch swap only), and
/// `staging_lock_waits` ~zero — disjoint writers never contend on
/// staging allocation.
pub fn scaling_report(scale: Scale) -> ScalingReport {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut base_kops = 0.0;
    for threads in [1usize, 2, 4, 8, 16] {
        let r = scaling_run(scale, threads);
        if threads == 1 {
            base_kops = r.kops;
        }
        let s = r.stats;
        rows.push(vec![
            threads.to_string(),
            format!("{:.1} kops/s", r.kops),
            format!("{:.2}x", r.kops / base_kops.max(1e-9)),
            format!("{:.1} kops/s", r.kops_wall),
            s.staging_lock_waits.to_string(),
            s.staging_lane_steals.to_string(),
            s.staging_adaptive_resizes.to_string(),
            s.shard_lock_waits.to_string(),
            s.oplog_epoch_swaps.to_string(),
            s.oplog_epoch_truncates.to_string(),
            s.oplog_grows.to_string(),
            s.checkpoint_stalls.to_string(),
            s.staging_recycles.to_string(),
        ]);
        json.push(
            obs::JsonObject::new()
                .str("experiment", "scaling")
                .u64("threads", threads as u64)
                .f64("kops", (r.kops * 10.0).round() / 10.0)
                .f64(
                    "speedup",
                    (r.kops / base_kops.max(1e-9) * 100.0).round() / 100.0,
                )
                .u64("staging_lock_waits", s.staging_lock_waits)
                .u64("staging_lane_steals", s.staging_lane_steals)
                .u64("staging_adaptive_resizes", s.staging_adaptive_resizes)
                .u64("staging_inline_creates", s.staging_inline_creates)
                .u64("shard_lock_waits", s.shard_lock_waits)
                .u64("checkpoint_stalls", s.checkpoint_stalls)
                .finish(),
        );
    }
    ScalingReport { rows, json }
}

/// Table-only view of [`scaling_report`].
pub fn scaling(scale: Scale) -> Vec<Row> {
    scaling_report(scale).rows
}

// ----------------------------------------------------------------------
// Latency — per-op latency distributions and software-overhead breakdown
// ----------------------------------------------------------------------

/// Raw output of the latency experiment on one file system: the full
/// [`obs::MetricsSnapshot`] (per-op percentiles, time breakdown, daemon
/// health) plus the workload totals.
#[derive(Debug, Clone)]
pub struct LatencyRunResult {
    /// The configuration that ran.
    pub kind: FsKind,
    /// Total operations the workload issued.
    pub ops: u64,
    /// Critical-path simulated nanoseconds (slowest worker).
    pub critical_ns: f64,
    /// Per-op latency summaries folded with the stats delta.
    pub snapshot: obs::MetricsSnapshot,
}

/// Runs the closed-loop latency workload on `kind` with an attached span
/// recorder and returns per-operation latency distributions.
///
/// The whole measured window — opens, appends, read-backs, overwrites,
/// fsyncs, the final `fsync_many` and the closes, plus (on SplitFS) every
/// daemon dispatch — runs under spans, so the snapshot's per-op time
/// breakdown reconciles against the device's aggregate category times
/// for the same window ([`obs::MetricsSnapshot::attribution_error`]).
pub fn latency_run(scale: Scale, kind: FsKind, threads: usize) -> LatencyRunResult {
    let (fs, device, split): (Arc<dyn FileSystem>, _, Option<Arc<SplitFs>>) = match kind {
        FsKind::SplitPosix | FsKind::SplitSync | FsKind::SplitStrict => {
            // Built by hand rather than through `make_fs` so the concrete
            // `Arc<SplitFs>` stays available for recorder attachment,
            // quiescing and the health probe.
            let (device, kernel) =
                setup_device(pmem::DeviceShape::flat(scale.device_bytes()), false);
            let mode = match kind {
                FsKind::SplitPosix => Mode::Posix,
                FsKind::SplitSync => Mode::Sync,
                _ => Mode::Strict,
            };
            let config = SplitConfig::new(mode).with_staging(4, 16 * 1024 * 1024);
            let split = SplitFs::new(kernel, config).expect("splitfs init");
            (
                Arc::clone(&split) as Arc<dyn FileSystem>,
                device,
                Some(split),
            )
        }
        _ => {
            let fixture = make_fs(kind, scale.device_bytes());
            (fixture.fs, fixture.device, None)
        }
    };
    device.clock().reset();
    device.stats().reset();
    let recorder = Arc::new(obs::Recorder::new());
    if let Some(split) = &split {
        split.attach_recorder(Arc::clone(&recorder));
    }
    let traced: Arc<dyn FileSystem> = Arc::new(vfs::TracedFs::new(fs, Arc::clone(&recorder)));
    let before = device.stats().snapshot();
    let config = workloads::latency::LatencyConfig {
        threads,
        ops_per_thread: match scale {
            Scale::Quick => 1024,
            Scale::Full => 8192,
        },
        ..Default::default()
    };
    let result = workloads::latency::run(&traced, &config).expect("latency run");
    if let Some(split) = &split {
        split.maintenance_quiesce();
    }
    let stats = device.stats().snapshot().delta(&before);
    let mut snapshot = obs::MetricsSnapshot::new(kind.label(), threads, &recorder, stats);
    if let Some(split) = &split {
        snapshot = snapshot.with_health(split.health());
    }
    LatencyRunResult {
        kind,
        ops: result.ops,
        critical_ns: result.critical_ns,
        snapshot,
    }
}

/// The latency experiment's printable table plus one machine-readable
/// `METRICS_JSON` line per file system (the CI smoke gate parses the
/// JSON instead of scraping table columns).
#[derive(Debug, Clone)]
pub struct LatencyReport {
    /// The rows of the human-readable percentile table.
    pub rows: Vec<Row>,
    /// One [`obs::MetricsSnapshot`] JSON object per file system.
    pub json: Vec<String>,
}

/// The latency experiment: the closed-loop mixed workload at 4 threads
/// on the five file systems of Table 1, reporting per-op
/// p50/p90/p99/p999 latency and per-op software overhead from the span
/// recorder's histograms.
pub fn latency_report(scale: Scale) -> LatencyReport {
    let kinds = [
        FsKind::Ext4Dax,
        FsKind::Pmfs,
        FsKind::NovaStrict,
        FsKind::SplitStrict,
        FsKind::SplitPosix,
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for kind in kinds {
        let r = latency_run(scale, kind, 4);
        for op in &r.snapshot.ops {
            rows.push(vec![
                kind.label().to_string(),
                op.kind.label().to_string(),
                op.count.to_string(),
                crate::fmt_ns(op.p50_ns as f64),
                crate::fmt_ns(op.p90_ns as f64),
                crate::fmt_ns(op.p99_ns as f64),
                crate::fmt_ns(op.p999_ns as f64),
                crate::fmt_ns(op.max_ns as f64),
                crate::fmt_ns(op.software_overhead_ns() / op.count.max(1) as f64),
            ]);
        }
        json.push(r.snapshot.to_json());
    }
    LatencyReport { rows, json }
}

/// Table-only view of [`latency_report`].
pub fn latency(scale: Scale) -> Vec<Row> {
    latency_report(scale).rows
}

// ----------------------------------------------------------------------
// Multi — N concurrent U-Split instances over one kernel file system
// ----------------------------------------------------------------------

/// Raw metrics of one [`multi`] configuration run.
#[derive(Debug, Clone)]
pub struct MultiRunResult {
    /// Concurrent U-Split instances mounted over the shared kernel.
    pub instances: usize,
    /// Aggregate critical-path simulated throughput in kops/s (ops over
    /// the slowest worker's simulated makespan — see
    /// `workloads::multiproc`).
    pub kops: f64,
    /// Host wall-clock throughput in kops/s (informational).
    pub kops_wall: f64,
    /// Total records appended across every instance.
    pub ops: u64,
    /// Device statistics delta for the run, including the lease counters.
    pub stats: pmem::StatsSnapshot,
}

/// Runs the multi-instance workload: `instances` U-Split instances in
/// strict mode over one freshly formatted kernel file system, one writer
/// thread each, every instance leasing its own staging slice and
/// operation-log range.  Contents are verified through the kernel
/// afterwards, so cross-instance contamination fails the run.
pub fn multi_run(scale: Scale, instances: usize) -> MultiRunResult {
    let (device, kernel) = setup_device(pmem::DeviceShape::flat(scale.device_bytes()), false);
    let split_config = SplitConfig::new(Mode::Strict)
        .with_staging(4, 8 * 1024 * 1024)
        .with_oplog_size(64 * 1024);
    let config = workloads::multiproc::MultiProcConfig {
        instances,
        threads_per_instance: 1,
        records_per_thread: match scale {
            Scale::Quick => 1024,
            Scale::Full => 8192,
        },
        record_size: 1008,
        fsync_every: 64,
    };
    device.clock().reset();
    device.stats().reset();
    // `run` verifies every instance's files through the kernel before
    // returning, so a contaminated run fails here.
    let result = workloads::multiproc::run(&kernel, &split_config, &config).expect("multi run");
    MultiRunResult {
        instances,
        kops: result.kops_per_sec(),
        kops_wall: result.kops_per_sec_wall(),
        ops: result.ops,
        stats: result.stats,
    }
}

/// The multi-instance experiment: aggregate distinct-instance append
/// throughput at 1/2/4 concurrent U-Split instances over one shared
/// kernel file system.  The acceptance bar: 2-instance aggregate
/// throughput above the single-instance figure, with **zero** lease
/// conflicts — each instance's staging slice and log range are leased
/// once at mount and never contended afterwards.
pub fn multi(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut base_kops = 0.0;
    for instances in [1usize, 2, 4] {
        let r = multi_run(scale, instances);
        if instances == 1 {
            base_kops = r.kops;
        }
        let s = r.stats;
        rows.push(vec![
            instances.to_string(),
            format!("{:.1} kops/s", r.kops),
            format!("{:.2}x", r.kops / base_kops.max(1e-9)),
            format!("{:.1} kops/s", r.kops_wall),
            s.lease_acquires.to_string(),
            s.lease_releases.to_string(),
            s.lease_conflicts.to_string(),
            s.oplog_epoch_swaps.to_string(),
            s.checkpoint_stalls.to_string(),
        ]);
    }
    rows
}

// ----------------------------------------------------------------------
// Open-loop rings — offered-load sweep on the async submission rings
// ----------------------------------------------------------------------

/// Raw metrics of one [`openloop_report`] run: the ring sweep plus the
/// synchronous-`appendv` baseline it is scored against.
#[derive(Debug, Clone)]
pub struct OpenLoopRunResult {
    /// The per-level results of the offered-load sweep.
    pub report: workloads::openloop::OpenLoopReport,
    /// Fences per operation on the synchronous baseline: the same number
    /// of same-sized appends through the plain `appendv` path, which
    /// pays its two fences per call no matter the load.
    pub sync_fences_per_op: f64,
}

/// Runs the open-loop ring sweep on SplitFS-strict (1/4/16 appends in
/// flight per thread) and the synchronous baseline it is compared
/// against.  The claim under test: at ≥ 4 in-flight operations per
/// thread, the drained batches coalesce log fences across unrelated
/// files and fences per op drop strictly below the synchronous figure.
pub fn openloop_run(scale: Scale) -> OpenLoopRunResult {
    let threads = 4usize;
    let ops_per_level = match scale {
        Scale::Quick => 512,
        Scale::Full => 4096,
    };
    let config = workloads::openloop::OpenLoopConfig {
        threads,
        inflight_levels: vec![1, 4, 16],
        ops_per_level,
        record_size: 1008,
        ring_depth: 64,
        dir: "/openloop".to_string(),
    };
    let split_config = SplitConfig::new(Mode::Strict).with_staging(4, 16 * 1024 * 1024);

    let (_device, kernel) = setup_device(pmem::DeviceShape::flat(scale.device_bytes()), false);
    let fs = SplitFs::new(kernel, split_config.clone()).expect("splitfs init");
    let hub = splitfs::ring_hub(&fs);
    let dynfs: Arc<dyn FileSystem> = Arc::clone(&fs) as Arc<dyn FileSystem>;
    let report = workloads::openloop::run(&dynfs, &hub, &config).expect("openloop run");

    // The synchronous baseline on a fresh instance: same record size,
    // one level's worth of ops, no rings.
    let (device, kernel) = setup_device(pmem::DeviceShape::flat(scale.device_bytes()), false);
    let fs = SplitFs::new(kernel, split_config).expect("splitfs init");
    let fd = fs
        .open("/sync-baseline.log", vfs::OpenFlags::create())
        .expect("open baseline");
    let ops = threads as u64 * ops_per_level;
    let body = vec![1u8; 1008];
    let before = device.stats().snapshot();
    for _ in 0..ops {
        let iov = [vfs::IoVec::new(&body)];
        fs.appendv(fd, &iov).expect("sync append");
    }
    let delta = device.stats().snapshot().delta(&before);
    OpenLoopRunResult {
        report,
        sync_fences_per_op: delta.fences as f64 / ops as f64,
    }
}

/// The open-loop experiment's printable table plus one machine-readable
/// JSON line per offered-load level (the CI smoke gate parses the JSON
/// instead of scraping table columns).
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// The rows of the human-readable table.
    pub rows: Vec<Row>,
    /// One JSON object per offered-load level, stable key order.
    pub json: Vec<String>,
}

/// The open-loop experiment: submit-to-harvest latency percentiles and
/// fences per op across the offered-load sweep, next to the synchronous
/// baseline's fences per op.  The acceptance bar: zero durability-epoch
/// violations at every level, and fences/op strictly below the
/// synchronous figure at ≥ 4 in-flight ops per thread.
pub fn openloop_report(scale: Scale) -> OpenLoopReport {
    let r = openloop_run(scale);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for level in &r.report.levels {
        let fences_per_op = level.fences_per_op();
        rows.push(vec![
            level.inflight.to_string(),
            level.completions.to_string(),
            crate::fmt_ns(level.p50_ns as f64),
            crate::fmt_ns(level.p99_ns as f64),
            crate::fmt_ns(level.p999_ns as f64),
            format!("{fences_per_op:.3}"),
            format!("{:.3}", r.sync_fences_per_op),
            level.epoch_violations.to_string(),
        ]);
        json.push(
            obs::JsonObject::new()
                .str("experiment", "openloop")
                .str("fs", "SplitFS-strict")
                .u64("inflight", level.inflight as u64)
                .u64("completions", level.completions)
                .u64("p50_ns", level.p50_ns)
                .u64("p99_ns", level.p99_ns)
                .u64("p999_ns", level.p999_ns)
                .u64("epoch_violations", level.epoch_violations)
                .u64("errors", level.errors)
                .f64("fences_per_op", (fences_per_op * 1000.0).round() / 1000.0)
                .f64(
                    "sync_fences_per_op",
                    (r.sync_fences_per_op * 1000.0).round() / 1000.0,
                )
                .u64("amortized", u64::from(fences_per_op < r.sync_fences_per_op))
                .finish(),
        );
    }
    OpenLoopReport { rows, json }
}

/// Table-only view of [`openloop_report`].
pub fn openloop(scale: Scale) -> Vec<Row> {
    openloop_report(scale).rows
}

// ----------------------------------------------------------------------
// Metadata — namespace-shard / path-cache scale-out
// ----------------------------------------------------------------------

/// Raw metrics of one [`metadata`] configuration run.
#[derive(Debug, Clone)]
pub struct MetadataRunResult {
    /// Worker threads used.
    pub threads: usize,
    /// Critical-path creates per simulated second (churn + aging creates
    /// over the create-phase makespans).
    pub creates_per_sec: f64,
    /// Critical-path resolves per simulated second (resolve phase).
    pub resolves_per_sec: f64,
    /// Path-cache hit rate over the deep-tree resolve phase.
    pub cache_hit_rate: f64,
    /// Namespace-shard lock waits over the whole run.
    pub ns_shard_lock_waits: u64,
    /// Path-cache invalidations over the whole run (one per unlink).
    pub cache_invalidations: u64,
    /// Fsck violations plus dangling aged files — must be zero.
    pub consistency_failures: u64,
    /// Total files created.
    pub creates: u64,
    /// Total resolve-phase stats issued.
    pub resolves: u64,
}

/// Runs the concurrent metadata workload on SplitFS-strict with
/// `threads` workers in disjoint deep directories (one staging lane per
/// writer, as in [`scaling_run`]).  The per-thread directories land on
/// distinct namespace shards and the per-shard inode pools keep each
/// directory's files on its parent's shard, so creates scale with the
/// thread count; the aged-file resolve phase is served by the full-path
/// cache.
pub fn metadata_run(scale: Scale, threads: usize) -> MetadataRunResult {
    let (device, kernel) = setup_device(
        pmem::DeviceShape::flat(scale.device_bytes().max(512 * 1024 * 1024)),
        false,
    );
    let split_config = SplitConfig::new(Mode::Strict)
        .with_staging(4, 8 * 1024 * 1024)
        .with_staging_lanes(threads.max(1))
        .with_oplog_size(64 * 1024);
    let fs: Arc<dyn FileSystem> =
        SplitFs::new(Arc::clone(&kernel), split_config).expect("splitfs init");
    // Per-thread work is fixed so perfect scaling keeps each phase's
    // makespan flat as threads grow.  The aging population is the paper's
    // million-file pass scaled into the 65,536-inode table: at 8 threads
    // the full run consumes ~18k inodes, well inside the budget.
    let config = workloads::metaload::MetaloadConfig {
        threads,
        churn_iters: match scale {
            Scale::Quick => 64,
            Scale::Full => 256,
        },
        aging_files: match scale {
            Scale::Quick => 384,
            Scale::Full => 2048,
        },
        resolve_repeats: 4,
        ..workloads::metaload::MetaloadConfig::default()
    };
    device.clock().reset();
    device.stats().reset();
    let result = workloads::metaload::run(&fs, &kernel, &config).expect("metaload run");
    MetadataRunResult {
        threads,
        creates_per_sec: result.creates_per_sec(),
        resolves_per_sec: result.resolves_per_sec(),
        cache_hit_rate: result.cache_hit_rate,
        ns_shard_lock_waits: result.ns_shard_lock_waits,
        cache_invalidations: result.cache_invalidations,
        consistency_failures: result.consistency_failures,
        creates: result.creates,
        resolves: result.resolves,
    }
}

/// The metadata experiment's printable table plus one machine-readable
/// `METADATA_JSON` line per thread count (the CI smoke gate parses the
/// JSON instead of scraping table columns).
#[derive(Debug, Clone)]
pub struct MetadataReport {
    /// The rows of the human-readable table.
    pub rows: Vec<Row>,
    /// One JSON object per row, stable key order, for the CI gate.
    pub json: Vec<String>,
}

/// The metadata experiment: concurrent create/resolve scale-out at
/// 1/2/4/8 threads on SplitFS-strict.  The acceptance bar: 8-thread
/// creates/sec ≥ 4× the single-thread figure, resolve-phase cache hit
/// rate > 90%, namespace-shard lock waits ≈ 0 for the disjoint
/// directories, and **zero** consistency failures.
pub fn metadata_report(scale: Scale) -> MetadataReport {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut base_creates = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let r = metadata_run(scale, threads);
        if threads == 1 {
            base_creates = r.creates_per_sec;
        }
        rows.push(vec![
            threads.to_string(),
            format!("{:.1} kops/s", r.creates_per_sec / 1e3),
            format!("{:.2}x", r.creates_per_sec / base_creates.max(1e-9)),
            format!("{:.1} kops/s", r.resolves_per_sec / 1e3),
            format!("{:.1}%", r.cache_hit_rate * 100.0),
            r.ns_shard_lock_waits.to_string(),
            r.cache_invalidations.to_string(),
            r.consistency_failures.to_string(),
        ]);
        json.push(
            obs::JsonObject::new()
                .str("experiment", "metadata")
                .u64("threads", threads as u64)
                .u64("creates_per_sec", r.creates_per_sec.round() as u64)
                .u64("resolves_per_sec", r.resolves_per_sec.round() as u64)
                .f64(
                    "cache_hit_rate",
                    (r.cache_hit_rate * 1000.0).round() / 1000.0,
                )
                .u64("cache_hit_pct", (r.cache_hit_rate * 100.0).round() as u64)
                .u64("ns_shard_lock_waits", r.ns_shard_lock_waits)
                .u64("path_cache_invalidations", r.cache_invalidations)
                .u64("consistency_failures", r.consistency_failures)
                .finish(),
        );
    }
    MetadataReport { rows, json }
}

/// Table-only view of [`metadata_report`].
pub fn metadata(scale: Scale) -> Vec<Row> {
    metadata_report(scale).rows
}

/// The crash-point fuzzing experiment's table plus its CI JSON mirror.
pub struct CrashFuzzReport {
    /// The rows of the human-readable table.
    pub rows: Vec<Row>,
    /// One JSON object per row, stable key order, for the CI gate.
    pub json: Vec<String>,
}

/// The crash-point fuzzing experiment: enumerate every fence boundary
/// the concurrent crash-mix workload crosses, crash at a sampled set of
/// them per mode/policy, recover each image and hold it to the
/// declared-durability oracle plus fsck; then the differential
/// (KeepAll vs LoseUnflushed) classifier and the media-fault injection
/// round.  The acceptance bar, gated by CI on the `total` JSON row:
/// ≥ 200 crash points explored across SplitFS-strict and SplitFS-POSIX,
/// **zero** oracle violations, **zero** fsck failures, and zero
/// unclassified differential divergences.  `CHAOS_SEED` steers the
/// workload and the sampled boundaries; `CRASHFUZZ_EXTENDED=1` switches
/// to the nightly profile (several times more points per mode).
pub fn crashfuzz_report(scale: Scale) -> CrashFuzzReport {
    use chaos::FuzzConfig;
    use pmem::CrashPolicy;

    let extended = std::env::var("CRASHFUZZ_EXTENDED")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    let seed = chaos::chaos_seed(0xC4A0_5EED);
    let per_mode = match (scale, extended) {
        (Scale::Quick, false) => 120,
        (Scale::Quick, true) => 500,
        (Scale::Full, false) => 400,
        (Scale::Full, true) => 1500,
    };
    let diff_points = per_mode / 3;

    let configs = [
        ("strict", Mode::Strict, CrashPolicy::LoseUnflushed, false),
        ("posix", Mode::Posix, CrashPolicy::LoseUnflushed, false),
        (
            "strict",
            Mode::Strict,
            CrashPolicy::TornWrites { seed },
            false,
        ),
        // Tiered device with tier churn in the mix: crash points land
        // inside demotion transactions and bounce reads.
        (
            "strict-tiered",
            Mode::Strict,
            CrashPolicy::LoseUnflushed,
            true,
        ),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut total_points = 0u64;
    let mut total_unreached = 0u64;
    let mut total_violations = 0u64;
    let mut total_fsck = 0u64;
    let mut total_promises = 0u64;
    let mut fences = 0u64;
    for (mode_name, mode, policy, tiered) in configs {
        let mut config = if tiered {
            FuzzConfig::tiered_smoke(mode, seed)
        } else {
            FuzzConfig::smoke(mode, seed)
        };
        config.policy = policy;
        config.max_points = per_mode;
        let report = chaos::fuzz::run(&config).expect("crashfuzz run");
        let policy_name = match policy {
            CrashPolicy::LoseUnflushed => "lose-unflushed",
            CrashPolicy::KeepAll => "keep-all",
            CrashPolicy::TornWrites { .. } => "torn-writes",
        };
        fences = fences.max(report.fences_enumerated);
        total_points += report.points_explored;
        total_unreached += report.points_unreached;
        total_violations += report.violations.len() as u64;
        total_fsck += report.fsck_failures;
        total_promises += report.promises_checked;
        rows.push(vec![
            mode_name.to_string(),
            policy_name.to_string(),
            report.fences_enumerated.to_string(),
            report.points_explored.to_string(),
            report.points_unreached.to_string(),
            report.violations.len().to_string(),
            report.fsck_failures.to_string(),
            report.promises_checked.to_string(),
        ]);
        json.push(
            obs::JsonObject::new()
                .str("experiment", "crashfuzz")
                .str("mode", mode_name)
                .str("policy", policy_name)
                .u64("fences_enumerated", report.fences_enumerated)
                .u64("points", report.points_explored)
                .u64("unreached", report.points_unreached)
                .u64("violations", report.violations.len() as u64)
                .u64("fsck_failures", report.fsck_failures)
                .u64("promises_checked", report.promises_checked)
                .finish(),
        );
        for violation in &report.violations {
            eprintln!("crashfuzz[{mode_name}/{policy_name}] violation: {violation}");
        }
    }

    let diff = chaos::fuzz::run_differential(&FuzzConfig::smoke(Mode::Strict, seed), diff_points)
        .expect("crashfuzz differential");
    rows.push(vec![
        "differential".into(),
        "keep-all vs lose-unflushed".into(),
        "-".into(),
        (diff.consistent + diff.missing_fence + diff.logic_bug + diff.unclassified).to_string(),
        diff.skipped.to_string(),
        diff.logic_bug.to_string(),
        "-".into(),
        format!(
            "{} missing-fence, {} unclassified",
            diff.missing_fence, diff.unclassified
        ),
    ]);

    let media = chaos::fuzz::run_media_faults(&FuzzConfig::smoke(Mode::Strict, seed))
        .expect("crashfuzz media faults");
    rows.push(vec![
        "media".into(),
        "read-error ranges".into(),
        "-".into(),
        media.injected.to_string(),
        "0".into(),
        (media.injected - media.propagated).to_string(),
        (!media.contained as u64).to_string(),
        format!("restored: {}", media.restored),
    ]);

    rows.push(vec![
        "total".into(),
        "-".into(),
        fences.to_string(),
        total_points.to_string(),
        total_unreached.to_string(),
        total_violations.to_string(),
        total_fsck.to_string(),
        total_promises.to_string(),
    ]);
    json.push(
        obs::JsonObject::new()
            .str("experiment", "crashfuzz")
            .str("mode", "total")
            .u64("fences_enumerated", fences)
            .u64("points", total_points)
            .u64("unreached", total_unreached)
            .u64("violations", total_violations)
            .u64("fsck_failures", total_fsck)
            .u64("promises_checked", total_promises)
            .u64("diff_consistent", diff.consistent)
            .u64("diff_missing_fence", diff.missing_fence)
            .u64("diff_logic_bug", diff.logic_bug)
            .u64("diff_unclassified", diff.unclassified)
            .u64("media_injected", media.injected)
            .u64("media_propagated", media.propagated)
            .u64("media_contained", media.contained as u64)
            .u64("media_restored", media.restored as u64)
            .finish(),
    );
    CrashFuzzReport { rows, json }
}

// ----------------------------------------------------------------------
// Tiered capacity — hot-set throughput vs all-PM and all-cold
// ----------------------------------------------------------------------

/// The tiering experiment's table plus its CI JSON mirror.
pub struct TieringReport {
    /// The rows of the human-readable table.
    pub rows: Vec<Row>,
    /// One JSON object per row plus a `summary` row, for the CI gate.
    pub json: Vec<String>,
}

/// Loads `files` files of `file_bytes` each, fsyncs them, and demotes
/// every file whose index fails `keep_hot` straight to the capacity
/// tier (so PM never has to hold more than the hot set plus the file
/// being written).  Returns the open descriptors, index-aligned.
fn tier_load(
    fs: &Arc<SplitFs>,
    files: usize,
    file_bytes: usize,
    keep_hot: impl Fn(usize) -> bool,
) -> Vec<vfs::Fd> {
    const CHUNK: usize = 256 * 1024;
    let mut fds = Vec::with_capacity(files);
    for i in 0..files {
        let fd = fs
            .open(&format!("/tier-{i:03}"), vfs::OpenFlags::create())
            .expect("open");
        let buf = vec![i as u8; CHUNK];
        let mut written = 0;
        while written < file_bytes {
            fs.append(fd, &buf).expect("append");
            written += CHUNK;
        }
        fs.fsync(fd).expect("fsync");
        if !keep_hot(i) {
            fs.demote_fd(fd).expect("demote");
        }
        fds.push(fd);
    }
    fds
}

/// Reads every file in `fds` front to back in 64 KiB chunks, `rounds`
/// times over, and returns the throughput in simulated MiB/s.
fn tier_read_pass(
    device: &Arc<pmem::PmemDevice>,
    fs: &Arc<SplitFs>,
    fds: &[vfs::Fd],
    file_bytes: usize,
    rounds: usize,
) -> f64 {
    const CHUNK: usize = 64 * 1024;
    let mut buf = vec![0u8; CHUNK];
    let start = device.clock().now_ns_f64();
    for _ in 0..rounds {
        for &fd in fds {
            let mut off = 0usize;
            while off < file_bytes {
                fs.read_at(fd, off as u64, &mut buf).expect("read");
                off += CHUNK;
            }
        }
    }
    let elapsed_ns = device.clock().now_ns_f64() - start;
    let bytes = (rounds * fds.len() * file_bytes) as f64;
    bytes / elapsed_ns * 1e9 / (1024.0 * 1024.0)
}

/// The tiered-capacity experiment: a dataset 4× the PM tier, with a hot
/// set that fits in PM, read at full speed under three layouts.
///
/// * **all-pm** — a flat device large enough for the whole dataset; the
///   hot-set read pass sets the baseline `T_pm`.
/// * **tiered-hot** — PM holds only the hot set; every cold file is
///   demoted to the capacity tier as it is loaded.  The same read pass
///   over the (PM-resident) hot set must sustain ≥ 80% of `T_pm` —
///   tiering the cold data may not tax the hot path.  Two reads of one
///   cold file then exercise heat promotion.
/// * **tiered-cold** — every file is demoted and promotion is disabled,
///   so the read pass bounces through the kernel's capacity tier; the
///   hot layout must beat this by ≥ 2×.
///
/// Every tiered phase ends with an fsck of the live kernel; the CI gate
/// parses the `summary` JSON row for the throughput ratios, demotion and
/// promotion counts, and fsck failures.
pub fn tiering_report(scale: Scale) -> TieringReport {
    const MIB: usize = 1024 * 1024;
    let (pm_bytes, files, hot_files, rounds) = match scale {
        Scale::Quick => (48 * MIB, 48, 4, 6),
        Scale::Full => (64 * MIB, 64, 6, 10),
    };
    let file_bytes = 4 * MIB;
    let dataset = files * file_bytes; // 4× the PM tier
    let cap_bytes = dataset + dataset / 2;
    let split_config = || {
        SplitConfig::new(Mode::Strict)
            .with_staging(2, 4 * MIB as u64)
            .with_oplog_size(256 * 1024)
            .without_daemon()
    };
    let hot_range = |i: usize| i < hot_files;

    // Phase A: the all-PM baseline.  The flat device holds the whole
    // dataset in PM, so nothing ever demotes.
    let (device, kernel) = setup_device(pmem::DeviceShape::flat(dataset + 96 * MIB), false);
    let fs = SplitFs::new(Arc::clone(&kernel), split_config()).expect("splitfs");
    let fds = tier_load(&fs, files, file_bytes, |_| true);
    let t_pm = tier_read_pass(&device, &fs, &fds[..hot_files], file_bytes, rounds);
    drop(fs);

    // Phase B: tiered, hot set resident in PM, cold set demoted.
    let (device, kernel) = setup_device(pmem::DeviceShape::tiered(pm_bytes, cap_bytes), false);
    let fs = SplitFs::new(Arc::clone(&kernel), split_config()).expect("splitfs");
    let fds = tier_load(&fs, files, file_bytes, hot_range);
    let t_hot = tier_read_pass(&device, &fs, &fds[..hot_files], file_bytes, rounds);
    // Heat promotion: two reads of one cold file cross the default
    // promote-after threshold and pull it back to PM.
    let mut probe = vec![0u8; 4096];
    fs.read_at(fds[hot_files], 0, &mut probe).expect("read");
    fs.read_at(fds[hot_files], 0, &mut probe).expect("read");
    let hot_snap = device.stats().snapshot();
    let hot_fsck = chaos::oracle::fsck(&kernel).len() as u64;
    drop(fs);

    // Phase C: tiered, everything cold, promotion disabled — the read
    // pass is served entirely by capacity-tier bounce reads.
    let (device, kernel) = setup_device(pmem::DeviceShape::tiered(pm_bytes, cap_bytes), false);
    let fs = SplitFs::new(
        Arc::clone(&kernel),
        split_config().with_tier_promote_after_reads(u32::MAX),
    )
    .expect("splitfs");
    let fds = tier_load(&fs, files, file_bytes, |_| false);
    let t_cold = tier_read_pass(&device, &fs, &fds[..hot_files], file_bytes, rounds);
    let cold_snap = device.stats().snapshot();
    let cold_fsck = chaos::oracle::fsck(&kernel).len() as u64;
    drop(fs);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    let phases = [
        ("all-pm", t_pm, pmem::StatsSnapshot::default(), 0u64),
        ("tiered-hot", t_hot, hot_snap, hot_fsck),
        ("tiered-cold", t_cold, cold_snap, cold_fsck),
    ];
    for (name, throughput, snap, fsck_failures) in phases {
        rows.push(vec![
            name.to_string(),
            format!("{throughput:.0} MiB/s"),
            format!("{:.2}x", throughput / t_pm.max(1e-9)),
            snap.tier_demotions.to_string(),
            snap.tier_promotions.to_string(),
            snap.tier_cap_reads.to_string(),
            fsck_failures.to_string(),
        ]);
        json.push(
            obs::JsonObject::new()
                .str("experiment", "tiering")
                .str("config", name)
                .u64("mib_per_s", throughput.round() as u64)
                .f64(
                    "vs_all_pm",
                    (throughput / t_pm.max(1e-9) * 1000.0).round() / 1000.0,
                )
                .u64("tier_demotions", snap.tier_demotions)
                .u64("tier_promotions", snap.tier_promotions)
                .u64("tier_cap_reads", snap.tier_cap_reads)
                .u64("fsck_failures", fsck_failures)
                .finish(),
        );
    }
    json.push(
        obs::JsonObject::new()
            .str("experiment", "tiering")
            .str("config", "summary")
            .u64("pm_mib_s", t_pm.round() as u64)
            .u64("hot_mib_s", t_hot.round() as u64)
            .u64("cold_mib_s", t_cold.round() as u64)
            .u64(
                "hot_vs_pm_pct",
                (t_hot / t_pm.max(1e-9) * 100.0).round() as u64,
            )
            .f64(
                "hot_vs_cold_x",
                (t_hot / t_cold.max(1e-9) * 100.0).round() / 100.0,
            )
            .u64(
                "demotions",
                hot_snap.tier_demotions + cold_snap.tier_demotions,
            )
            .u64("promotions", hot_snap.tier_promotions)
            .u64("fsck_failures", hot_fsck + cold_fsck)
            .finish(),
    );
    TieringReport { rows, json }
}

/// Table-only view of [`tiering_report`].
pub fn tiering(scale: Scale) -> Vec<Row> {
    tiering_report(scale).rows
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full experiments are exercised by the harness; these smoke tests
    // keep the cheapest ones compiling and running correctly in CI.

    #[test]
    fn table1_orders_file_systems_as_the_paper_does() {
        let rows = table1(Scale::Quick);
        assert_eq!(rows.len(), 5);
        let append_ns: Vec<f64> = rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // ext4 DAX (row 0) must be the slowest; SplitFS-POSIX (row 4) the
        // fastest — the central claim of Table 1.
        let ext4 = append_ns[0];
        let split_posix = append_ns[4];
        let split_strict = append_ns[3];
        assert!(
            ext4 > split_strict,
            "ext4 {ext4} vs SplitFS-strict {split_strict}"
        );
        assert!(
            split_strict >= split_posix,
            "strict {split_strict} vs posix {split_posix}"
        );
        assert!(
            ext4 / split_posix > 2.0,
            "SplitFS should be several times faster"
        );
    }

    #[test]
    fn multi_instance_aggregate_scales_without_lease_conflicts() {
        // The acceptance bar for multi-instance U-Split: two instances
        // over one kernel deliver more aggregate throughput than one, and
        // the per-instance resource leases never conflict.
        let one = multi_run(Scale::Quick, 1);
        let two = multi_run(Scale::Quick, 2);
        assert!(
            two.kops > one.kops,
            "2 instances ({:.1} kops/s) must beat 1 ({:.1} kops/s)",
            two.kops,
            one.kops
        );
        assert_eq!(two.stats.lease_conflicts, 0, "{:?}", two.stats);
        assert_eq!(two.stats.lease_acquires, 2);
        assert_eq!(two.stats.lease_releases, 2, "clean unmount returns both");
        assert_eq!(two.stats.checkpoint_stalls, 0);
    }

    #[test]
    fn daemon_eliminates_inline_creations_and_batches_relinks() {
        // The acceptance bar for the maintenance daemon: on the concurrent
        // append workload, zero staging files are created inline and at
        // least one batched relink covers multiple extents.
        let with_daemon = daemon_run(Scale::Quick, true);
        assert_eq!(
            with_daemon.stats.staging_inline_creates, 0,
            "daemon-backed run created staging files inline: {:?}",
            with_daemon.stats
        );
        assert!(with_daemon.stats.staging_bg_creates > 0);
        assert!(with_daemon.stats.batched_relinks >= 1);
        assert!(
            with_daemon.stats.relink_batch_ops > with_daemon.stats.batched_relinks,
            "no batch covered more than one staged run: {:?}",
            with_daemon.stats
        );
        assert!(
            with_daemon.stats.daemon_checkpoints >= 1,
            "the daemon checkpointed the log in the background: {:?}",
            with_daemon.stats
        );

        // The ablation shows what the daemon is saving us from.
        let inline = daemon_run(Scale::Quick, false);
        assert!(
            inline.stats.staging_inline_creates > 0,
            "without the daemon the pool must replenish inline: {:?}",
            inline.stats
        );
        assert_eq!(inline.stats.staging_bg_creates, 0);
    }

    #[test]
    fn vectored_appendv_beats_the_append_loop_on_fences() {
        // The acceptance bar for the vectored API: on SplitFS-strict a
        // gathered record costs strictly fewer fences and no more
        // simulated time per record than the equivalent append loop.
        let looped = vectored_run(Scale::Quick, FsKind::SplitStrict, 8, false);
        let gathered = vectored_run(Scale::Quick, FsKind::SplitStrict, 8, true);
        assert!(
            gathered.stats.fences < looped.stats.fences,
            "gathering must amortize fences: {} vs {}",
            gathered.stats.fences,
            looped.stats.fences
        );
        assert!(gathered.stats.appendv_calls > 0);
        assert!(
            gathered.ns_per_record <= looped.ns_per_record,
            "appendv must not be slower: {} vs {}",
            gathered.ns_per_record,
            looped.ns_per_record
        );
    }

    #[test]
    fn scaling_run_is_correct_and_stall_free() {
        // The acceptance bar the driver can rely on deterministically:
        // distinct-file concurrency never stalls the foreground on log
        // truncation (epoch swaps only) and the per-file contents stay
        // intact.  The throughput curve itself is printed by the harness
        // (wall-clock numbers are too machine-dependent to assert in CI).
        let r = scaling_run(Scale::Quick, 4);
        assert_eq!(r.ops, 4 * 1024);
        assert_eq!(
            r.stats.checkpoint_stalls, 0,
            "the epoch log must never stop the world: {:?}",
            r.stats
        );
        assert!(
            r.stats.oplog_epoch_swaps + r.stats.oplog_grows > 0,
            "the workload crossed the log's capacity at least once: {:?}",
            r.stats
        );
        assert!(r.kops_wall > 0.0);
        // One staging lane per writer: disjoint-file appenders take
        // staging space without contending (a handful of waits can come
        // from daemon pushes colliding with a take, never from writers
        // serializing on one pool mutex).
        assert!(
            r.stats.staging_lock_waits <= 8,
            "lane-sharded staging must not serialize disjoint writers: {:?}",
            r.stats
        );
    }

    #[test]
    fn openloop_amortizes_fences_vs_sync_baseline() {
        // The acceptance bar for the async rings: at ≥ 4 in-flight ops
        // per thread the drained batches pay strictly fewer fences per
        // op than the synchronous appendv path, and no completion ever
        // claims an epoch ahead of publication.
        let r = openloop_run(Scale::Quick);
        assert_eq!(r.report.levels.len(), 3);
        assert!(r.sync_fences_per_op > 0.0);
        for level in &r.report.levels {
            assert!(level.completions > 0, "{level:?}");
            assert_eq!(level.epoch_violations, 0, "{level:?}");
            assert_eq!(level.errors, 0, "{level:?}");
            assert!(
                level.p99_ns >= level.p50_ns && level.p50_ns > 0,
                "{level:?}"
            );
        }
        for level in r.report.levels.iter().filter(|l| l.inflight >= 4) {
            assert!(
                level.fences_per_op() < r.sync_fences_per_op,
                "inflight={} fences/op {:.3} must beat sync {:.3}",
                level.inflight,
                level.fences_per_op(),
                r.sync_fences_per_op
            );
        }
    }

    #[test]
    fn recovery_scales_with_entries() {
        let rows = recovery(Scale::Quick);
        assert_eq!(rows.len(), 3);
        let replayed: Vec<u64> = rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(replayed[0] > 0);
        assert!(replayed[2] > replayed[0]);
    }
}
