//! Property tests: the log-linear histogram against a sorted-vector
//! oracle, and shard-merge associativity on arbitrary populations.

use obs::hist::{bucket_index, bucket_lower_bound, bucket_width, Histogram};
use proptest::prelude::*;

/// The oracle: exact rank-`ceil(q*n)` selection from the sorted samples.
fn oracle_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every value maps into a bucket whose [lower, lower+width) range
    /// contains it, and the bucket index is monotone in the value.
    #[test]
    fn bucket_ranges_contain_their_values(v in any::<u64>()) {
        let i = bucket_index(v);
        let lo = bucket_lower_bound(i);
        let w = bucket_width(i);
        prop_assert!(lo <= v);
        prop_assert!(v - lo < w);
        if v < u64::MAX {
            prop_assert!(bucket_index(v + 1) >= i);
        }
    }

    /// The histogram's percentile lands in the same bucket as the exact
    /// sorted-vector oracle — quantization never moves a percentile
    /// across a bucket boundary.
    #[test]
    fn percentiles_match_sorted_vector_oracle(
        samples in prop::collection::vec(0u64..2_000_000, 1..400),
        q in prop_oneof![
            Just(0.5),
            Just(0.9),
            Just(0.99),
            Just(0.999),
            (0u64..=1000).prop_map(|v| v as f64 / 1000.0),
        ],
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut samples = samples;
        samples.sort_unstable();
        let expected = oracle_percentile(&samples, q);
        let got = h.percentile(q);
        prop_assert_eq!(
            bucket_index(got),
            bucket_index(expected),
            "q={} got={} expected={}", q, got, expected
        );
    }

    /// Merging per-thread shards is associative and order-independent:
    /// any bracketing of the same populations yields identical counts
    /// and percentiles.
    #[test]
    fn shard_merge_is_associative(
        a in prop::collection::vec(any::<u64>(), 0..200),
        b in prop::collection::vec(any::<u64>(), 0..200),
        c in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let build = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        // ((a + b) + c)
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // (c + (b + a))
        let mut ba = hb.clone();
        ba.merge(&ha);
        let mut right = hc.clone();
        right.merge(&ba);
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.sum(), right.sum());
        prop_assert_eq!(left.max(), right.max());
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(left.percentile(q), right.percentile(q));
        }
        // And merging matches recording everything into one histogram.
        let mut all: Vec<u64> = Vec::new();
        all.extend(&a); all.extend(&b); all.extend(&c);
        let direct = build(&all);
        prop_assert_eq!(direct.count(), left.count());
        for q in [0.5, 0.99] {
            prop_assert_eq!(direct.percentile(q), left.percentile(q));
        }
    }
}
