//! The flight recorder: a fixed-size per-thread ring of recent span
//! events.
//!
//! Every [`crate::event`] call appends one entry — (sequence, op kind,
//! event, thread time) — to the calling thread's ring with two relaxed
//! atomic stores; the ring never allocates after creation and is
//! readable from any thread.  On panic (after
//! [`install_panic_hook`]) the rings are dumped as structured text, and
//! crash tests read them after a simulated crash to assert recovery saw
//! the expected event tail.
//!
//! Rings are registered in a global registry and live for the process
//! lifetime (a crashed thread's ring must outlive the thread), so
//! entries from earlier tests in the same process may be present:
//! consumers assert on the *presence* of expected recent entries, not
//! on exact ring contents.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pmem::SimClock;

use crate::span::{OpKind, SpanEvent};

/// Entries per thread ring.  Old entries are overwritten; 256 recent
/// events per thread is plenty to reconstruct the moments before a
/// crash.
pub const RING_SLOTS: usize = 256;

/// One decoded flight-recorder entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEntry {
    /// Thread-local sequence number (monotone per ring).
    pub seq: u64,
    /// The op kind whose span was active when the event fired
    /// ([`OpKind::Other`] when none was).
    pub kind: OpKind,
    /// The annotated event.
    pub event: SpanEvent,
    /// The thread's simulated time ([`SimClock::thread_time_ns`]) at
    /// the event, whole nanoseconds.
    pub time_ns: u64,
}

/// One slot: `a` packs `seq << 16 | kind << 8 | event` and `b` holds
/// the thread time.  Both relaxed; a torn read across the pair can at
/// worst mismatch a time with a neighboring event, which the debugging
/// use case tolerates.
struct Slot {
    a: AtomicU64,
    b: AtomicU64,
}

struct Ring {
    slots: Box<[Slot]>,
    next: AtomicU64,
}

impl Ring {
    fn new() -> Arc<Ring> {
        Arc::new(Ring {
            slots: (0..RING_SLOTS)
                .map(|_| Slot {
                    a: AtomicU64::new(0),
                    b: AtomicU64::new(0),
                })
                .collect(),
            next: AtomicU64::new(0),
        })
    }

    fn note(&self, kind: OpKind, event: SpanEvent) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = &self.slots[(seq as usize - 1) % RING_SLOTS];
        let a = (seq << 16) | ((kind as u64) << 8) | event as u64;
        slot.a.store(a, Ordering::Relaxed);
        slot.b
            .store(SimClock::thread_time_ns().round() as u64, Ordering::Relaxed);
    }

    fn entries(&self) -> Vec<FlightEntry> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let a = slot.a.load(Ordering::Relaxed);
            if a == 0 {
                continue;
            }
            let Some(event) = SpanEvent::from_index((a & 0xFF) as u8) else {
                continue;
            };
            out.push(FlightEntry {
                seq: a >> 16,
                kind: OpKind::from_index(((a >> 8) & 0xFF) as u8),
                event,
                time_ns: slot.b.load(Ordering::Relaxed),
            });
        }
        out.sort_by_key(|e| e.seq);
        out
    }
}

/// Global registry of every thread's ring.  Rings are appended once per
/// thread and never removed, so a panicking or exited thread's recent
/// events stay readable.
static REGISTRY: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

thread_local! {
    static THREAD_RING: RefCell<Option<Arc<Ring>>> = const { RefCell::new(None) };
}

/// Appends one event to the calling thread's ring (creating and
/// registering the ring on first use).
pub(crate) fn note(kind: OpKind, event: SpanEvent) {
    THREAD_RING.with(|r| {
        let mut r = r.borrow_mut();
        let ring = r.get_or_insert_with(|| {
            let ring = Ring::new();
            REGISTRY.lock().push(Arc::clone(&ring));
            ring
        });
        ring.note(kind, event);
    });
}

/// Returns every ring's entries, per ring, each sorted by sequence
/// number (oldest surviving entry first).  Readable from any thread at
/// any time — crash tests call it after a simulated crash to check the
/// event tail the run left behind.
pub fn recent_events() -> Vec<Vec<FlightEntry>> {
    let rings = REGISTRY.lock();
    rings
        .iter()
        .map(|r| r.entries())
        .filter(|e| !e.is_empty())
        .collect()
}

/// Renders every ring as structured text (the panic-dump format):
/// one `thread <i>:` header per ring, one
/// `  #<seq> <op>/<event> @<time>ns` line per entry.
pub fn dump() -> String {
    let mut out = String::new();
    for (i, entries) in recent_events().into_iter().enumerate() {
        out.push_str(&format!("flight thread {i}: {} events\n", entries.len()));
        for e in entries {
            out.push_str(&format!(
                "  #{} {}/{} @{}ns\n",
                e.seq,
                e.kind.label(),
                e.event.label(),
                e.time_ns
            ));
        }
    }
    if out.is_empty() {
        out.push_str("flight recorder: no events\n");
    }
    out
}

static HOOK_INSTALLED: AtomicU64 = AtomicU64::new(0);

/// Installs a panic hook that prints the flight-recorder dump to
/// stderr before the previous hook runs.  Idempotent; the harness
/// calls it at startup so an assertion failure mid-experiment shows
/// the event tail that led up to it.
pub fn install_panic_hook() {
    if HOOK_INSTALLED.swap(1, Ordering::SeqCst) != 0 {
        return;
    }
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        eprintln!("=== flight recorder (most recent events per thread) ===");
        eprint!("{}", dump());
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::event;

    #[test]
    fn events_are_readable_from_another_thread() {
        std::thread::spawn(|| {
            event(SpanEvent::EpochSwap);
            event(SpanEvent::GroupCommit);
        })
        .join()
        .unwrap();
        let all: Vec<FlightEntry> = recent_events().into_iter().flatten().collect();
        assert!(all.iter().any(|e| e.event == SpanEvent::EpochSwap));
        assert!(all.iter().any(|e| e.event == SpanEvent::GroupCommit));
        assert!(dump().contains("epoch_swap"));
    }

    #[test]
    fn ring_wraps_and_keeps_the_most_recent_entries() {
        std::thread::spawn(|| {
            for _ in 0..RING_SLOTS + 50 {
                event(SpanEvent::LaneSteal);
            }
            let mine: Vec<Vec<FlightEntry>> = recent_events();
            // This thread's ring holds exactly RING_SLOTS entries with
            // consecutive trailing sequence numbers.
            let ring = mine
                .iter()
                .find(|r| {
                    r.len() == RING_SLOTS && r.iter().all(|e| e.event == SpanEvent::LaneSteal)
                })
                .expect("own ring present");
            let last = ring.last().unwrap().seq;
            assert!(last >= (RING_SLOTS + 50) as u64);
            assert_eq!(ring.first().unwrap().seq, last - RING_SLOTS as u64 + 1);
        })
        .join()
        .unwrap();
    }
}
