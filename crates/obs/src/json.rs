//! A minimal ordered JSON writer.
//!
//! The harness emits machine-readable result lines (`SCALING_JSON`,
//! `METRICS_JSON`) that CI greps and gates on; this module is the one
//! serializer behind both, replacing per-call-site format strings.
//! Fields appear in insertion order, strings are escaped, and
//! non-finite floats serialize as `null` (JSON has no NaN).

/// Builder for one JSON object; consumes itself for method chaining.
///
/// ```
/// let line = obs::JsonObject::new()
///     .str("experiment", "latency")
///     .u64("threads", 4)
///     .f64("p99_us", 12.5)
///     .finish();
/// assert_eq!(line, r#"{"experiment":"latency","threads":4,"p99_us":12.5}"#);
/// ```
#[derive(Debug, Clone)]
pub struct JsonObject {
    buf: String,
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Escapes `s` as the contents of a JSON string literal.
fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => buf.push_str(&format!("\\u{:04x}", c as u32)),
            c => buf.push(c),
        }
    }
}

/// Formats a float the way JSON expects: integral values without an
/// exponent, non-finite values as `null`.
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{v}")
    }
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        self.buf.push_str(&fmt_f64(value));
        self
    }

    /// Adds a pre-rendered JSON value (nested object or array) verbatim.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Renders pre-rendered JSON values as a JSON array.
pub fn array<I>(items: I) -> String
where
    I: IntoIterator,
    I::Item: AsRef<str>,
{
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(item.as_ref());
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_keep_insertion_order_and_types() {
        let s = JsonObject::new()
            .str("name", "SplitFS-strict")
            .u64("ops", 4096)
            .f64("kops", 12.25)
            .f64("whole", 3.0)
            .raw("tail", "[1,2,3]")
            .finish();
        assert_eq!(
            s,
            r#"{"name":"SplitFS-strict","ops":4096,"kops":12.25,"whole":3.0,"tail":[1,2,3]}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let s = JsonObject::new().str("k", "a\"b\\c\nd").finish();
        assert_eq!(s, r#"{"k":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn non_finite_floats_are_null() {
        let s = JsonObject::new().f64("x", f64::NAN).finish();
        assert_eq!(s, r#"{"x":null}"#);
    }

    #[test]
    fn array_joins_raw_items() {
        assert_eq!(array(["1", "2"]), "[1,2]");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }
}
