//! The maintenance daemon's health probe.
//!
//! Adaptive staging provisioning (lane watermarks, surplus release,
//! cold reclaim) used to be observable only through a debugger; the
//! daemon's maintenance tick now publishes its view of the world into
//! a [`HealthProbe`] that the metrics snapshot exports.  The probe is
//! a last-writer-wins gauge set: the tick overwrites it wholesale, so
//! readers always see one coherent recent tick.

use parking_lot::RwLock;

/// One staging lane's provisioning state at the last maintenance tick.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LaneHealth {
    /// Staging files currently in the lane's free list.
    pub free_files: usize,
    /// The adaptive controller's current low-watermark target for the
    /// lane (refill triggers below this).
    pub watermark: usize,
}

/// A coherent copy of the daemon's health gauges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthSnapshot {
    /// Maintenance ticks completed since the file system started.
    pub ticks: u64,
    /// Per-lane free-list depth and watermark target.
    pub lanes: Vec<LaneHealth>,
    /// Tasks queued to the daemon but not yet executed, summed over
    /// worker queues (queue lag; 0 when idle or unobservable).
    pub queue_depth: usize,
    /// Fraction of the active operation-log epoch in use, `0.0..=1.0`.
    pub oplog_utilization: f64,
}

impl HealthSnapshot {
    /// Total staging files free across every lane.
    pub fn total_free_files(&self) -> usize {
        self.lanes.iter().map(|l| l.free_files).sum()
    }
}

/// The shared gauge set: the daemon tick writes, snapshots read.
///
/// A `parking_lot` RwLock, written once per maintenance tick (~1 ms of
/// simulated time) — nowhere near any foreground path.
#[derive(Debug, Default)]
pub struct HealthProbe {
    inner: RwLock<HealthSnapshot>,
}

impl HealthProbe {
    /// Creates a probe with all gauges zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a new snapshot (last writer wins), bumping the tick
    /// count from the stored snapshot.
    pub fn publish(&self, mut snapshot: HealthSnapshot) {
        let mut inner = self.inner.write();
        snapshot.ticks = inner.ticks + 1;
        *inner = snapshot;
    }

    /// Returns a copy of the most recent snapshot.
    pub fn read(&self) -> HealthSnapshot {
        self.inner.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_overwrites_and_counts_ticks() {
        let probe = HealthProbe::new();
        assert_eq!(probe.read(), HealthSnapshot::default());
        probe.publish(HealthSnapshot {
            lanes: vec![LaneHealth {
                free_files: 3,
                watermark: 2,
            }],
            queue_depth: 1,
            oplog_utilization: 0.25,
            ..HealthSnapshot::default()
        });
        probe.publish(HealthSnapshot {
            lanes: vec![
                LaneHealth {
                    free_files: 1,
                    watermark: 4,
                },
                LaneHealth {
                    free_files: 2,
                    watermark: 4,
                },
            ],
            queue_depth: 0,
            oplog_utilization: 0.5,
            ..HealthSnapshot::default()
        });
        let snap = probe.read();
        assert_eq!(snap.ticks, 2);
        assert_eq!(snap.lanes.len(), 2);
        assert_eq!(snap.total_free_files(), 3);
        assert_eq!(snap.oplog_utilization, 0.5);
    }
}
