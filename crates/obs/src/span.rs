//! RAII per-operation tracing spans.
//!
//! A [`Recorder`] hands out one [`SpanGuard`] per file-system operation
//! (the `vfs` tracing wrapper opens one around every trait method).
//! While the guard lives, the thread's simulated-time charges — tracked
//! per [`TimeCategory`] by a thread-local tee inside
//! [`pmem::Stats::add_time`] — accrue to the span, and instrumentation
//! points inside the file systems annotate it with [`SpanEvent`]s via
//! [`event`].  When the guard drops, the span's total latency
//! ([`pmem::SimClock::thread_time_ns`] delta: own charges plus
//! simulated lock waits) is recorded into a log-linear histogram shard
//! owned by the recording thread, together with the per-category
//! breakdown, so software overhead becomes a per-operation
//! distribution.
//!
//! **Nesting.**  Span state is thread-local and only the *outermost*
//! guard on a thread records; inner guards are passive.  An `appendv`
//! that falls into an inline staging create therefore charges the
//! create's time (and its [`SpanEvent::InlineCreate`] annotation) to
//! the `appendv` span — the operation the application actually paid
//! for.
//!
//! **Lock freedom.**  The hot path takes no lock: each thread owns one
//! `OpShard` per (recorder, op kind), found through a thread-local
//! cache and updated with relaxed atomic adds (the atomics exist only
//! so a reader can aggregate concurrently).  The recorder's registry
//! mutex is touched once per (thread, op kind) at shard creation,
//! never per operation — there is no new mutex on the append path.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pmem::{SimClock, Stats, TimeCategory};

use crate::flight;
use crate::hist::{Histogram, BUCKET_COUNT};

/// The kind of file-system operation a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum OpKind {
    /// `open` of an existing file.
    Open,
    /// `open` with the create flag (file birth).
    Create,
    /// `close`.
    Close,
    /// `read` / `read_at` (copying reads).
    Read,
    /// `read_view` (zero-copy reads).
    ReadView,
    /// `write` / `write_at`.
    Write,
    /// `writev_at` (vectored writes).
    WritevAt,
    /// Plain `append`.
    Append,
    /// `appendv` (vectored appends).
    Appendv,
    /// `fsync`.
    Fsync,
    /// `fsync_many` (batched durability).
    FsyncMany,
    /// `fdatasync`.
    Fdatasync,
    /// Background maintenance-daemon work (ticks, relinks, checkpoints).
    Maintenance,
    /// Draining async submission rings into a coalesced backend batch.
    RingDrain,
    /// Everything else (metadata ops: stat, rename, mkdir, readdir, ...).
    Other,
}

impl OpKind {
    /// Number of operation kinds.
    pub const COUNT: usize = 15;

    /// Every kind, in display order.
    pub const ALL: [OpKind; OpKind::COUNT] = [
        OpKind::Open,
        OpKind::Create,
        OpKind::Close,
        OpKind::Read,
        OpKind::ReadView,
        OpKind::Write,
        OpKind::WritevAt,
        OpKind::Append,
        OpKind::Appendv,
        OpKind::Fsync,
        OpKind::FsyncMany,
        OpKind::Fdatasync,
        OpKind::Maintenance,
        OpKind::RingDrain,
        OpKind::Other,
    ];

    #[inline]
    pub(crate) fn index(self) -> usize {
        self as usize
    }

    /// Stable lower-case label used in tables and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Open => "open",
            OpKind::Create => "create",
            OpKind::Close => "close",
            OpKind::Read => "read",
            OpKind::ReadView => "read_view",
            OpKind::Write => "write",
            OpKind::WritevAt => "writev_at",
            OpKind::Append => "append",
            OpKind::Appendv => "appendv",
            OpKind::Fsync => "fsync",
            OpKind::FsyncMany => "fsync_many",
            OpKind::Fdatasync => "fdatasync",
            OpKind::Maintenance => "maintenance",
            OpKind::RingDrain => "ring_drain",
            OpKind::Other => "other",
        }
    }

    pub(crate) fn from_index(i: u8) -> OpKind {
        OpKind::ALL
            .get(i as usize)
            .copied()
            .unwrap_or(OpKind::Other)
    }
}

/// A notable event inside an operation, annotated by the file systems'
/// instrumentation points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanEvent {
    /// An appender's staging lane ran dry and it stole from another lane.
    LaneSteal,
    /// Staging exhausted; the foreground created a staging file inline.
    InlineCreate,
    /// The operation log swapped active epochs.
    EpochSwap,
    /// Several operation-log entries committed under one fence.
    GroupCommit,
    /// Multiple staged files relinked in one batched kernel transaction.
    RelinkBatch,
    /// A kernel journal region was contended and the thread waited.
    JournalRegionWait,
    /// A cold staged extent was relinked to reclaim staging space.
    ColdRelink,
    /// The foreground stalled waiting for a log checkpoint.
    CheckpointStall,
    /// A kernel namespace shard was contended and the thread waited.
    NsShardWait,
    /// A full-path cache probe missed and resolve fell back to the
    /// per-component directory walk.
    PathCacheMiss,
    /// The crash-point fuzzer captured a crash image at a fence boundary.
    CrashCapture,
    /// Recovery from a captured crash image broke a declared-durability
    /// promise (or fsck / foreign-entry containment).
    OracleViolation,
    /// A cold segment was demoted from PM to the capacity tier.
    TierDemote,
    /// A hot segment was promoted from the capacity tier back to PM.
    TierPromote,
}

impl SpanEvent {
    /// Number of event kinds.
    pub const COUNT: usize = 14;

    /// Every event, in display order.
    pub const ALL: [SpanEvent; SpanEvent::COUNT] = [
        SpanEvent::LaneSteal,
        SpanEvent::InlineCreate,
        SpanEvent::EpochSwap,
        SpanEvent::GroupCommit,
        SpanEvent::RelinkBatch,
        SpanEvent::JournalRegionWait,
        SpanEvent::ColdRelink,
        SpanEvent::CheckpointStall,
        SpanEvent::NsShardWait,
        SpanEvent::PathCacheMiss,
        SpanEvent::CrashCapture,
        SpanEvent::OracleViolation,
        SpanEvent::TierDemote,
        SpanEvent::TierPromote,
    ];

    #[inline]
    pub(crate) fn index(self) -> usize {
        self as usize
    }

    /// Stable snake-case label used in dumps and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            SpanEvent::LaneSteal => "lane_steal",
            SpanEvent::InlineCreate => "inline_create",
            SpanEvent::EpochSwap => "epoch_swap",
            SpanEvent::GroupCommit => "group_commit",
            SpanEvent::RelinkBatch => "relink_batch",
            SpanEvent::JournalRegionWait => "journal_region_wait",
            SpanEvent::ColdRelink => "cold_relink",
            SpanEvent::CheckpointStall => "checkpoint_stall",
            SpanEvent::NsShardWait => "ns_shard_wait",
            SpanEvent::PathCacheMiss => "path_cache_miss",
            SpanEvent::CrashCapture => "crash_capture",
            SpanEvent::OracleViolation => "oracle_violation",
            SpanEvent::TierDemote => "tier_demote",
            SpanEvent::TierPromote => "tier_promote",
        }
    }

    pub(crate) fn from_index(i: u8) -> Option<SpanEvent> {
        SpanEvent::ALL.get(i as usize).copied()
    }
}

const CATS: usize = TimeCategory::ALL.len();

/// One thread's private accumulation state for one (recorder, op kind).
///
/// The owner thread updates it with relaxed atomic adds (no RMW
/// contention: no other thread ever writes); the recorder reads it when
/// aggregating.
struct OpShard {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Exact total span time, picoseconds.
    sum_ps: AtomicU64,
    /// Exact maximum span time, nanoseconds.
    max_ns: AtomicU64,
    /// Per-category simulated time inside spans, picoseconds.
    cat_ps: [AtomicU64; CATS],
    /// Span time not covered by any category (simulated lock waits),
    /// picoseconds.
    wait_ps: AtomicU64,
    events: [AtomicU64; SpanEvent::COUNT],
}

impl OpShard {
    fn new() -> Arc<OpShard> {
        Arc::new(OpShard {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ps: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            cat_ps: std::array::from_fn(|_| AtomicU64::new(0)),
            wait_ps: AtomicU64::new(0),
            events: std::array::from_fn(|_| AtomicU64::new(0)),
        })
    }
}

/// Aggregated view of one op kind across every thread's shard.
#[derive(Debug, Clone)]
pub struct OpAggregate {
    /// The operation kind.
    pub kind: OpKind,
    /// Merged latency histogram (values in simulated nanoseconds).
    pub hist: Histogram,
    /// Simulated nanoseconds spent per [`TimeCategory`] inside these
    /// spans, in [`TimeCategory::ALL`] order.
    pub cat_ns: [f64; CATS],
    /// Simulated nanoseconds of lock waits inside these spans (span
    /// time not attributed to any category).
    pub wait_ns: f64,
    /// Event annotation counts, in [`SpanEvent::ALL`] order.
    pub events: [u64; SpanEvent::COUNT],
}

struct ThreadSpan {
    depth: u32,
    kind: OpKind,
    start_thread_ns: f64,
    start_cat_ns: [f64; CATS],
    events: [u64; SpanEvent::COUNT],
}

struct ThreadState {
    span: ThreadSpan,
    /// Cache of this thread's shards, keyed by (recorder id, kind).
    /// Linear scan: a thread touches at most a handful of recorders.
    cache: Vec<(u64, u8, Arc<OpShard>)>,
}

thread_local! {
    static STATE: RefCell<ThreadState> = const {
        RefCell::new(ThreadState {
            span: ThreadSpan {
                depth: 0,
                kind: OpKind::Other,
                start_thread_ns: 0.0,
                start_cat_ns: [0.0; CATS],
                events: [0; SpanEvent::COUNT],
            },
            cache: Vec::new(),
        })
    };
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

/// A per-run span recorder: the sink for every span opened against it
/// and the point percentiles are extracted from.
///
/// Cheap to share (`Arc`); create one per measured run so aggregates
/// cover exactly the measurement window.
pub struct Recorder {
    id: u64,
    /// Registry of every thread's shard, per op kind.  Locked only at
    /// shard creation (once per thread and kind) and at aggregation.
    shards: [Mutex<Vec<Arc<OpShard>>>; OpKind::COUNT],
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("id", &self.id).finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
        }
    }

    /// Opens a span of `kind`.  If the thread already has an open span
    /// (any recorder), the returned guard is passive: its time and
    /// events accrue to the outermost span.  Hold the guard for exactly
    /// the duration of the operation.
    pub fn span(self: &Arc<Self>, kind: OpKind) -> SpanGuard {
        let outermost = STATE.with(|s| {
            let mut s = s.borrow_mut();
            let span = &mut s.span;
            span.depth += 1;
            if span.depth == 1 {
                span.kind = kind;
                span.start_thread_ns = SimClock::thread_time_ns();
                span.start_cat_ns = Stats::thread_category_time_ns();
                span.events = [0; SpanEvent::COUNT];
                true
            } else {
                false
            }
        });
        SpanGuard {
            recorder: if outermost {
                Some(Arc::clone(self))
            } else {
                None
            },
            kind,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Returns this thread's shard for `kind`, creating and registering
    /// it on first use.
    fn shard(&self, kind: OpKind, state: &mut ThreadState) -> Arc<OpShard> {
        let key = (self.id, kind.index() as u8);
        if let Some((_, _, shard)) = state.cache.iter().find(|(id, k, _)| (*id, *k) == key) {
            return Arc::clone(shard);
        }
        let shard = OpShard::new();
        self.shards[kind.index()].lock().push(Arc::clone(&shard));
        state.cache.push((key.0, key.1, Arc::clone(&shard)));
        shard
    }

    /// Merges every thread's shards into one [`OpAggregate`] per op
    /// kind that recorded at least one span.  Call after the workload
    /// quiesces; concurrent recording is safe but the aggregate is then
    /// only approximate.
    pub fn aggregate(&self) -> Vec<OpAggregate> {
        let mut out = Vec::new();
        for kind in OpKind::ALL {
            let shards = self.shards[kind.index()].lock();
            if shards.is_empty() {
                continue;
            }
            let mut hist = Histogram::new();
            let mut cat_ps = [0u64; CATS];
            let mut wait_ps = 0u64;
            let mut events = [0u64; SpanEvent::COUNT];
            for shard in shards.iter() {
                let mut sum_ps = 0u64;
                for (i, b) in shard.buckets.iter().enumerate() {
                    let c = b.load(Ordering::Relaxed);
                    if c > 0 {
                        hist.add_bucket(i, c);
                    }
                }
                sum_ps += shard.sum_ps.load(Ordering::Relaxed);
                hist.fold_summary(
                    (sum_ps as f64 / 1000.0).round() as u64,
                    shard.max_ns.load(Ordering::Relaxed),
                );
                for (dst, src) in cat_ps.iter_mut().zip(shard.cat_ps.iter()) {
                    *dst += src.load(Ordering::Relaxed);
                }
                wait_ps += shard.wait_ps.load(Ordering::Relaxed);
                for (dst, src) in events.iter_mut().zip(shard.events.iter()) {
                    *dst += src.load(Ordering::Relaxed);
                }
            }
            if hist.count() == 0 {
                continue;
            }
            out.push(OpAggregate {
                kind,
                hist,
                cat_ns: std::array::from_fn(|i| cat_ps[i] as f64 / 1000.0),
                wait_ns: wait_ps as f64 / 1000.0,
                events,
            });
        }
        out
    }

    /// Total spans recorded across every op kind.
    pub fn total_spans(&self) -> u64 {
        self.aggregate().iter().map(|a| a.hist.count()).sum()
    }
}

/// RAII guard for one operation span; created by [`Recorder::span`].
///
/// Dropping the outermost guard on a thread records the span; nested
/// guards only maintain the depth count.  The guard is intentionally
/// `!Send`: a span measures one thread's critical path.
#[must_use = "a span measures the time until the guard drops"]
pub struct SpanGuard {
    /// `Some` for the outermost guard (records on drop), `None` for
    /// passive nested guards.
    recorder: Option<Arc<Recorder>>,
    kind: OpKind,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("kind", &self.kind)
            .field("outermost", &self.recorder.is_some())
            .finish()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(recorder) = self.recorder.take() else {
            STATE.with(|s| {
                let span = &mut s.borrow_mut().span;
                span.depth = span.depth.saturating_sub(1);
            });
            return;
        };
        let end_thread_ns = SimClock::thread_time_ns();
        let end_cat_ns = Stats::thread_category_time_ns();
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            s.span.depth = 0;
            let total_ns = (end_thread_ns - s.span.start_thread_ns).max(0.0);
            let mut cat_ps = [0u64; CATS];
            let mut cat_total_ns = 0.0f64;
            for i in 0..CATS {
                let d = (end_cat_ns[i] - s.span.start_cat_ns[i]).max(0.0);
                cat_total_ns += d;
                cat_ps[i] = (d * 1000.0).round() as u64;
            }
            // Span time no category claims is simulated lock-wait time
            // (clamped: rounding must not push it negative).
            let wait_ns = (total_ns - cat_total_ns).max(0.0);
            let events = s.span.events;
            let kind = self.kind;
            let shard = recorder.shard(kind, &mut s);
            let ns = total_ns.round() as u64;
            shard.buckets[crate::hist::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
            shard.count.fetch_add(1, Ordering::Relaxed);
            shard
                .sum_ps
                .fetch_add((total_ns * 1000.0).round() as u64, Ordering::Relaxed);
            shard.max_ns.fetch_max(ns, Ordering::Relaxed);
            for (dst, &src) in shard.cat_ps.iter().zip(cat_ps.iter()) {
                if src > 0 {
                    dst.fetch_add(src, Ordering::Relaxed);
                }
            }
            if wait_ns > 0.0 {
                shard
                    .wait_ps
                    .fetch_add((wait_ns * 1000.0).round() as u64, Ordering::Relaxed);
            }
            for (dst, &src) in shard.events.iter().zip(events.iter()) {
                if src > 0 {
                    dst.fetch_add(src, Ordering::Relaxed);
                }
            }
        });
    }
}

/// Annotates the current span (if any) with `event` and appends it to
/// the thread's flight-recorder ring unconditionally.
///
/// Called from instrumentation points inside the file systems; costs a
/// thread-local increment and two relaxed stores — safe on the hottest
/// paths.
pub fn event(event: SpanEvent) {
    let kind = STATE.with(|s| {
        let span = &mut s.borrow_mut().span;
        if span.depth > 0 {
            span.events[event.index()] += 1;
            span.kind
        } else {
            OpKind::Other
        }
    });
    flight::note(kind, event);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemBuilder;

    #[test]
    fn outermost_span_records_and_nested_is_passive() {
        let rec = Arc::new(Recorder::new());
        {
            let _outer = rec.span(OpKind::Appendv);
            {
                let _inner = rec.span(OpKind::Create);
                event(SpanEvent::InlineCreate);
            }
            event(SpanEvent::LaneSteal);
        }
        let aggs = rec.aggregate();
        assert_eq!(aggs.len(), 1, "only the outermost span records");
        let a = &aggs[0];
        assert_eq!(a.kind, OpKind::Appendv);
        assert_eq!(a.hist.count(), 1);
        assert_eq!(a.events[SpanEvent::InlineCreate.index()], 1);
        assert_eq!(a.events[SpanEvent::LaneSteal.index()], 1);
    }

    #[test]
    fn span_captures_category_time_and_wait() {
        let device = PmemBuilder::new(1024 * 1024).build();
        let rec = Arc::new(Recorder::new());
        {
            let _g = rec.span(OpKind::Write);
            device.charge(TimeCategory::UserData, 500.0);
            device.charge(TimeCategory::Software, 250.0);
            SimClock::charge_thread_wait(125.0);
        }
        let aggs = rec.aggregate();
        let a = aggs.iter().find(|a| a.kind == OpKind::Write).unwrap();
        let user = TimeCategory::UserData.index_in_all();
        let sw = TimeCategory::Software.index_in_all();
        assert!((a.cat_ns[user] - 500.0).abs() < 1e-6, "{:?}", a.cat_ns);
        assert!((a.cat_ns[sw] - 250.0).abs() < 1e-6);
        assert!((a.wait_ns - 125.0).abs() < 1e-6);
        assert_eq!(a.hist.count(), 1);
        assert_eq!(a.hist.max(), 875);
    }

    #[test]
    fn shards_merge_across_threads() {
        let rec = Arc::new(Recorder::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    for _ in 0..100 {
                        let _g = rec.span(OpKind::Fsync);
                        SimClock::charge_thread_wait(10.0);
                    }
                });
            }
        });
        let aggs = rec.aggregate();
        let a = aggs.iter().find(|a| a.kind == OpKind::Fsync).unwrap();
        assert_eq!(a.hist.count(), 400);
        assert_eq!(rec.total_spans(), 400);
    }

    #[test]
    fn events_outside_spans_do_not_panic() {
        event(SpanEvent::EpochSwap);
    }
}
