//! Log-linear (HDR-style) latency histograms.
//!
//! Values are non-negative integers (the recorder feeds simulated
//! nanoseconds).  The value axis is split into octaves (powers of two),
//! each octave into [`SUB_BUCKETS`] linear sub-buckets, so the relative
//! quantization error is bounded by `1/SUB_BUCKETS` (≈6%) at every
//! magnitude while the whole `u64` range fits in [`BUCKET_COUNT`]
//! buckets.  This is the classic HDR-histogram layout with
//! `significant figures ≈ 1.2`; it makes recording a pair of shifts and
//! one increment, and merging a bucket-wise add — both properties the
//! per-thread shard design in [`crate::span`] relies on.
//!
//! A [`Histogram`] is the *merged*, single-owner form: plain `u64`
//! buckets, built by draining the per-thread atomic shards.  Percentile
//! extraction walks the cumulative counts to the requested rank and
//! returns the bucket's representative value (its midpoint), so
//! `p99 >= p50` holds by construction for any recorded population.

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 16;

/// Total buckets needed to cover the full `u64` value range.
///
/// Octave 0 covers values `0..16` with one bucket per value; each later
/// octave `o` covers `[16 << (o-1), 16 << o)` with [`SUB_BUCKETS`]
/// buckets of width `1 << (o-1)`.  61 octaves reach `u64::MAX`.
pub const BUCKET_COUNT: usize = 61 * SUB_BUCKETS;

/// Returns the bucket index for a value.  Monotone: `a <= b` implies
/// `bucket_index(a) <= bucket_index(b)`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        let top = 63 - value.leading_zeros() as usize;
        (top - 3) * SUB_BUCKETS + ((value >> (top - 4)) & 0xF) as usize
    }
}

/// Returns the smallest value mapped to bucket `index`.
#[inline]
pub fn bucket_lower_bound(index: usize) -> u64 {
    let octave = index / SUB_BUCKETS;
    let sub = (index % SUB_BUCKETS) as u64;
    if octave == 0 {
        sub
    } else {
        (SUB_BUCKETS as u64 + sub) << (octave - 1)
    }
}

/// Returns the number of distinct values mapped to bucket `index`.
#[inline]
pub fn bucket_width(index: usize) -> u64 {
    let octave = index / SUB_BUCKETS;
    if octave <= 1 {
        1
    } else {
        1u64 << (octave - 1)
    }
}

/// The representative value reported for bucket `index` (its midpoint).
#[inline]
pub fn bucket_value(index: usize) -> u64 {
    bucket_lower_bound(index) + bucket_width(index) / 2
}

/// A merged log-linear histogram (see the module docs for the layout).
#[derive(Clone)]
pub struct Histogram {
    buckets: Box<[u64; BUCKET_COUNT]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .finish()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0; BUCKET_COUNT]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Adds `count` pre-bucketed samples directly to bucket `index`
    /// (shard draining; `sum`/`max` are folded separately).
    pub fn add_bucket(&mut self, index: usize, count: u64) {
        self.buckets[index] += count;
        self.count += count;
    }

    /// Folds exact `sum` and `max` from a drained shard into the
    /// histogram's summary fields (pairs with [`Histogram::add_bucket`]).
    pub fn fold_summary(&mut self, sum: u64, max: u64) {
        self.sum = self.sum.saturating_add(sum);
        self.max = self.max.max(max);
    }

    /// Merges another histogram into this one (bucket-wise add).
    /// Associative and commutative, so per-thread shards can be merged
    /// in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded samples (not quantized).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded sample (not quantized).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (exact, from the tracked sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the representative value
    /// of the bucket holding the sample of rank `ceil(q * count)`
    /// (rank 1 = smallest).  Returns 0 for an empty histogram.  The
    /// exact maximum is reported for the top-most populated bucket, so
    /// `percentile(1.0) == max()`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        let mut last_nonempty = 0usize;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            last_nonempty = i;
            if seen >= rank {
                if seen == self.count {
                    // Highest populated bucket: the exact max is known.
                    return self.max;
                }
                return bucket_value(i);
            }
        }
        bucket_value(last_nonempty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_sixteen() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
            assert_eq!(bucket_width(v as usize), 1);
        }
    }

    #[test]
    fn bucket_boundaries_tile_the_axis() {
        // Every bucket starts exactly where the previous one ends.
        for i in 1..BUCKET_COUNT {
            let prev_end = bucket_lower_bound(i - 1).saturating_add(bucket_width(i - 1));
            assert_eq!(prev_end, bucket_lower_bound(i), "gap/overlap at bucket {i}");
        }
        // And the lower bound maps back to its own bucket.
        for i in 0..BUCKET_COUNT {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i);
            let top = bucket_lower_bound(i) + (bucket_width(i) - 1);
            assert_eq!(bucket_index(top), i);
        }
    }

    #[test]
    fn bucket_index_is_monotone_across_octave_edges() {
        for v in [15u64, 16, 17, 31, 32, 33, 63, 64, 1 << 20, u64::MAX - 1] {
            assert!(bucket_index(v) <= bucket_index(v + 1));
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        for shift in 4..63 {
            let v = (1u64 << shift) + (1u64 << (shift - 1)) + 7;
            let rep = bucket_value(bucket_index(v));
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(err < 1.0 / SUB_BUCKETS as f64, "err {err} at {v}");
        }
    }

    #[test]
    fn percentiles_match_oracle_on_small_exact_values() {
        // Values < 16 are exact, so percentiles must match a sorted vec.
        let mut h = Histogram::new();
        let samples = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        for (q, rank) in [(0.5, 5), (0.9, 9), (1.0, 10)] {
            assert_eq!(h.percentile(q), sorted[rank - 1], "q={q}");
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), 9);
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        let mut h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(i * 37 % 5_000);
        }
        let mut last = 0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let p = h.percentile(q);
            assert!(p >= last, "percentile not monotone at q={q}");
            last = p;
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for i in 0..100u64 {
            a.record(i * 3);
            b.record(i * 31 + 7);
            c.record(i * 311 + 13);
        }
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c), built in the other order
        let mut bc = c.clone();
        bc.merge(&b);
        let mut right = bc;
        right.merge(&a);
        assert_eq!(left.count(), right.count());
        assert_eq!(left.sum(), right.sum());
        assert_eq!(left.max(), right.max());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(left.percentile(q), right.percentile(q));
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
