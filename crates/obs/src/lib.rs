//! Observability layer for the SplitFS reproduction.
//!
//! The paper's headline metric is *software overhead per operation*
//! (§5.7), but `pmem::stats` only reports it as a run-level aggregate.
//! This crate turns it into a per-operation distribution:
//!
//! * [`span`] — RAII **op spans**.  A [`Recorder`] hands out a
//!   [`SpanGuard`] per file-system operation; while the guard lives,
//!   every simulated-time charge the thread makes (via
//!   [`pmem::Stats::add_time`]) is attributed to the span's
//!   per-[`pmem::TimeCategory`] breakdown, and instrumentation points
//!   annotate the span with [`SpanEvent`]s (lane steal, inline create,
//!   epoch swap, ...).  Recording is thread-local and lock-free on the
//!   hot path: each thread owns a histogram shard it updates with plain
//!   relaxed atomics, and the only mutex is taken once per
//!   (thread, op-kind) at first use, never per operation.
//! * [`hist`] — **log-linear latency histograms** (HDR-style: 16
//!   sub-buckets per power of two, ≲6% relative error) with mergeable
//!   shards and p50/p90/p99/p999 extraction.
//! * [`flight`] — a **flight recorder**: a fixed-size per-thread ring of
//!   recent span events, dumped as structured text on panic and readable
//!   by crash tests after a simulated crash.
//! * [`metrics`] — [`MetricsSnapshot`] folds the device's
//!   [`pmem::StatsSnapshot`] counters together with the recorder's
//!   per-op percentiles into one structure with a single JSON
//!   serializer (the harness's `METRICS_JSON` lines).
//! * [`json`] — the tiny ordered JSON writer shared by `METRICS_JSON`
//!   and the pre-existing `SCALING_JSON` emission.
//! * [`health`] — the maintenance daemon's **health probe**: lane
//!   free-list depths, watermark targets and queue lag published by the
//!   maintenance tick, exported with the snapshot.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod flight;
pub mod health;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod span;

pub use flight::{install_panic_hook, recent_events, FlightEntry};
pub use health::{HealthProbe, HealthSnapshot, LaneHealth};
pub use hist::Histogram;
pub use json::JsonObject;
pub use metrics::{MetricsSnapshot, OpMetrics};
pub use span::{event, OpKind, Recorder, SpanEvent, SpanGuard};
