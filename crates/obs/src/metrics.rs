//! Unified metrics export: one structure, one serializer.
//!
//! [`MetricsSnapshot`] folds the device's aggregate
//! [`StatsSnapshot`] counters together with the span recorder's per-op
//! latency percentiles and (optionally) the daemon's health gauges,
//! and renders the whole thing as a single JSON object — the payload
//! of the harness's `METRICS_JSON` lines that CI greps and gates on.
//!
//! Within one op's JSON object the scalar percentile fields are
//! emitted *before* the nested `events` object, so a shell pipeline
//! (`grep -o '"op":"appendv"[^}]*'`) can cut one op's scalars without
//! a JSON parser.

use pmem::{StatsSnapshot, TimeCategory};

use crate::health::HealthSnapshot;
use crate::json::{self, JsonObject};
use crate::span::{OpKind, Recorder, SpanEvent};

const CATS: usize = TimeCategory::ALL.len();

/// Latency and attribution summary for one op kind, extracted from the
/// recorder's merged histogram.
#[derive(Debug, Clone)]
pub struct OpMetrics {
    /// The operation kind.
    pub kind: OpKind,
    /// Spans recorded.
    pub count: u64,
    /// Mean span latency, simulated nanoseconds (exact).
    pub mean_ns: f64,
    /// Median span latency (histogram-quantized, ≲6% relative error).
    pub p50_ns: u64,
    /// 90th-percentile span latency.
    pub p90_ns: u64,
    /// 99th-percentile span latency.
    pub p99_ns: u64,
    /// 99.9th-percentile span latency.
    pub p999_ns: u64,
    /// Maximum span latency (exact).
    pub max_ns: u64,
    /// Simulated nanoseconds per [`TimeCategory`] inside these spans
    /// ([`TimeCategory::ALL`] order).
    pub cat_ns: [f64; CATS],
    /// Simulated lock-wait nanoseconds inside these spans (span time no
    /// category claims).
    pub wait_ns: f64,
    /// Event annotations, in [`SpanEvent::ALL`] order.
    pub events: [u64; SpanEvent::COUNT],
}

impl OpMetrics {
    /// Total span time: every category plus waits.
    pub fn total_ns(&self) -> f64 {
        self.cat_ns.iter().sum::<f64>() + self.wait_ns
    }

    /// The paper's software overhead inside these spans: span time
    /// minus user-data device time.
    pub fn software_overhead_ns(&self) -> f64 {
        self.total_ns() - self.cat_ns[TimeCategory::UserData.index_in_all()]
    }

    /// Renders this op's summary as a JSON object (scalar fields
    /// first, nested `events` last; see the module docs).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new()
            .str("op", self.kind.label())
            .u64("count", self.count)
            .f64("mean_ns", self.mean_ns)
            .u64("p50_ns", self.p50_ns)
            .u64("p90_ns", self.p90_ns)
            .u64("p99_ns", self.p99_ns)
            .u64("p999_ns", self.p999_ns)
            .u64("max_ns", self.max_ns);
        for (i, cat) in TimeCategory::ALL.iter().enumerate() {
            obj = obj.f64(
                &format!("{}_ns", cat.label().replace('-', "_")),
                self.cat_ns[i],
            );
        }
        obj = obj.f64("wait_ns", self.wait_ns);
        let mut events = JsonObject::new();
        for (i, ev) in SpanEvent::ALL.iter().enumerate() {
            if self.events[i] > 0 {
                events = events.u64(ev.label(), self.events[i]);
            }
        }
        obj.raw("events", &events.finish()).finish()
    }
}

/// Everything one measured run produced, in one exportable structure.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// File-system configuration name (e.g. `"SplitFS-strict"`).
    pub fs_name: String,
    /// Worker threads the workload used.
    pub threads: usize,
    /// Per-op latency summaries, one per op kind that recorded spans.
    pub ops: Vec<OpMetrics>,
    /// The device's aggregate counters for the same window.
    pub stats: StatsSnapshot,
    /// The daemon's health gauges at the end of the run, when the file
    /// system exposes them (SplitFS only).
    pub health: Option<HealthSnapshot>,
}

impl MetricsSnapshot {
    /// Builds a snapshot from a recorder's aggregates and the matching
    /// stats delta.
    pub fn new(
        fs_name: impl Into<String>,
        threads: usize,
        recorder: &Recorder,
        stats: StatsSnapshot,
    ) -> Self {
        let ops = recorder
            .aggregate()
            .into_iter()
            .map(|a| OpMetrics {
                kind: a.kind,
                count: a.hist.count(),
                mean_ns: a.hist.mean(),
                p50_ns: a.hist.percentile(0.50),
                p90_ns: a.hist.percentile(0.90),
                p99_ns: a.hist.percentile(0.99),
                p999_ns: a.hist.percentile(0.999),
                max_ns: a.hist.max(),
                cat_ns: a.cat_ns,
                wait_ns: a.wait_ns,
                events: a.events,
            })
            .collect();
        Self {
            fs_name: fs_name.into(),
            threads,
            ops,
            stats,
            health: None,
        }
    }

    /// Attaches the daemon's health gauges.
    pub fn with_health(mut self, health: HealthSnapshot) -> Self {
        self.health = Some(health);
        self
    }

    /// Total spans recorded across every op kind.
    pub fn total_spans(&self) -> u64 {
        self.ops.iter().map(|o| o.count).sum()
    }

    /// The summary for one op kind, if it recorded any spans.
    pub fn op(&self, kind: OpKind) -> Option<&OpMetrics> {
        self.ops.iter().find(|o| o.kind == kind)
    }

    /// Sum of span-attributed time per category across every op kind
    /// ([`TimeCategory::ALL`] order) — the per-op breakdown's side of
    /// the reconciliation against [`StatsSnapshot::time_ns`].
    pub fn span_time_by_category(&self) -> [f64; CATS] {
        let mut out = [0.0; CATS];
        for op in &self.ops {
            for (total, ns) in out.iter_mut().zip(op.cat_ns.iter()) {
                *total += ns;
            }
        }
        out
    }

    /// Largest relative disagreement, across categories, between the
    /// span-attributed time and the aggregate stats time (`0.0` =
    /// perfect attribution).  Categories with less than `floor_ns` on
    /// both sides are skipped — relative error on ~zero time is noise.
    pub fn attribution_error(&self, floor_ns: f64) -> f64 {
        let spans = self.span_time_by_category();
        let mut worst = 0.0f64;
        for (span_ns, &agg) in spans.iter().zip(self.stats.time_ns.iter()) {
            if agg < floor_ns && *span_ns < floor_ns {
                continue;
            }
            let denom = agg.max(floor_ns);
            worst = worst.max((span_ns - agg).abs() / denom);
        }
        worst
    }

    /// Renders the whole snapshot as one JSON object — the payload of
    /// a `METRICS_JSON` line.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new()
            .str("experiment", "latency")
            .str("fs", &self.fs_name)
            .u64("threads", self.threads as u64)
            .u64("spans", self.total_spans())
            .raw("ops", &json::array(self.ops.iter().map(|o| o.to_json())));
        let mut time = JsonObject::new();
        for (i, cat) in TimeCategory::ALL.iter().enumerate() {
            time = time.f64(cat.label(), self.stats.time_ns[i]);
        }
        obj = obj.raw("time_ns", &time.finish());
        let mut counters = JsonObject::new();
        for (name, value) in self.stats.counters() {
            counters = counters.u64(name, value);
        }
        obj = obj.raw("counters", &counters.finish());
        if let Some(health) = &self.health {
            let lanes = json::array(health.lanes.iter().map(|l| {
                JsonObject::new()
                    .u64("free", l.free_files as u64)
                    .u64("watermark", l.watermark as u64)
                    .finish()
            }));
            let h = JsonObject::new()
                .u64("ticks", health.ticks)
                .u64("queue_depth", health.queue_depth as u64)
                .f64("oplog_utilization", health.oplog_utilization)
                .raw("lanes", &lanes)
                .finish();
            obj = obj.raw("health", &h);
        }
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanEvent;
    use pmem::SimClock;
    use std::sync::Arc;

    fn sample_snapshot() -> MetricsSnapshot {
        let rec = Arc::new(Recorder::new());
        std::thread::scope(|scope| {
            let rec = Arc::clone(&rec);
            scope.spawn(move || {
                for i in 0..100u64 {
                    let _g = rec.span(OpKind::Appendv);
                    SimClock::charge_thread_wait(10.0 + i as f64);
                    if i == 0 {
                        crate::span::event(SpanEvent::LaneSteal);
                    }
                }
            });
        });
        let stats = StatsSnapshot {
            time_ns: [100.0, 20.0, 10.0, 5.0, 40.0],
            ..StatsSnapshot::default()
        };
        MetricsSnapshot::new("SplitFS-strict", 4, &rec, stats)
    }

    #[test]
    fn snapshot_extracts_percentiles_and_serializes() {
        let snap = sample_snapshot();
        assert_eq!(snap.total_spans(), 100);
        let op = snap.op(OpKind::Appendv).expect("appendv recorded");
        assert!(op.p99_ns >= op.p50_ns);
        assert!(op.max_ns >= op.p999_ns);
        assert_eq!(op.events[SpanEvent::LaneSteal.index()], 1);
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""experiment":"latency""#));
        assert!(json.contains(r#""fs":"SplitFS-strict""#));
        assert!(json.contains(r#""op":"appendv""#));
        assert!(json.contains(r#""p99_ns":"#));
        assert!(json.contains(r#""lane_steal":1"#));
        assert!(json.contains(r#""counters":{"#));
        // The grep contract: scalars reachable without a JSON parser.
        let cut = json
            .split(r#""op":"appendv""#)
            .nth(1)
            .unwrap()
            .split('}')
            .next()
            .unwrap();
        assert!(cut.contains(r#""p50_ns":"#));
        assert!(cut.contains(r#""p99_ns":"#));
    }

    #[test]
    fn health_section_appears_when_attached() {
        let snap = sample_snapshot().with_health(HealthSnapshot {
            ticks: 7,
            lanes: vec![crate::health::LaneHealth {
                free_files: 2,
                watermark: 3,
            }],
            queue_depth: 1,
            oplog_utilization: 0.125,
        });
        let json = snap.to_json();
        assert!(json.contains(r#""health":{"ticks":7"#));
        assert!(json.contains(r#""lanes":[{"free":2,"watermark":3}]"#));
    }

    #[test]
    fn attribution_error_compares_span_and_aggregate_time() {
        let mut snap = sample_snapshot();
        // Span time was all waits, so category sums are ~zero and the
        // aggregate has real time: large disagreement.
        assert!(snap.attribution_error(1.0) > 0.5);
        // Force agreement and check it reports ~zero.
        let spans = snap.span_time_by_category();
        snap.stats.time_ns = spans;
        assert!(snap.attribution_error(1.0) < 1e-9);
    }
}
