//! Strata baseline (PM layer).
//!
//! Strata (Kwon et al., SOSP '17) writes every update — data and metadata —
//! into a per-process private log on PM; a *digest* later coalesces the log
//! and copies the surviving data into a shared area.  Two consequences the
//! SplitFS paper highlights are reproduced here:
//!
//! * **Double writes**: append-dominated workloads cannot be coalesced, so
//!   the data is written twice (private log, then shared area), roughly
//!   doubling PM write traffic and wear (§2.3, Table 7 discussion).
//! * **Visibility**: updates are only visible to other processes after the
//!   digest; within the owning process the in-memory index makes them
//!   visible immediately.
//!
//! A digest runs automatically when the private log passes a utilization
//! threshold, and can be forced with [`vfs::FileSystem::sync`].

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use pmem::{AccessPattern, PersistMode, PmemDevice, TimeCategory};
use vfs::{
    iov_total_len, ConsistencyClass, Fd, FileStat, FileSystem, FsError, FsResult, IoVec, OpenFlags,
    SeekFrom,
};

use crate::common::{FsCore, BLOCK_SIZE};

/// Default private-log capacity.  The paper evaluates Strata with a 20 GB
/// log on scaled-down YCSB; the default here is sized for the scaled-down
/// workloads the harness runs and can be overridden with
/// [`Strata::with_log_capacity`].
pub const DEFAULT_LOG_CAPACITY: u64 = 128 * 1024 * 1024;

/// Digest when the log is this full.
const DIGEST_THRESHOLD: f64 = 0.75;

/// Per-entry header written ahead of the data in the private log.
const LOG_HEADER: usize = 64;

#[derive(Debug, Clone, Copy)]
struct LogExtent {
    /// Byte offset within the private log where the block's latest data is.
    log_offset: u64,
    /// Number of valid bytes (always a full block except the file tail).
    len: u64,
}

/// The Strata baseline file system.
#[derive(Debug)]
pub struct Strata {
    device: Arc<PmemDevice>,
    core: RwLock<FsCore>,
    state: RwLock<LogState>,
    log_capacity: u64,
}

#[derive(Debug, Default)]
struct LogState {
    /// Next free byte in the private log region.
    head: u64,
    /// Latest logged version of each (ino, block) not yet digested.
    pending: HashMap<(u64, u64), LogExtent>,
    /// Count of digests performed (exposed for tests/experiments).
    digests: u64,
}

impl Strata {
    /// Creates a Strata instance with the default private-log capacity.
    pub fn new(device: Arc<PmemDevice>) -> Arc<Self> {
        Self::with_log_capacity(device, DEFAULT_LOG_CAPACITY)
    }

    /// Creates a Strata instance with an explicit private-log capacity.
    pub fn with_log_capacity(device: Arc<PmemDevice>, log_capacity: u64) -> Arc<Self> {
        let core = FsCore::new(Arc::clone(&device), log_capacity);
        Arc::new(Self {
            device,
            core: RwLock::new(core),
            state: RwLock::new(LogState::default()),
            log_capacity,
        })
    }

    /// Number of digest passes run so far.
    pub fn digest_count(&self) -> u64 {
        self.state.read().digests
    }

    fn charge_libfs(&self) {
        // Strata's LibFS handles the operation in user space: no kernel
        // trap, but index/lease bookkeeping.
        let cost = self.device.cost().clone();
        self.device.charge_software(cost.strata_index_ns);
    }

    /// Appends one entry (header + payload) to the private log.
    fn log_append(&self, state: &mut LogState, payload: &[u8]) -> u64 {
        let cost = self.device.cost().clone();
        self.device.charge_software(cost.strata_log_append_ns);
        let need = (LOG_HEADER + payload.len()) as u64;
        debug_assert!(need <= self.log_capacity);
        if state.head + need > self.log_capacity {
            // The caller digests before this can happen in normal operation;
            // wrap defensively.
            state.head = 0;
        }
        let header = [0u8; LOG_HEADER];
        self.device.write(
            state.head,
            &header,
            PersistMode::NonTemporal,
            TimeCategory::Journal,
        );
        let data_off = state.head + LOG_HEADER as u64;
        if !payload.is_empty() {
            self.device.write(
                data_off,
                payload,
                PersistMode::NonTemporal,
                TimeCategory::UserData,
            );
        }
        self.device.fence(TimeCategory::UserData);
        state.head += need;
        data_off
    }

    /// Runs a digest: coalesces the pending log entries and copies each
    /// surviving block into the shared area, then resets the log.
    fn digest(&self, core: &mut FsCore, state: &mut LogState) -> FsResult<()> {
        let cost = self.device.cost().clone();
        let pending: Vec<((u64, u64), LogExtent)> = state.pending.drain().collect();
        for ((ino, block), ext) in pending {
            // The file may have been unlinked since the write was logged.
            if core.node(ino).is_err() {
                continue;
            }
            core.ensure_blocks(ino, block * BLOCK_SIZE as u64, ext.len)?;
            let mut buf = vec![0u8; ext.len as usize];
            self.device.read(
                ext.log_offset,
                &mut buf,
                AccessPattern::Sequential,
                TimeCategory::Journal,
            );
            self.device
                .charge_software(ext.len as f64 * cost.strata_digest_ns_per_byte);
            core.write_data(
                ino,
                block * BLOCK_SIZE as u64,
                &buf,
                PersistMode::NonTemporal,
                TimeCategory::Journal,
            )?;
        }
        self.device.fence(TimeCategory::Journal);
        state.head = 0;
        state.digests += 1;
        Ok(())
    }

    fn maybe_digest(&self, core: &mut FsCore, state: &mut LogState) -> FsResult<()> {
        if state.head as f64 >= self.log_capacity as f64 * DIGEST_THRESHOLD {
            self.digest(core, state)?;
        }
        Ok(())
    }

    /// Logs one slice's bytes with both locks held.  Each touched block
    /// becomes one log entry (header + block image); the caller updates
    /// the size and runs the digest check once per logical operation.
    fn write_slice_locked(
        &self,
        core: &mut FsCore,
        state: &mut LogState,
        ino: u64,
        offset: u64,
        data: &[u8],
    ) -> FsResult<()> {
        let mut pos = 0usize;
        while pos < data.len() {
            let file_off = offset + pos as u64;
            let block = file_off / BLOCK_SIZE as u64;
            let within = (file_off % BLOCK_SIZE as u64) as usize;
            let chunk = (BLOCK_SIZE - within).min(data.len() - pos);
            // Build the full-block image the log stores (merge with any
            // previous content so the digest can copy whole blocks).
            let mut image = vec![0u8; BLOCK_SIZE];
            let old_size = core.node(ino)?.size;
            if old_size > block * BLOCK_SIZE as u64 {
                // Read existing content (from log or shared area) without
                // recursing through read_at's permission/offset logic.
                match state.pending.get(&(ino, block)) {
                    Some(ext) => {
                        let take = ext.len as usize;
                        self.device.read(
                            ext.log_offset,
                            &mut image[..take],
                            AccessPattern::Random,
                            TimeCategory::UserData,
                        );
                    }
                    None => {
                        core.read_data(
                            ino,
                            block * BLOCK_SIZE as u64,
                            &mut image,
                            AccessPattern::Random,
                            TimeCategory::UserData,
                        )?;
                    }
                }
            }
            image[within..within + chunk].copy_from_slice(&data[pos..pos + chunk]);
            let valid = (within + chunk)
                .max((old_size.saturating_sub(block * BLOCK_SIZE as u64) as usize).min(BLOCK_SIZE));
            let log_offset = self.log_append(state, &image[..valid]);
            state.pending.insert(
                (ino, block),
                LogExtent {
                    log_offset,
                    len: valid as u64,
                },
            );
            // Writes become visible (to this process) as they land, so the
            // size must track each logged block for the merge reads above.
            let new_end = file_off + chunk as u64;
            if new_end > core.node(ino)?.size {
                core.node_mut(ino)?.size = new_end;
            }
            pos += chunk;
        }
        Ok(())
    }

    /// The shared write path: one LibFS bookkeeping charge and one digest
    /// check for the whole gather.  With `at == None` the write lands at
    /// the end of file, resolved under the same locks as the write —
    /// concurrent appenders serialize.
    fn vectored_write(&self, fd: Fd, at: Option<u64>, iov: &[IoVec<'_>]) -> FsResult<usize> {
        self.charge_libfs();
        let mut core = self.core.write();
        let mut state = self.state.write();
        let file = core.fd(fd)?;
        if !file.flags.write {
            return Err(FsError::PermissionDenied);
        }
        let total = iov_total_len(iov);
        if total == 0 {
            return Ok(0);
        }
        let offset = match at {
            Some(offset) => offset,
            None => core.node(file.ino)?.size,
        };
        let mut cur = offset;
        for v in iov {
            if v.is_empty() {
                continue;
            }
            self.write_slice_locked(&mut core, &mut state, file.ino, cur, v.as_slice())?;
            cur += v.len() as u64;
        }
        self.maybe_digest(&mut core, &mut state)?;
        Ok(total as usize)
    }
}

impl FileSystem for Strata {
    fn name(&self) -> String {
        "Strata".to_string()
    }

    fn consistency(&self) -> ConsistencyClass {
        ConsistencyClass::Strict
    }

    fn device(&self) -> &Arc<PmemDevice> {
        &self.device
    }

    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        self.charge_libfs();
        let mut core = self.core.write();
        let mut state = self.state.write();
        let (parent, name, existing) = core.resolve(path)?;
        let ino = match existing {
            Some(ino) => {
                if flags.exclusive && flags.create {
                    return Err(FsError::AlreadyExists);
                }
                if flags.truncate {
                    self.log_append(&mut state, &[]);
                    state.pending.retain(|(i, _), _| *i != ino);
                    core.truncate(ino, 0)?;
                }
                ino
            }
            None => {
                if !flags.create {
                    return Err(FsError::NotFound);
                }
                self.log_append(&mut state, &[]);
                core.create_node(parent, &name, false)?
            }
        };
        Ok(core.insert_fd(ino, flags))
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        self.charge_libfs();
        self.core.write().remove_fd(fd)?;
        Ok(())
    }

    fn read_at(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.charge_libfs();
        let mut core = self.core.write();
        let state = self.state.read();
        let file = core.fd(fd)?;
        if !file.flags.read {
            return Err(FsError::PermissionDenied);
        }
        let size = core.node(file.ino)?.size;
        if offset >= size || buf.is_empty() {
            return Ok(0);
        }
        let n = ((size - offset) as usize).min(buf.len());
        // Serve each block from the freshest location: private log if the
        // block has an undigested write, shared area otherwise.
        let mut pos = 0usize;
        while pos < n {
            let file_off = offset + pos as u64;
            let block = file_off / BLOCK_SIZE as u64;
            let within = (file_off % BLOCK_SIZE as u64) as usize;
            let chunk = (BLOCK_SIZE - within).min(n - pos);
            match state.pending.get(&(file.ino, block)) {
                Some(ext) if (within as u64) < ext.len => {
                    let take = chunk.min((ext.len - within as u64) as usize);
                    self.device.read(
                        ext.log_offset + within as u64,
                        &mut buf[pos..pos + take],
                        AccessPattern::Random,
                        TimeCategory::UserData,
                    );
                    if take < chunk {
                        buf[pos + take..pos + chunk].fill(0);
                    }
                }
                _ => {
                    core.read_data(
                        file.ino,
                        file_off,
                        &mut buf[pos..pos + chunk],
                        AccessPattern::Random,
                        TimeCategory::UserData,
                    )?;
                }
            }
            pos += chunk;
        }
        core.fd_mut(fd)?.last_read_end = offset + n as u64;
        Ok(n)
    }

    fn write_at(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.vectored_write(fd, Some(offset), &[IoVec::new(data)])
    }

    fn writev_at(&self, fd: Fd, offset: u64, iov: &[IoVec<'_>]) -> FsResult<usize> {
        self.vectored_write(fd, Some(offset), iov)
    }

    fn appendv(&self, fd: Fd, iov: &[IoVec<'_>]) -> FsResult<usize> {
        let n = self.vectored_write(fd, None, iov)?;
        self.device.stats().add_appendv(iov.len() as u64);
        Ok(n)
    }

    fn fsync_many(&self, fds: &[Fd]) -> FsResult<()> {
        // Log writes are already persistent; the batch pays the LibFS
        // bookkeeping once for the set.
        if fds.is_empty() {
            return Ok(());
        }
        self.charge_libfs();
        let core = self.core.read();
        for &fd in fds {
            core.fd(fd)?;
        }
        self.device.stats().add_fsync_many(fds.len() as u64);
        Ok(())
    }

    fn read(&self, fd: Fd, buf: &mut [u8]) -> FsResult<usize> {
        let offset = self.core.read().fd(fd)?.offset;
        let n = self.read_at(fd, offset, buf)?;
        self.core.write().fd_mut(fd)?.offset = offset + n as u64;
        Ok(n)
    }

    fn write(&self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        let offset = {
            let core = self.core.read();
            let file = core.fd(fd)?;
            if file.flags.append {
                core.node(file.ino)?.size
            } else {
                file.offset
            }
        };
        let n = self.write_at(fd, offset, data)?;
        self.core.write().fd_mut(fd)?.offset = offset + n as u64;
        Ok(n)
    }

    fn lseek(&self, fd: Fd, pos: SeekFrom) -> FsResult<u64> {
        self.charge_libfs();
        self.core.write().seek(fd, pos)
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        // Log writes are already persistent; fsync is a no-op beyond the
        // LibFS bookkeeping.
        self.charge_libfs();
        self.core.read().fd(fd)?;
        Ok(())
    }

    fn ftruncate(&self, fd: Fd, size: u64) -> FsResult<()> {
        self.charge_libfs();
        let mut core = self.core.write();
        let mut state = self.state.write();
        let file = core.fd(fd)?;
        self.log_append(&mut state, &[]);
        if size > core.node(file.ino)?.size {
            core.ensure_blocks(file.ino, 0, size)?;
            core.node_mut(file.ino)?.size = size;
        } else {
            let keep = size.div_ceil(BLOCK_SIZE as u64);
            state
                .pending
                .retain(|(i, b), _| *i != file.ino || *b < keep);
            core.truncate(file.ino, size)?;
        }
        Ok(())
    }

    fn fstat(&self, fd: Fd) -> FsResult<FileStat> {
        self.charge_libfs();
        let core = self.core.read();
        let file = core.fd(fd)?;
        core.stat_node(file.ino)
    }

    fn stat(&self, path: &str) -> FsResult<FileStat> {
        self.charge_libfs();
        let core = self.core.read();
        let ino = core.resolve_existing(path)?;
        core.stat_node(ino)
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        self.charge_libfs();
        let mut core = self.core.write();
        let mut state = self.state.write();
        let (parent, name, existing) = core.resolve(path)?;
        let ino = existing.ok_or(FsError::NotFound)?;
        if core.node(ino)?.is_dir {
            return Err(FsError::IsADirectory);
        }
        self.log_append(&mut state, &[]);
        state.pending.retain(|(i, _), _| *i != ino);
        core.remove_node(parent, &name)?;
        Ok(())
    }

    fn rename(&self, old: &str, new: &str) -> FsResult<()> {
        self.charge_libfs();
        let mut core = self.core.write();
        let mut state = self.state.write();
        let (old_parent, old_name, old_ino) = core.resolve(old)?;
        old_ino.ok_or(FsError::NotFound)?;
        let (new_parent, new_name, _) = core.resolve(new)?;
        self.log_append(&mut state, &[]);
        core.move_entry(old_parent, &old_name, new_parent, &new_name)
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        self.charge_libfs();
        let mut core = self.core.write();
        let mut state = self.state.write();
        let (parent, name, existing) = core.resolve(path)?;
        if existing.is_some() {
            return Err(FsError::AlreadyExists);
        }
        self.log_append(&mut state, &[]);
        core.create_node(parent, &name, true)?;
        Ok(())
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        self.charge_libfs();
        let mut core = self.core.write();
        let mut state = self.state.write();
        let (parent, name, existing) = core.resolve(path)?;
        let ino = existing.ok_or(FsError::NotFound)?;
        if !core.node(ino)?.is_dir {
            return Err(FsError::NotADirectory);
        }
        if !core.dir_is_empty(ino) {
            return Err(FsError::NotEmpty);
        }
        self.log_append(&mut state, &[]);
        core.remove_node(parent, &name)?;
        Ok(())
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        self.charge_libfs();
        let core = self.core.read();
        let ino = core.resolve_existing(path)?;
        core.list_dir(ino)
    }

    fn sync(&self) -> FsResult<()> {
        let mut core = self.core.write();
        let mut state = self.state.write();
        self.digest(&mut core, &mut state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemBuilder;

    fn fs() -> Arc<Strata> {
        let device = PmemBuilder::new(128 * 1024 * 1024)
            .track_persistence(false)
            .build();
        Strata::with_log_capacity(device, 8 * 1024 * 1024)
    }

    #[test]
    fn data_round_trips_before_and_after_digest() {
        let fs = fs();
        let fd = fs.open("/f", OpenFlags::create()).unwrap();
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 233) as u8).collect();
        fs.write_at(fd, 0, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        fs.read_at(fd, 0, &mut out).unwrap();
        assert_eq!(out, data, "reads from the private log");

        fs.sync().unwrap(); // force a digest
        let mut out2 = vec![0u8; data.len()];
        fs.read_at(fd, 0, &mut out2).unwrap();
        assert_eq!(out2, data, "reads from the shared area after digest");
    }

    #[test]
    fn appends_are_written_twice() {
        let fs = fs();
        let fd = fs.open("/log", OpenFlags::append()).unwrap();
        let payload = vec![5u8; 64 * 1024];
        fs.write(fd, &payload).unwrap();
        fs.sync().unwrap();
        let snap = fs.device().stats().snapshot();
        let amp = snap.write_amplification(payload.len() as u64).unwrap();
        assert!(
            amp >= 2.0,
            "Strata must write appended data at least twice, got {amp:.2}x"
        );
    }

    #[test]
    fn digest_triggers_automatically_when_log_fills() {
        let fs = fs();
        let fd = fs.open("/f", OpenFlags::create()).unwrap();
        // 8 MiB log, 75% threshold: ~6 MiB of appends force a digest.
        let chunk = vec![1u8; 64 * 1024];
        for i in 0..120u64 {
            fs.write_at(fd, i * chunk.len() as u64, &chunk).unwrap();
        }
        assert!(fs.digest_count() >= 1);
        // Data still correct after the automatic digest.
        let mut out = vec![0u8; chunk.len()];
        fs.read_at(fd, 0, &mut out).unwrap();
        assert_eq!(out, chunk);
    }

    #[test]
    fn overwrites_coalesce_in_the_log() {
        let fs = fs();
        let fd = fs.open("/f", OpenFlags::create()).unwrap();
        // Overwrite the same block many times, then digest: only the last
        // version is copied to the shared area.
        for v in 0..10u8 {
            fs.write_at(fd, 0, &vec![v; BLOCK_SIZE]).unwrap();
        }
        fs.sync().unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        fs.read_at(fd, 0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 9));
    }

    #[test]
    fn unlink_discards_pending_log_entries() {
        let fs = fs();
        let fd = fs.open("/gone", OpenFlags::create()).unwrap();
        fs.write_at(fd, 0, &vec![1u8; BLOCK_SIZE]).unwrap();
        fs.close(fd).unwrap();
        fs.unlink("/gone").unwrap();
        // A digest after the unlink must not resurrect the file.
        fs.sync().unwrap();
        assert!(fs.stat("/gone").is_err());
    }
}
