//! Shared machinery for the baseline file systems.
//!
//! PMFS, NOVA and Strata differ in *how* they persist data and metadata
//! (in-place vs copy-on-write vs private-log-then-digest) and in the
//! logging traffic each operation generates, but they share the mechanical
//! parts of being a file system: a namespace, inodes, a block allocator and
//! the mapping of file bytes to device blocks.  [`FsCore`] provides those
//! mechanics with *no* cost accounting beyond raw device traffic; each
//! baseline charges its own software costs and extra journal/log traffic
//! around the core calls so that the performance differences between the
//! baselines come only from their architectural differences, as in the
//! paper.
//!
//! The baselines are performance-faithful rather than recovery-faithful:
//! they keep their metadata authoritative in memory (the paper's
//! experiments never crash the baselines; crash-consistency experiments
//! target SplitFS and the kernel file system, which have full on-device
//! recovery paths).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use pmem::{AccessPattern, PersistMode, PmemDevice, TimeCategory};
use vfs::{path as vpath, Fd, FileStat, FsError, FsResult, OpenFlags, SeekFrom};

/// File-system block size used by the baselines (matches kernelfs).
pub const BLOCK_SIZE: usize = 4096;

/// Inode number of the root directory.
pub const ROOT_INO: u64 = 1;

/// An open-descriptor record.
#[derive(Debug, Clone)]
pub struct OpenFile {
    /// Inode the descriptor refers to.
    pub ino: u64,
    /// Current file offset for `read`/`write`.
    pub offset: u64,
    /// Flags the file was opened with.
    pub flags: OpenFlags,
    /// End offset of the previous read (for sequential-vs-random latency).
    pub last_read_end: u64,
}

/// A file or directory tracked by the core.
#[derive(Debug, Clone)]
pub struct Node {
    /// Inode number.
    pub ino: u64,
    /// Whether this is a directory.
    pub is_dir: bool,
    /// File size in bytes.
    pub size: u64,
    /// Physical device block backing each 4 KiB logical block.
    pub blocks: Vec<u64>,
}

impl Node {
    fn new(ino: u64, is_dir: bool) -> Self {
        Self {
            ino,
            is_dir,
            size: 0,
            blocks: Vec::new(),
        }
    }
}

/// The shared mechanical core.
#[derive(Debug)]
pub struct FsCore {
    device: Arc<PmemDevice>,
    /// Free-block stack over the device's data area.
    free_blocks: Vec<u64>,
    nodes: HashMap<u64, Node>,
    dirs: HashMap<u64, BTreeMap<String, u64>>,
    next_ino: u64,
    fds: HashMap<Fd, OpenFile>,
    next_fd: Fd,
    /// Total blocks handed out (for space accounting).
    allocated_blocks: u64,
}

impl FsCore {
    /// Creates a core over the device, reserving `reserved_bytes` at the
    /// start of the device for the file system's own structures (logs,
    /// journals) and using the rest as data blocks.
    pub fn new(device: Arc<PmemDevice>, reserved_bytes: u64) -> Self {
        let first_block = reserved_bytes.div_ceil(BLOCK_SIZE as u64);
        let total_blocks = device.size() as u64 / BLOCK_SIZE as u64;
        // Stack of free blocks, lowest block on top so allocation tends to
        // be contiguous and low-to-high.
        let mut free_blocks: Vec<u64> = (first_block..total_blocks).rev().collect();
        free_blocks.shrink_to_fit();
        let mut nodes = HashMap::new();
        nodes.insert(ROOT_INO, Node::new(ROOT_INO, true));
        let mut dirs = HashMap::new();
        dirs.insert(ROOT_INO, BTreeMap::new());
        Self {
            device,
            free_blocks,
            nodes,
            dirs,
            next_ino: ROOT_INO + 1,
            fds: HashMap::new(),
            next_fd: 3,
            allocated_blocks: 0,
        }
    }

    /// The device the core writes to.
    pub fn device(&self) -> &Arc<PmemDevice> {
        &self.device
    }

    /// Allocates one data block.
    pub fn alloc_block(&mut self) -> FsResult<u64> {
        let b = self.free_blocks.pop().ok_or(FsError::NoSpace)?;
        self.allocated_blocks += 1;
        Ok(b)
    }

    /// Returns a block to the free pool.
    pub fn free_block(&mut self, block: u64) {
        self.allocated_blocks = self.allocated_blocks.saturating_sub(1);
        self.free_blocks.push(block);
    }

    /// Number of data blocks currently allocated.
    pub fn allocated_blocks(&self) -> u64 {
        self.allocated_blocks
    }

    /// Resolves a path to `(parent_ino, name, Option<ino>)`.
    pub fn resolve(&self, path: &str) -> FsResult<(u64, String, Option<u64>)> {
        let (parent_path, name) = vpath::split(path)?;
        let comps = vpath::components(&parent_path)?;
        let mut dir_ino = ROOT_INO;
        for comp in &comps {
            let map = self.dirs.get(&dir_ino).ok_or(FsError::NotADirectory)?;
            let &child = map.get(comp).ok_or(FsError::NotFound)?;
            if !self.nodes.get(&child).map(|n| n.is_dir).unwrap_or(false) {
                return Err(FsError::NotADirectory);
            }
            dir_ino = child;
        }
        let map = self.dirs.get(&dir_ino).ok_or(FsError::NotADirectory)?;
        Ok((dir_ino, name.clone(), map.get(&name).copied()))
    }

    /// Resolves a path that may be the root directory.
    pub fn resolve_existing(&self, path: &str) -> FsResult<u64> {
        let norm = vpath::normalize(path)?;
        if norm == "/" {
            return Ok(ROOT_INO);
        }
        let (_, _, ino) = self.resolve(&norm)?;
        ino.ok_or(FsError::NotFound)
    }

    /// Creates a file or directory node linked under `parent` as `name`.
    pub fn create_node(&mut self, parent: u64, name: &str, is_dir: bool) -> FsResult<u64> {
        let ino = self.next_ino;
        self.next_ino += 1;
        self.nodes.insert(ino, Node::new(ino, is_dir));
        if is_dir {
            self.dirs.insert(ino, BTreeMap::new());
        }
        self.dirs
            .get_mut(&parent)
            .ok_or(FsError::NotADirectory)?
            .insert(name.to_string(), ino);
        Ok(ino)
    }

    /// Removes the directory entry and, when this was the last reference,
    /// frees the node's blocks.  Returns the freed block count.
    pub fn remove_node(&mut self, parent: u64, name: &str) -> FsResult<u64> {
        let ino = self
            .dirs
            .get_mut(&parent)
            .ok_or(FsError::NotADirectory)?
            .remove(name)
            .ok_or(FsError::NotFound)?;
        let node = self.nodes.remove(&ino).ok_or(FsError::NotFound)?;
        self.dirs.remove(&ino);
        let freed = node.blocks.len() as u64;
        for b in node.blocks {
            self.free_block(b);
        }
        Ok(freed)
    }

    /// Accesses a node immutably.
    pub fn node(&self, ino: u64) -> FsResult<&Node> {
        self.nodes.get(&ino).ok_or(FsError::BadFd)
    }

    /// Accesses a node mutably.
    pub fn node_mut(&mut self, ino: u64) -> FsResult<&mut Node> {
        self.nodes.get_mut(&ino).ok_or(FsError::BadFd)
    }

    /// Lists a directory.
    pub fn list_dir(&self, ino: u64) -> FsResult<Vec<String>> {
        Ok(self
            .dirs
            .get(&ino)
            .ok_or(FsError::NotADirectory)?
            .keys()
            .cloned()
            .collect())
    }

    /// Whether a directory is empty.
    pub fn dir_is_empty(&self, ino: u64) -> bool {
        self.dirs.get(&ino).map(|m| m.is_empty()).unwrap_or(true)
    }

    /// Moves a directory entry (rename); frees a replaced destination node.
    pub fn move_entry(
        &mut self,
        old_parent: u64,
        old_name: &str,
        new_parent: u64,
        new_name: &str,
    ) -> FsResult<()> {
        let ino = self
            .dirs
            .get_mut(&old_parent)
            .ok_or(FsError::NotADirectory)?
            .remove(old_name)
            .ok_or(FsError::NotFound)?;
        if self
            .dirs
            .get(&new_parent)
            .ok_or(FsError::NotADirectory)?
            .contains_key(new_name)
        {
            self.remove_node(new_parent, new_name)?;
        }
        self.dirs
            .get_mut(&new_parent)
            .ok_or(FsError::NotADirectory)?
            .insert(new_name.to_string(), ino);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Descriptor table
    // ------------------------------------------------------------------

    /// Registers an open descriptor.
    pub fn insert_fd(&mut self, ino: u64, flags: OpenFlags) -> Fd {
        let fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(
            fd,
            OpenFile {
                ino,
                offset: 0,
                flags,
                last_read_end: u64::MAX,
            },
        );
        fd
    }

    /// Looks up a descriptor.
    pub fn fd(&self, fd: Fd) -> FsResult<OpenFile> {
        self.fds.get(&fd).cloned().ok_or(FsError::BadFd)
    }

    /// Mutable access to a descriptor.
    pub fn fd_mut(&mut self, fd: Fd) -> FsResult<&mut OpenFile> {
        self.fds.get_mut(&fd).ok_or(FsError::BadFd)
    }

    /// Removes a descriptor.
    pub fn remove_fd(&mut self, fd: Fd) -> FsResult<OpenFile> {
        self.fds.remove(&fd).ok_or(FsError::BadFd)
    }

    /// Computes an lseek result.
    pub fn seek(&mut self, fd: Fd, pos: SeekFrom) -> FsResult<u64> {
        let file = self.fd(fd)?;
        let size = self.node(file.ino)?.size;
        let new = match pos {
            SeekFrom::Start(o) => o as i128,
            SeekFrom::Current(d) => file.offset as i128 + d as i128,
            SeekFrom::End(d) => size as i128 + d as i128,
        };
        if new < 0 {
            return Err(FsError::InvalidArgument);
        }
        self.fd_mut(fd)?.offset = new as u64;
        Ok(new as u64)
    }

    /// Builds a [`FileStat`] for a node.
    pub fn stat_node(&self, ino: u64) -> FsResult<FileStat> {
        let node = self.node(ino)?;
        Ok(FileStat {
            ino,
            size: node.size,
            blocks: node.blocks.len() as u64,
            is_dir: node.is_dir,
            nlink: 1,
        })
    }

    // ------------------------------------------------------------------
    // Data path helpers
    // ------------------------------------------------------------------

    /// Ensures the node has backing blocks covering bytes
    /// `[0, offset+len)`, allocating as needed.  Returns how many blocks
    /// were newly allocated.
    pub fn ensure_blocks(&mut self, ino: u64, offset: u64, len: u64) -> FsResult<u64> {
        let needed_blocks = (offset + len).div_ceil(BLOCK_SIZE as u64) as usize;
        let current = self.node(ino)?.blocks.len();
        let mut newly = 0;
        for _ in current..needed_blocks {
            let b = self.alloc_block()?;
            self.node_mut(ino)?.blocks.push(b);
            newly += 1;
        }
        Ok(newly)
    }

    /// Writes `data` at `offset` into already-allocated blocks, charging the
    /// device traffic to `cat` with the given persistence mode.
    pub fn write_data(
        &self,
        ino: u64,
        offset: u64,
        data: &[u8],
        mode: PersistMode,
        cat: TimeCategory,
    ) -> FsResult<()> {
        let node = self.node(ino)?;
        let mut pos = 0usize;
        while pos < data.len() {
            let file_off = offset + pos as u64;
            let block_idx = (file_off / BLOCK_SIZE as u64) as usize;
            let within = (file_off % BLOCK_SIZE as u64) as usize;
            let chunk = (BLOCK_SIZE - within).min(data.len() - pos);
            let phys = *node
                .blocks
                .get(block_idx)
                .ok_or_else(|| FsError::Io("write beyond allocated blocks".into()))?;
            self.device.write(
                phys * BLOCK_SIZE as u64 + within as u64,
                &data[pos..pos + chunk],
                mode,
                cat,
            );
            pos += chunk;
        }
        Ok(())
    }

    /// Reads file bytes into `buf`, charging device traffic to `cat`.
    pub fn read_data(
        &self,
        ino: u64,
        offset: u64,
        buf: &mut [u8],
        pattern: AccessPattern,
        cat: TimeCategory,
    ) -> FsResult<()> {
        let node = self.node(ino)?;
        let mut pos = 0usize;
        let mut first = true;
        while pos < buf.len() {
            let file_off = offset + pos as u64;
            let block_idx = (file_off / BLOCK_SIZE as u64) as usize;
            let within = (file_off % BLOCK_SIZE as u64) as usize;
            let chunk = (BLOCK_SIZE - within).min(buf.len() - pos);
            match node.blocks.get(block_idx) {
                Some(&phys) => {
                    let p = if first {
                        pattern
                    } else {
                        AccessPattern::Sequential
                    };
                    self.device.read(
                        phys * BLOCK_SIZE as u64 + within as u64,
                        &mut buf[pos..pos + chunk],
                        p,
                        cat,
                    );
                }
                None => buf[pos..pos + chunk].fill(0),
            }
            first = false;
            pos += chunk;
        }
        Ok(())
    }

    /// Truncates a node, freeing blocks beyond the new size.
    pub fn truncate(&mut self, ino: u64, size: u64) -> FsResult<()> {
        let keep_blocks = size.div_ceil(BLOCK_SIZE as u64) as usize;
        let freed: Vec<u64> = {
            let node = self.node_mut(ino)?;
            node.size = size;
            if node.blocks.len() > keep_blocks {
                node.blocks.split_off(keep_blocks)
            } else {
                Vec::new()
            }
        };
        for b in freed {
            self.free_block(b);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemBuilder;

    fn core() -> FsCore {
        let device = PmemBuilder::new(64 * 1024 * 1024)
            .track_persistence(false)
            .build();
        FsCore::new(device, 1024 * 1024)
    }

    #[test]
    fn create_resolve_and_remove() {
        let mut c = core();
        let ino = c.create_node(ROOT_INO, "file.txt", false).unwrap();
        assert_eq!(c.resolve("/file.txt").unwrap().2, Some(ino));
        assert_eq!(c.resolve_existing("/file.txt").unwrap(), ino);
        c.remove_node(ROOT_INO, "file.txt").unwrap();
        assert_eq!(c.resolve("/file.txt").unwrap().2, None);
    }

    #[test]
    fn nested_directories_resolve() {
        let mut c = core();
        let d1 = c.create_node(ROOT_INO, "a", true).unwrap();
        let d2 = c.create_node(d1, "b", true).unwrap();
        let f = c.create_node(d2, "c.dat", false).unwrap();
        assert_eq!(c.resolve_existing("/a/b/c.dat").unwrap(), f);
        assert!(matches!(
            c.resolve("/a/missing/c.dat"),
            Err(FsError::NotFound)
        ));
    }

    #[test]
    fn data_round_trips_through_blocks() {
        let mut c = core();
        let ino = c.create_node(ROOT_INO, "f", false).unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        c.ensure_blocks(ino, 0, data.len() as u64).unwrap();
        c.write_data(
            ino,
            0,
            &data,
            PersistMode::NonTemporal,
            TimeCategory::UserData,
        )
        .unwrap();
        c.node_mut(ino).unwrap().size = data.len() as u64;
        let mut out = vec![0u8; data.len()];
        c.read_data(
            ino,
            0,
            &mut out,
            AccessPattern::Sequential,
            TimeCategory::UserData,
        )
        .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn truncate_frees_blocks() {
        let mut c = core();
        let ino = c.create_node(ROOT_INO, "f", false).unwrap();
        c.ensure_blocks(ino, 0, 10 * BLOCK_SIZE as u64).unwrap();
        let before = c.allocated_blocks();
        c.truncate(ino, BLOCK_SIZE as u64).unwrap();
        assert_eq!(c.allocated_blocks(), before - 9);
    }

    #[test]
    fn rename_replaces_destination() {
        let mut c = core();
        let a = c.create_node(ROOT_INO, "a", false).unwrap();
        let _b = c.create_node(ROOT_INO, "b", false).unwrap();
        c.move_entry(ROOT_INO, "a", ROOT_INO, "b").unwrap();
        assert_eq!(c.resolve_existing("/b").unwrap(), a);
        assert!(c.resolve_existing("/a").is_err());
    }

    #[test]
    fn fd_lifecycle() {
        let mut c = core();
        let ino = c.create_node(ROOT_INO, "f", false).unwrap();
        let fd = c.insert_fd(ino, OpenFlags::create());
        assert_eq!(c.fd(fd).unwrap().ino, ino);
        c.seek(fd, SeekFrom::Start(42)).unwrap();
        assert_eq!(c.fd(fd).unwrap().offset, 42);
        c.remove_fd(fd).unwrap();
        assert!(c.fd(fd).is_err());
    }
}
