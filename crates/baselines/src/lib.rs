//! Baseline persistent-memory file systems.
//!
//! The SplitFS paper evaluates against four publicly available PM file
//! systems.  `kernelfs::Ext4Dax` plays the part of ext4 DAX; this crate
//! provides the other three:
//!
//! * [`Pmfs`] — in-place data, undo-journaled metadata, synchronous
//!   ("sync" guarantee class).
//! * [`Nova`] — per-inode log-structured, in [`NovaMode::Relaxed`]
//!   (in-place data, "sync") or [`NovaMode::Strict`] (copy-on-write data,
//!   "strict").  Each operation writes two cache lines and issues two
//!   fences for its log — the contrast point for SplitFS's one-line /
//!   one-fence operation log.
//! * [`Strata`] — user-space private log plus digest into a shared area
//!   ("strict"), reproducing the double-write behaviour on append-heavy
//!   workloads.
//!
//! All three implement [`vfs::FileSystem`] so workloads and benchmarks run
//! unchanged against them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod common;
pub mod nova;
pub mod pmfs;
pub mod strata;

pub use nova::{Nova, NovaMode};
pub use pmfs::Pmfs;
pub use strata::Strata;
