//! PMFS baseline.
//!
//! PMFS (Dulloor et al., EuroSys '14) writes data in place, keeps metadata
//! consistent with a fine-grained undo journal, and makes every operation
//! synchronous: when a `write` returns, the data is persistent.  Data
//! operations are *not* atomic — a crash can leave a partially applied
//! overwrite — which places PMFS in the paper's "sync" guarantee class
//! together with NOVA-relaxed and SplitFS-sync (Table 3).

use std::sync::Arc;

use parking_lot::RwLock;

use pmem::{AccessPattern, PersistMode, PmemDevice, TimeCategory};
use vfs::{
    iov_total_len, ConsistencyClass, Fd, FileStat, FileSystem, FsError, FsResult, IoVec, OpenFlags,
    SeekFrom,
};

use crate::common::FsCore;

/// Bytes reserved at the start of the device for the PMFS undo journal.
const JOURNAL_RESERVED: u64 = 4 * 1024 * 1024;

/// Size of one undo-journal record.
const JOURNAL_RECORD: usize = 64;

/// The PMFS baseline file system.
#[derive(Debug)]
pub struct Pmfs {
    device: Arc<PmemDevice>,
    core: RwLock<FsCore>,
    journal_head: RwLock<u64>,
}

impl Pmfs {
    /// Creates (formats) a PMFS instance on the device.
    pub fn new(device: Arc<PmemDevice>) -> Arc<Self> {
        let core = FsCore::new(Arc::clone(&device), JOURNAL_RESERVED);
        Arc::new(Self {
            device,
            core: RwLock::new(core),
            journal_head: RwLock::new(0),
        })
    }

    fn charge_syscall(&self) {
        let cost = self.device.cost().clone();
        self.device.stats().add_kernel_trap();
        self.device
            .charge_software(cost.kernel_trap_ns + cost.vfs_path_ns);
    }

    /// Writes `records` 64-byte undo-journal records and persists them.
    fn journal(&self, records: usize) {
        let cost = self.device.cost().clone();
        self.device
            .charge_software(records as f64 * cost.pmfs_journal_record_ns);
        let mut head = self.journal_head.write();
        let entry = [0u8; JOURNAL_RECORD];
        for _ in 0..records {
            if *head + JOURNAL_RECORD as u64 > JOURNAL_RESERVED {
                *head = 0;
            }
            self.device.write(
                *head,
                &entry,
                PersistMode::NonTemporal,
                TimeCategory::Journal,
            );
            *head += JOURNAL_RECORD as u64;
        }
        self.device.fence(TimeCategory::Journal);
    }

    /// The shared write path: one trap, one allocation/journal decision
    /// and one trailing fence for the whole gather.  With `at == None` the
    /// write lands at the end of file, resolved under the same core lock
    /// as the write itself — concurrent appenders serialize instead of
    /// racing a stale `fstat`.
    fn vectored_write(&self, fd: Fd, at: Option<u64>, iov: &[IoVec<'_>]) -> FsResult<usize> {
        self.charge_syscall();
        let cost = self.device.cost().clone();
        let mut core = self.core.write();
        let file = core.fd(fd)?;
        if !file.flags.write {
            return Err(FsError::PermissionDenied);
        }
        let total = iov_total_len(iov);
        if total == 0 {
            return Ok(0);
        }
        let offset = match at {
            Some(offset) => offset,
            None => core.node(file.ino)?.size,
        };
        let newly = core.ensure_blocks(file.ino, offset, total)?;
        if newly > 0 {
            // Block allocation updates allocator metadata under journal
            // protection.
            self.device
                .charge_software(cost.pmfs_alloc_ns * newly.div_ceil(8) as f64);
            self.journal(1 + (newly as usize).div_ceil(64));
        }
        // In-place synchronous data writes, one fence for the gather.
        let mut cur = offset;
        for v in iov {
            if v.is_empty() {
                continue;
            }
            core.write_data(
                file.ino,
                cur,
                v.as_slice(),
                PersistMode::NonTemporal,
                TimeCategory::UserData,
            )?;
            cur += v.len() as u64;
        }
        self.device.fence(TimeCategory::UserData);
        let node = core.node_mut(file.ino)?;
        let new_end = offset + total;
        if new_end > node.size {
            node.size = new_end;
            self.device.charge_software(cost.pmfs_inode_update_ns);
            drop(core);
            self.journal(1);
        }
        Ok(total as usize)
    }
}

impl FileSystem for Pmfs {
    fn name(&self) -> String {
        "PMFS".to_string()
    }

    fn consistency(&self) -> ConsistencyClass {
        ConsistencyClass::Sync
    }

    fn device(&self) -> &Arc<PmemDevice> {
        &self.device
    }

    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        self.charge_syscall();
        let cost = self.device.cost().clone();
        let mut core = self.core.write();
        let (parent, name, existing) = core.resolve(path)?;
        let ino = match existing {
            Some(ino) => {
                if flags.exclusive && flags.create {
                    return Err(FsError::AlreadyExists);
                }
                if flags.truncate {
                    self.journal(2);
                    core.truncate(ino, 0)?;
                }
                ino
            }
            None => {
                if !flags.create {
                    return Err(FsError::NotFound);
                }
                self.device.charge_software(cost.pmfs_inode_update_ns);
                self.journal(2);
                core.create_node(parent, &name, false)?
            }
        };
        Ok(core.insert_fd(ino, flags))
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        self.charge_syscall();
        self.core.write().remove_fd(fd)?;
        Ok(())
    }

    fn read_at(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.charge_syscall();
        let mut core = self.core.write();
        let file = core.fd(fd)?;
        if !file.flags.read {
            return Err(FsError::PermissionDenied);
        }
        let size = core.node(file.ino)?.size;
        if offset >= size || buf.is_empty() {
            return Ok(0);
        }
        let n = ((size - offset) as usize).min(buf.len());
        let pattern = if offset == file.last_read_end {
            AccessPattern::Sequential
        } else {
            AccessPattern::Random
        };
        core.read_data(
            file.ino,
            offset,
            &mut buf[..n],
            pattern,
            TimeCategory::UserData,
        )?;
        core.fd_mut(fd)?.last_read_end = offset + n as u64;
        Ok(n)
    }

    fn write_at(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.vectored_write(fd, Some(offset), &[IoVec::new(data)])
    }

    fn writev_at(&self, fd: Fd, offset: u64, iov: &[IoVec<'_>]) -> FsResult<usize> {
        self.vectored_write(fd, Some(offset), iov)
    }

    fn appendv(&self, fd: Fd, iov: &[IoVec<'_>]) -> FsResult<usize> {
        let n = self.vectored_write(fd, None, iov)?;
        self.device.stats().add_appendv(iov.len() as u64);
        Ok(n)
    }

    fn fsync_many(&self, fds: &[Fd]) -> FsResult<()> {
        // Every operation is already synchronous; the batch pays one trap
        // instead of one per descriptor.
        if fds.is_empty() {
            return Ok(());
        }
        self.charge_syscall();
        let core = self.core.read();
        for &fd in fds {
            core.fd(fd)?;
        }
        self.device.stats().add_fsync_many(fds.len() as u64);
        Ok(())
    }

    fn read(&self, fd: Fd, buf: &mut [u8]) -> FsResult<usize> {
        let offset = self.core.read().fd(fd)?.offset;
        let n = self.read_at(fd, offset, buf)?;
        self.core.write().fd_mut(fd)?.offset = offset + n as u64;
        Ok(n)
    }

    fn write(&self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        let offset = {
            let core = self.core.read();
            let file = core.fd(fd)?;
            if file.flags.append {
                core.node(file.ino)?.size
            } else {
                file.offset
            }
        };
        let n = self.write_at(fd, offset, data)?;
        self.core.write().fd_mut(fd)?.offset = offset + n as u64;
        Ok(n)
    }

    fn lseek(&self, fd: Fd, pos: SeekFrom) -> FsResult<u64> {
        self.charge_syscall();
        self.core.write().seek(fd, pos)
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        // Every operation is already synchronous; fsync only pays the trap.
        self.charge_syscall();
        self.core.read().fd(fd)?;
        Ok(())
    }

    fn ftruncate(&self, fd: Fd, size: u64) -> FsResult<()> {
        self.charge_syscall();
        let mut core = self.core.write();
        let file = core.fd(fd)?;
        self.journal(2);
        if size > core.node(file.ino)?.size {
            core.ensure_blocks(file.ino, 0, size)?;
            core.node_mut(file.ino)?.size = size;
        } else {
            core.truncate(file.ino, size)?;
        }
        Ok(())
    }

    fn fstat(&self, fd: Fd) -> FsResult<FileStat> {
        self.charge_syscall();
        let core = self.core.read();
        let file = core.fd(fd)?;
        core.stat_node(file.ino)
    }

    fn stat(&self, path: &str) -> FsResult<FileStat> {
        self.charge_syscall();
        let core = self.core.read();
        let ino = core.resolve_existing(path)?;
        core.stat_node(ino)
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        self.charge_syscall();
        let mut core = self.core.write();
        let (parent, name, existing) = core.resolve(path)?;
        let ino = existing.ok_or(FsError::NotFound)?;
        if core.node(ino)?.is_dir {
            return Err(FsError::IsADirectory);
        }
        self.journal(2);
        core.remove_node(parent, &name)?;
        Ok(())
    }

    fn rename(&self, old: &str, new: &str) -> FsResult<()> {
        self.charge_syscall();
        let mut core = self.core.write();
        let (old_parent, old_name, old_ino) = core.resolve(old)?;
        old_ino.ok_or(FsError::NotFound)?;
        let (new_parent, new_name, _) = core.resolve(new)?;
        self.journal(3);
        core.move_entry(old_parent, &old_name, new_parent, &new_name)
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        self.charge_syscall();
        let mut core = self.core.write();
        let (parent, name, existing) = core.resolve(path)?;
        if existing.is_some() {
            return Err(FsError::AlreadyExists);
        }
        self.journal(2);
        core.create_node(parent, &name, true)?;
        Ok(())
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        self.charge_syscall();
        let mut core = self.core.write();
        let (parent, name, existing) = core.resolve(path)?;
        let ino = existing.ok_or(FsError::NotFound)?;
        if !core.node(ino)?.is_dir {
            return Err(FsError::NotADirectory);
        }
        if !core.dir_is_empty(ino) {
            return Err(FsError::NotEmpty);
        }
        self.journal(2);
        core.remove_node(parent, &name)?;
        Ok(())
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        self.charge_syscall();
        let core = self.core.read();
        let ino = core.resolve_existing(path)?;
        core.list_dir(ino)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::BLOCK_SIZE;
    use pmem::PmemBuilder;

    fn fs() -> Arc<Pmfs> {
        let device = PmemBuilder::new(64 * 1024 * 1024)
            .track_persistence(false)
            .build();
        Pmfs::new(device)
    }

    #[test]
    fn write_read_round_trip() {
        let fs = fs();
        let fd = fs.open("/f", OpenFlags::create()).unwrap();
        let data = vec![9u8; 3 * BLOCK_SIZE + 17];
        fs.write_at(fd, 0, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        assert_eq!(fs.read_at(fd, 0, &mut out).unwrap(), data.len());
        assert_eq!(out, data);
    }

    #[test]
    fn writes_are_synchronous() {
        // Synchronous means the data write was fenced before returning —
        // nothing should remain unpersisted after write_at.
        let device = PmemBuilder::new(64 * 1024 * 1024).build();
        let fs = Pmfs::new(Arc::clone(&device));
        let fd = fs.open("/f", OpenFlags::create()).unwrap();
        fs.write_at(fd, 0, &vec![1u8; 8192]).unwrap();
        assert_eq!(device.unpersisted_lines(), 0);
    }

    #[test]
    fn metadata_operations_journal() {
        let fs = fs();
        let before = fs
            .device()
            .stats()
            .snapshot()
            .written(TimeCategory::Journal);
        let fd = fs.open("/newfile", OpenFlags::create()).unwrap();
        fs.close(fd).unwrap();
        fs.unlink("/newfile").unwrap();
        let after = fs
            .device()
            .stats()
            .snapshot()
            .written(TimeCategory::Journal);
        assert!(after > before, "create/unlink must write journal records");
    }

    #[test]
    fn rename_and_directories() {
        let fs = fs();
        fs.mkdir("/dir").unwrap();
        fs.write_file("/dir/a", b"abc").unwrap();
        fs.rename("/dir/a", "/dir/b").unwrap();
        assert_eq!(fs.read_file("/dir/b").unwrap(), b"abc");
        assert!(fs.stat("/dir/a").is_err());
        assert_eq!(fs.readdir("/dir").unwrap(), vec!["b".to_string()]);
    }
}
