//! NOVA baseline.
//!
//! NOVA (Xu & Swanson, FAST '16) is a log-structured PM file system: every
//! inode has its own log on PM, and each operation appends a log entry and
//! then persists the new log tail.  The paper's evaluation uses two
//! configurations (§3.2):
//!
//! * **NOVA-relaxed** — in-place data updates, no checksums: the "sync"
//!   guarantee class.
//! * **NOVA-strict** — copy-on-write data updates: the "strict" class.
//!
//! The cost structure SplitFS contrasts itself with is NOVA's logging: at
//! least **two cache lines written and two fences** per operation (the log
//! entry and the persisted log tail), versus SplitFS's single 64 B entry
//! and single fence (§3.3).  That behaviour is reproduced here: every
//! mutating operation calls `Nova::log_op`, which writes a 128 B entry,
//! fences, updates the on-PM tail, and fences again.

use std::sync::Arc;

use parking_lot::RwLock;

use pmem::{AccessPattern, PersistMode, PmemDevice, TimeCategory};
use vfs::{
    iov_total_len, ConsistencyClass, Fd, FileStat, FileSystem, FsError, FsResult, IoVec, OpenFlags,
    SeekFrom,
};

use crate::common::{FsCore, BLOCK_SIZE};

/// Bytes reserved at the start of the device for the per-inode logs
/// (modelled as one circular region).
const LOG_RESERVED: u64 = 64 * 1024 * 1024;

/// Size of a NOVA log entry: two cache lines.
const LOG_ENTRY: usize = 128;

/// Which NOVA configuration to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NovaMode {
    /// In-place data updates; synchronous but not atomic ("NOVA-relaxed").
    Relaxed,
    /// Copy-on-write data updates; synchronous and atomic ("NOVA-strict").
    Strict,
}

/// The NOVA baseline file system.
#[derive(Debug)]
pub struct Nova {
    device: Arc<PmemDevice>,
    core: RwLock<FsCore>,
    mode: NovaMode,
    log_head: RwLock<u64>,
}

impl Nova {
    /// Creates (formats) a NOVA instance in the given mode.
    pub fn new(device: Arc<PmemDevice>, mode: NovaMode) -> Arc<Self> {
        let core = FsCore::new(Arc::clone(&device), LOG_RESERVED);
        Arc::new(Self {
            device,
            core: RwLock::new(core),
            mode,
            log_head: RwLock::new(0),
        })
    }

    fn charge_syscall(&self) {
        let cost = self.device.cost().clone();
        self.device.stats().add_kernel_trap();
        self.device
            .charge_software(cost.kernel_trap_ns + cost.vfs_path_ns);
    }

    /// Appends one log entry for an operation: 128 B entry + fence, then the
    /// on-PM log tail (one cache line) + fence — NOVA's two-line/two-fence
    /// pattern.
    fn log_op(&self) {
        let cost = self.device.cost().clone();
        self.device.charge_software(cost.nova_log_entry_ns);
        let mut head = self.log_head.write();
        if *head + LOG_ENTRY as u64 + 64 > LOG_RESERVED {
            *head = 0;
        }
        let entry = [0u8; LOG_ENTRY];
        self.device.write(
            *head,
            &entry,
            PersistMode::NonTemporal,
            TimeCategory::Journal,
        );
        self.device.fence(TimeCategory::Journal);
        *head += LOG_ENTRY as u64;
        // Persist the log tail pointer (one cache line) with a second fence.
        let tail = [0u8; 64];
        self.device.write(
            *head,
            &tail,
            PersistMode::NonTemporal,
            TimeCategory::Journal,
        );
        self.device.fence(TimeCategory::Journal);
        *head += 64;
        self.device.charge_software(cost.nova_radix_update_ns);
    }

    /// Writes one slice's bytes with the core lock held, in the mode's
    /// style (relaxed: in place; strict: copy-on-write per touched block).
    /// Does not fence, update the size, or log — the caller does that once
    /// per logical operation.
    fn write_slice(&self, core: &mut FsCore, ino: u64, offset: u64, data: &[u8]) -> FsResult<()> {
        let cost = self.device.cost().clone();
        let old_size = core.node(ino)?.size;
        match self.mode {
            NovaMode::Relaxed => {
                let newly = core.ensure_blocks(ino, offset, data.len() as u64)?;
                if newly > 0 {
                    self.device.charge_software(cost.nova_alloc_ns);
                }
                core.write_data(
                    ino,
                    offset,
                    data,
                    PersistMode::NonTemporal,
                    TimeCategory::UserData,
                )?;
            }
            NovaMode::Strict => {
                // Copy-on-write: every touched block gets a freshly
                // allocated replacement containing merged old + new bytes.
                // Holes below the write are filled with allocated blocks
                // first so the logical-to-physical map stays dense.
                core.ensure_blocks(ino, offset, data.len() as u64)?;
                let first_block = offset / BLOCK_SIZE as u64;
                let last_block = (offset + data.len() as u64 - 1) / BLOCK_SIZE as u64;
                self.device.charge_software(cost.nova_alloc_ns);
                for block in first_block..=last_block {
                    let block_start = block * BLOCK_SIZE as u64;
                    let mut image = vec![0u8; BLOCK_SIZE];
                    // Preserve existing bytes of a partially overwritten
                    // block.
                    let had_old = old_size > block_start;
                    if had_old {
                        core.read_data(
                            ino,
                            block_start,
                            &mut image,
                            AccessPattern::Sequential,
                            TimeCategory::UserData,
                        )?;
                    }
                    // Overlay the new bytes.
                    let copy_start = offset.max(block_start);
                    let copy_end =
                        (offset + data.len() as u64).min(block_start + BLOCK_SIZE as u64);
                    let src_from = (copy_start - offset) as usize;
                    let src_to = (copy_end - offset) as usize;
                    let dst_from = (copy_start - block_start) as usize;
                    image[dst_from..dst_from + (src_to - src_from)]
                        .copy_from_slice(&data[src_from..src_to]);

                    // Write the replacement block and swap it in.
                    let new_block = core.alloc_block()?;
                    self.device.write(
                        new_block * BLOCK_SIZE as u64,
                        &image,
                        PersistMode::NonTemporal,
                        TimeCategory::UserData,
                    );
                    let node = core.node_mut(ino)?;
                    let old_block = node.blocks[block as usize];
                    node.blocks[block as usize] = new_block;
                    core.free_block(old_block);
                }
            }
        }
        let new_end = offset + data.len() as u64;
        if new_end > old_size {
            core.node_mut(ino)?.size = new_end;
        }
        Ok(())
    }

    /// The shared write path: one trap, one data fence and **one** inode
    /// log commit (2 cache lines, 2 fences) for the whole gather.  With
    /// `at == None` the write lands at the end of file, resolved under the
    /// same core lock as the write — concurrent appenders serialize.
    fn vectored_write(&self, fd: Fd, at: Option<u64>, iov: &[IoVec<'_>]) -> FsResult<usize> {
        self.charge_syscall();
        let mut core = self.core.write();
        let file = core.fd(fd)?;
        if !file.flags.write {
            return Err(FsError::PermissionDenied);
        }
        let total = iov_total_len(iov);
        if total == 0 {
            return Ok(0);
        }
        let offset = match at {
            Some(offset) => offset,
            None => core.node(file.ino)?.size,
        };
        let mut cur = offset;
        for v in iov {
            if v.is_empty() {
                continue;
            }
            self.write_slice(&mut core, file.ino, cur, v.as_slice())?;
            cur += v.len() as u64;
        }
        self.device.fence(TimeCategory::UserData);
        // Commit the operation in the inode log (2 cache lines, 2 fences).
        self.log_op();
        Ok(total as usize)
    }
}

impl FileSystem for Nova {
    fn name(&self) -> String {
        match self.mode {
            NovaMode::Relaxed => "NOVA-relaxed".to_string(),
            NovaMode::Strict => "NOVA-strict".to_string(),
        }
    }

    fn consistency(&self) -> ConsistencyClass {
        match self.mode {
            NovaMode::Relaxed => ConsistencyClass::Sync,
            NovaMode::Strict => ConsistencyClass::Strict,
        }
    }

    fn device(&self) -> &Arc<PmemDevice> {
        &self.device
    }

    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        self.charge_syscall();
        let cost = self.device.cost().clone();
        let mut core = self.core.write();
        let (parent, name, existing) = core.resolve(path)?;
        let ino = match existing {
            Some(ino) => {
                if flags.exclusive && flags.create {
                    return Err(FsError::AlreadyExists);
                }
                if flags.truncate {
                    self.log_op();
                    core.truncate(ino, 0)?;
                }
                ino
            }
            None => {
                if !flags.create {
                    return Err(FsError::NotFound);
                }
                self.device.charge_software(cost.nova_alloc_ns);
                self.log_op();
                core.create_node(parent, &name, false)?
            }
        };
        Ok(core.insert_fd(ino, flags))
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        self.charge_syscall();
        self.core.write().remove_fd(fd)?;
        Ok(())
    }

    fn read_at(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.charge_syscall();
        let cost = self.device.cost().clone();
        self.device.charge_software(cost.nova_radix_update_ns * 0.5);
        let mut core = self.core.write();
        let file = core.fd(fd)?;
        if !file.flags.read {
            return Err(FsError::PermissionDenied);
        }
        let size = core.node(file.ino)?.size;
        if offset >= size || buf.is_empty() {
            return Ok(0);
        }
        let n = ((size - offset) as usize).min(buf.len());
        let pattern = if offset == file.last_read_end {
            AccessPattern::Sequential
        } else {
            AccessPattern::Random
        };
        core.read_data(
            file.ino,
            offset,
            &mut buf[..n],
            pattern,
            TimeCategory::UserData,
        )?;
        core.fd_mut(fd)?.last_read_end = offset + n as u64;
        Ok(n)
    }

    fn write_at(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.vectored_write(fd, Some(offset), &[IoVec::new(data)])
    }

    fn writev_at(&self, fd: Fd, offset: u64, iov: &[IoVec<'_>]) -> FsResult<usize> {
        self.vectored_write(fd, Some(offset), iov)
    }

    fn appendv(&self, fd: Fd, iov: &[IoVec<'_>]) -> FsResult<usize> {
        let n = self.vectored_write(fd, None, iov)?;
        self.device.stats().add_appendv(iov.len() as u64);
        Ok(n)
    }

    fn fsync_many(&self, fds: &[Fd]) -> FsResult<()> {
        // Operations are synchronous; the batch pays one trap for the set.
        if fds.is_empty() {
            return Ok(());
        }
        self.charge_syscall();
        let core = self.core.read();
        for &fd in fds {
            core.fd(fd)?;
        }
        self.device.stats().add_fsync_many(fds.len() as u64);
        Ok(())
    }

    fn read(&self, fd: Fd, buf: &mut [u8]) -> FsResult<usize> {
        let offset = self.core.read().fd(fd)?.offset;
        let n = self.read_at(fd, offset, buf)?;
        self.core.write().fd_mut(fd)?.offset = offset + n as u64;
        Ok(n)
    }

    fn write(&self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        let offset = {
            let core = self.core.read();
            let file = core.fd(fd)?;
            if file.flags.append {
                core.node(file.ino)?.size
            } else {
                file.offset
            }
        };
        let n = self.write_at(fd, offset, data)?;
        self.core.write().fd_mut(fd)?.offset = offset + n as u64;
        Ok(n)
    }

    fn lseek(&self, fd: Fd, pos: SeekFrom) -> FsResult<u64> {
        self.charge_syscall();
        self.core.write().seek(fd, pos)
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        // Operations are synchronous; fsync costs only the trap.
        self.charge_syscall();
        self.core.read().fd(fd)?;
        Ok(())
    }

    fn ftruncate(&self, fd: Fd, size: u64) -> FsResult<()> {
        self.charge_syscall();
        let mut core = self.core.write();
        let file = core.fd(fd)?;
        self.log_op();
        if size > core.node(file.ino)?.size {
            core.ensure_blocks(file.ino, 0, size)?;
            core.node_mut(file.ino)?.size = size;
        } else {
            core.truncate(file.ino, size)?;
        }
        Ok(())
    }

    fn fstat(&self, fd: Fd) -> FsResult<FileStat> {
        self.charge_syscall();
        let core = self.core.read();
        let file = core.fd(fd)?;
        core.stat_node(file.ino)
    }

    fn stat(&self, path: &str) -> FsResult<FileStat> {
        self.charge_syscall();
        let core = self.core.read();
        let ino = core.resolve_existing(path)?;
        core.stat_node(ino)
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        self.charge_syscall();
        let mut core = self.core.write();
        let (parent, name, existing) = core.resolve(path)?;
        let ino = existing.ok_or(FsError::NotFound)?;
        if core.node(ino)?.is_dir {
            return Err(FsError::IsADirectory);
        }
        self.log_op();
        core.remove_node(parent, &name)?;
        Ok(())
    }

    fn rename(&self, old: &str, new: &str) -> FsResult<()> {
        self.charge_syscall();
        let mut core = self.core.write();
        let (old_parent, old_name, old_ino) = core.resolve(old)?;
        old_ino.ok_or(FsError::NotFound)?;
        let (new_parent, new_name, _) = core.resolve(new)?;
        // Rename touches two directory logs.
        self.log_op();
        self.log_op();
        core.move_entry(old_parent, &old_name, new_parent, &new_name)
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        self.charge_syscall();
        let mut core = self.core.write();
        let (parent, name, existing) = core.resolve(path)?;
        if existing.is_some() {
            return Err(FsError::AlreadyExists);
        }
        self.log_op();
        core.create_node(parent, &name, true)?;
        Ok(())
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        self.charge_syscall();
        let mut core = self.core.write();
        let (parent, name, existing) = core.resolve(path)?;
        let ino = existing.ok_or(FsError::NotFound)?;
        if !core.node(ino)?.is_dir {
            return Err(FsError::NotADirectory);
        }
        if !core.dir_is_empty(ino) {
            return Err(FsError::NotEmpty);
        }
        self.log_op();
        core.remove_node(parent, &name)?;
        Ok(())
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        self.charge_syscall();
        let core = self.core.read();
        let ino = core.resolve_existing(path)?;
        core.list_dir(ino)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemBuilder;

    fn fs(mode: NovaMode) -> Arc<Nova> {
        let device = PmemBuilder::new(128 * 1024 * 1024)
            .track_persistence(false)
            .build();
        Nova::new(device, mode)
    }

    #[test]
    fn strict_and_relaxed_round_trip_data() {
        for mode in [NovaMode::Relaxed, NovaMode::Strict] {
            let fs = fs(mode);
            let fd = fs.open("/f", OpenFlags::create()).unwrap();
            let data: Vec<u8> = (0..9000u32).map(|i| (i % 241) as u8).collect();
            fs.write_at(fd, 0, &data).unwrap();
            // Partial overwrite in the middle.
            fs.write_at(fd, 4000, &[0xEE; 200]).unwrap();
            let mut out = vec![0u8; data.len()];
            fs.read_at(fd, 0, &mut out).unwrap();
            assert_eq!(&out[..4000], &data[..4000]);
            assert_eq!(&out[4000..4200], &[0xEE; 200]);
            assert_eq!(&out[4200..], &data[4200..]);
        }
    }

    #[test]
    fn every_write_logs_two_cache_lines_and_two_fences() {
        let fs = fs(NovaMode::Strict);
        let fd = fs.open("/f", OpenFlags::create()).unwrap();
        let before = fs.device().stats().snapshot();
        fs.write_at(fd, 0, &vec![1u8; BLOCK_SIZE]).unwrap();
        let delta = fs.device().stats().snapshot().delta_since(&before);
        assert_eq!(delta.written(TimeCategory::Journal), 192); // 128 + 64
                                                               // Data fence + two log fences.
        assert_eq!(delta.fences, 3);
    }

    #[test]
    fn strict_cow_does_not_write_in_place() {
        let fs = fs(NovaMode::Strict);
        let fd = fs.open("/f", OpenFlags::create()).unwrap();
        fs.write_at(fd, 0, &vec![1u8; BLOCK_SIZE]).unwrap();
        let core = fs.core.read();
        let ino = core.fd(fd).unwrap().ino;
        let first = core.node(ino).unwrap().blocks[0];
        drop(core);
        fs.write_at(fd, 0, &vec![2u8; BLOCK_SIZE]).unwrap();
        let core = fs.core.read();
        let second = core.node(ino).unwrap().blocks[0];
        assert_ne!(first, second, "strict mode must copy-on-write");
    }

    #[test]
    fn relaxed_overwrites_in_place() {
        let fs = fs(NovaMode::Relaxed);
        let fd = fs.open("/f", OpenFlags::create()).unwrap();
        fs.write_at(fd, 0, &vec![1u8; BLOCK_SIZE]).unwrap();
        let core = fs.core.read();
        let ino = core.fd(fd).unwrap().ino;
        let first = core.node(ino).unwrap().blocks[0];
        drop(core);
        fs.write_at(fd, 0, &vec![2u8; BLOCK_SIZE]).unwrap();
        let core = fs.core.read();
        assert_eq!(core.node(ino).unwrap().blocks[0], first);
    }

    #[test]
    fn consistency_classes_match_modes() {
        assert_eq!(fs(NovaMode::Relaxed).consistency(), ConsistencyClass::Sync);
        assert_eq!(fs(NovaMode::Strict).consistency(), ConsistencyClass::Strict);
    }
}
