//! A LevelDB-like log-structured merge-tree key-value store.
//!
//! The store produces the same file-system traffic pattern as LevelDB under
//! YCSB, which is what the SplitFS evaluation measures: every `put` appends
//! a record to a write-ahead log (and optionally fsyncs it), full memtables
//! are flushed to immutable sorted string tables (SSTables) with large
//! sequential writes followed by an fsync, reads consult the memtable and
//! then the SSTables newest-first, and a simple compaction merges SSTables
//! and unlinks the old ones.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::{Buf, BufMut, BytesMut};
use vfs::{Fd, FileSystem, FsError, FsResult, IoVec, OpenFlags};

/// Tuning knobs for [`LsmStore`].
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Directory that holds the WAL, SSTables and MANIFEST.
    pub dir: String,
    /// Flush the memtable to an SSTable once it holds this many bytes.
    pub memtable_bytes: usize,
    /// Fsync the write-ahead log after every put (YCSB's `sync` option).
    pub sync_writes: bool,
    /// Merge all SSTables once their count reaches this threshold.
    pub compaction_trigger: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self {
            dir: "/leveldb".to_string(),
            memtable_bytes: 2 * 1024 * 1024,
            sync_writes: false,
            compaction_trigger: 6,
        }
    }
}

/// In-memory metadata of one SSTable.
#[derive(Debug, Clone)]
struct SsTable {
    path: String,
    /// Cached open descriptor, like LevelDB's table cache: lookups read
    /// through it instead of re-opening the file per operation.
    fd: Fd,
    /// Sorted (key, value offset, value length) index; a tombstone has
    /// `len == u32::MAX`.
    index: Vec<(Vec<u8>, u64, u32)>,
}

impl SsTable {
    fn get(&self, key: &[u8]) -> Option<(u64, u32)> {
        self.index
            .binary_search_by(|(k, _, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| (self.index[i].1, self.index[i].2))
    }
}

/// Value stored in the memtable: `None` is a tombstone.
type MemValue = Option<Vec<u8>>;

/// The LSM key-value store.
pub struct LsmStore {
    fs: Arc<dyn FileSystem>,
    config: LsmConfig,
    memtable: BTreeMap<Vec<u8>, MemValue>,
    memtable_bytes: usize,
    wal_fd: Fd,
    wal_path: String,
    /// SSTables, oldest first (reads scan newest first).
    sstables: Vec<SsTable>,
    next_table_id: u64,
    /// Number of memtable flushes performed (exposed for tests).
    flushes: u64,
    /// Number of compactions performed (exposed for tests).
    compactions: u64,
}

impl std::fmt::Debug for LsmStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmStore")
            .field("dir", &self.config.dir)
            .field("memtable_entries", &self.memtable.len())
            .field("sstables", &self.sstables.len())
            .finish()
    }
}

const TOMBSTONE: u32 = u32::MAX;

impl LsmStore {
    /// Creates (or reopens) a store in `config.dir` on `fs`.  An existing
    /// store is recovered: SSTables are re-indexed and the WAL is replayed
    /// into the memtable.
    pub fn open(fs: Arc<dyn FileSystem>, config: LsmConfig) -> FsResult<Self> {
        if !fs.exists(&config.dir) {
            fs.mkdir(&config.dir)?;
        }
        let wal_path = format!("{}/wal.log", config.dir);

        // Recover SSTables (named sstable-<id>.sst).
        let mut sstables = Vec::new();
        let mut next_table_id = 0;
        let mut names = fs.readdir(&config.dir)?;
        names.sort();
        for name in &names {
            if let Some(id) = name
                .strip_prefix("sstable-")
                .and_then(|s| s.strip_suffix(".sst"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                let path = format!("{}/{}", config.dir, name);
                let table = Self::load_sstable(fs.as_ref(), &path)?;
                sstables.push(table);
                next_table_id = next_table_id.max(id + 1);
            }
        }

        // Replay the WAL into a fresh memtable.
        let mut memtable = BTreeMap::new();
        let mut memtable_bytes = 0;
        if fs.exists(&wal_path) {
            let data = fs.read_file(&wal_path)?;
            for (key, value) in Self::parse_wal(&data) {
                memtable_bytes += key.len() + value.as_ref().map(|v| v.len()).unwrap_or(0) + 16;
                memtable.insert(key, value);
            }
        }
        let wal_fd = fs.open(&wal_path, OpenFlags::append())?;

        Ok(Self {
            fs,
            config,
            memtable,
            memtable_bytes,
            wal_fd,
            wal_path,
            sstables,
            next_table_id,
            flushes: 0,
            compactions: 0,
        })
    }

    /// Number of memtable flushes so far.
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Number of compactions so far.
    pub fn compaction_count(&self) -> u64 {
        self.compactions
    }

    /// Number of live SSTables.
    pub fn sstable_count(&self) -> usize {
        self.sstables.len()
    }

    /// Encodes the 8-byte WAL record header (key length + value length or
    /// tombstone marker).  The record body is gathered from the caller's
    /// key/value slices directly via `appendv` — no concatenation buffer.
    fn wal_header(key: &[u8], value: Option<&[u8]>) -> [u8; 8] {
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(key.len() as u32).to_le_bytes());
        let vlen = match value {
            Some(v) => v.len() as u32,
            None => TOMBSTONE,
        };
        header[4..].copy_from_slice(&vlen.to_le_bytes());
        header
    }

    fn parse_wal(data: &[u8]) -> Vec<(Vec<u8>, MemValue)> {
        let mut out = Vec::new();
        let mut cursor = data;
        while cursor.remaining() >= 8 {
            let klen = cursor.get_u32_le() as usize;
            let vlen_raw = cursor.get_u32_le();
            let vlen = if vlen_raw == TOMBSTONE {
                0
            } else {
                vlen_raw as usize
            };
            if cursor.remaining() < klen + vlen {
                break; // torn tail
            }
            let key = cursor.copy_to_bytes(klen).to_vec();
            let value = if vlen_raw == TOMBSTONE {
                None
            } else {
                Some(cursor.copy_to_bytes(vlen).to_vec())
            };
            out.push((key, value));
        }
        out
    }

    /// Inserts or updates a key.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> FsResult<()> {
        self.write_entry(key, Some(value))
    }

    /// Deletes a key (writes a tombstone).
    pub fn delete(&mut self, key: &[u8]) -> FsResult<()> {
        self.write_entry(key, None)
    }

    fn write_entry(&mut self, key: &[u8], value: Option<&[u8]>) -> FsResult<()> {
        let header = Self::wal_header(key, value);
        let mut iov = [IoVec::new(&header), IoVec::new(key), IoVec::new(&[])];
        if let Some(v) = value {
            iov[2] = IoVec::new(v);
        }
        self.fs.appendv(self.wal_fd, &iov)?;
        if self.config.sync_writes {
            self.fs.fdatasync(self.wal_fd)?;
        }
        self.memtable_bytes += key.len() + value.map_or(0, <[u8]>::len) + 16;
        self.memtable
            .insert(key.to_vec(), value.map(<[u8]>::to_vec));
        if self.memtable_bytes >= self.config.memtable_bytes {
            self.flush_memtable()?;
        }
        Ok(())
    }

    /// Looks up a key.
    pub fn get(&self, key: &[u8]) -> FsResult<Option<Vec<u8>>> {
        if let Some(value) = self.memtable.get(key) {
            return Ok(value.clone());
        }
        for table in self.sstables.iter().rev() {
            if let Some((offset, len)) = table.get(key) {
                if len == TOMBSTONE {
                    return Ok(None);
                }
                // Zero-copy on file systems that serve mapped views; the
                // value is materialized once, into its final Vec.
                let view = self.fs.read_view(table.fd, offset, len as usize)?;
                return Ok(Some(view.into_vec()));
            }
        }
        Ok(None)
    }

    /// Returns up to `count` key/value pairs with keys ≥ `start`, in key
    /// order (the YCSB scan operation).
    pub fn scan(&self, start: &[u8], count: usize) -> FsResult<Vec<(Vec<u8>, Vec<u8>)>> {
        // Merge the memtable and every SSTable index; newest source wins.
        let mut merged: BTreeMap<Vec<u8>, Option<(usize, u64, u32)>> = BTreeMap::new();
        for (i, table) in self.sstables.iter().enumerate() {
            let from = table
                .index
                .partition_point(|(k, _, _)| k.as_slice() < start);
            for (k, off, len) in table.index.iter().skip(from).take(count * 2) {
                merged.insert(k.clone(), Some((i, *off, *len)));
            }
        }
        for (k, v) in self.memtable.range(start.to_vec()..) {
            match v {
                Some(_) => {
                    merged.insert(k.clone(), None); // resolved from memtable
                }
                None => {
                    merged.remove(k);
                }
            }
            if merged.len() > count * 2 {
                break;
            }
        }
        let mut out = Vec::new();
        for (k, loc) in merged {
            if out.len() >= count {
                break;
            }
            match loc {
                None => {
                    if let Some(Some(v)) = self.memtable.get(&k) {
                        out.push((k, v.clone()));
                    }
                }
                Some((table_idx, off, len)) => {
                    if len == TOMBSTONE {
                        continue;
                    }
                    let table = &self.sstables[table_idx];
                    let view = self.fs.read_view(table.fd, off, len as usize)?;
                    out.push((k, view.into_vec()));
                }
            }
        }
        Ok(out)
    }

    /// Flushes the memtable into a new SSTable and truncates the WAL.
    pub fn flush_memtable(&mut self) -> FsResult<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let id = self.next_table_id;
        self.next_table_id += 1;
        let path = format!("{}/sstable-{:06}.sst", self.config.dir, id);
        let entries: Vec<(Vec<u8>, MemValue)> =
            std::mem::take(&mut self.memtable).into_iter().collect();
        self.memtable_bytes = 0;
        let table = Self::write_sstable(self.fs.as_ref(), &path, &entries)?;
        self.sstables.push(table);
        self.flushes += 1;

        // The WAL's contents are now durable in the SSTable.
        self.fs.close(self.wal_fd)?;
        self.fs.unlink(&self.wal_path)?;
        self.wal_fd = self.fs.open(&self.wal_path, OpenFlags::append())?;

        if self.sstables.len() >= self.config.compaction_trigger {
            self.compact()?;
        }
        Ok(())
    }

    /// Merges every SSTable into one and removes the inputs.
    pub fn compact(&mut self) -> FsResult<()> {
        if self.sstables.len() < 2 {
            return Ok(());
        }
        // Newest value wins: iterate oldest → newest into a map.
        let mut merged: BTreeMap<Vec<u8>, MemValue> = BTreeMap::new();
        let old: Vec<SsTable> = std::mem::take(&mut self.sstables);
        for table in &old {
            for (key, offset, len) in &table.index {
                if *len == TOMBSTONE {
                    merged.insert(key.clone(), None);
                } else {
                    let view = self.fs.read_view(table.fd, *offset, *len as usize)?;
                    merged.insert(key.clone(), Some(view.into_vec()));
                }
            }
        }
        // Drop tombstones entirely: this is a full merge.
        let entries: Vec<(Vec<u8>, MemValue)> =
            merged.into_iter().filter(|(_, v)| v.is_some()).collect();
        let id = self.next_table_id;
        self.next_table_id += 1;
        let path = format!("{}/sstable-{:06}.sst", self.config.dir, id);
        if !entries.is_empty() {
            let table = Self::write_sstable(self.fs.as_ref(), &path, &entries)?;
            self.sstables.push(table);
        }
        for table in &old {
            self.fs.close(table.fd)?;
            self.fs.unlink(&table.path)?;
        }
        self.compactions += 1;
        Ok(())
    }

    /// Writes a sorted run of entries as an SSTable and returns its
    /// in-memory index.
    fn write_sstable(
        fs: &dyn FileSystem,
        path: &str,
        entries: &[(Vec<u8>, MemValue)],
    ) -> FsResult<SsTable> {
        let fd = fs.open(path, OpenFlags::create_truncate())?;
        let mut index = Vec::with_capacity(entries.len());
        let mut buf = BytesMut::new();
        let mut offset = 0u64;
        for (key, value) in entries {
            let vlen = match value {
                Some(v) => v.len() as u32,
                None => TOMBSTONE,
            };
            buf.put_u32_le(key.len() as u32);
            buf.put_u32_le(vlen);
            buf.put_slice(key);
            let value_offset = offset + 8 + key.len() as u64;
            if let Some(v) = value {
                buf.put_slice(v);
            }
            index.push((key.clone(), value_offset, vlen));
            offset = value_offset + value.as_ref().map(|v| v.len() as u64).unwrap_or(0);

            // Write in large sequential chunks, as LevelDB's table builder
            // does.
            if buf.len() >= 256 * 1024 {
                fs.write(fd, &buf)?;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            fs.write(fd, &buf)?;
        }
        fs.fsync(fd)?;
        // The descriptor is kept open and cached for reads (table cache).
        Ok(SsTable {
            path: path.to_string(),
            fd,
            index,
        })
    }

    /// Rebuilds an SSTable's index by scanning the file (recovery path).
    fn load_sstable(fs: &dyn FileSystem, path: &str) -> FsResult<SsTable> {
        let data = fs.read_file(path)?;
        let mut cursor = &data[..];
        let mut index = Vec::new();
        let mut offset = 0u64;
        while cursor.remaining() >= 8 {
            let klen = cursor.get_u32_le() as usize;
            let vlen_raw = cursor.get_u32_le();
            let vlen = if vlen_raw == TOMBSTONE {
                0
            } else {
                vlen_raw as usize
            };
            if cursor.remaining() < klen + vlen {
                return Err(FsError::Corrupted(format!("truncated sstable {path}")));
            }
            let key = cursor.copy_to_bytes(klen).to_vec();
            cursor.advance(vlen);
            index.push((key, offset + 8 + klen as u64, vlen_raw));
            offset += 8 + klen as u64 + vlen as u64;
        }
        let fd = fs.open(path, OpenFlags::read_only())?;
        Ok(SsTable {
            path: path.to_string(),
            fd,
            index,
        })
    }

    /// Flushes everything and fsyncs (clean shutdown).
    pub fn shutdown(&mut self) -> FsResult<()> {
        self.flush_memtable()?;
        self.fs.fsync(self.wal_fd)?;
        self.fs.close(self.wal_fd)?;
        for table in &self.sstables {
            self.fs.close(table.fd)?;
        }
        self.sstables.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelfs::Ext4Dax;
    use pmem::PmemBuilder;

    fn fs() -> Arc<dyn FileSystem> {
        let device = PmemBuilder::new(256 * 1024 * 1024)
            .track_persistence(false)
            .build();
        Ext4Dax::mkfs(device).unwrap() as Arc<dyn FileSystem>
    }

    fn small_config() -> LsmConfig {
        LsmConfig {
            dir: "/db".to_string(),
            memtable_bytes: 64 * 1024,
            sync_writes: false,
            compaction_trigger: 4,
        }
    }

    #[test]
    fn put_get_round_trip() {
        let mut store = LsmStore::open(fs(), small_config()).unwrap();
        for i in 0..500u32 {
            store
                .put(
                    format!("key{i:05}").as_bytes(),
                    format!("value-{i}").as_bytes(),
                )
                .unwrap();
        }
        for i in (0..500u32).step_by(37) {
            let got = store.get(format!("key{i:05}").as_bytes()).unwrap();
            assert_eq!(got, Some(format!("value-{i}").into_bytes()));
        }
        assert_eq!(store.get(b"missing").unwrap(), None);
    }

    #[test]
    fn updates_and_deletes_are_visible_across_flushes() {
        let mut store = LsmStore::open(fs(), small_config()).unwrap();
        store.put(b"k", b"v1").unwrap();
        store.flush_memtable().unwrap();
        store.put(b"k", b"v2").unwrap();
        store.flush_memtable().unwrap();
        assert_eq!(store.get(b"k").unwrap(), Some(b"v2".to_vec()));
        store.delete(b"k").unwrap();
        assert_eq!(store.get(b"k").unwrap(), None);
        store.flush_memtable().unwrap();
        assert_eq!(store.get(b"k").unwrap(), None);
    }

    #[test]
    fn memtable_flushes_when_full_and_compaction_bounds_table_count() {
        let mut store = LsmStore::open(fs(), small_config()).unwrap();
        let value = vec![7u8; 1000];
        for i in 0..1000u32 {
            store.put(format!("key{i:06}").as_bytes(), &value).unwrap();
        }
        assert!(store.flush_count() > 0, "memtable must have flushed");
        assert!(
            store.sstable_count() < small_config().compaction_trigger + 1,
            "compaction must bound the SSTable count"
        );
        // Spot-check data survived flush + compaction.
        assert_eq!(store.get(b"key000500").unwrap(), Some(value.clone()));
    }

    #[test]
    fn scan_returns_sorted_ranges_across_sources() {
        let mut store = LsmStore::open(fs(), small_config()).unwrap();
        for i in (0..100u32).rev() {
            store
                .put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        store.flush_memtable().unwrap();
        for i in 100..120u32 {
            store
                .put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        let result = store.scan(b"key0095", 10).unwrap();
        assert_eq!(result.len(), 10);
        let keys: Vec<String> = result
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys[0], "key0095");
        assert_eq!(keys[9], "key0104");
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn store_recovers_from_wal_and_sstables_on_reopen() {
        let fs = fs();
        {
            let mut store = LsmStore::open(Arc::clone(&fs), small_config()).unwrap();
            for i in 0..200u32 {
                store
                    .put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            store.flush_memtable().unwrap();
            // These land only in the WAL (no flush, no clean shutdown).
            store.put(b"wal-only", b"survives").unwrap();
        }
        let store = LsmStore::open(fs, small_config()).unwrap();
        assert_eq!(store.get(b"key0123").unwrap(), Some(b"v123".to_vec()));
        assert_eq!(store.get(b"wal-only").unwrap(), Some(b"survives".to_vec()));
    }
}
