//! A Redis-like in-memory store with append-only-file persistence.
//!
//! The paper evaluates Redis in AOF mode: every `SET` is appended to a log
//! file, and the file is fsynced periodically (Redis's `everysec` policy)
//! or on every command.  What the file system sees is a stream of small,
//! unaligned appends plus periodic fsyncs — a worst case for file systems
//! that pay a high per-append cost and exactly the pattern SplitFS's
//! staging + relink path accelerates.  Records are emitted with
//! [`FileSystem::appendv`]: the command is gathered from its parts
//! (`"SET "`, key, `" "`, value, `"\n"`) with no intermediate `format!`
//! buffer, and the whole record commits as one append.

use std::collections::HashMap;
use std::sync::Arc;

use vfs::{Fd, FileSystem, FsResult, IoVec, OpenFlags};

/// When the append-only file is fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every command (`appendfsync always`).
    Always,
    /// Fsync every `n` commands (stands in for `appendfsync everysec`,
    /// since the reproduction has no wall-clock).
    EveryN(u64),
    /// Never fsync explicitly (`appendfsync no`).
    Never,
}

/// The key-value store.
pub struct AofStore {
    fs: Arc<dyn FileSystem>,
    map: HashMap<String, String>,
    aof_fd: Fd,
    aof_path: String,
    policy: FsyncPolicy,
    ops_since_sync: u64,
    sets: u64,
}

impl std::fmt::Debug for AofStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AofStore")
            .field("keys", &self.map.len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl AofStore {
    /// Opens (or creates) a store whose AOF lives at `aof_path`.  An
    /// existing AOF is replayed to rebuild the in-memory state.
    pub fn open(fs: Arc<dyn FileSystem>, aof_path: &str, policy: FsyncPolicy) -> FsResult<Self> {
        let mut map = HashMap::new();
        if fs.exists(aof_path) {
            let data = fs.read_file(aof_path)?;
            for line in String::from_utf8_lossy(&data).lines() {
                let mut parts = line.splitn(3, ' ');
                match (parts.next(), parts.next(), parts.next()) {
                    (Some("SET"), Some(k), Some(v)) => {
                        map.insert(k.to_string(), v.to_string());
                    }
                    (Some("DEL"), Some(k), _) => {
                        map.remove(k);
                    }
                    _ => {}
                }
            }
        }
        let aof_fd = fs.open(aof_path, OpenFlags::append())?;
        Ok(Self {
            fs,
            map,
            aof_fd,
            aof_path: aof_path.to_string(),
            policy,
            ops_since_sync: 0,
            sets: 0,
        })
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of `SET` commands executed.
    pub fn set_count(&self) -> u64 {
        self.sets
    }

    fn maybe_sync(&mut self) -> FsResult<()> {
        self.ops_since_sync += 1;
        let should = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.ops_since_sync >= n,
            FsyncPolicy::Never => false,
        };
        if should {
            self.fs.fsync(self.aof_fd)?;
            self.ops_since_sync = 0;
        }
        Ok(())
    }

    /// `SET key value`.
    pub fn set(&mut self, key: &str, value: &str) -> FsResult<()> {
        self.fs.appendv(
            self.aof_fd,
            &[
                IoVec::new(b"SET "),
                IoVec::new(key.as_bytes()),
                IoVec::new(b" "),
                IoVec::new(value.as_bytes()),
                IoVec::new(b"\n"),
            ],
        )?;
        self.maybe_sync()?;
        self.map.insert(key.to_string(), value.to_string());
        self.sets += 1;
        Ok(())
    }

    /// `GET key`.
    pub fn get(&self, key: &str) -> Option<&String> {
        self.map.get(key)
    }

    /// `DEL key`; returns whether the key existed.
    pub fn del(&mut self, key: &str) -> FsResult<bool> {
        self.fs.appendv(
            self.aof_fd,
            &[
                IoVec::new(b"DEL "),
                IoVec::new(key.as_bytes()),
                IoVec::new(b"\n"),
            ],
        )?;
        self.maybe_sync()?;
        Ok(self.map.remove(key).is_some())
    }

    /// Rewrites the AOF to contain only the live keys (Redis BGREWRITEAOF).
    pub fn rewrite_aof(&mut self) -> FsResult<()> {
        let tmp_path = format!("{}.rewrite", self.aof_path);
        let mut out = String::new();
        for (k, v) in &self.map {
            out.push_str(&format!("SET {k} {v}\n"));
        }
        self.fs.write_file(&tmp_path, out.as_bytes())?;
        self.fs.close(self.aof_fd)?;
        self.fs.rename(&tmp_path, &self.aof_path)?;
        self.aof_fd = self.fs.open(&self.aof_path, OpenFlags::append())?;
        Ok(())
    }

    /// Fsyncs and closes the AOF.
    pub fn shutdown(&mut self) -> FsResult<()> {
        self.fs.fsync(self.aof_fd)?;
        self.fs.close(self.aof_fd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelfs::Ext4Dax;
    use pmem::PmemBuilder;

    fn fs() -> Arc<dyn FileSystem> {
        let device = PmemBuilder::new(128 * 1024 * 1024)
            .track_persistence(false)
            .build();
        Ext4Dax::mkfs(device).unwrap() as Arc<dyn FileSystem>
    }

    #[test]
    fn set_get_del_round_trip() {
        let mut store = AofStore::open(fs(), "/redis.aof", FsyncPolicy::EveryN(10)).unwrap();
        store.set("user:1", "alice").unwrap();
        store.set("user:2", "bob").unwrap();
        assert_eq!(store.get("user:1"), Some(&"alice".to_string()));
        assert!(store.del("user:1").unwrap());
        assert!(!store.del("user:1").unwrap());
        assert_eq!(store.get("user:1"), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn aof_replay_rebuilds_state_on_reopen() {
        let fs = fs();
        {
            let mut store =
                AofStore::open(Arc::clone(&fs), "/redis.aof", FsyncPolicy::Always).unwrap();
            for i in 0..100 {
                store.set(&format!("key{i}"), &format!("value{i}")).unwrap();
            }
            store.set("key5", "updated").unwrap();
            store.del("key6").unwrap();
            store.shutdown().unwrap();
        }
        let store = AofStore::open(fs, "/redis.aof", FsyncPolicy::Always).unwrap();
        assert_eq!(store.len(), 99);
        assert_eq!(store.get("key5"), Some(&"updated".to_string()));
        assert_eq!(store.get("key6"), None);
        assert_eq!(store.get("key99"), Some(&"value99".to_string()));
    }

    #[test]
    fn rewrite_compacts_the_aof() {
        let fs = fs();
        let mut store = AofStore::open(Arc::clone(&fs), "/redis.aof", FsyncPolicy::Never).unwrap();
        for _ in 0..50 {
            store.set("hot-key", "v").unwrap();
        }
        let before = fs.stat("/redis.aof").unwrap().size;
        store.rewrite_aof().unwrap();
        let after = fs.stat("/redis.aof").unwrap().size;
        assert!(
            after < before,
            "rewrite must shrink the AOF ({before} -> {after})"
        );
        // State unchanged.
        assert_eq!(store.get("hot-key"), Some(&"v".to_string()));
    }

    #[test]
    fn everyn_policy_batches_fsyncs() {
        let fsys = fs();
        let mut store =
            AofStore::open(Arc::clone(&fsys), "/redis.aof", FsyncPolicy::EveryN(25)).unwrap();
        let before = fsys.device().stats().snapshot().kernel_traps;
        for i in 0..100 {
            store.set(&format!("k{i}"), "v").unwrap();
        }
        let _ = before; // traps counted include writes; just check it ran
        assert_eq!(store.set_count(), 100);
    }
}
