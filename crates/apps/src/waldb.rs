//! A SQLite-like embedded database in write-ahead-logging (WAL) mode.
//!
//! The SplitFS paper runs TPC-C on SQLite in WAL mode; what the file system
//! observes is: random page reads from the main database file, whole dirty
//! pages appended to the WAL at commit followed by an `fsync`, and periodic
//! checkpoints that write the WAL's pages back into the main file.  This
//! module reproduces exactly that traffic with a small page-based table
//! store: rows are kept in 4 KiB pages, an in-memory row index maps keys to
//! pages, transactions buffer dirty pages and commit them to the WAL, and a
//! checkpoint copies the newest version of each page into the database file
//! and truncates the WAL.
//!
//! Commits normally go through the synchronous vectored path (one
//! `writev_at`, one `fdatasync`).  [`WalDb::attach_ring`] switches the
//! commit to an [`aio`] submission ring instead: the WAL frames are
//! submitted as one `WritevAt` sqe and durability comes from awaiting the
//! completion's **durability epoch** rather than issuing the fsync — so
//! concurrent databases over one ring hub share log fences.  The
//! synchronous path is untouched and remains the default.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bytes::{Buf, BufMut, BytesMut};
use vfs::{Fd, FileSystem, FsError, FsResult, IoVec, OpenFlags};

/// Page size used by the pager.
pub const PAGE_SIZE: usize = 4096;

/// Configuration of a [`WalDb`].
#[derive(Debug, Clone)]
pub struct WalDbConfig {
    /// Path of the main database file.
    pub db_path: String,
    /// Path of the write-ahead log.
    pub wal_path: String,
    /// Checkpoint once the WAL holds this many frames.
    pub checkpoint_frames: usize,
    /// Fsync the WAL at every commit (SQLite `synchronous=FULL`).
    pub sync_commits: bool,
    /// Maximum clean pages kept in the in-memory page cache (SQLite's page
    /// cache is bounded; reads beyond it hit the file system).
    pub cache_pages: usize,
}

impl Default for WalDbConfig {
    fn default() -> Self {
        Self {
            db_path: "/sqlite/main.db".to_string(),
            wal_path: "/sqlite/main.db-wal".to_string(),
            checkpoint_frames: 1000,
            sync_commits: true,
            cache_pages: 1024,
        }
    }
}

/// A row location: which page holds it.
type RowKey = (u8, u64);

/// Ring-commit state: the hub whose backend executes the batches, one
/// submission ring, and the next submission tag.
struct RingCommit {
    hub: Arc<aio::RingFs>,
    ring: aio::Ring,
    next_user_data: u64,
}

/// The WAL-mode page store.
pub struct WalDb {
    fs: Arc<dyn FileSystem>,
    config: WalDbConfig,
    ring: Option<RingCommit>,
    db_fd: Fd,
    wal_fd: Fd,
    /// Number of pages in the database file.
    page_count: u64,
    /// Latest WAL offset of each page image not yet checkpointed.
    wal_index: HashMap<u64, u64>,
    /// Frames currently in the WAL.
    wal_frames: usize,
    /// Byte length of the WAL file.
    wal_len: u64,
    /// key → page number.
    row_index: HashMap<RowKey, u64>,
    /// Free bytes per page.
    free_space: BTreeMap<u64, usize>,
    /// Pages modified by the current transaction.
    dirty: HashMap<u64, Vec<u8>>,
    /// Clean page cache.
    cache: HashMap<u64, Vec<u8>>,
    /// Committed transactions (exposed for experiments).
    commits: u64,
    /// Checkpoints run (exposed for experiments).
    checkpoints: u64,
}

impl std::fmt::Debug for WalDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalDb")
            .field("pages", &self.page_count)
            .field("rows", &self.row_index.len())
            .field("wal_frames", &self.wal_frames)
            .finish()
    }
}

/// WAL frame header: page number + payload length.
const FRAME_HEADER: usize = 16;

impl WalDb {
    /// Creates or reopens a database at the configured paths.
    pub fn open(fs: Arc<dyn FileSystem>, config: WalDbConfig) -> FsResult<Self> {
        // Ensure the parent directory exists.
        if let Ok((parent, _)) = vfs::path::split(&config.db_path) {
            if parent != "/" && !fs.exists(&parent) {
                fs.mkdir(&parent)?;
            }
        }
        let db_fd = fs.open(&config.db_path, OpenFlags::create())?;
        let wal_fd = fs.open(&config.wal_path, OpenFlags::create())?;
        let db_size = fs.fstat(db_fd)?.size;
        let page_count = db_size / PAGE_SIZE as u64;

        let mut db = Self {
            fs,
            config,
            ring: None,
            db_fd,
            wal_fd,
            page_count,
            wal_index: HashMap::new(),
            wal_frames: 0,
            wal_len: 0,
            row_index: HashMap::new(),
            free_space: BTreeMap::new(),
            dirty: HashMap::new(),
            cache: HashMap::new(),
            commits: 0,
            checkpoints: 0,
        };
        db.recover()?;
        Ok(db)
    }

    /// Rebuilds the in-memory row index from the database file and replays
    /// committed WAL frames.
    fn recover(&mut self) -> FsResult<()> {
        // Replay WAL frames over the page set.
        let wal_data = self.fs.read_file(&self.config.wal_path)?;
        let mut cursor = &wal_data[..];
        let mut offset = 0u64;
        while cursor.remaining() >= FRAME_HEADER {
            let page_no = cursor.get_u64_le();
            let len = cursor.get_u64_le() as usize;
            if len != PAGE_SIZE || cursor.remaining() < len {
                break;
            }
            cursor.advance(len);
            self.wal_index.insert(page_no, offset + FRAME_HEADER as u64);
            self.page_count = self.page_count.max(page_no + 1);
            self.wal_frames += 1;
            offset += (FRAME_HEADER + len) as u64;
        }
        self.wal_len = offset;

        // Scan every page to rebuild the row index and free-space map.
        for page_no in 0..self.page_count {
            let page = self.load_page(page_no)?;
            let (rows, free) = Self::parse_page(&page);
            for (key, _, _) in rows {
                self.row_index.insert(key, page_no);
            }
            self.free_space.insert(page_no, free);
        }
        Ok(())
    }

    /// Number of committed transactions.
    pub fn commit_count(&self) -> u64 {
        self.commits
    }

    /// Number of checkpoints performed.
    pub fn checkpoint_count(&self) -> u64 {
        self.checkpoints
    }

    /// Number of rows currently stored.
    pub fn row_count(&self) -> usize {
        self.row_index.len()
    }

    // ------------------------------------------------------------------
    // Page layout: [n u16] then n records of [table u8][key u64][len u16][bytes]
    // ------------------------------------------------------------------

    fn parse_page(page: &[u8]) -> (Vec<(RowKey, usize, usize)>, usize) {
        let mut rows = Vec::new();
        let mut cursor = page;
        if cursor.remaining() < 2 {
            return (rows, PAGE_SIZE - 2);
        }
        let n = cursor.get_u16_le() as usize;
        let mut pos = 2usize;
        for _ in 0..n {
            if cursor.remaining() < 11 {
                break;
            }
            let table = cursor.get_u8();
            let key = cursor.get_u64_le();
            let len = cursor.get_u16_le() as usize;
            if cursor.remaining() < len {
                break;
            }
            cursor.advance(len);
            rows.push(((table, key), pos + 11, len));
            pos += 11 + len;
        }
        (rows, PAGE_SIZE.saturating_sub(pos))
    }

    fn rebuild_page(rows: &BTreeMap<RowKey, Vec<u8>>) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(PAGE_SIZE);
        buf.put_u16_le(rows.len() as u16);
        for ((table, key), value) in rows {
            buf.put_u8(*table);
            buf.put_u64_le(*key);
            buf.put_u16_le(value.len() as u16);
            buf.put_slice(value);
        }
        let mut page = buf.to_vec();
        page.resize(PAGE_SIZE, 0);
        page
    }

    fn page_rows(&mut self, page_no: u64) -> FsResult<BTreeMap<RowKey, Vec<u8>>> {
        let page = self.load_page(page_no)?;
        let (rows, _) = Self::parse_page(&page);
        let mut map = BTreeMap::new();
        for (key, offset, len) in rows {
            map.insert(key, page[offset..offset + len].to_vec());
        }
        Ok(map)
    }

    fn load_page(&mut self, page_no: u64) -> FsResult<Vec<u8>> {
        if let Some(p) = self.dirty.get(&page_no) {
            return Ok(p.clone());
        }
        if let Some(p) = self.cache.get(&page_no) {
            return Ok(p.clone());
        }
        let mut page = vec![0u8; PAGE_SIZE];
        if let Some(&wal_off) = self.wal_index.get(&page_no) {
            self.fs.read_at(self.wal_fd, wal_off, &mut page)?;
        } else {
            self.fs
                .read_at(self.db_fd, page_no * PAGE_SIZE as u64, &mut page)?;
        }
        self.cache_insert(page_no, page.clone());
        Ok(page)
    }

    /// Inserts a clean page into the bounded cache, evicting an arbitrary
    /// clean page when the cache is full.
    fn cache_insert(&mut self, page_no: u64, page: Vec<u8>) {
        if self.cache.len() >= self.config.cache_pages {
            if let Some(&evict) = self.cache.keys().next() {
                self.cache.remove(&evict);
            }
        }
        self.cache.insert(page_no, page);
    }

    fn mark_dirty(&mut self, page_no: u64, rows: &BTreeMap<RowKey, Vec<u8>>) {
        let page = Self::rebuild_page(rows);
        let used: usize = 2 + rows.values().map(|v| 11 + v.len()).sum::<usize>();
        self.free_space
            .insert(page_no, PAGE_SIZE.saturating_sub(used));
        self.cache.remove(&page_no);
        self.dirty.insert(page_no, page);
    }

    fn allocate_page(&mut self) -> u64 {
        let page_no = self.page_count;
        self.page_count += 1;
        self.free_space.insert(page_no, PAGE_SIZE - 2);
        self.dirty
            .insert(page_no, Self::rebuild_page(&BTreeMap::new()));
        page_no
    }

    fn find_page_with_space(&self, need: usize) -> Option<u64> {
        self.free_space
            .iter()
            .find(|(_, &free)| free >= need + 11)
            .map(|(&p, _)| p)
    }

    // ------------------------------------------------------------------
    // Row operations (used inside a transaction)
    // ------------------------------------------------------------------

    /// Inserts or updates a row.
    pub fn upsert(&mut self, table: u8, key: u64, value: &[u8]) -> FsResult<()> {
        if value.len() + 11 + 2 > PAGE_SIZE {
            return Err(FsError::InvalidArgument);
        }
        let row_key = (table, key);
        if let Some(&page_no) = self.row_index.get(&row_key) {
            let mut rows = self.page_rows(page_no)?;
            let old_len = rows.get(&row_key).map(|v| v.len()).unwrap_or(0);
            let used: usize = 2 + rows.values().map(|v| 11 + v.len()).sum::<usize>();
            if used - old_len + value.len() <= PAGE_SIZE {
                rows.insert(row_key, value.to_vec());
                self.mark_dirty(page_no, &rows);
                return Ok(());
            }
            // Row no longer fits here: remove and fall through to re-insert.
            rows.remove(&row_key);
            self.mark_dirty(page_no, &rows);
            self.row_index.remove(&row_key);
        }
        let page_no = match self.find_page_with_space(value.len()) {
            Some(p) => p,
            None => self.allocate_page(),
        };
        let mut rows = self.page_rows(page_no)?;
        rows.insert(row_key, value.to_vec());
        self.mark_dirty(page_no, &rows);
        self.row_index.insert(row_key, page_no);
        Ok(())
    }

    /// Reads a row.
    pub fn get(&mut self, table: u8, key: u64) -> FsResult<Option<Vec<u8>>> {
        let row_key = (table, key);
        let Some(&page_no) = self.row_index.get(&row_key) else {
            return Ok(None);
        };
        let rows = self.page_rows(page_no)?;
        Ok(rows.get(&row_key).cloned())
    }

    /// Deletes a row.
    pub fn delete(&mut self, table: u8, key: u64) -> FsResult<bool> {
        let row_key = (table, key);
        let Some(page_no) = self.row_index.remove(&row_key) else {
            return Ok(false);
        };
        let mut rows = self.page_rows(page_no)?;
        rows.remove(&row_key);
        self.mark_dirty(page_no, &rows);
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Commits the current transaction: every dirty page becomes a WAL
    /// frame, the WAL is fsynced, and a checkpoint runs if the WAL has
    /// grown past the configured threshold.
    pub fn commit(&mut self) -> FsResult<()> {
        if self.dirty.is_empty() {
            self.commits += 1;
            return Ok(());
        }
        let dirty: Vec<(u64, Vec<u8>)> = self.dirty.drain().collect();
        // Every frame is gathered from its 16-byte header and the page
        // image in place — one vectored write commits the transaction
        // instead of one copy into a contiguous buffer.
        let mut headers = Vec::with_capacity(dirty.len());
        let mut offsets = Vec::with_capacity(dirty.len());
        let mut frame_off = self.wal_len;
        for (page_no, _) in &dirty {
            let mut header = [0u8; FRAME_HEADER];
            header[..8].copy_from_slice(&page_no.to_le_bytes());
            header[8..].copy_from_slice(&(PAGE_SIZE as u64).to_le_bytes());
            headers.push(header);
            offsets.push((*page_no, frame_off + FRAME_HEADER as u64));
            frame_off += (FRAME_HEADER + PAGE_SIZE) as u64;
        }
        let written = if self.ring.is_some() {
            let mut bufs = Vec::with_capacity(dirty.len() * 2);
            for (header, (_, page)) in headers.iter().zip(&dirty) {
                bufs.push(header.to_vec());
                bufs.push(page.clone());
            }
            self.ring_commit(bufs)? as usize
        } else {
            let mut iov = Vec::with_capacity(dirty.len() * 2);
            for (header, (_, page)) in headers.iter().zip(&dirty) {
                iov.push(IoVec::new(&header[..]));
                iov.push(IoVec::new(page));
            }
            let written = self.fs.writev_at(self.wal_fd, self.wal_len, &iov)?;
            if self.config.sync_commits {
                // The WAL is data-durability only: the page images must be
                // persistent, the file metadata can trail (fdatasync).
                self.fs.fdatasync(self.wal_fd)?;
            }
            written
        };
        self.wal_len += written as u64;
        self.wal_frames += dirty.len();
        for (page_no, off) in offsets {
            self.wal_index.insert(page_no, off);
        }
        for (page_no, page) in dirty {
            self.cache_insert(page_no, page);
        }
        self.commits += 1;
        if self.wal_frames >= self.config.checkpoint_frames {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Routes subsequent commits through `hub`'s submission rings: the
    /// transaction's WAL frames become one `WritevAt` submission and
    /// durability comes from awaiting the completion's durability epoch
    /// instead of an `fdatasync`.  `hub` must be built over the same
    /// file system this database runs on.  The synchronous path is
    /// restored by never calling this (it stays the default).
    pub fn attach_ring(&mut self, hub: Arc<aio::RingFs>) {
        let ring = hub.ring(8);
        self.ring = Some(RingCommit {
            hub,
            ring,
            next_user_data: 1,
        });
    }

    /// Commits one transaction's gathered frames through the attached
    /// ring, then awaits the completion's epoch when commits are
    /// synchronous.
    fn ring_commit(&mut self, bufs: Vec<Vec<u8>>) -> FsResult<u64> {
        let rc = self.ring.as_mut().expect("ring attached");
        let user_data = rc.next_user_data;
        rc.next_user_data += 1;
        let mut sqe = aio::Sqe::writev_at(user_data, self.wal_fd, self.wal_len, bufs);
        loop {
            match rc.ring.try_submit(sqe) {
                Ok(()) => break,
                Err(back) => {
                    // Ring full: help drain, then retry.
                    sqe = back;
                    rc.hub.drain(aio::DEFAULT_DRAIN_BATCH);
                }
            }
        }
        let mut cqes = Vec::new();
        let cqe = loop {
            rc.hub.drain(aio::DEFAULT_DRAIN_BATCH);
            rc.ring.harvest(&mut cqes);
            if let Some(pos) = cqes.iter().position(|c| c.user_data == user_data) {
                break cqes.swap_remove(pos);
            }
            std::thread::yield_now();
        };
        let written = cqe.result?;
        if self.config.sync_commits {
            rc.hub.await_epoch(cqe.epoch)?;
        }
        Ok(written)
    }

    /// Discards the current transaction's dirty pages.
    pub fn rollback(&mut self) {
        self.dirty.clear();
        // The free-space map may now be stale for the rolled-back pages;
        // rebuild lazily on next access by dropping those entries.
        self.free_space.clear();
        self.cache.clear();
    }

    /// Copies the newest version of every WAL page back into the database
    /// file and truncates the WAL (SQLite checkpoint).
    pub fn checkpoint(&mut self) -> FsResult<()> {
        let pages: Vec<u64> = self.wal_index.keys().copied().collect();
        for page_no in pages {
            let page = self.load_page(page_no)?;
            self.fs
                .write_at(self.db_fd, page_no * PAGE_SIZE as u64, &page)?;
        }
        self.fs.fsync(self.db_fd)?;
        self.fs.ftruncate(self.wal_fd, 0)?;
        self.fs.fsync(self.wal_fd)?;
        self.wal_index.clear();
        self.wal_frames = 0;
        self.wal_len = 0;
        self.checkpoints += 1;
        Ok(())
    }

    /// Flushes everything and closes the files.
    pub fn shutdown(&mut self) -> FsResult<()> {
        self.commit()?;
        self.checkpoint()?;
        self.fs.close(self.db_fd)?;
        self.fs.close(self.wal_fd)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelfs::Ext4Dax;
    use pmem::PmemBuilder;

    fn fs() -> Arc<dyn FileSystem> {
        let device = PmemBuilder::new(256 * 1024 * 1024)
            .track_persistence(false)
            .build();
        Ext4Dax::mkfs(device).unwrap() as Arc<dyn FileSystem>
    }

    fn config() -> WalDbConfig {
        WalDbConfig {
            checkpoint_frames: 64,
            ..WalDbConfig::default()
        }
    }

    #[test]
    fn upsert_get_delete_round_trip() {
        let mut db = WalDb::open(fs(), config()).unwrap();
        db.upsert(1, 42, b"hello row").unwrap();
        db.commit().unwrap();
        assert_eq!(db.get(1, 42).unwrap(), Some(b"hello row".to_vec()));
        assert_eq!(db.get(1, 43).unwrap(), None);
        assert!(db.delete(1, 42).unwrap());
        db.commit().unwrap();
        assert_eq!(db.get(1, 42).unwrap(), None);
    }

    #[test]
    fn rows_spread_across_pages_and_grow_the_file() {
        let mut db = WalDb::open(fs(), config()).unwrap();
        let row = vec![3u8; 500];
        for key in 0..200u64 {
            db.upsert(1, key, &row).unwrap();
        }
        db.commit().unwrap();
        assert!(db.page_count > 10, "200 x 500 B rows need many pages");
        for key in (0..200u64).step_by(17) {
            assert_eq!(db.get(1, key).unwrap(), Some(row.clone()));
        }
    }

    #[test]
    fn updates_that_no_longer_fit_move_to_another_page() {
        let mut db = WalDb::open(fs(), config()).unwrap();
        // Fill one page almost completely.
        for key in 0..7u64 {
            db.upsert(1, key, &vec![1u8; 500]).unwrap();
        }
        db.commit().unwrap();
        // Grow one row so it cannot stay on its page.
        db.upsert(1, 3, &vec![2u8; 2000]).unwrap();
        db.commit().unwrap();
        assert_eq!(db.get(1, 3).unwrap(), Some(vec![2u8; 2000]));
        assert_eq!(db.get(1, 2).unwrap(), Some(vec![1u8; 500]));
    }

    #[test]
    fn checkpoint_truncates_the_wal_and_preserves_data() {
        let mut db = WalDb::open(
            fs(),
            WalDbConfig {
                checkpoint_frames: 8,
                ..WalDbConfig::default()
            },
        )
        .unwrap();
        for key in 0..500u64 {
            db.upsert(2, key, format!("row-{key}").as_bytes()).unwrap();
            if key % 10 == 9 {
                db.commit().unwrap();
            }
        }
        db.commit().unwrap();
        assert!(
            db.checkpoint_count() > 0,
            "WAL threshold must force checkpoints"
        );
        db.checkpoint().unwrap();
        for key in (0..500u64).step_by(71) {
            assert_eq!(
                db.get(2, key).unwrap(),
                Some(format!("row-{key}").into_bytes())
            );
        }
    }

    #[test]
    fn rollback_discards_uncommitted_changes() {
        let mut db = WalDb::open(fs(), config()).unwrap();
        db.upsert(1, 1, b"committed").unwrap();
        db.commit().unwrap();
        db.upsert(1, 1, b"uncommitted").unwrap();
        db.rollback();
        assert_eq!(db.get(1, 1).unwrap(), Some(b"committed".to_vec()));
    }

    #[test]
    fn ring_commits_preserve_data_and_survive_reopen() {
        let device = PmemBuilder::new(256 * 1024 * 1024)
            .track_persistence(false)
            .build();
        let kernel = Ext4Dax::mkfs(device).unwrap();
        let split = splitfs::SplitFs::new(
            kernel,
            splitfs::SplitConfig::new(splitfs::Mode::Strict)
                .with_staging(4, 8 * 1024 * 1024)
                .with_oplog_size(512 * 1024),
        )
        .unwrap();
        let hub = splitfs::ring_hub(&split);
        let fs: Arc<dyn FileSystem> = split;
        {
            let mut db = WalDb::open(Arc::clone(&fs), config()).unwrap();
            db.attach_ring(Arc::clone(&hub));
            for key in 0..120u64 {
                db.upsert(1, key, format!("ring-{key}").as_bytes()).unwrap();
                if key % 8 == 7 {
                    db.commit().unwrap();
                }
            }
            db.commit().unwrap();
            // No clean shutdown: the awaited epochs are the durability.
        }
        let mut db = WalDb::open(fs, config()).unwrap();
        for key in [0u64, 63, 119] {
            assert_eq!(
                db.get(1, key).unwrap(),
                Some(format!("ring-{key}").into_bytes()),
                "key {key}"
            );
        }
    }

    #[test]
    fn database_recovers_after_reopen() {
        let fs = fs();
        {
            let mut db = WalDb::open(Arc::clone(&fs), config()).unwrap();
            for key in 0..100u64 {
                db.upsert(1, key, format!("persistent-{key}").as_bytes())
                    .unwrap();
            }
            db.commit().unwrap();
            // Half the data is checkpointed into the main file, half stays
            // in the WAL.
            db.checkpoint().unwrap();
            for key in 100..150u64 {
                db.upsert(1, key, format!("persistent-{key}").as_bytes())
                    .unwrap();
            }
            db.commit().unwrap();
            // No clean shutdown.
        }
        let mut db = WalDb::open(fs, config()).unwrap();
        for key in [0u64, 99, 100, 149] {
            assert_eq!(
                db.get(1, key).unwrap(),
                Some(format!("persistent-{key}").into_bytes()),
                "key {key}"
            );
        }
    }
}
