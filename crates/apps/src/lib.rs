//! Application substrates for the SplitFS evaluation.
//!
//! The paper evaluates SplitFS with real storage applications: LevelDB
//! (under YCSB), SQLite in WAL mode (under TPC-C) and Redis in
//! append-only-file mode.  This crate provides from-scratch Rust
//! equivalents that generate the same kinds of file-system traffic and run
//! on any [`vfs::FileSystem`]:
//!
//! * [`lsm::LsmStore`] — a LevelDB-like log-structured merge tree: a
//!   write-ahead log, an in-memory memtable, sorted string tables flushed
//!   to disk, and background-style compaction.
//! * [`waldb::WalDb`] — a SQLite-like page store in write-ahead-logging
//!   mode: fixed-size pages, a WAL with commit records, checkpointing back
//!   into the main database file, and simple key-value tables on top.
//! * [`aof::AofStore`] — a Redis-like in-memory hash map whose mutations
//!   are appended to an append-only file with a configurable fsync policy.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aof;
pub mod lsm;
pub mod waldb;

pub use aof::{AofStore, FsyncPolicy};
pub use lsm::{LsmConfig, LsmStore};
pub use waldb::{WalDb, WalDbConfig};
