//! Property test for the full-path lookup cache: interleaving
//! rename/unlink/mkdir/create with resolves must never serve a stale
//! cached path.  The oracle is a single-lock reference model (flat maps
//! mutated atomically, no cache at all); after **every** operation each
//! path in the universe is stat-ed through the real file system — whose
//! cache by then holds entries from before the mutation — and the outcome
//! (existence, dir-ness, and error kind) must match the model exactly.
//! Any generation-invalidation bug shows up as a hit on an entry the
//! mutation should have killed.

use std::collections::BTreeSet;
use std::sync::Arc;

use kernelfs::Ext4Dax;
use pmem::PmemBuilder;
use proptest::prelude::*;
use vfs::{FileSystem, FsError, FsResult, OpenFlags};

/// The single-lock reference model: a flat set of directory paths and a
/// flat set of file paths, every operation applied atomically.
#[derive(Debug, Clone, Default)]
struct Model {
    dirs: BTreeSet<String>,
    files: BTreeSet<String>,
}

fn parent_of(path: &str) -> String {
    match path.rfind('/') {
        Some(0) => "/".to_string(),
        Some(i) => path[..i].to_string(),
        None => "/".to_string(),
    }
}

impl Model {
    /// Mirrors `resolve_norm`'s error order: walk each prefix, failing
    /// with `NotFound` for a missing component and `NotADirectory` for a
    /// file used as one.  Returns whether the final name exists.
    fn resolve(&self, path: &str) -> FsResult<Option<bool>> {
        let parent = parent_of(path);
        if parent != "/" {
            let mut prefix = String::new();
            for comp in parent.split('/').filter(|c| !c.is_empty()) {
                prefix.push('/');
                prefix.push_str(comp);
                if self.files.contains(&prefix) {
                    return Err(FsError::NotADirectory);
                }
                if !self.dirs.contains(&prefix) {
                    return Err(FsError::NotFound);
                }
            }
        }
        if self.dirs.contains(path) {
            Ok(Some(true))
        } else if self.files.contains(path) {
            Ok(Some(false))
        } else {
            Ok(None)
        }
    }

    fn stat(&self, path: &str) -> FsResult<bool> {
        self.resolve(path)?.ok_or(FsError::NotFound)
    }

    fn create(&mut self, path: &str) -> FsResult<()> {
        match self.resolve(path)? {
            Some(true) => Err(FsError::IsADirectory),
            Some(false) => Ok(()), // plain (non-exclusive) open
            None => {
                self.files.insert(path.to_string());
                Ok(())
            }
        }
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        match self.resolve(path)? {
            Some(_) => Err(FsError::AlreadyExists),
            None => {
                self.dirs.insert(path.to_string());
                Ok(())
            }
        }
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        match self.resolve(path)? {
            Some(true) => Err(FsError::IsADirectory),
            Some(false) => {
                self.files.remove(path);
                Ok(())
            }
            None => Err(FsError::NotFound),
        }
    }

    fn rename(&mut self, old: &str, new: &str) -> FsResult<()> {
        let old_kind = self.resolve(old)?.ok_or(FsError::NotFound)?;
        let new_kind = self.resolve(new)?;
        if old == new {
            return Ok(());
        }
        if new_kind == Some(true) {
            return Err(FsError::IsADirectory);
        }
        if old_kind {
            // Directory move: every path under `old` follows it.
            self.files.remove(new);
            self.dirs.remove(old);
            self.dirs.insert(new.to_string());
            let old_prefix = format!("{old}/");
            let moved_dirs: Vec<String> = self
                .dirs
                .iter()
                .filter(|d| d.starts_with(&old_prefix))
                .cloned()
                .collect();
            for d in moved_dirs {
                self.dirs.remove(&d);
                self.dirs.insert(format!("{new}{}", &d[old.len()..]));
            }
            let moved_files: Vec<String> = self
                .files
                .iter()
                .filter(|f| f.starts_with(&old_prefix))
                .cloned()
                .collect();
            for f in moved_files {
                self.files.remove(&f);
                self.files.insert(format!("{new}{}", &f[old.len()..]));
            }
        } else {
            self.files.remove(old);
            self.files.remove(new);
            self.files.insert(new.to_string());
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
enum Op {
    Create(usize),
    Mkdir(usize),
    Unlink(usize),
    Rename(usize, usize),
    Resolve(usize),
}

/// A small fixed path universe with nesting, so renames of an inner
/// directory invalidate deep cached paths while sibling entries survive.
fn universe() -> Vec<String> {
    let mut paths = Vec::new();
    for d in ["/a", "/b"] {
        paths.push(d.to_string());
        for s in ["s0", "s1"] {
            paths.push(format!("{d}/{s}"));
            for f in ["x", "y"] {
                paths.push(format!("{d}/{s}/{f}"));
            }
        }
    }
    paths
}

fn op_strategy(n: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n).prop_map(Op::Create),
        (0..n).prop_map(Op::Mkdir),
        (0..n).prop_map(Op::Unlink),
        (0..n, 0..n).prop_map(|(a, b)| Op::Rename(a, b)),
        (0..n).prop_map(Op::Resolve),
    ]
}

fn normalize_err(r: FsResult<()>) -> Result<(), FsError> {
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interleaved mutate/resolve sequences: after every op, stat of every
    /// universe path through the (cache-warmed) file system matches the
    /// cacheless single-lock model.
    #[test]
    fn resolves_never_serve_stale_cached_paths(
        ops in prop::collection::vec(op_strategy(universe().len()), 1..60),
    ) {
        let paths = universe();
        let device = PmemBuilder::new(128 * 1024 * 1024).build();
        let fs = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
        let mut model = Model::default();

        // Warm the cache over the whole universe before mutating.
        for p in &paths {
            let _ = fs.stat(p);
        }

        for op in &ops {
            let (got, want) = match op {
                Op::Create(i) => {
                    let p = &paths[*i];
                    let got = fs.open(p, OpenFlags::create()).map(|fd| fs.close(fd).unwrap());
                    (normalize_err(got), model.create(p))
                }
                Op::Mkdir(i) => {
                    let p = &paths[*i];
                    (normalize_err(fs.mkdir(p)), model.mkdir(p))
                }
                Op::Unlink(i) => {
                    let p = &paths[*i];
                    (normalize_err(fs.unlink(p)), model.unlink(p))
                }
                Op::Rename(i, j) => {
                    let (old, new) = (&paths[*i], &paths[*j]);
                    // Skip moves of a directory into its own subtree; the
                    // model (like POSIX) would reject them, the simplified
                    // kernel namespace does not guard against the cycle.
                    if new.starts_with(&format!("{old}/")) {
                        continue;
                    }
                    (normalize_err(fs.rename(old, new)), model.rename(old, new))
                }
                Op::Resolve(i) => {
                    let p = &paths[*i];
                    (fs.stat(p).map(|_| ()), model.stat(p).map(|_| ()))
                }
            };
            prop_assert_eq!(&got, &want, "op {:?} diverged from model", op);

            // The oracle: every path must resolve exactly as the model
            // says, despite the cache having been filled before the op.
            for p in &paths {
                let got = fs.stat(p).map(|s| s.is_dir);
                let want = model.stat(p);
                prop_assert_eq!(
                    &got, &want,
                    "stale resolve of {} after {:?}", p, op
                );
            }
        }
        prop_assert!(fs.check_namespace().is_empty());
    }
}
