//! Concurrent metadata stress: eight threads race create/rename/unlink
//! (plus stats and readdirs that exercise the full-path cache) in
//! **overlapping** directories, so namespace-shard guard sets constantly
//! intersect and the optimistic resolve/verify retry loops actually fire.
//! Afterwards the whole-tree fsck ([`Ext4Dax::check_namespace`]) must find
//! zero violations and every surviving path must stat cleanly.

use std::sync::Arc;

use kernelfs::Ext4Dax;
use pmem::PmemBuilder;
use vfs::{FileSystem, FsError, OpenFlags};

fn fs() -> Arc<Ext4Dax> {
    let device = PmemBuilder::new(256 * 1024 * 1024).build();
    Ext4Dax::mkfs(device).unwrap()
}

/// Errors a racing metadata op is allowed to see: somebody else already
/// created/removed/renamed the node this iteration was aiming at.
fn racy_ok(e: &FsError) -> bool {
    matches!(
        e,
        FsError::NotFound | FsError::AlreadyExists | FsError::IsADirectory | FsError::NotEmpty
    )
}

#[test]
fn concurrent_create_rename_unlink_keeps_tree_consistent() {
    let fs = fs();
    const DIRS: usize = 4;
    const THREADS: usize = 8;
    const ITERS: usize = 120;
    for d in 0..DIRS {
        fs.mkdir(&format!("/d{d}")).unwrap();
    }

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let fs = Arc::clone(&fs);
            scope.spawn(move || {
                for i in 0..ITERS {
                    // Deliberately overlapping names: only THREADS/2 name
                    // slots, so two threads regularly fight over one path.
                    let slot = (t + i) % (THREADS / 2);
                    let src_dir = (t + i) % DIRS;
                    let dst_dir = (t + i + 1) % DIRS;
                    let src = format!("/d{src_dir}/f{slot}");
                    let dst = format!("/d{dst_dir}/f{slot}");
                    match fs.open(&src, OpenFlags::create()) {
                        Ok(fd) => fs.close(fd).unwrap(),
                        Err(e) => assert!(racy_ok(&e), "create {src}: {e}"),
                    }
                    if let Err(e) = fs.rename(&src, &dst) {
                        assert!(racy_ok(&e), "rename {src} -> {dst}: {e}");
                    }
                    if let Err(e) = fs.stat(&dst) {
                        assert!(racy_ok(&e), "stat {dst}: {e}");
                    }
                    if i % 3 == 0 {
                        if let Err(e) = fs.unlink(&dst) {
                            assert!(racy_ok(&e), "unlink {dst}: {e}");
                        }
                    }
                }
            });
        }
    });

    let violations = fs.check_namespace();
    assert!(violations.is_empty(), "fsck violations: {violations:#?}");
    // Every surviving entry must stat cleanly through the path cache.
    for d in 0..DIRS {
        let dir = format!("/d{d}");
        for name in fs.readdir(&dir).unwrap() {
            fs.stat(&format!("{dir}/{name}"))
                .unwrap_or_else(|e| panic!("dangling entry {dir}/{name}: {e}"));
        }
    }
}

#[test]
fn disjoint_directories_see_no_ns_shard_waits() {
    // Threads confined to disjoint directories (and hence mostly disjoint
    // namespace shards) should contend on essentially nothing: the
    // acceptance criterion is ns shard lock waits ≈ 0.
    let fs = fs();
    const THREADS: usize = 8;
    for t in 0..THREADS {
        fs.mkdir(&format!("/t{t}")).unwrap();
    }
    fs.device().stats().reset();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let fs = Arc::clone(&fs);
            scope.spawn(move || {
                for i in 0..60 {
                    let path = format!("/t{t}/f{i}");
                    let fd = fs.open(&path, OpenFlags::create()).unwrap();
                    fs.close(fd).unwrap();
                    fs.stat(&path).unwrap();
                    fs.unlink(&path).unwrap();
                }
            });
        }
    });
    let snap = fs.device().stats().snapshot();
    // Root and the per-thread parent dirs hash over 16 shards; a handful
    // of collisions are tolerated, sustained serialization is not.
    assert!(
        snap.ns_shard_lock_waits < 50,
        "disjoint dirs should not contend on ns shards: {} waits",
        snap.ns_shard_lock_waits
    );
    assert!(fs.check_namespace().is_empty());
}
