//! Crash-consistency integration tests for the kernel file system: after a
//! crash at an arbitrary point, the file system must mount, its metadata
//! must be consistent (every directory entry points at a live inode, sizes
//! are sane), and operations that the journal committed must be visible.
//!
//! The post-crash consistency walk is the shared [`chaos::Recovered`]
//! harness — the same fsck the crash-point fuzzer runs at every
//! enumerated fence boundary — so this file only states what each
//! scenario additionally promises.

use std::sync::Arc;

use chaos::Recovered;
use kernelfs::Ext4Dax;
use pmem::{PmemBuilder, PmemDevice};
use proptest::prelude::*;
use vfs::{FileSystem, OpenFlags};

fn device() -> Arc<PmemDevice> {
    PmemBuilder::new(192 * 1024 * 1024).build()
}

/// Remounts the crashed device and runs the shared fsck walk; returns the
/// recovered kernel for scenario-specific assertions.
fn recover_clean(device: &Arc<PmemDevice>) -> Arc<Ext4Dax> {
    let rec = Recovered::mount(device).unwrap();
    rec.assert_clean();
    rec.kernel
}

#[test]
fn fsynced_files_survive_crashes_completely() {
    let device = device();
    let fs = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    fs.mkdir("/keep").unwrap();
    let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 241) as u8).collect();
    fs.write_file("/keep/a.bin", &payload).unwrap();
    fs.write_file("/keep/b.bin", b"short").unwrap();
    device.crash();

    let fs2 = recover_clean(&device);
    assert_eq!(fs2.read_file("/keep/a.bin").unwrap(), payload);
    assert_eq!(fs2.read_file("/keep/b.bin").unwrap(), b"short");
}

#[test]
fn rename_is_atomic_under_crash() {
    let device = device();
    let fs = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    fs.write_file("/target", b"old contents").unwrap();
    fs.write_file("/incoming.tmp", b"new contents").unwrap();
    fs.rename("/incoming.tmp", "/target").unwrap();
    device.crash();

    let fs2 = recover_clean(&device);
    // After the crash the target is exactly one of the two versions and the
    // temporary name never coexists with a completed rename.
    let data = fs2.read_file("/target").unwrap();
    assert!(
        data == b"new contents" || data == b"old contents",
        "rename left a torn state: {data:?}"
    );
    if data == b"new contents" {
        assert!(!fs2.exists("/incoming.tmp"));
    }
}

#[test]
fn unlinked_files_stay_unlinked_after_crash() {
    let device = device();
    let fs = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    fs.write_file("/doomed", &vec![9u8; 20_000]).unwrap();
    let free_before = fs.free_blocks();
    fs.unlink("/doomed").unwrap();
    let free_after = fs.free_blocks();
    assert!(free_after > free_before);
    device.crash();

    let fs2 = recover_clean(&device);
    assert!(!fs2.exists("/doomed"));
}

#[test]
fn rename_across_ns_shards_recovers_exactly_one_link() {
    // The source and destination directories get consecutive inode
    // numbers, which hash to different namespace shards, so every rename
    // below crosses shards and its journal record spans two guard sets.
    // After a crash, replay must leave each file with exactly one link —
    // under its old name or its new name, never both, never neither.
    let device = device();
    let fs = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    fs.mkdir("/srcdir").unwrap();
    fs.mkdir("/dstdir").unwrap();
    const FILES: usize = 8;
    for i in 0..FILES {
        fs.write_file(&format!("/srcdir/f{i}"), format!("payload-{i}").as_bytes())
            .unwrap();
    }
    for i in 0..FILES {
        fs.rename(&format!("/srcdir/f{i}"), &format!("/dstdir/g{i}"))
            .unwrap();
    }
    device.crash();

    let fs2 = recover_clean(&device);
    for i in 0..FILES {
        let old = fs2.exists(&format!("/srcdir/f{i}"));
        let new = fs2.exists(&format!("/dstdir/g{i}"));
        assert!(
            old ^ new,
            "file {i}: old={old} new={new} — rename replay must leave exactly one link"
        );
        let surviving = if new {
            format!("/dstdir/g{i}")
        } else {
            format!("/srcdir/f{i}")
        };
        assert_eq!(
            fs2.read_file(&surviving).unwrap(),
            format!("payload-{i}").as_bytes()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary sequences of creates, writes, renames and unlinks followed
    /// by a crash always leave a mountable, metadata-consistent file
    /// system, and every file whose final write was fsynced has exactly its
    /// last contents.
    #[test]
    fn random_workloads_crash_into_consistent_states(
        steps in prop::collection::vec((0u8..4, 0u8..6, 1u16..5000), 3..25),
    ) {
        let device = device();
        let fs = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
        let mut synced: std::collections::HashMap<String, Vec<u8>> = Default::default();
        for (op, file_idx, len) in steps {
            let path = format!("/file-{file_idx}");
            match op {
                0 | 1 => {
                    // write_file fsyncs, so the contents are durable.
                    let data = vec![(len % 251) as u8; len as usize];
                    fs.write_file(&path, &data).unwrap();
                    synced.insert(path, data);
                }
                2 => {
                    if fs.exists(&path) {
                        fs.unlink(&path).unwrap();
                        synced.remove(&path);
                    }
                }
                _ => {
                    // Unsynced append: may or may not survive, but must not
                    // corrupt metadata.
                    let fd = fs.open(&path, OpenFlags::append()).unwrap();
                    fs.write(fd, &vec![7u8; len as usize]).unwrap();
                    fs.close(fd).unwrap();
                    synced.remove(&path);
                }
            }
        }
        device.crash();
        let rec = Recovered::mount(&device).unwrap();
        let fsck = rec.fsck();
        prop_assert!(fsck.is_empty(), "fsck violations: {:#?}", fsck);
        for (path, expected) in &synced {
            let data = rec.kernel.read_file(path).unwrap();
            prop_assert_eq!(&data, expected, "durable file {} lost data", path);
        }
    }
}
