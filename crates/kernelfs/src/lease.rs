//! Instance leases: the kernel-side resource partition that lets many
//! U-Split instances share one kernel file system.
//!
//! SplitFS's multi-process story (paper §3.1: "multiple applications,
//! each linking the SplitFS library, over one shared ext4 DAX") requires
//! the kernel half to arbitrate ownership of the per-instance resources —
//! the staging-file pool slice and the operation-log range each U-Split
//! instance writes with plain stores, no kernel mediation per operation.
//! Without explicit ownership, two instances could stage into the same
//! files, and recovery could not tell whose log is whose (the
//! kernel/user-collaboration design of KucoFS draws the same conclusion:
//! shared resources need per-process leases).
//!
//! The [`LeaseManager`] hands out integer **instance ids**.  An id maps
//! deterministically onto a resource slice:
//!
//! * [`staging_dir`] — the directory holding that instance's staging
//!   files (its exclusive slice of the staging pool), and
//! * [`oplog_path`] — that instance's operation-log file (its dedicated
//!   log range).
//!
//! Lease records are **persisted through the journal**: every acquire and
//! release commits a [`JournalRecord::Lease`](crate::journal::JournalRecord)
//! and then updates the in-place lease table block (see
//! [`crate::layout`]), following the same logical-record → fence →
//! in-place-update discipline as every other metadata mutation.  After a
//! crash, [`Ext4Dax::mount`](crate::Ext4Dax::mount) therefore knows
//! exactly which instances held leases — those instances are **orphaned**
//! (their owners died with the crash) and `splitfs::recovery` replays
//! each orphan's operation log independently before the id is reused.
//!
//! In-memory, the manager distinguishes *held* leases (owned by a live
//! instance in this process) from *active* ones (recorded on the device).
//! An active-but-not-held lease is an orphan awaiting recovery.  An
//! acquisition that collides with a held id is a **lease conflict** — it
//! is counted in the device statistics and must be zero in a healthy
//! multi-instance run.

use std::sync::Arc;

use parking_lot::Mutex;

use pmem::{PersistMode, PmemDevice, TimeCategory};

use crate::layout::{Superblock, BLOCK_SIZE};

/// Maximum number of instance leases (bounded by the one-block lease
/// table: one byte per slot, capped well below that for sanity).
pub const MAX_INSTANCES: u32 = 256;

/// Root directory of all SplitFS bookkeeping on the kernel file system.
/// The single source of truth for the layout: `splitfs::SPLITFS_DIR`
/// aliases this constant, and every per-instance path nests under it.
pub const SPLITFS_ROOT: &str = "/.splitfs";

/// Path of instance 0's operation-log file (the original
/// single-instance layout; `splitfs::OPLOG_PATH` aliases it).
pub const OPLOG_PATH_0: &str = "/.splitfs/oplog";

/// Directory on the kernel file system holding `instance_id`'s staging
/// files — its exclusive slice of the staging pool.  Instance 0 keeps the
/// original single-instance layout ([`SPLITFS_ROOT`] itself).
pub fn staging_dir(instance_id: u32) -> String {
    if instance_id == 0 {
        SPLITFS_ROOT.to_string()
    } else {
        format!("{SPLITFS_ROOT}/inst-{instance_id}")
    }
}

/// Path of `instance_id`'s operation-log file — its dedicated log range.
/// Instance 0 keeps the original single-instance path ([`OPLOG_PATH_0`]).
pub fn oplog_path(instance_id: u32) -> String {
    if instance_id == 0 {
        OPLOG_PATH_0.to_string()
    } else {
        format!("{SPLITFS_ROOT}/oplog-{instance_id}")
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// Leases recorded on the device (the persisted state).
    active: Vec<bool>,
    /// Leases owned by a live instance in this process.  `active` minus
    /// `held` is the orphan set.
    held: Vec<bool>,
}

/// The in-memory lease table plus its persistence into the lease-table
/// block.  Journaling the logical records is the owner's
/// ([`crate::Ext4Dax`]) job, so the commit → in-place-update ordering is
/// visible in one place.
#[derive(Debug)]
pub struct LeaseManager {
    device: Arc<PmemDevice>,
    /// Device byte offset of the lease table block.
    table_offset: u64,
    inner: Mutex<Inner>,
}

impl LeaseManager {
    /// Creates a manager over the lease area described by `sb`, seeded
    /// with `active` instance ids (recovered at mount; empty at mkfs).
    /// None of the seeded leases is *held* — they are all orphans until
    /// recovered and released.
    pub fn new(device: Arc<PmemDevice>, sb: &Superblock, active: &[u32]) -> Self {
        let mut inner = Inner {
            active: vec![false; MAX_INSTANCES as usize],
            held: vec![false; MAX_INSTANCES as usize],
        };
        for &id in active {
            if (id as usize) < inner.active.len() {
                inner.active[id as usize] = true;
            }
        }
        Self {
            device,
            table_offset: sb.lease_start * BLOCK_SIZE as u64,
            inner: Mutex::new(inner),
        }
    }

    /// Reads the persisted lease table (mount-time helper, uncharged like
    /// the rest of the mount scan).  Returns the active instance ids.
    pub fn load_active(device: &Arc<PmemDevice>, sb: &Superblock) -> Vec<u32> {
        let mut table = vec![0u8; MAX_INSTANCES as usize];
        device.read_uncharged(sb.lease_start * BLOCK_SIZE as u64, &mut table);
        table
            .iter()
            .enumerate()
            .filter(|(_, &b)| b != 0)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Reserves the lowest instance id that is neither active on the
    /// device (a live or orphaned lease) nor held in this process.
    /// Returns `None` when every slot is taken.  The caller must journal
    /// the acquisition and then call [`LeaseManager::persist`].
    pub fn reserve(&self) -> Option<u32> {
        let mut inner = self.inner.lock();
        let id = (0..MAX_INSTANCES as usize).find(|&i| !inner.active[i] && !inner.held[i])?;
        inner.active[id] = true;
        inner.held[id] = true;
        Some(id as u32)
    }

    /// Reserves a specific instance id.  Fails (and the caller counts a
    /// lease conflict) when the id is already held by a live instance or
    /// still active on the device (an unrecovered orphan must not be
    /// reused — its log would be mistaken for the new instance's).
    pub fn reserve_specific(&self, id: u32) -> bool {
        let mut inner = self.inner.lock();
        let idx = id as usize;
        if idx >= inner.active.len() || inner.active[idx] || inner.held[idx] {
            return false;
        }
        inner.active[idx] = true;
        inner.held[idx] = true;
        true
    }

    /// Releases a lease: the id leaves both the persisted and the held
    /// set.  The caller must journal the release and then call
    /// [`LeaseManager::persist`].
    pub fn clear(&self, id: u32) {
        let mut inner = self.inner.lock();
        let idx = id as usize;
        if idx < inner.active.len() {
            inner.active[idx] = false;
            inner.held[idx] = false;
        }
    }

    /// Drops the in-process hold on a lease **without** touching the
    /// persisted record — exactly what a process crash does.  The lease
    /// becomes an orphan: still active on the device, recoverable, and
    /// its id is not reused until recovery releases it.
    pub fn abandon(&self, id: u32) {
        let mut inner = self.inner.lock();
        let idx = id as usize;
        if idx < inner.held.len() {
            inner.held[idx] = false;
        }
    }

    /// Atomically claims an orphaned lease for recovery: succeeds only
    /// when the lease is active with no live holder, and marks it held so
    /// a concurrent claimer fails.  The claimer replays the orphan's log
    /// and then releases the lease.
    pub fn claim_orphan(&self, id: u32) -> bool {
        let mut inner = self.inner.lock();
        let idx = id as usize;
        if idx >= inner.active.len() || !inner.active[idx] || inner.held[idx] {
            return false;
        }
        inner.held[idx] = true;
        true
    }

    /// Instance ids whose leases are active on the device but not held by
    /// any live instance in this process — crashed instances whose
    /// operation logs recovery must replay.
    pub fn orphans(&self) -> Vec<u32> {
        let inner = self.inner.lock();
        (0..inner.active.len())
            .filter(|&i| inner.active[i] && !inner.held[i])
            .map(|i| i as u32)
            .collect()
    }

    /// Whether `id`'s lease is active (held or orphaned).
    pub fn is_active(&self, id: u32) -> bool {
        let inner = self.inner.lock();
        inner.active.get(id as usize).copied().unwrap_or(false)
    }

    /// Whether `id`'s lease is held by a live instance in this process.
    pub fn is_held(&self, id: u32) -> bool {
        let inner = self.inner.lock();
        inner.held.get(id as usize).copied().unwrap_or(false)
    }

    /// Number of active leases (held plus orphaned).
    pub fn active_count(&self) -> usize {
        let inner = self.inner.lock();
        inner.active.iter().filter(|&&a| a).count()
    }

    /// Writes the lease table block in place (non-temporal stores plus a
    /// fence, like every metadata structure).  Call after the matching
    /// journal record committed, while its transaction guard is alive.
    pub fn persist(&self) {
        let table: Vec<u8> = {
            let inner = self.inner.lock();
            inner.active.iter().map(|&a| u8::from(a)).collect()
        };
        self.device.write(
            self.table_offset,
            &table,
            PersistMode::NonTemporal,
            TimeCategory::Metadata,
        );
        self.device.fence(TimeCategory::Metadata);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemBuilder;

    fn manager(active: &[u32]) -> (Arc<PmemDevice>, Superblock, LeaseManager) {
        let device = PmemBuilder::new(64 * 1024 * 1024).build();
        let sb = Superblock::compute(device.size() as u64 / BLOCK_SIZE as u64, 1024).unwrap();
        let mgr = LeaseManager::new(Arc::clone(&device), &sb, active);
        (device, sb, mgr)
    }

    #[test]
    fn reserve_hands_out_lowest_free_ids() {
        let (_d, _sb, mgr) = manager(&[]);
        assert_eq!(mgr.reserve(), Some(0));
        assert_eq!(mgr.reserve(), Some(1));
        mgr.clear(0);
        assert_eq!(mgr.reserve(), Some(0), "released ids are reused");
    }

    #[test]
    fn orphans_are_active_but_not_held_and_block_reuse() {
        let (_d, _sb, mgr) = manager(&[2]);
        assert_eq!(mgr.orphans(), vec![2]);
        assert!(mgr.is_active(2) && !mgr.is_held(2));
        // A fresh reserve skips the orphan's id.
        assert_eq!(mgr.reserve(), Some(0));
        assert!(!mgr.reserve_specific(2), "orphan ids are not reusable");
        // Recovery releases the orphan; the id becomes reusable.
        mgr.clear(2);
        assert!(mgr.reserve_specific(2));
        assert!(mgr.is_held(2));
    }

    #[test]
    fn abandon_turns_a_held_lease_into_an_orphan() {
        let (_d, _sb, mgr) = manager(&[]);
        let id = mgr.reserve().unwrap();
        assert!(mgr.orphans().is_empty());
        mgr.abandon(id);
        assert_eq!(mgr.orphans(), vec![id]);
        assert!(mgr.is_active(id), "the persisted record survives a crash");
    }

    #[test]
    fn persist_round_trips_through_the_table_block() {
        let (device, sb, mgr) = manager(&[]);
        mgr.reserve().unwrap();
        mgr.reserve().unwrap();
        mgr.clear(0);
        mgr.persist();
        assert_eq!(LeaseManager::load_active(&device, &sb), vec![1]);
    }

    #[test]
    fn instance_paths_partition_by_id() {
        assert_eq!(staging_dir(0), "/.splitfs");
        assert_eq!(oplog_path(0), "/.splitfs/oplog");
        assert_eq!(staging_dir(3), "/.splitfs/inst-3");
        assert_eq!(oplog_path(3), "/.splitfs/oplog-3");
        // Distinct ids never share a resource path.
        assert_ne!(staging_dir(1), staging_dir(2));
        assert_ne!(oplog_path(1), oplog_path(2));
    }
}
