//! DAX memory mappings.
//!
//! ext4 DAX maps file extents straight into a process's address space: a
//! load or store to a mapped virtual address touches the PM physical block
//! directly, with no page cache and no kernel involvement after the mapping
//! is set up (§2.2 of the paper).  In the reproduction, a [`DaxMapping`]
//! hands U-Split the *device offsets* backing a file range; U-Split then
//! reads and writes the emulated device at those offsets, which is the
//! moral equivalent of dereferencing the mmapped pointer.
//!
//! The cost of establishing a mapping (VMA setup plus page faults — 4 KiB
//! faults, or a single 2 MiB huge-page fault when alignment allows) is
//! charged by the file system when it builds the mapping; translating
//! offsets afterwards is free, exactly the asymmetry the paper exploits.

/// One contiguous piece of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapSegment {
    /// Offset within the file where this segment starts.
    pub file_offset: u64,
    /// Device (physical) byte offset backing it.
    pub device_offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// A memory mapping of a contiguous file range, possibly backed by several
/// physical extents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaxMapping {
    /// Inode of the mapped file.
    pub ino: u64,
    /// First mapped byte of the file.
    pub file_offset: u64,
    /// Length of the mapped range in bytes.
    pub len: u64,
    /// Physical segments backing the range, in file order.
    pub segments: Vec<MapSegment>,
    /// Whether the mapping was established with 2 MiB huge pages.
    pub huge: bool,
}

impl DaxMapping {
    /// Returns `true` if `file_offset` falls inside the mapped range.
    pub fn covers(&self, file_offset: u64) -> bool {
        file_offset >= self.file_offset && file_offset < self.file_offset + self.len
    }

    /// Translates a file offset into `(device_offset, contiguous_len)`.
    /// Returns `None` when the offset is outside the mapping or falls in a
    /// hole (unmapped segment gap).
    pub fn translate(&self, file_offset: u64) -> Option<(u64, u64)> {
        if !self.covers(file_offset) {
            return None;
        }
        for seg in &self.segments {
            if file_offset >= seg.file_offset && file_offset < seg.file_offset + seg.len {
                let delta = file_offset - seg.file_offset;
                return Some((seg.device_offset + delta, seg.len - delta));
            }
        }
        None
    }

    /// End of the mapped file range (exclusive).
    pub fn end(&self) -> u64 {
        self.file_offset + self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DaxMapping {
        DaxMapping {
            ino: 9,
            file_offset: 4096,
            len: 8192,
            segments: vec![
                MapSegment {
                    file_offset: 4096,
                    device_offset: 1_000_000,
                    len: 4096,
                },
                MapSegment {
                    file_offset: 8192,
                    device_offset: 5_000_000,
                    len: 4096,
                },
            ],
            huge: false,
        }
    }

    #[test]
    fn translate_within_segments() {
        let m = sample();
        assert_eq!(m.translate(4096), Some((1_000_000, 4096)));
        assert_eq!(m.translate(5000), Some((1_000_904, 3192)));
        assert_eq!(m.translate(8192), Some((5_000_000, 4096)));
        assert_eq!(m.translate(12_287), Some((5_004_095, 1)));
    }

    #[test]
    fn translate_outside_mapping_is_none() {
        let m = sample();
        assert_eq!(m.translate(0), None);
        assert_eq!(m.translate(12_288), None);
        assert!(!m.covers(12_288));
        assert!(m.covers(4096));
    }

    #[test]
    fn translate_in_a_hole_is_none() {
        let mut m = sample();
        m.segments.remove(1);
        assert_eq!(m.translate(9000), None);
    }
}
