//! Inodes and extent maps.
//!
//! Each file's mapping from logical 4 KiB blocks to physical device blocks
//! is an extent map (a sorted map of contiguous runs), the same structure
//! ext4 uses and the structure the relink primitive manipulates: relink is
//! nothing more than an atomic exchange of extent-map ranges between two
//! inodes.
//!
//! Inodes are persisted as fixed 256-byte records in the inode table; maps
//! with more extents than fit inline spill into a chain of overflow blocks
//! allocated from the data area.

use std::collections::BTreeMap;

use vfs::util::{ByteReader, ByteWriter};
use vfs::{FsError, FsResult};

use crate::alloc::BlockRun;
use crate::layout::{BLOCK_SIZE, INODE_RECORD_SIZE};

/// Number of extents stored inline in the 256-byte inode record.
pub const INLINE_EXTENTS: usize = 9;

/// Number of extents stored in one overflow block.
pub const EXTENTS_PER_OVERFLOW: usize = (BLOCK_SIZE - 12) / 24;

/// A contiguous mapping of logical file blocks to physical device blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First logical block within the file.
    pub logical: u64,
    /// First physical block on the device.
    pub phys: u64,
    /// Number of blocks.
    pub len: u64,
}

/// The kind of object an inode describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InodeKind {
    /// A regular file.
    File,
    /// A directory.
    Directory,
}

/// An in-memory inode.
#[derive(Debug, Clone)]
pub struct Inode {
    /// Inode number.
    pub ino: u64,
    /// File or directory.
    pub kind: InodeKind,
    /// Link count.
    pub nlink: u32,
    /// Size in bytes (for directories: the byte length of the dirent area).
    pub size: u64,
    /// Logical-to-physical extent map.
    pub extents: ExtentMap,
    /// Overflow blocks currently holding spilled extents (persisted chain).
    pub overflow_blocks: Vec<u64>,
}

impl Inode {
    /// Creates a fresh inode with no extents.
    pub fn new(ino: u64, kind: InodeKind) -> Self {
        Self {
            ino,
            kind,
            nlink: 1,
            size: 0,
            extents: ExtentMap::new(),
            overflow_blocks: Vec::new(),
        }
    }

    /// Whether this inode is a directory.
    pub fn is_dir(&self) -> bool {
        self.kind == InodeKind::Directory
    }

    /// Number of blocks currently mapped.
    pub fn mapped_blocks(&self) -> u64 {
        self.extents.mapped_blocks()
    }

    /// Serializes the inode into its 256-byte table record plus the images
    /// of any overflow blocks.  `overflow_blocks` must already contain the
    /// physical block numbers to use (the file system allocates them before
    /// calling this when the extent count grows).
    pub fn serialize(&self) -> (Vec<u8>, Vec<(u64, Vec<u8>)>) {
        let extents: Vec<Extent> = self.extents.iter().collect();
        let mut record = ByteWriter::new();
        record.put_u8(match self.kind {
            InodeKind::File => 1,
            InodeKind::Directory => 2,
        });
        record.put_u32(self.nlink);
        record.put_u64(self.size);
        record.put_u64(extents.len() as u64);
        record.put_u64(*self.overflow_blocks.first().unwrap_or(&0));
        for ext in extents.iter().take(INLINE_EXTENTS) {
            record.put_u64(ext.logical);
            record.put_u64(ext.phys);
            record.put_u64(ext.len);
        }
        let mut record = record.into_vec();
        record.resize(INODE_RECORD_SIZE, 0);

        let mut overflow_images = Vec::new();
        let spilled: Vec<&Extent> = extents.iter().skip(INLINE_EXTENTS).collect();
        for (chunk_idx, chunk) in spilled.chunks(EXTENTS_PER_OVERFLOW).enumerate() {
            let mut w = ByteWriter::new();
            w.put_u32(chunk.len() as u32);
            for ext in chunk {
                w.put_u64(ext.logical);
                w.put_u64(ext.phys);
                w.put_u64(ext.len);
            }
            let mut image = w.into_vec();
            image.resize(BLOCK_SIZE - 8, 0);
            let next = self
                .overflow_blocks
                .get(chunk_idx + 1)
                .copied()
                .unwrap_or(0);
            image.extend_from_slice(&next.to_le_bytes());
            let block = self.overflow_blocks[chunk_idx];
            overflow_images.push((block, image));
        }
        (record, overflow_images)
    }

    /// Number of overflow blocks needed for the current extent count.
    pub fn overflow_blocks_needed(&self) -> usize {
        let n = self.extents.len();
        n.saturating_sub(INLINE_EXTENTS)
            .div_ceil(EXTENTS_PER_OVERFLOW)
    }

    /// Deserializes an inode from its table record; spilled extents are
    /// loaded by the caller via [`Inode::load_overflow`] since reading the
    /// chain requires device access.  Returns `None` for a free slot.
    pub fn deserialize(ino: u64, record: &[u8]) -> FsResult<Option<(Self, u64, u64)>> {
        let mut r = ByteReader::new(record);
        let mode = r.get_u8().ok_or(FsError::Corrupted("short inode".into()))?;
        if mode == 0 {
            return Ok(None);
        }
        let kind = match mode {
            1 => InodeKind::File,
            2 => InodeKind::Directory,
            _ => return Err(FsError::Corrupted(format!("bad inode mode {mode}"))),
        };
        let nlink = r
            .get_u32()
            .ok_or(FsError::Corrupted("short inode".into()))?;
        let size = r
            .get_u64()
            .ok_or(FsError::Corrupted("short inode".into()))?;
        let extent_count = r
            .get_u64()
            .ok_or(FsError::Corrupted("short inode".into()))?;
        let overflow_head = r
            .get_u64()
            .ok_or(FsError::Corrupted("short inode".into()))?;
        let mut map = ExtentMap::new();
        let inline = (extent_count as usize).min(INLINE_EXTENTS);
        for _ in 0..inline {
            let logical = r
                .get_u64()
                .ok_or(FsError::Corrupted("short extent".into()))?;
            let phys = r
                .get_u64()
                .ok_or(FsError::Corrupted("short extent".into()))?;
            let len = r
                .get_u64()
                .ok_or(FsError::Corrupted("short extent".into()))?;
            map.insert(Extent { logical, phys, len });
        }
        let inode = Self {
            ino,
            kind,
            nlink,
            size,
            extents: map,
            overflow_blocks: Vec::new(),
        };
        Ok(Some((inode, extent_count, overflow_head)))
    }

    /// Parses one overflow block image, adding its extents to the map.
    /// Returns the next block in the chain (0 when this was the last).
    pub fn load_overflow(&mut self, block_no: u64, image: &[u8]) -> FsResult<u64> {
        let mut r = ByteReader::new(image);
        let count = r
            .get_u32()
            .ok_or(FsError::Corrupted("short overflow block".into()))? as usize;
        if count > EXTENTS_PER_OVERFLOW {
            return Err(FsError::Corrupted("overflow block count too large".into()));
        }
        for _ in 0..count {
            let logical = r
                .get_u64()
                .ok_or(FsError::Corrupted("short overflow extent".into()))?;
            let phys = r
                .get_u64()
                .ok_or(FsError::Corrupted("short overflow extent".into()))?;
            let len = r
                .get_u64()
                .ok_or(FsError::Corrupted("short overflow extent".into()))?;
            self.extents.insert(Extent { logical, phys, len });
        }
        self.overflow_blocks.push(block_no);
        let mut next_bytes = [0u8; 8];
        next_bytes.copy_from_slice(&image[BLOCK_SIZE - 8..BLOCK_SIZE]);
        Ok(u64::from_le_bytes(next_bytes))
    }
}

/// A sorted map of non-overlapping extents keyed by logical block.
#[derive(Debug, Clone, Default)]
pub struct ExtentMap {
    map: BTreeMap<u64, (u64, u64)>, // logical -> (phys, len)
}

impl ExtentMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of extents.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map has no extents.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total number of mapped blocks.
    pub fn mapped_blocks(&self) -> u64 {
        self.map.values().map(|&(_, len)| len).sum()
    }

    /// Iterates extents in logical order.
    pub fn iter(&self) -> impl Iterator<Item = Extent> + '_ {
        self.map
            .iter()
            .map(|(&logical, &(phys, len))| Extent { logical, phys, len })
    }

    /// Looks up the physical block backing `logical`, returning the physical
    /// block and how many blocks (starting there) are contiguous.
    pub fn lookup(&self, logical: u64) -> Option<(u64, u64)> {
        let (&start, &(phys, len)) = self.map.range(..=logical).next_back()?;
        if logical < start + len {
            let delta = logical - start;
            Some((phys + delta, len - delta))
        } else {
            None
        }
    }

    /// Inserts a mapping, merging with adjacent extents when both the
    /// logical and physical ranges are contiguous.  The caller must ensure
    /// the logical range is not already mapped.
    pub fn insert(&mut self, ext: Extent) {
        if ext.len == 0 {
            return;
        }
        let mut logical = ext.logical;
        let mut phys = ext.phys;
        let mut len = ext.len;
        // Merge with the preceding extent.
        if let Some((&prev_log, &(prev_phys, prev_len))) = self.map.range(..logical).next_back() {
            if prev_log + prev_len == logical && prev_phys + prev_len == phys {
                self.map.remove(&prev_log);
                logical = prev_log;
                phys = prev_phys;
                len += prev_len;
            }
        }
        // Merge with the following extent.
        if let Some((&next_log, &(next_phys, next_len))) = self.map.range(logical + 1..).next() {
            if logical + len == next_log && phys + len == next_phys {
                self.map.remove(&next_log);
                len += next_len;
            }
        }
        self.map.insert(logical, (phys, len));
    }

    /// Removes the mapping for `[logical, logical+count)`, returning the
    /// physical runs that were freed.  Unmapped holes inside the range are
    /// skipped.
    pub fn remove_range(&mut self, logical: u64, count: u64) -> Vec<BlockRun> {
        if count == 0 {
            return Vec::new();
        }
        let end = logical + count;
        let mut freed = Vec::new();
        let mut to_reinsert = Vec::new();
        let mut to_remove = Vec::new();
        for (&start, &(phys, len)) in self.map.range(..end) {
            let ext_end = start + len;
            if ext_end <= logical {
                continue;
            }
            to_remove.push(start);
            // Left part kept.
            if start < logical {
                to_reinsert.push(Extent {
                    logical: start,
                    phys,
                    len: logical - start,
                });
            }
            // Right part kept.
            if ext_end > end {
                to_reinsert.push(Extent {
                    logical: end,
                    phys: phys + (end - start),
                    len: ext_end - end,
                });
            }
            // Middle part freed.
            let freed_start_logical = start.max(logical);
            let freed_end_logical = ext_end.min(end);
            freed.push(BlockRun {
                start: phys + (freed_start_logical - start),
                len: freed_end_logical - freed_start_logical,
            });
        }
        for start in to_remove {
            self.map.remove(&start);
        }
        for ext in to_reinsert {
            self.insert(ext);
        }
        freed
    }

    /// Removes every mapping at or beyond `from_logical`, returning the
    /// freed physical runs (used by truncate and unlink).
    pub fn truncate_from(&mut self, from_logical: u64) -> Vec<BlockRun> {
        let max = self
            .map
            .iter()
            .map(|(&l, &(_, len))| l + len)
            .max()
            .unwrap_or(0);
        if max <= from_logical {
            return Vec::new();
        }
        self.remove_range(from_logical, max - from_logical)
    }

    /// Extracts (without removing) the mapping of `[logical, logical+count)`
    /// as a list of extents relative to the file.  Returns an error if any
    /// block in the range is unmapped — swap_extents requires both ranges to
    /// be fully allocated, as the real ioctl does.
    pub fn extract_range(&self, logical: u64, count: u64) -> FsResult<Vec<Extent>> {
        let mut out = Vec::new();
        let mut cur = logical;
        let end = logical + count;
        while cur < end {
            let (phys, contig) = self.lookup(cur).ok_or(FsError::InvalidArgument)?;
            let take = contig.min(end - cur);
            out.push(Extent {
                logical: cur,
                phys,
                len: take,
            });
            cur += take;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut m = ExtentMap::new();
        m.insert(Extent {
            logical: 0,
            phys: 100,
            len: 4,
        });
        m.insert(Extent {
            logical: 10,
            phys: 200,
            len: 2,
        });
        assert_eq!(m.lookup(0), Some((100, 4)));
        assert_eq!(m.lookup(3), Some((103, 1)));
        assert_eq!(m.lookup(4), None);
        assert_eq!(m.lookup(11), Some((201, 1)));
        assert_eq!(m.mapped_blocks(), 6);
    }

    #[test]
    fn adjacent_extents_merge() {
        let mut m = ExtentMap::new();
        m.insert(Extent {
            logical: 0,
            phys: 100,
            len: 4,
        });
        m.insert(Extent {
            logical: 4,
            phys: 104,
            len: 4,
        });
        assert_eq!(m.len(), 1);
        assert_eq!(m.lookup(7), Some((107, 1)));
        // Physically discontiguous extents must not merge.
        m.insert(Extent {
            logical: 8,
            phys: 500,
            len: 2,
        });
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn remove_range_splits_extents() {
        let mut m = ExtentMap::new();
        m.insert(Extent {
            logical: 0,
            phys: 100,
            len: 10,
        });
        let freed = m.remove_range(3, 4);
        assert_eq!(freed, vec![BlockRun { start: 103, len: 4 }]);
        assert_eq!(m.lookup(2), Some((102, 1)));
        assert_eq!(m.lookup(3), None);
        assert_eq!(m.lookup(7), Some((107, 3)));
        assert_eq!(m.mapped_blocks(), 6);
    }

    #[test]
    fn truncate_from_frees_the_tail() {
        let mut m = ExtentMap::new();
        m.insert(Extent {
            logical: 0,
            phys: 100,
            len: 8,
        });
        m.insert(Extent {
            logical: 20,
            phys: 300,
            len: 4,
        });
        let freed = m.truncate_from(4);
        let total_freed: u64 = freed.iter().map(|r| r.len).sum();
        assert_eq!(total_freed, 8);
        assert_eq!(m.mapped_blocks(), 4);
        assert_eq!(m.lookup(21), None);
    }

    #[test]
    fn extract_range_requires_full_mapping() {
        let mut m = ExtentMap::new();
        m.insert(Extent {
            logical: 0,
            phys: 100,
            len: 4,
        });
        assert!(m.extract_range(0, 4).is_ok());
        assert!(m.extract_range(2, 4).is_err());
    }

    #[test]
    fn inode_record_round_trips_inline_extents() {
        let mut ino = Inode::new(7, InodeKind::File);
        ino.size = 12345;
        ino.nlink = 2;
        for i in 0..5u64 {
            ino.extents.insert(Extent {
                logical: i * 10,
                phys: 1000 + i * 100,
                len: 3,
            });
        }
        let (record, overflow) = ino.serialize();
        assert_eq!(record.len(), INODE_RECORD_SIZE);
        assert!(overflow.is_empty());
        let (parsed, count, overflow_head) = Inode::deserialize(7, &record).unwrap().unwrap();
        assert_eq!(count, 5);
        assert_eq!(overflow_head, 0);
        assert_eq!(parsed.size, 12345);
        assert_eq!(parsed.nlink, 2);
        assert_eq!(parsed.extents.len(), 5);
        assert_eq!(parsed.extents.lookup(40), Some((1400, 3)));
    }

    #[test]
    fn inode_record_spills_to_overflow_blocks() {
        let mut ino = Inode::new(8, InodeKind::File);
        // Insert far more extents than fit inline, physically discontiguous
        // so they cannot merge.
        let n = INLINE_EXTENTS + EXTENTS_PER_OVERFLOW + 5;
        for i in 0..n as u64 {
            ino.extents.insert(Extent {
                logical: i * 2,
                phys: 10_000 + i * 7,
                len: 1,
            });
        }
        assert_eq!(ino.overflow_blocks_needed(), 2);
        ino.overflow_blocks = vec![555, 556];
        let (record, overflow) = ino.serialize();
        assert_eq!(overflow.len(), 2);
        assert_eq!(overflow[0].0, 555);
        assert_eq!(overflow[1].0, 556);

        // Rebuild from record + overflow images.
        let (mut parsed, count, head) = Inode::deserialize(8, &record).unwrap().unwrap();
        assert_eq!(count as usize, n);
        assert_eq!(head, 555);
        let next = parsed.load_overflow(555, &overflow[0].1).unwrap();
        assert_eq!(next, 556);
        let next = parsed.load_overflow(556, &overflow[1].1).unwrap();
        assert_eq!(next, 0);
        assert_eq!(parsed.extents.len(), n);
        assert_eq!(parsed.extents.lookup(0), Some((10_000, 1)));
        assert_eq!(
            parsed.extents.lookup((n as u64 - 1) * 2),
            Some((10_000 + (n as u64 - 1) * 7, 1))
        );
    }

    #[test]
    fn free_slot_deserializes_to_none() {
        let record = vec![0u8; INODE_RECORD_SIZE];
        assert!(Inode::deserialize(3, &record).unwrap().is_none());
    }

    #[test]
    fn corrupt_mode_is_detected() {
        let mut record = vec![0u8; INODE_RECORD_SIZE];
        record[0] = 9;
        assert!(matches!(
            Inode::deserialize(3, &record),
            Err(FsError::Corrupted(_))
        ));
    }
}
