//! Metadata journal (the jbd2 stand-in).
//!
//! The kernel file system journals *logical* metadata records: every
//! metadata mutation appends records describing the change, followed by a
//! commit record, all made persistent with a single fence before the
//! corresponding in-place metadata structures are updated.  After a crash,
//! committed transactions are replayed idempotently on top of whatever
//! in-place state survived, which is exactly the guarantee SplitFS relies
//! on when it routes metadata operations (including relink) through the
//! kernel file system.
//!
//! Costs: each record is a non-temporal device write in the
//! [`TimeCategory::Journal`] class; the commit charges the per-transaction
//! software cost from the [`CostModel`](pmem::CostModel) plus one fence.

use std::sync::Arc;

use pmem::{PersistMode, PmemDevice, TimeCategory};
use vfs::util::{checksum32, ByteReader, ByteWriter};
use vfs::{FsError, FsResult};

use crate::layout::{Superblock, BLOCK_SIZE};

/// Magic prefix of every journal record.
const RECORD_MAGIC: u16 = 0x4A52; // "JR"

/// One logical metadata mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A new inode was created and linked into a directory.
    CreateInode {
        /// New inode number.
        ino: u64,
        /// Parent directory inode.
        parent: u64,
        /// Entry name within the parent.
        name: String,
        /// Whether the new inode is a directory.
        is_dir: bool,
    },
    /// A directory entry was removed (and the inode freed if `free_inode`).
    Unlink {
        /// Parent directory inode.
        parent: u64,
        /// Entry name within the parent.
        name: String,
        /// The inode the entry referred to.
        ino: u64,
        /// Whether the inode itself was freed (link count reached zero).
        free_inode: bool,
    },
    /// A rename, possibly replacing an existing destination entry.
    Rename {
        /// Source parent directory.
        old_parent: u64,
        /// Source entry name.
        old_name: String,
        /// Destination parent directory.
        new_parent: u64,
        /// Destination entry name.
        new_name: String,
        /// The inode being renamed.
        ino: u64,
        /// Inode of a replaced destination entry (0 when none).
        replaced_ino: u64,
    },
    /// The file size changed.
    SetSize {
        /// Inode number.
        ino: u64,
        /// New size in bytes.
        size: u64,
    },
    /// A contiguous extent was added to a file's mapping.
    AddExtent {
        /// Inode number.
        ino: u64,
        /// First logical block covered.
        logical: u64,
        /// First physical block.
        phys: u64,
        /// Number of blocks.
        len: u64,
    },
    /// All extents at or beyond `from_logical` were removed.
    TruncateExtents {
        /// Inode number.
        ino: u64,
        /// First logical block to drop.
        from_logical: u64,
    },
    /// Blocks were allocated in the bitmap.
    AllocBlocks {
        /// First physical block.
        start: u64,
        /// Number of blocks.
        len: u64,
    },
    /// Blocks were freed in the bitmap.
    FreeBlocks {
        /// First physical block.
        start: u64,
        /// Number of blocks.
        len: u64,
    },
    /// The physical mappings of two files were swapped over a logical block
    /// range.  Compact descriptive form of the relink primitive; the
    /// implementation journals [`JournalRecord::SetRangeMapping`] records
    /// instead because they replay idempotently.
    SwapExtents {
        /// First file.
        ino_a: u64,
        /// First logical block in `ino_a`.
        start_a: u64,
        /// Second file.
        ino_b: u64,
        /// First logical block in `ino_b`.
        start_b: u64,
        /// Number of blocks exchanged.
        len: u64,
    },
    /// Replaces the mapping of a logical block range with an explicit list
    /// of `(logical, phys, len)` extents.  Used by the relink ioctl so that
    /// replaying the record after a crash always produces the post-relink
    /// state, no matter how far the in-place updates got.
    SetRangeMapping {
        /// Inode whose mapping changes.
        ino: u64,
        /// First logical block of the affected range.
        logical: u64,
        /// Number of logical blocks affected (extents outside are kept).
        count: u64,
        /// The new extents inside the range, as `(logical, phys, len)`.
        extents: Vec<(u64, u64, u64)>,
    },
    /// Transaction commit marker.
    Commit,
}

impl JournalRecord {
    fn type_tag(&self) -> u8 {
        match self {
            JournalRecord::CreateInode { .. } => 1,
            JournalRecord::Unlink { .. } => 2,
            JournalRecord::Rename { .. } => 3,
            JournalRecord::SetSize { .. } => 4,
            JournalRecord::AddExtent { .. } => 5,
            JournalRecord::TruncateExtents { .. } => 6,
            JournalRecord::AllocBlocks { .. } => 7,
            JournalRecord::FreeBlocks { .. } => 8,
            JournalRecord::SwapExtents { .. } => 9,
            JournalRecord::Commit => 10,
            JournalRecord::SetRangeMapping { .. } => 11,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            JournalRecord::CreateInode {
                ino,
                parent,
                name,
                is_dir,
            } => {
                w.put_u64(*ino);
                w.put_u64(*parent);
                w.put_str(name);
                w.put_u8(u8::from(*is_dir));
            }
            JournalRecord::Unlink {
                parent,
                name,
                ino,
                free_inode,
            } => {
                w.put_u64(*parent);
                w.put_str(name);
                w.put_u64(*ino);
                w.put_u8(u8::from(*free_inode));
            }
            JournalRecord::Rename {
                old_parent,
                old_name,
                new_parent,
                new_name,
                ino,
                replaced_ino,
            } => {
                w.put_u64(*old_parent);
                w.put_str(old_name);
                w.put_u64(*new_parent);
                w.put_str(new_name);
                w.put_u64(*ino);
                w.put_u64(*replaced_ino);
            }
            JournalRecord::SetSize { ino, size } => {
                w.put_u64(*ino);
                w.put_u64(*size);
            }
            JournalRecord::AddExtent {
                ino,
                logical,
                phys,
                len,
            } => {
                w.put_u64(*ino);
                w.put_u64(*logical);
                w.put_u64(*phys);
                w.put_u64(*len);
            }
            JournalRecord::TruncateExtents { ino, from_logical } => {
                w.put_u64(*ino);
                w.put_u64(*from_logical);
            }
            JournalRecord::AllocBlocks { start, len }
            | JournalRecord::FreeBlocks { start, len } => {
                w.put_u64(*start);
                w.put_u64(*len);
            }
            JournalRecord::SwapExtents {
                ino_a,
                start_a,
                ino_b,
                start_b,
                len,
            } => {
                w.put_u64(*ino_a);
                w.put_u64(*start_a);
                w.put_u64(*ino_b);
                w.put_u64(*start_b);
                w.put_u64(*len);
            }
            JournalRecord::SetRangeMapping {
                ino,
                logical,
                count,
                extents,
            } => {
                w.put_u64(*ino);
                w.put_u64(*logical);
                w.put_u64(*count);
                w.put_u16(extents.len() as u16);
                for (l, p, n) in extents {
                    w.put_u64(*l);
                    w.put_u64(*p);
                    w.put_u64(*n);
                }
            }
            JournalRecord::Commit => {}
        }
        w.into_vec()
    }

    fn decode(tag: u8, payload: &[u8]) -> Option<Self> {
        let mut r = ByteReader::new(payload);
        let rec = match tag {
            1 => JournalRecord::CreateInode {
                ino: r.get_u64()?,
                parent: r.get_u64()?,
                name: r.get_str()?,
                is_dir: r.get_u8()? != 0,
            },
            2 => JournalRecord::Unlink {
                parent: r.get_u64()?,
                name: r.get_str()?,
                ino: r.get_u64()?,
                free_inode: r.get_u8()? != 0,
            },
            3 => JournalRecord::Rename {
                old_parent: r.get_u64()?,
                old_name: r.get_str()?,
                new_parent: r.get_u64()?,
                new_name: r.get_str()?,
                ino: r.get_u64()?,
                replaced_ino: r.get_u64()?,
            },
            4 => JournalRecord::SetSize {
                ino: r.get_u64()?,
                size: r.get_u64()?,
            },
            5 => JournalRecord::AddExtent {
                ino: r.get_u64()?,
                logical: r.get_u64()?,
                phys: r.get_u64()?,
                len: r.get_u64()?,
            },
            6 => JournalRecord::TruncateExtents {
                ino: r.get_u64()?,
                from_logical: r.get_u64()?,
            },
            7 => JournalRecord::AllocBlocks {
                start: r.get_u64()?,
                len: r.get_u64()?,
            },
            8 => JournalRecord::FreeBlocks {
                start: r.get_u64()?,
                len: r.get_u64()?,
            },
            9 => JournalRecord::SwapExtents {
                ino_a: r.get_u64()?,
                start_a: r.get_u64()?,
                ino_b: r.get_u64()?,
                start_b: r.get_u64()?,
                len: r.get_u64()?,
            },
            10 => JournalRecord::Commit,
            11 => {
                let ino = r.get_u64()?;
                let logical = r.get_u64()?;
                let count = r.get_u64()?;
                let n = r.get_u16()? as usize;
                let mut extents = Vec::with_capacity(n);
                for _ in 0..n {
                    extents.push((r.get_u64()?, r.get_u64()?, r.get_u64()?));
                }
                JournalRecord::SetRangeMapping {
                    ino,
                    logical,
                    count,
                    extents,
                }
            }
            _ => return None,
        };
        Some(rec)
    }

    /// Serializes the record (with transaction id `tid`) into its on-device
    /// form: `magic, tag, payload_len, tid, payload, checksum`.
    pub fn encode(&self, tid: u64) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut w = ByteWriter::new();
        w.put_u16(RECORD_MAGIC);
        w.put_u8(self.type_tag());
        w.put_u16(payload.len() as u16);
        w.put_u64(tid);
        let mut bytes = w.into_vec();
        bytes.extend_from_slice(&payload);
        let crc = checksum32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }
}

/// The journal manager.  Owns the journal region of the device.
#[derive(Debug)]
pub struct Journal {
    device: Arc<PmemDevice>,
    region_start: u64,
    region_len: u64,
    /// Next free byte offset within the journal region (volatile; the
    /// on-device contents are the source of truth for recovery).
    head: u64,
    next_tid: u64,
}

impl Journal {
    /// Creates a journal manager over the journal region described by `sb`.
    /// Does not touch the device; call [`Journal::format`] for a fresh file
    /// system or [`Journal::recover`] when mounting.
    pub fn new(device: Arc<PmemDevice>, sb: &Superblock) -> Self {
        Self {
            device,
            region_start: sb.journal_start * BLOCK_SIZE as u64,
            region_len: sb.journal_blocks * BLOCK_SIZE as u64,
            head: 0,
            next_tid: 1,
        }
    }

    /// Zeroes the journal region (fresh format, or checkpoint reset).
    pub fn format(&mut self) {
        self.device.zero(
            self.region_start,
            self.region_len as usize,
            PersistMode::NonTemporal,
            TimeCategory::Journal,
        );
        self.device.fence(TimeCategory::Journal);
        self.head = 0;
    }

    /// Returns the number of journal bytes currently used.
    pub fn used_bytes(&self) -> u64 {
        self.head
    }

    /// Commits a transaction consisting of `records` (a commit marker is
    /// appended automatically).  Returns the transaction id.
    ///
    /// All record writes use non-temporal stores followed by a single fence,
    /// after which the transaction is durable.
    pub fn commit(&mut self, records: &[JournalRecord]) -> FsResult<u64> {
        let tid = self.next_tid;
        self.next_tid += 1;
        self.device.stats().add_journal_txn();

        let mut bytes = Vec::new();
        for rec in records {
            bytes.extend_from_slice(&rec.encode(tid));
        }
        bytes.extend_from_slice(&JournalRecord::Commit.encode(tid));

        if self.head + bytes.len() as u64 > self.region_len {
            // The journal is full.  Because in-place metadata updates are
            // applied synchronously right after each commit, every previous
            // transaction is already checkpointed and the region can simply
            // be reset.
            self.format();
            if bytes.len() as u64 > self.region_len {
                return Err(FsError::NoSpace);
            }
        }

        let cost = self.device.cost().clone();
        // Software cost of assembling the transaction.
        self.device.charge(
            TimeCategory::Software,
            cost.ext4_journal_txn_ns + records.len() as f64 * cost.ext4_journal_per_block_ns,
        );
        self.device.write(
            self.region_start + self.head,
            &bytes,
            PersistMode::NonTemporal,
            TimeCategory::Journal,
        );
        self.device.fence(TimeCategory::Journal);
        self.head += bytes.len() as u64;
        Ok(tid)
    }

    /// Scans the journal region and returns the records of every committed
    /// transaction, in commit order.  Records of transactions without a
    /// commit marker (torn at the crash point) are discarded.
    pub fn recover(device: &Arc<PmemDevice>, sb: &Superblock) -> (Vec<JournalRecord>, u64, u64) {
        let region_start = sb.journal_start * BLOCK_SIZE as u64;
        let region_len = sb.journal_blocks * BLOCK_SIZE as u64;
        let mut raw = vec![0u8; region_len as usize];
        device.read_uncharged(region_start, &mut raw);

        let mut committed: Vec<JournalRecord> = Vec::new();
        let mut pending: Vec<JournalRecord> = Vec::new();
        let mut pos = 0usize;
        let mut end_of_log = 0u64;
        let mut max_tid = 0u64;
        loop {
            if pos + 13 > raw.len() {
                break;
            }
            let mut r = ByteReader::new(&raw[pos..]);
            let magic = match r.get_u16() {
                Some(m) => m,
                None => break,
            };
            if magic != RECORD_MAGIC {
                break;
            }
            let tag = match r.get_u8() {
                Some(t) => t,
                None => break,
            };
            let payload_len = match r.get_u16() {
                Some(l) => l as usize,
                None => break,
            };
            let tid = match r.get_u64() {
                Some(t) => t,
                None => break,
            };
            let header_len = r.position();
            let total = header_len + payload_len + 4;
            if pos + total > raw.len() {
                break;
            }
            let body = &raw[pos..pos + header_len + payload_len];
            let mut crc_bytes = [0u8; 4];
            crc_bytes.copy_from_slice(&raw[pos + header_len + payload_len..pos + total]);
            if checksum32(body) != u32::from_le_bytes(crc_bytes) {
                // Torn record: everything from here on is garbage.
                break;
            }
            let payload = &raw[pos + header_len..pos + header_len + payload_len];
            match JournalRecord::decode(tag, payload) {
                Some(JournalRecord::Commit) => {
                    committed.append(&mut pending);
                    max_tid = max_tid.max(tid);
                    end_of_log = (pos + total) as u64;
                }
                Some(rec) => pending.push(rec),
                None => break,
            }
            pos += total;
        }
        (committed, end_of_log, max_tid)
    }

    /// Restores the volatile head/tid state after recovery so new
    /// transactions append after the surviving log contents.
    pub fn restore_position(&mut self, head: u64, max_tid: u64) {
        self.head = head;
        self.next_tid = max_tid + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemBuilder;

    fn setup() -> (Arc<PmemDevice>, Superblock) {
        let device = PmemBuilder::new(64 * 1024 * 1024)
            .cost_model(pmem::CostModel::calibrated())
            .build();
        let sb = Superblock::compute(device.size() as u64 / BLOCK_SIZE as u64, 1024).unwrap();
        (device, sb)
    }

    #[test]
    fn records_round_trip_through_encoding() {
        let records = vec![
            JournalRecord::CreateInode {
                ino: 12,
                parent: 2,
                name: "wal.log".into(),
                is_dir: false,
            },
            JournalRecord::AddExtent {
                ino: 12,
                logical: 0,
                phys: 9000,
                len: 16,
            },
            JournalRecord::SwapExtents {
                ino_a: 12,
                start_a: 0,
                ino_b: 44,
                start_b: 128,
                len: 8,
            },
            JournalRecord::Rename {
                old_parent: 2,
                old_name: "a".into(),
                new_parent: 3,
                new_name: "b".into(),
                ino: 12,
                replaced_ino: 0,
            },
        ];
        for rec in &records {
            let bytes = rec.encode(7);
            let mut r = ByteReader::new(&bytes);
            r.get_u16().unwrap();
            let tag = r.get_u8().unwrap();
            let plen = r.get_u16().unwrap() as usize;
            let _tid = r.get_u64().unwrap();
            let start = r.position();
            let decoded = JournalRecord::decode(tag, &bytes[start..start + plen]).unwrap();
            assert_eq!(&decoded, rec);
        }
    }

    #[test]
    fn committed_transactions_survive_crash_and_recover() {
        let (device, sb) = setup();
        let mut journal = Journal::new(Arc::clone(&device), &sb);
        journal.format();
        journal
            .commit(&[JournalRecord::SetSize { ino: 5, size: 4096 }])
            .unwrap();
        journal
            .commit(&[JournalRecord::AllocBlocks { start: 100, len: 4 }])
            .unwrap();
        device.crash();
        let (records, _end, max_tid) = Journal::recover(&device, &sb);
        assert_eq!(
            records,
            vec![
                JournalRecord::SetSize { ino: 5, size: 4096 },
                JournalRecord::AllocBlocks { start: 100, len: 4 },
            ]
        );
        assert_eq!(max_tid, 2);
    }

    #[test]
    fn torn_uncommitted_transaction_is_discarded() {
        let (device, sb) = setup();
        let mut journal = Journal::new(Arc::clone(&device), &sb);
        journal.format();
        journal
            .commit(&[JournalRecord::SetSize { ino: 1, size: 10 }])
            .unwrap();
        // Hand-write a record with no commit marker and no fence, as if the
        // crash happened mid-transaction.
        let torn = JournalRecord::SetSize { ino: 2, size: 99 }.encode(9);
        device.write(
            sb.journal_start * BLOCK_SIZE as u64 + journal.used_bytes(),
            &torn,
            PersistMode::Temporal,
            TimeCategory::Journal,
        );
        device.crash();
        let (records, _, _) = Journal::recover(&device, &sb);
        assert_eq!(records, vec![JournalRecord::SetSize { ino: 1, size: 10 }]);
    }

    #[test]
    fn journal_resets_when_full() {
        let (device, sb) = setup();
        let mut journal = Journal::new(Arc::clone(&device), &sb);
        journal.format();
        // Each commit is small; force many commits to eventually wrap.
        let big_name = "x".repeat(200);
        for i in 0..50_000u64 {
            journal
                .commit(&[JournalRecord::CreateInode {
                    ino: i,
                    parent: 2,
                    name: big_name.clone(),
                    is_dir: false,
                }])
                .unwrap();
        }
        // If we got here without error the reset path worked; the head must
        // be within the region.
        assert!(journal.used_bytes() <= sb.journal_blocks * BLOCK_SIZE as u64);
    }

    #[test]
    fn recovery_position_restores_appending() {
        let (device, sb) = setup();
        let mut journal = Journal::new(Arc::clone(&device), &sb);
        journal.format();
        journal
            .commit(&[JournalRecord::SetSize { ino: 1, size: 1 }])
            .unwrap();
        let (_, end, max_tid) = Journal::recover(&device, &sb);
        let mut recovered = Journal::new(Arc::clone(&device), &sb);
        recovered.restore_position(end, max_tid);
        recovered
            .commit(&[JournalRecord::SetSize { ino: 1, size: 2 }])
            .unwrap();
        let (records, _, _) = Journal::recover(&device, &sb);
        assert_eq!(records.len(), 2);
    }
}
