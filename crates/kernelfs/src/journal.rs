//! Metadata journal (the jbd2 stand-in).
//!
//! The kernel file system journals *logical* metadata records: every
//! metadata mutation appends records describing the change, followed by a
//! commit record, all made persistent with a single fence before the
//! corresponding in-place metadata structures are updated.  After a crash,
//! committed transactions are replayed idempotently on top of whatever
//! in-place state survived, which is exactly the guarantee SplitFS relies
//! on when it routes metadata operations (including relink) through the
//! kernel file system.
//!
//! Costs: each record is a non-temporal device write in the
//! [`TimeCategory::Journal`] class; the commit charges the per-transaction
//! software cost from the [`CostModel`](pmem::CostModel) plus one fence.
//!
//! # Sharded admission
//!
//! The journal area is split into [`JOURNAL_REGIONS`] independent regions,
//! each with its own head and admission lock, so transactions touching
//! different inode shards commit in parallel.  Transaction ids come from
//! one global counter and recovery merges the regions by id, which keeps
//! replay order identical to a single serialized journal.  When the
//! journal fills it resets **as a whole** (never one region alone, which
//! could discard a newer transaction while an older conflicting one
//! survived elsewhere), and only once every committed transaction has
//! finished applying its in-place metadata updates — the [`TxnGuard`]
//! returned by [`Journal::commit`] tracks exactly that window.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use pmem::{PersistMode, PmemDevice, TimeCategory};
use vfs::util::{checksum32, ByteReader, ByteWriter};
use vfs::{FsError, FsResult};

use crate::layout::{Superblock, BLOCK_SIZE};

/// Magic prefix of every journal record.
const RECORD_MAGIC: u16 = 0x4A52; // "JR"

/// One logical metadata mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A new inode was created and linked into a directory.
    CreateInode {
        /// New inode number.
        ino: u64,
        /// Parent directory inode.
        parent: u64,
        /// Entry name within the parent.
        name: String,
        /// Whether the new inode is a directory.
        is_dir: bool,
    },
    /// A directory entry was removed (and the inode freed if `free_inode`).
    Unlink {
        /// Parent directory inode.
        parent: u64,
        /// Entry name within the parent.
        name: String,
        /// The inode the entry referred to.
        ino: u64,
        /// Whether the inode itself was freed (link count reached zero).
        free_inode: bool,
    },
    /// A rename, possibly replacing an existing destination entry.
    Rename {
        /// Source parent directory.
        old_parent: u64,
        /// Source entry name.
        old_name: String,
        /// Destination parent directory.
        new_parent: u64,
        /// Destination entry name.
        new_name: String,
        /// The inode being renamed.
        ino: u64,
        /// Inode of a replaced destination entry (0 when none).
        replaced_ino: u64,
    },
    /// The file size changed.
    SetSize {
        /// Inode number.
        ino: u64,
        /// New size in bytes.
        size: u64,
    },
    /// A contiguous extent was added to a file's mapping.
    AddExtent {
        /// Inode number.
        ino: u64,
        /// First logical block covered.
        logical: u64,
        /// First physical block.
        phys: u64,
        /// Number of blocks.
        len: u64,
    },
    /// All extents at or beyond `from_logical` were removed.
    TruncateExtents {
        /// Inode number.
        ino: u64,
        /// First logical block to drop.
        from_logical: u64,
    },
    /// Blocks were allocated in the bitmap.
    AllocBlocks {
        /// First physical block.
        start: u64,
        /// Number of blocks.
        len: u64,
    },
    /// Blocks were freed in the bitmap.
    FreeBlocks {
        /// First physical block.
        start: u64,
        /// Number of blocks.
        len: u64,
    },
    /// The physical mappings of two files were swapped over a logical block
    /// range.  Compact descriptive form of the relink primitive; the
    /// implementation journals [`JournalRecord::SetRangeMapping`] records
    /// instead because they replay idempotently.
    SwapExtents {
        /// First file.
        ino_a: u64,
        /// First logical block in `ino_a`.
        start_a: u64,
        /// Second file.
        ino_b: u64,
        /// First logical block in `ino_b`.
        start_b: u64,
        /// Number of blocks exchanged.
        len: u64,
    },
    /// Replaces the mapping of a logical block range with an explicit list
    /// of `(logical, phys, len)` extents.  Used by the relink ioctl so that
    /// replaying the record after a crash always produces the post-relink
    /// state, no matter how far the in-place updates got.
    SetRangeMapping {
        /// Inode whose mapping changes.
        ino: u64,
        /// First logical block of the affected range.
        logical: u64,
        /// Number of logical blocks affected (extents outside are kept).
        count: u64,
        /// The new extents inside the range, as `(logical, phys, len)`.
        extents: Vec<(u64, u64, u64)>,
    },
    /// A U-Split instance lease was acquired or released (see
    /// [`crate::lease`]).  The in-place structure is the lease table
    /// block; replaying the record re-applies the acquisition/release to
    /// it, so recovery always knows which instance owned which slice of
    /// the staging/operation-log resources.
    Lease {
        /// The instance the lease belongs to.
        instance_id: u32,
        /// `true` for an acquisition, `false` for a release.
        acquire: bool,
    },
    /// A segment of a file migrated between the PM tier and the capacity
    /// tier.  The in-place structure is the segment-location table at the
    /// head of the capacity region (see [`crate::segment`]); replaying the
    /// record re-applies the move to it, so recovery always lands on a map
    /// where each segment lives wholly on exactly one tier.
    SegmentMap {
        /// Inode the segment belongs to.
        ino: u64,
        /// First logical block of the segment.
        logical: u64,
        /// Number of blocks in the segment.
        len: u64,
        /// First capacity-tier data block holding the segment's bytes.
        cap_block: u64,
        /// `true` for a demotion (PM → capacity, record added), `false`
        /// for a promotion (capacity → PM, record removed).
        demote: bool,
    },
    /// Transaction commit marker.
    Commit,
}

impl JournalRecord {
    fn type_tag(&self) -> u8 {
        match self {
            JournalRecord::CreateInode { .. } => 1,
            JournalRecord::Unlink { .. } => 2,
            JournalRecord::Rename { .. } => 3,
            JournalRecord::SetSize { .. } => 4,
            JournalRecord::AddExtent { .. } => 5,
            JournalRecord::TruncateExtents { .. } => 6,
            JournalRecord::AllocBlocks { .. } => 7,
            JournalRecord::FreeBlocks { .. } => 8,
            JournalRecord::SwapExtents { .. } => 9,
            JournalRecord::Commit => 10,
            JournalRecord::SetRangeMapping { .. } => 11,
            JournalRecord::Lease { .. } => 12,
            JournalRecord::SegmentMap { .. } => 13,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            JournalRecord::CreateInode {
                ino,
                parent,
                name,
                is_dir,
            } => {
                w.put_u64(*ino);
                w.put_u64(*parent);
                w.put_str(name);
                w.put_u8(u8::from(*is_dir));
            }
            JournalRecord::Unlink {
                parent,
                name,
                ino,
                free_inode,
            } => {
                w.put_u64(*parent);
                w.put_str(name);
                w.put_u64(*ino);
                w.put_u8(u8::from(*free_inode));
            }
            JournalRecord::Rename {
                old_parent,
                old_name,
                new_parent,
                new_name,
                ino,
                replaced_ino,
            } => {
                w.put_u64(*old_parent);
                w.put_str(old_name);
                w.put_u64(*new_parent);
                w.put_str(new_name);
                w.put_u64(*ino);
                w.put_u64(*replaced_ino);
            }
            JournalRecord::SetSize { ino, size } => {
                w.put_u64(*ino);
                w.put_u64(*size);
            }
            JournalRecord::AddExtent {
                ino,
                logical,
                phys,
                len,
            } => {
                w.put_u64(*ino);
                w.put_u64(*logical);
                w.put_u64(*phys);
                w.put_u64(*len);
            }
            JournalRecord::TruncateExtents { ino, from_logical } => {
                w.put_u64(*ino);
                w.put_u64(*from_logical);
            }
            JournalRecord::AllocBlocks { start, len }
            | JournalRecord::FreeBlocks { start, len } => {
                w.put_u64(*start);
                w.put_u64(*len);
            }
            JournalRecord::SwapExtents {
                ino_a,
                start_a,
                ino_b,
                start_b,
                len,
            } => {
                w.put_u64(*ino_a);
                w.put_u64(*start_a);
                w.put_u64(*ino_b);
                w.put_u64(*start_b);
                w.put_u64(*len);
            }
            JournalRecord::SetRangeMapping {
                ino,
                logical,
                count,
                extents,
            } => {
                w.put_u64(*ino);
                w.put_u64(*logical);
                w.put_u64(*count);
                w.put_u16(extents.len() as u16);
                for (l, p, n) in extents {
                    w.put_u64(*l);
                    w.put_u64(*p);
                    w.put_u64(*n);
                }
            }
            JournalRecord::Lease {
                instance_id,
                acquire,
            } => {
                w.put_u64(u64::from(*instance_id));
                w.put_u8(u8::from(*acquire));
            }
            JournalRecord::SegmentMap {
                ino,
                logical,
                len,
                cap_block,
                demote,
            } => {
                w.put_u64(*ino);
                w.put_u64(*logical);
                w.put_u64(*len);
                w.put_u64(*cap_block);
                w.put_u8(u8::from(*demote));
            }
            JournalRecord::Commit => {}
        }
        w.into_vec()
    }

    fn decode(tag: u8, payload: &[u8]) -> Option<Self> {
        let mut r = ByteReader::new(payload);
        let rec = match tag {
            1 => JournalRecord::CreateInode {
                ino: r.get_u64()?,
                parent: r.get_u64()?,
                name: r.get_str()?,
                is_dir: r.get_u8()? != 0,
            },
            2 => JournalRecord::Unlink {
                parent: r.get_u64()?,
                name: r.get_str()?,
                ino: r.get_u64()?,
                free_inode: r.get_u8()? != 0,
            },
            3 => JournalRecord::Rename {
                old_parent: r.get_u64()?,
                old_name: r.get_str()?,
                new_parent: r.get_u64()?,
                new_name: r.get_str()?,
                ino: r.get_u64()?,
                replaced_ino: r.get_u64()?,
            },
            4 => JournalRecord::SetSize {
                ino: r.get_u64()?,
                size: r.get_u64()?,
            },
            5 => JournalRecord::AddExtent {
                ino: r.get_u64()?,
                logical: r.get_u64()?,
                phys: r.get_u64()?,
                len: r.get_u64()?,
            },
            6 => JournalRecord::TruncateExtents {
                ino: r.get_u64()?,
                from_logical: r.get_u64()?,
            },
            7 => JournalRecord::AllocBlocks {
                start: r.get_u64()?,
                len: r.get_u64()?,
            },
            8 => JournalRecord::FreeBlocks {
                start: r.get_u64()?,
                len: r.get_u64()?,
            },
            9 => JournalRecord::SwapExtents {
                ino_a: r.get_u64()?,
                start_a: r.get_u64()?,
                ino_b: r.get_u64()?,
                start_b: r.get_u64()?,
                len: r.get_u64()?,
            },
            10 => JournalRecord::Commit,
            11 => {
                let ino = r.get_u64()?;
                let logical = r.get_u64()?;
                let count = r.get_u64()?;
                let n = r.get_u16()? as usize;
                let mut extents = Vec::with_capacity(n);
                for _ in 0..n {
                    extents.push((r.get_u64()?, r.get_u64()?, r.get_u64()?));
                }
                JournalRecord::SetRangeMapping {
                    ino,
                    logical,
                    count,
                    extents,
                }
            }
            12 => JournalRecord::Lease {
                instance_id: r.get_u64()? as u32,
                acquire: r.get_u8()? != 0,
            },
            13 => JournalRecord::SegmentMap {
                ino: r.get_u64()?,
                logical: r.get_u64()?,
                len: r.get_u64()?,
                cap_block: r.get_u64()?,
                demote: r.get_u8()? != 0,
            },
            _ => return None,
        };
        Some(rec)
    }

    /// Serializes the record (with transaction id `tid`) into its on-device
    /// form: `magic, tag, payload_len, tid, payload, checksum`.
    pub fn encode(&self, tid: u64) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut w = ByteWriter::new();
        w.put_u16(RECORD_MAGIC);
        w.put_u8(self.type_tag());
        w.put_u16(payload.len() as u16);
        w.put_u64(tid);
        let mut bytes = w.into_vec();
        bytes.extend_from_slice(&payload);
        let crc = checksum32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }
}

/// Number of independent journal admission regions.  Each region has its
/// own head and its own admission lock, so transactions for different
/// inode shards commit in parallel instead of serializing on one journal
/// lock — the jbd2-style "one running transaction" bottleneck the sharded
/// kernel state would otherwise hit immediately.
pub const JOURNAL_REGIONS: usize = 4;

/// How many times a committer re-scans the regions for space before
/// giving up (each region drains as soon as its in-flight transactions
/// finish applying their in-place updates, so this bound is never reached
/// in practice).
const COMMIT_RETRIES: usize = 10_000;

#[derive(Debug)]
struct JournalRegion {
    /// Device byte offset of the region.
    start: u64,
    /// Region length in bytes.
    len: u64,
    /// Next free byte offset within the region (volatile; the on-device
    /// contents are the source of truth for recovery).  The admission lock
    /// is held across the record write and fence so that a region's
    /// contents are torn only at its very end.
    head: Mutex<u64>,
    /// Transactions committed in this region whose in-place metadata
    /// updates have not finished yet ([`TxnGuard`]s still alive).  The
    /// journal only resets when this is zero for **every** region:
    /// resetting earlier could discard the journal record of a
    /// transaction whose in-place updates are still partial, which a
    /// crash at that instant could not repair.
    in_flight: AtomicU64,
}

/// Keeps a committed transaction's journal region from being wrapped until
/// the transaction's in-place metadata updates have been applied.  Hold it
/// for the rest of the mutating operation and drop it when the in-place
/// state matches the journaled state.
#[derive(Debug)]
pub struct TxnGuard<'a> {
    in_flight: &'a AtomicU64,
}

impl Drop for TxnGuard<'_> {
    fn drop(&mut self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The journal manager.  Owns the journal area of the device, split into
/// [`JOURNAL_REGIONS`] independently-admitted regions.
#[derive(Debug)]
pub struct Journal {
    device: Arc<PmemDevice>,
    regions: Vec<JournalRegion>,
    next_tid: AtomicU64,
}

impl Journal {
    /// Creates a journal manager over the journal area described by `sb`.
    /// Does not touch the device; call [`Journal::format`] for a fresh file
    /// system or [`Journal::recover`] when mounting.
    pub fn new(device: Arc<PmemDevice>, sb: &Superblock) -> Self {
        let area_start = sb.journal_start * BLOCK_SIZE as u64;
        let area_len = sb.journal_blocks * BLOCK_SIZE as u64;
        // Block-align the split so regions never share a device block.
        let per_region =
            (area_len / JOURNAL_REGIONS as u64) / BLOCK_SIZE as u64 * BLOCK_SIZE as u64;
        let mut regions = Vec::with_capacity(JOURNAL_REGIONS);
        for i in 0..JOURNAL_REGIONS as u64 {
            let start = area_start + i * per_region;
            // The last region absorbs the rounding remainder.
            let len = if i == JOURNAL_REGIONS as u64 - 1 {
                area_len - i * per_region
            } else {
                per_region
            };
            regions.push(JournalRegion {
                start,
                len,
                head: Mutex::new(0),
                in_flight: AtomicU64::new(0),
            });
        }
        Self {
            device,
            regions,
            next_tid: AtomicU64::new(1),
        }
    }

    /// Zeroes every journal region (fresh format, or post-recovery reset).
    pub fn format(&self) {
        for region in &self.regions {
            let mut head = region.head.lock();
            self.device.zero(
                region.start,
                region.len as usize,
                PersistMode::NonTemporal,
                TimeCategory::Journal,
            );
            *head = 0;
        }
        self.device.fence(TimeCategory::Journal);
    }

    /// Sets the next transaction id (used after recovery so new
    /// transactions sort after every recovered one).
    pub fn set_next_tid(&self, tid: u64) {
        self.next_tid.store(tid, Ordering::SeqCst);
    }

    /// Returns the number of journal bytes currently used across all
    /// regions.
    pub fn used_bytes(&self) -> u64 {
        self.regions.iter().map(|r| *r.head.lock()).sum()
    }

    /// Commits a transaction consisting of `records` (a commit marker is
    /// appended automatically).  `hint` steers the transaction to a region
    /// (callers pass the inode number, so a shard's transactions tend to
    /// share a region); other regions are used when the hinted one is
    /// contended or full.  Returns the transaction id and a [`TxnGuard`]
    /// the caller must keep alive until the matching in-place metadata
    /// updates are done.
    ///
    /// All record writes use non-temporal stores followed by a single fence
    /// under the region's admission lock, after which the transaction is
    /// durable.  Recovery merges the regions by transaction id.
    pub fn commit(&self, hint: u64, records: &[JournalRecord]) -> FsResult<(u64, TxnGuard<'_>)> {
        let tid = self.next_tid.fetch_add(1, Ordering::SeqCst);
        self.device.stats().add_journal_txn();

        let mut bytes = Vec::new();
        for rec in records {
            bytes.extend_from_slice(&rec.encode(tid));
        }
        bytes.extend_from_slice(&JournalRecord::Commit.encode(tid));
        let need = bytes.len() as u64;
        if self.regions.iter().all(|r| need > r.len) {
            return Err(FsError::NoSpace);
        }

        let cost = self.device.cost().clone();
        let n = self.regions.len();
        for _attempt in 0..COMMIT_RETRIES {
            for k in 0..n {
                let region = &self.regions[(hint as usize + k) % n];
                if need > region.len {
                    continue;
                }
                let mut head = match region.head.try_lock() {
                    Some(guard) => guard,
                    None => {
                        if k + 1 < n {
                            continue; // try a less contended region first
                        }
                        obs::event(obs::SpanEvent::JournalRegionWait);
                        self.device
                            .lock_contended(|| region.head.try_lock(), || region.head.lock())
                    }
                };
                if *head + need > region.len {
                    // Full.  Regions are never reset one at a time: a
                    // lone reset could erase a region's newer transaction
                    // while an older conflicting one survived elsewhere,
                    // and recovery's tid-ordered replay would then
                    // resurrect the stale record.  The whole journal
                    // resets together (below), exactly like the seed's
                    // single-region wrap.
                    continue;
                }
                // Software cost of assembling the transaction.
                self.device.charge(
                    TimeCategory::Software,
                    cost.ext4_journal_txn_ns
                        + records.len() as f64 * cost.ext4_journal_per_block_ns,
                );
                self.device.write(
                    region.start + *head,
                    &bytes,
                    PersistMode::NonTemporal,
                    TimeCategory::Journal,
                );
                self.device.fence(TimeCategory::Journal);
                *head += need;
                region.in_flight.fetch_add(1, Ordering::SeqCst);
                return Ok((
                    tid,
                    TxnGuard {
                        in_flight: &region.in_flight,
                    },
                ));
            }
            // No region has space: reset the whole journal at once.  This
            // preserves the invariant that the surviving records always
            // form a contiguous suffix of history (every discarded
            // transaction is older than every surviving one — here,
            // trivially, because nothing survives).  The reset waits for
            // in-flight transactions to finish applying in place; their
            // appliers never block on the journal, so yielding drains
            // them.
            if !self.try_format_all() {
                std::thread::yield_now();
            }
        }
        Err(FsError::Io("journal regions wedged".into()))
    }

    /// Zeroes every region and resets every head, but only if no
    /// transaction anywhere is still applying its in-place updates (a
    /// reset must not discard a journal record whose in-place state is
    /// still partial).  All head locks are taken in index order, so two
    /// resetters cannot deadlock and an in-progress commit simply delays
    /// the reset by the length of one record write.
    fn try_format_all(&self) -> bool {
        let mut heads: Vec<_> = self.regions.iter().map(|r| r.head.lock()).collect();
        if self
            .regions
            .iter()
            .any(|r| r.in_flight.load(Ordering::SeqCst) != 0)
        {
            return false;
        }
        for (region, head) in self.regions.iter().zip(heads.iter_mut()) {
            self.device.zero(
                region.start,
                region.len as usize,
                PersistMode::NonTemporal,
                TimeCategory::Journal,
            );
            **head = 0;
        }
        self.device.fence(TimeCategory::Journal);
        true
    }

    /// Scans one region and returns its committed transactions as
    /// `(tid, records)` pairs.  Records of transactions without a commit
    /// marker (torn at the crash point) are discarded.
    fn recover_region(raw: &[u8]) -> Vec<(u64, Vec<JournalRecord>)> {
        let mut committed: Vec<(u64, Vec<JournalRecord>)> = Vec::new();
        let mut pending: Vec<JournalRecord> = Vec::new();
        let mut pos = 0usize;
        loop {
            if pos + 13 > raw.len() {
                break;
            }
            let mut r = ByteReader::new(&raw[pos..]);
            let magic = match r.get_u16() {
                Some(m) => m,
                None => break,
            };
            if magic != RECORD_MAGIC {
                break;
            }
            let tag = match r.get_u8() {
                Some(t) => t,
                None => break,
            };
            let payload_len = match r.get_u16() {
                Some(l) => l as usize,
                None => break,
            };
            let tid = match r.get_u64() {
                Some(t) => t,
                None => break,
            };
            let header_len = r.position();
            let total = header_len + payload_len + 4;
            if pos + total > raw.len() {
                break;
            }
            let body = &raw[pos..pos + header_len + payload_len];
            let mut crc_bytes = [0u8; 4];
            crc_bytes.copy_from_slice(&raw[pos + header_len + payload_len..pos + total]);
            if checksum32(body) != u32::from_le_bytes(crc_bytes) {
                // Torn record: everything from here on is garbage.
                break;
            }
            let payload = &raw[pos + header_len..pos + header_len + payload_len];
            match JournalRecord::decode(tag, payload) {
                Some(JournalRecord::Commit) => {
                    committed.push((tid, std::mem::take(&mut pending)));
                }
                Some(rec) => pending.push(rec),
                None => break,
            }
            pos += total;
        }
        committed
    }

    /// Scans every journal region and returns the records of all committed
    /// transactions merged in transaction-id order, plus the highest
    /// transaction id seen.
    pub fn recover(device: &Arc<PmemDevice>, sb: &Superblock) -> (Vec<JournalRecord>, u64) {
        let probe = Journal::new(Arc::clone(device), sb);
        let mut txns: Vec<(u64, Vec<JournalRecord>)> = Vec::new();
        for region in &probe.regions {
            let mut raw = vec![0u8; region.len as usize];
            device.read_uncharged(region.start, &mut raw);
            txns.extend(Self::recover_region(&raw));
        }
        txns.sort_by_key(|(tid, _)| *tid);
        let max_tid = txns.last().map(|(tid, _)| *tid).unwrap_or(0);
        let records = txns.into_iter().flat_map(|(_, recs)| recs).collect();
        (records, max_tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemBuilder;

    fn setup() -> (Arc<PmemDevice>, Superblock) {
        let device = PmemBuilder::new(64 * 1024 * 1024)
            .cost_model(pmem::CostModel::calibrated())
            .build();
        let sb = Superblock::compute(device.size() as u64 / BLOCK_SIZE as u64, 1024).unwrap();
        (device, sb)
    }

    #[test]
    fn records_round_trip_through_encoding() {
        let records = vec![
            JournalRecord::CreateInode {
                ino: 12,
                parent: 2,
                name: "wal.log".into(),
                is_dir: false,
            },
            JournalRecord::AddExtent {
                ino: 12,
                logical: 0,
                phys: 9000,
                len: 16,
            },
            JournalRecord::SwapExtents {
                ino_a: 12,
                start_a: 0,
                ino_b: 44,
                start_b: 128,
                len: 8,
            },
            JournalRecord::Rename {
                old_parent: 2,
                old_name: "a".into(),
                new_parent: 3,
                new_name: "b".into(),
                ino: 12,
                replaced_ino: 0,
            },
            JournalRecord::Lease {
                instance_id: 3,
                acquire: true,
            },
            JournalRecord::Lease {
                instance_id: 3,
                acquire: false,
            },
        ];
        for rec in &records {
            let bytes = rec.encode(7);
            let mut r = ByteReader::new(&bytes);
            r.get_u16().unwrap();
            let tag = r.get_u8().unwrap();
            let plen = r.get_u16().unwrap() as usize;
            let _tid = r.get_u64().unwrap();
            let start = r.position();
            let decoded = JournalRecord::decode(tag, &bytes[start..start + plen]).unwrap();
            assert_eq!(&decoded, rec);
        }
    }

    #[test]
    fn committed_transactions_survive_crash_and_recover_in_tid_order() {
        let (device, sb) = setup();
        let journal = Journal::new(Arc::clone(&device), &sb);
        journal.format();
        // Commit with different region hints; recovery must still merge
        // the transactions back into tid order.
        journal
            .commit(5, &[JournalRecord::SetSize { ino: 5, size: 4096 }])
            .unwrap();
        journal
            .commit(6, &[JournalRecord::AllocBlocks { start: 100, len: 4 }])
            .unwrap();
        device.crash();
        let (records, max_tid) = Journal::recover(&device, &sb);
        assert_eq!(
            records,
            vec![
                JournalRecord::SetSize { ino: 5, size: 4096 },
                JournalRecord::AllocBlocks { start: 100, len: 4 },
            ]
        );
        assert_eq!(max_tid, 2);
    }

    #[test]
    fn torn_uncommitted_transaction_is_discarded() {
        let (device, sb) = setup();
        let journal = Journal::new(Arc::clone(&device), &sb);
        journal.format();
        journal
            .commit(0, &[JournalRecord::SetSize { ino: 1, size: 10 }])
            .unwrap();
        // Hand-write a record with no commit marker and no fence into the
        // same region, as if the crash happened mid-transaction.
        let torn = JournalRecord::SetSize { ino: 2, size: 99 }.encode(9);
        device.write(
            journal.regions[0].start + *journal.regions[0].head.lock(),
            &torn,
            PersistMode::Temporal,
            TimeCategory::Journal,
        );
        device.crash();
        let (records, _) = Journal::recover(&device, &sb);
        assert_eq!(records, vec![JournalRecord::SetSize { ino: 1, size: 10 }]);
    }

    #[test]
    fn journal_resets_when_full() {
        let (device, sb) = setup();
        let journal = Journal::new(Arc::clone(&device), &sb);
        journal.format();
        // Each commit is small; force many commits to eventually wrap.
        let big_name = "x".repeat(200);
        for i in 0..50_000u64 {
            journal
                .commit(
                    i,
                    &[JournalRecord::CreateInode {
                        ino: i,
                        parent: 2,
                        name: big_name.clone(),
                        is_dir: false,
                    }],
                )
                .unwrap();
        }
        // If we got here without error the reset path worked; every head
        // must be within its region.
        for region in &journal.regions {
            assert!(*region.head.lock() <= region.len);
        }
    }

    #[test]
    fn reset_waits_for_in_flight_transactions() {
        let (device, sb) = setup();
        let journal = Journal::new(Arc::clone(&device), &sb);
        journal.format();
        // Hold a guard (an "in-place updates still running" transaction)
        // and fill the whole journal: no region may reset over it, so
        // once nothing fits anywhere the commit must fail rather than
        // discard the guarded record.
        let (_, guard) = journal
            .commit(0, &[JournalRecord::SetSize { ino: 9, size: 9 }])
            .unwrap();
        let big_name = "y".repeat(200);
        let mut filled = false;
        for i in 0..200_000u64 {
            if journal
                .commit(
                    i,
                    &[JournalRecord::CreateInode {
                        ino: i,
                        parent: 2,
                        name: big_name.clone(),
                        is_dir: false,
                    }],
                )
                .is_err()
            {
                filled = true;
                break;
            }
        }
        assert!(filled, "the journal filled while the guard was held");
        // The guarded transaction's record survived: no reset ran.
        let (records, _) = Journal::recover(&device, &sb);
        assert!(records.contains(&JournalRecord::SetSize { ino: 9, size: 9 }));
        // Once the guard drops, the whole-journal reset unblocks commits.
        drop(guard);
        journal
            .commit(0, &[JournalRecord::SetSize { ino: 1, size: 1 }])
            .unwrap();
    }

    #[test]
    fn recovery_tid_restores_ordering_for_new_commits() {
        let (device, sb) = setup();
        let journal = Journal::new(Arc::clone(&device), &sb);
        journal.format();
        journal
            .commit(1, &[JournalRecord::SetSize { ino: 1, size: 1 }])
            .unwrap();
        let (_, max_tid) = Journal::recover(&device, &sb);
        // Mount's contract: replayed contents are checkpointed in place,
        // then the journal is formatted and the tid counter restored.
        let recovered = Journal::new(Arc::clone(&device), &sb);
        recovered.set_next_tid(max_tid + 1);
        recovered.format();
        recovered
            .commit(1, &[JournalRecord::SetSize { ino: 1, size: 2 }])
            .unwrap();
        let (records, new_max) = Journal::recover(&device, &sb);
        assert_eq!(records, vec![JournalRecord::SetSize { ino: 1, size: 2 }]);
        assert_eq!(
            new_max,
            max_tid + 1,
            "new commits sort after recovered ones"
        );
    }

    #[test]
    fn concurrent_commits_from_many_threads_all_recover() {
        let (device, sb) = setup();
        let journal = Arc::new(Journal::new(Arc::clone(&device), &sb));
        journal.format();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let journal = Arc::clone(&journal);
                scope.spawn(move || {
                    for i in 0..100u64 {
                        journal
                            .commit(
                                t,
                                &[JournalRecord::SetSize {
                                    ino: t * 1000 + i,
                                    size: i,
                                }],
                            )
                            .unwrap();
                    }
                });
            }
        });
        device.crash();
        let (records, max_tid) = Journal::recover(&device, &sb);
        assert_eq!(records.len(), 400);
        assert_eq!(max_tid, 400);
    }
}
