//! Directory entry serialization.
//!
//! Directory contents are stored in the directory inode's data blocks as a
//! sequence of variable-length entries:
//!
//! ```text
//! [ino u64][name_len u16][name bytes]
//! ```
//!
//! An entry with `ino == 0` is a tombstone left by unlink/rename so that
//! removal does not rewrite the whole directory.  The in-memory directory
//! map (rebuilt at mount by scanning the entries) is the operational source
//! of truth; the serialized form exists so that a crash-recovered mount can
//! rebuild it.

use std::collections::BTreeMap;

use vfs::util::{ByteReader, ByteWriter};
use vfs::{FsError, FsResult};

/// Serialized size of an entry with the given name length.
pub fn entry_size(name: &str) -> usize {
    8 + 2 + name.len()
}

/// Encodes a single directory entry.
pub fn encode_entry(ino: u64, name: &str) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(ino);
    w.put_str(name);
    w.into_vec()
}

/// Encodes a tombstone of the same size as the entry it replaces, so the
/// byte layout of following entries is unchanged.
pub fn encode_tombstone(name_len: usize) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(0);
    w.put_bytes(&vec![0u8; name_len]);
    w.into_vec()
}

/// One parsed directory entry and where it sits in the directory data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Inode the entry points to (0 for a tombstone).
    pub ino: u64,
    /// Entry name (empty for a tombstone).
    pub name: String,
    /// Byte offset of the entry within the directory data.
    pub offset: u64,
    /// Serialized length of the entry in bytes.
    pub len: usize,
}

/// Scans serialized directory data, returning every entry including
/// tombstones.  Stops cleanly at the end of valid data.
pub fn scan_entries(data: &[u8]) -> FsResult<Vec<DirEntry>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 10 <= data.len() {
        let mut r = ByteReader::new(&data[pos..]);
        let ino = r
            .get_u64()
            .ok_or(FsError::Corrupted("short dirent".into()))?;
        let name_bytes = r
            .get_bytes()
            .ok_or(FsError::Corrupted("short dirent name".into()))?;
        let len = r.position();
        let name = if ino == 0 {
            String::new()
        } else {
            String::from_utf8(name_bytes)
                .map_err(|_| FsError::Corrupted("dirent name not utf-8".into()))?
        };
        out.push(DirEntry {
            ino,
            name,
            offset: pos as u64,
            len,
        });
        pos += len;
    }
    Ok(out)
}

/// Builds the in-memory name → inode map from serialized directory data.
pub fn build_map(data: &[u8]) -> FsResult<BTreeMap<String, u64>> {
    let mut map = BTreeMap::new();
    for entry in scan_entries(data)? {
        if entry.ino != 0 {
            map.insert(entry.name, entry.ino);
        }
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_scan_round_trip() {
        let mut data = Vec::new();
        data.extend_from_slice(&encode_entry(10, "wal.log"));
        data.extend_from_slice(&encode_entry(11, "sstable-000001.sst"));
        data.extend_from_slice(&encode_entry(12, "MANIFEST"));
        let entries = scan_entries(&data).unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].name, "wal.log");
        assert_eq!(entries[2].ino, 12);
        let map = build_map(&data).unwrap();
        assert_eq!(map.get("MANIFEST"), Some(&12));
    }

    #[test]
    fn tombstones_are_skipped_by_build_map() {
        let mut data = Vec::new();
        let live = encode_entry(10, "keep.txt");
        let dead = encode_entry(11, "gone.txt");
        data.extend_from_slice(&live);
        data.extend_from_slice(&dead);
        // Overwrite the second entry with a tombstone of identical size.
        let tomb = encode_tombstone("gone.txt".len());
        assert_eq!(tomb.len(), dead.len());
        let start = live.len();
        data[start..start + tomb.len()].copy_from_slice(&tomb);

        let map = build_map(&data).unwrap();
        assert_eq!(map.len(), 1);
        assert!(map.contains_key("keep.txt"));
        // But the scan still sees both slots.
        assert_eq!(scan_entries(&data).unwrap().len(), 2);
    }

    #[test]
    fn entry_size_matches_encoding() {
        for name in ["a", "some-longer-name.dat", ""] {
            assert_eq!(encode_entry(5, name).len(), entry_size(name));
        }
    }

    #[test]
    fn trailing_garbage_smaller_than_header_is_ignored() {
        let mut data = encode_entry(3, "x");
        data.extend_from_slice(&[0xAA; 5]);
        let entries = scan_entries(&data).unwrap();
        assert_eq!(entries.len(), 1);
    }
}
