//! ext4-DAX-like kernel file system for the SplitFS reproduction.
//!
//! This crate is the K-Split substrate: an extent-based, journaling,
//! DAX-capable persistent-memory file system with the three capabilities
//! SplitFS builds on:
//!
//! 1. ordinary POSIX metadata and data operations routed through a modelled
//!    kernel boundary ([`fs::Ext4Dax`] implementing [`vfs::FileSystem`]),
//! 2. DAX memory mapping of file extents ([`Ext4Dax::dax_map`]), and
//! 3. the relink ioctl — an atomic, journaled, metadata-only move of blocks
//!    between files ([`Ext4Dax::ioctl_relink`]), the reproduction of the
//!    500-line `EXT4_IOC_MOVE_EXT` patch described in §3.5 of the paper,
//!    and
//! 4. **instance leases** ([`lease`]) — the resource arbitration that lets
//!    many U-Split instances share one kernel file system: each instance
//!    leases an exclusive staging-directory slice and operation-log path,
//!    with lease records journaled so crash recovery knows which instance
//!    owned what ([`Ext4Dax::lease_acquire`] / [`Ext4Dax::lease_orphans`]).
//!
//! Used on its own it is also the "ext4 DAX" baseline in every experiment.
//! The lock-ordering rules that keep the sharded state deadlock-free are
//! documented at the top of [`fs`] and in `ARCHITECTURE.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod dax;
pub mod dir;
pub mod fs;
pub mod inode;
pub mod journal;
pub mod layout;
pub mod lease;
pub mod segment;

pub use dax::{DaxMapping, MapSegment};
pub use fs::{Ext4Dax, RelinkOp, ROOT_INO};
pub use layout::BLOCK_SIZE;
pub use lease::{oplog_path, staging_dir, LeaseManager, MAX_INSTANCES};
pub use segment::{SegmentRecord, SegmentTable};
