//! The segment-location table: which parts of which files live on the
//! capacity tier.
//!
//! When the background policy demotes a cold file, each of its extents
//! becomes a **segment** — an independently placed run of blocks on the
//! capacity tier — and the file's PM extents are freed.  The table maps
//! `ino → [(logical, len, cap_block)]` so reads reassemble the file
//! transparently and promotion can move it back.
//!
//! Durability follows the lease-table discipline: every migration commits
//! [`JournalRecord::SegmentMap`] records and then rewrites the in-place
//! table (at the head of the capacity region, see [`crate::layout`])
//! **under the commit's transaction guard** — required because the
//! journal zeroes itself once every guard drops, so the in-place image
//! must be current before the logical records can disappear.  Replay at
//! mount re-applies recovered records, so a crash anywhere inside a
//! migration lands on a map where each segment lives wholly on exactly
//! one tier: before the commit the PM extents are still authoritative
//! (the half-written capacity blocks are garbage nobody references),
//! after it the segment records are.
//!
//! The table also owns the **volatile capacity-block allocator** — a
//! bitmap over the capacity data blocks rebuilt from the records at
//! mount.  Blocks a crashed migration allocated but never committed are
//! simply reusable (their contents are unreferenced garbage).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use pmem::{PersistMode, PmemDevice, TimeCategory};
use vfs::util::checksum32;
use vfs::{FsError, FsResult};

use crate::journal::JournalRecord;
use crate::layout::{Superblock, BLOCK_SIZE};

/// Magic number identifying a formatted segment table ("SEGTAB01").
pub const SEGMENT_TABLE_MAGIC: u64 = 0x5345_4754_4142_3031;

const HEADER_BYTES: usize = 16; // magic + count
const RECORD_BYTES: usize = 32; // ino, logical, len, cap_block
const CRC_BYTES: usize = 4;

/// One segment: `len` logical blocks of `ino` starting at `logical`,
/// resident on the capacity tier at data block `cap_block`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRecord {
    /// Inode the segment belongs to.
    pub ino: u64,
    /// First logical block of the segment.
    pub logical: u64,
    /// Number of blocks.
    pub len: u64,
    /// First capacity-tier data block.
    pub cap_block: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// Per-inode segments, kept sorted by logical block.
    segs: BTreeMap<u64, Vec<SegmentRecord>>,
    /// Capacity data-block allocator bitmap (1 = used), volatile.
    bitmap: Vec<u64>,
    used_blocks: u64,
    dirty: bool,
}

impl Inner {
    fn mark(&mut self, start: u64, len: u64, used: bool) {
        for b in start..start + len {
            let (word, bit) = ((b / 64) as usize, b % 64);
            if word >= self.bitmap.len() {
                continue;
            }
            let mask = 1u64 << bit;
            let was = self.bitmap[word] & mask != 0;
            if used && !was {
                self.bitmap[word] |= mask;
                self.used_blocks += 1;
            } else if !used && was {
                self.bitmap[word] &= !mask;
                self.used_blocks -= 1;
            }
        }
    }
}

/// The in-memory segment map plus its persistence into the capacity
/// region's table blocks.  Journaling the logical records is the owner's
/// ([`crate::Ext4Dax`]) job; this type applies them, allocates capacity
/// blocks, and rewrites the in-place table.
#[derive(Debug)]
pub struct SegmentTable {
    device: Arc<PmemDevice>,
    /// Absolute device byte offset of the table (capacity region head).
    table_offset: u64,
    table_bytes: usize,
    cap_data_blocks: u64,
    /// Total live segment records — the lock-free fast path for the
    /// foreground write path's "is any of this file demoted?" probe.
    record_count: AtomicU64,
    inner: Mutex<Inner>,
}

impl SegmentTable {
    fn geometry(sb: &Superblock) -> (u64, usize, u64) {
        (
            sb.total_blocks * BLOCK_SIZE as u64,
            (sb.segtab_blocks * BLOCK_SIZE as u64) as usize,
            sb.cap_data_blocks(),
        )
    }

    /// An empty table for `sb`'s geometry (mkfs, or a flat device where
    /// every method degenerates to a no-op).
    pub fn new_empty(device: Arc<PmemDevice>, sb: &Superblock) -> Self {
        let (table_offset, table_bytes, cap_data_blocks) = Self::geometry(sb);
        Self {
            device,
            table_offset,
            table_bytes,
            cap_data_blocks,
            record_count: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                segs: BTreeMap::new(),
                bitmap: vec![0u64; (cap_data_blocks as usize).div_ceil(64)],
                used_blocks: 0,
                dirty: false,
            }),
        }
    }

    /// Loads the table persisted by a previous incarnation and rebuilds
    /// the capacity allocator from its records.  Uncharged: runs inside
    /// mount, whose cost the caller models.
    pub fn load_uncharged(device: Arc<PmemDevice>, sb: &Superblock) -> FsResult<Self> {
        let table = Self::new_empty(device, sb);
        if !sb.is_tiered() {
            return Ok(table);
        }
        let mut buf = vec![0u8; table.table_bytes];
        table.device.read_uncharged(table.table_offset, &mut buf);
        let read_u64 = |b: &[u8], at: usize| {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[at..at + 8]);
            u64::from_le_bytes(w)
        };
        if read_u64(&buf, 0) != SEGMENT_TABLE_MAGIC {
            return Err(FsError::Corrupted("bad segment-table magic".into()));
        }
        let count = read_u64(&buf, 8) as usize;
        let body = HEADER_BYTES + count * RECORD_BYTES;
        if body + CRC_BYTES > buf.len() {
            return Err(FsError::Corrupted("segment table overflows region".into()));
        }
        let want = u32::from_le_bytes(buf[body..body + 4].try_into().unwrap());
        if checksum32(&buf[..body]) != want {
            return Err(FsError::Corrupted("segment-table checksum mismatch".into()));
        }
        {
            let mut inner = table.inner.lock();
            for i in 0..count {
                let at = HEADER_BYTES + i * RECORD_BYTES;
                let rec = SegmentRecord {
                    ino: read_u64(&buf, at),
                    logical: read_u64(&buf, at + 8),
                    len: read_u64(&buf, at + 16),
                    cap_block: read_u64(&buf, at + 24),
                };
                if rec.len == 0 || rec.cap_block + rec.len > table.cap_data_blocks {
                    return Err(FsError::Corrupted("segment record out of range".into()));
                }
                inner.mark(rec.cap_block, rec.len, true);
                inner.segs.entry(rec.ino).or_default().push(rec);
            }
            for segs in inner.segs.values_mut() {
                segs.sort_by_key(|r| r.logical);
            }
        }
        table.record_count.store(count as u64, Ordering::Relaxed);
        Ok(table)
    }

    /// Writes an empty formatted table (mkfs; uncharged).
    pub fn format_uncharged(device: &PmemDevice, sb: &Superblock) {
        if !sb.is_tiered() {
            return;
        }
        let (offset, _, _) = Self::geometry(sb);
        let mut buf = vec![0u8; HEADER_BYTES + CRC_BYTES];
        buf[0..8].copy_from_slice(&SEGMENT_TABLE_MAGIC.to_le_bytes());
        let crc = checksum32(&buf[..HEADER_BYTES]);
        buf[HEADER_BYTES..].copy_from_slice(&crc.to_le_bytes());
        device.write_uncharged(offset, &buf);
    }

    /// Whether the capacity tier exists for this table.
    pub fn is_tiered(&self) -> bool {
        self.cap_data_blocks > 0
    }

    /// Capacity data blocks currently holding segments.
    pub fn used_blocks(&self) -> u64 {
        self.inner.lock().used_blocks
    }

    /// Capacity data blocks in total.
    pub fn cap_data_blocks(&self) -> u64 {
        self.cap_data_blocks
    }

    /// Lock-free probe: does any file have demoted segments?
    pub fn any_records(&self) -> bool {
        self.record_count.load(Ordering::Relaxed) > 0
    }

    /// Whether `ino` has any demoted segments.  Cheap when the table is
    /// globally empty (one relaxed load).
    pub fn has(&self, ino: u64) -> bool {
        self.any_records() && self.inner.lock().segs.contains_key(&ino)
    }

    /// The segments of `ino`, sorted by logical block (empty when fully
    /// PM-resident).
    pub fn records_for(&self, ino: u64) -> Vec<SegmentRecord> {
        if !self.any_records() {
            return Vec::new();
        }
        self.inner
            .lock()
            .segs
            .get(&ino)
            .cloned()
            .unwrap_or_default()
    }

    /// Every segment record, for fsck.
    pub fn all_records(&self) -> Vec<SegmentRecord> {
        self.inner.lock().segs.values().flatten().copied().collect()
    }

    /// Resolves logical block `lb` of `ino` to `(cap_block, contiguous
    /// blocks)` when it lies inside a demoted segment.
    pub fn lookup(&self, ino: u64, lb: u64) -> Option<(u64, u64)> {
        if !self.any_records() {
            return None;
        }
        let inner = self.inner.lock();
        let segs = inner.segs.get(&ino)?;
        for r in segs {
            if lb >= r.logical && lb < r.logical + r.len {
                let into = lb - r.logical;
                return Some((r.cap_block + into, r.len - into));
            }
        }
        None
    }

    /// Allocates `len` contiguous capacity data blocks (first fit).
    pub fn alloc_cap(&self, len: u64) -> FsResult<u64> {
        if len == 0 {
            return Err(FsError::InvalidArgument);
        }
        let mut inner = self.inner.lock();
        let mut run = 0u64;
        for b in 0..self.cap_data_blocks {
            let (word, bit) = ((b / 64) as usize, b % 64);
            if inner.bitmap[word] & (1u64 << bit) == 0 {
                run += 1;
                if run == len {
                    let start = b + 1 - len;
                    inner.mark(start, len, true);
                    return Ok(start);
                }
            } else {
                run = 0;
            }
        }
        Err(FsError::NoSpace)
    }

    /// Returns `[start, start+len)` capacity data blocks to the free pool
    /// (a migration that failed before commit, or a promotion).
    pub fn free_cap(&self, start: u64, len: u64) {
        self.inner.lock().mark(start, len, false);
    }

    /// Adds a segment record (a committed demotion), marking its capacity
    /// blocks used — idempotently, so both the foreground path (which
    /// already reserved them via [`SegmentTable::alloc_cap`]) and mount
    /// replay (which did not) converge on the same allocator state.  A
    /// record replacing one at the same `(ino, logical)` frees the old
    /// placement.
    pub fn insert(&self, rec: SegmentRecord) {
        let mut inner = self.inner.lock();
        let old = {
            let segs = inner.segs.entry(rec.ino).or_default();
            segs.iter()
                .position(|r| r.logical == rec.logical)
                .map(|i| segs.remove(i))
        };
        if let Some(old) = old {
            if (old.cap_block, old.len) != (rec.cap_block, rec.len) {
                inner.mark(old.cap_block, old.len, false);
            }
        }
        inner.mark(rec.cap_block, rec.len, true);
        let segs = inner.segs.entry(rec.ino).or_default();
        segs.push(rec);
        segs.sort_by_key(|r| r.logical);
        inner.dirty = true;
        drop(inner);
        self.recount();
    }

    /// Removes the segment at (`ino`, `logical`) (a committed promotion)
    /// and frees its capacity blocks.  Returns the removed record.
    pub fn remove(&self, ino: u64, logical: u64) -> Option<SegmentRecord> {
        let mut inner = self.inner.lock();
        let segs = inner.segs.get_mut(&ino)?;
        let at = segs.iter().position(|r| r.logical == logical)?;
        let rec = segs.remove(at);
        if segs.is_empty() {
            inner.segs.remove(&ino);
        }
        inner.mark(rec.cap_block, rec.len, false);
        inner.dirty = true;
        drop(inner);
        self.recount();
        Some(rec)
    }

    /// Removes every segment of `ino` (unlink/truncate-to-zero purge) and
    /// frees their capacity blocks.  Returns the removed records so the
    /// caller can journal the removals.
    pub fn take_ino(&self, ino: u64) -> Vec<SegmentRecord> {
        if !self.any_records() {
            return Vec::new();
        }
        let mut inner = self.inner.lock();
        let Some(segs) = inner.segs.remove(&ino) else {
            return Vec::new();
        };
        for r in &segs {
            inner.mark(r.cap_block, r.len, false);
        }
        if !segs.is_empty() {
            inner.dirty = true;
        }
        drop(inner);
        self.recount();
        segs
    }

    /// Re-applies a recovered [`JournalRecord::SegmentMap`] during mount
    /// replay (idempotent); other record kinds are ignored.
    pub fn apply(&self, rec: &JournalRecord) {
        if let JournalRecord::SegmentMap {
            ino,
            logical,
            len,
            cap_block,
            demote,
        } = rec
        {
            if *demote {
                // Replaying over a table that already has the record is
                // fine: insert dedupes by (ino, logical), and re-marking
                // used blocks is idempotent.
                self.insert(SegmentRecord {
                    ino: *ino,
                    logical: *logical,
                    len: *len,
                    cap_block: *cap_block,
                });
            } else {
                self.remove(*ino, *logical);
            }
        }
    }

    fn recount(&self) {
        let n = self
            .inner
            .lock()
            .segs
            .values()
            .map(|v| v.len() as u64)
            .sum();
        self.record_count.store(n, Ordering::Relaxed);
    }

    fn serialize(inner: &Inner) -> Vec<u8> {
        let count: usize = inner.segs.values().map(Vec::len).sum();
        let mut buf = vec![0u8; HEADER_BYTES + count * RECORD_BYTES + CRC_BYTES];
        buf[0..8].copy_from_slice(&SEGMENT_TABLE_MAGIC.to_le_bytes());
        buf[8..16].copy_from_slice(&(count as u64).to_le_bytes());
        let mut at = HEADER_BYTES;
        for segs in inner.segs.values() {
            for r in segs {
                buf[at..at + 8].copy_from_slice(&r.ino.to_le_bytes());
                buf[at + 8..at + 16].copy_from_slice(&r.logical.to_le_bytes());
                buf[at + 16..at + 24].copy_from_slice(&r.len.to_le_bytes());
                buf[at + 24..at + 32].copy_from_slice(&r.cap_block.to_le_bytes());
                at += RECORD_BYTES;
            }
        }
        let crc = checksum32(&buf[..at]);
        buf[at..at + 4].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Rewrites the in-place table if any mutation happened since the
    /// last persist.  **Must run under the journal commit's
    /// [`TxnGuard`](crate::journal::Journal)** of the transaction that
    /// logged the mutation: the journal reclaims its regions once every
    /// guard drops, and from then on the in-place table is the only copy.
    /// Charged as metadata traffic like the lease table.
    pub fn persist_if_dirty(&self) -> FsResult<()> {
        let mut inner = self.inner.lock();
        if !inner.dirty {
            return Ok(());
        }
        let buf = Self::serialize(&inner);
        if buf.len() > self.table_bytes {
            return Err(FsError::NoSpace);
        }
        self.device.write(
            self.table_offset,
            &buf,
            PersistMode::NonTemporal,
            TimeCategory::Metadata,
        );
        self.device.fence(TimeCategory::Metadata);
        inner.dirty = false;
        Ok(())
    }

    /// Uncharged variant of [`SegmentTable::persist_if_dirty`] for mount
    /// (after replay) and tests.
    pub fn persist_uncharged(&self) -> FsResult<()> {
        let mut inner = self.inner.lock();
        let buf = Self::serialize(&inner);
        if buf.len() > self.table_bytes {
            return Err(FsError::NoSpace);
        }
        self.device.write_uncharged(self.table_offset, &buf);
        self.device.fence(TimeCategory::Metadata);
        inner.dirty = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemBuilder;

    fn sb_and_device() -> (Arc<PmemDevice>, Superblock) {
        let pm_blocks = (64u64 << 20) / BLOCK_SIZE as u64;
        let cap_blocks = (16u64 << 20) / BLOCK_SIZE as u64;
        let sb = Superblock::compute_shaped(pm_blocks, 4096, cap_blocks).unwrap();
        let device = PmemBuilder::new((80 << 20) + (1 << 20)).build();
        (device, sb)
    }

    #[test]
    fn roundtrip_through_persistence() {
        let (device, sb) = sb_and_device();
        SegmentTable::format_uncharged(&device, &sb);
        let t = SegmentTable::load_uncharged(Arc::clone(&device), &sb).unwrap();
        assert!(!t.any_records());
        let cap = t.alloc_cap(8).unwrap();
        t.insert(SegmentRecord {
            ino: 7,
            logical: 16,
            len: 8,
            cap_block: cap,
        });
        t.persist_uncharged().unwrap();
        let t2 = SegmentTable::load_uncharged(device, &sb).unwrap();
        assert!(t2.has(7));
        assert_eq!(t2.used_blocks(), 8);
        assert_eq!(t2.lookup(7, 20), Some((cap + 4, 4)));
        assert_eq!(t2.lookup(7, 24), None);
        // The rebuilt allocator avoids the resident segment.
        let next = t2.alloc_cap(4).unwrap();
        assert!(next >= cap + 8 || next + 4 <= cap);
    }

    #[test]
    fn take_ino_frees_capacity() {
        let (device, sb) = sb_and_device();
        let t = SegmentTable::new_empty(device, &sb);
        let a = t.alloc_cap(4).unwrap();
        let b = t.alloc_cap(4).unwrap();
        t.insert(SegmentRecord {
            ino: 3,
            logical: 0,
            len: 4,
            cap_block: a,
        });
        t.insert(SegmentRecord {
            ino: 3,
            logical: 4,
            len: 4,
            cap_block: b,
        });
        assert_eq!(t.used_blocks(), 8);
        let taken = t.take_ino(3);
        assert_eq!(taken.len(), 2);
        assert_eq!(t.used_blocks(), 0);
        assert!(!t.has(3));
    }

    #[test]
    fn replay_is_idempotent() {
        let (device, sb) = sb_and_device();
        let t = SegmentTable::new_empty(device, &sb);
        let demote = JournalRecord::SegmentMap {
            ino: 9,
            logical: 0,
            len: 4,
            cap_block: 2,
            demote: true,
        };
        t.apply(&demote);
        t.apply(&demote);
        assert_eq!(t.records_for(9).len(), 1);
        assert_eq!(t.used_blocks(), 4);
        let promote = JournalRecord::SegmentMap {
            ino: 9,
            logical: 0,
            len: 4,
            cap_block: 2,
            demote: false,
        };
        t.apply(&promote);
        t.apply(&promote);
        assert!(!t.has(9));
        assert_eq!(t.used_blocks(), 0);
    }

    #[test]
    fn flat_device_degenerates() {
        let sb = Superblock::compute((64u64 << 20) / BLOCK_SIZE as u64, 4096).unwrap();
        let device = PmemBuilder::new(64 << 20).build();
        let t = SegmentTable::load_uncharged(device, &sb).unwrap();
        assert!(!t.is_tiered());
        assert!(t.alloc_cap(1).is_err());
        assert!(!t.has(1));
    }
}
