//! Block allocator.
//!
//! A bitmap over the whole device tracks which 4 KiB blocks are in use.
//! Allocation prefers contiguous runs (ext4's extent-friendly behaviour):
//! [`BlockAllocator::alloc_extents`] returns as few extents as possible for
//! a request, falling back to multiple runs only when the device is
//! fragmented.  The in-memory bitmap is authoritative during operation and
//! is written through to the device (metadata traffic) so a crash-recovered
//! mount can rebuild it; the journal's `AllocBlocks`/`FreeBlocks` records
//! repair any half-written bitmap updates.

use std::sync::Arc;

use pmem::{PersistMode, PmemDevice, TimeCategory};
use vfs::{FsError, FsResult};

use crate::layout::{Superblock, BLOCK_SIZE};

/// A contiguous run of physical blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRun {
    /// First physical block of the run.
    pub start: u64,
    /// Number of blocks in the run.
    pub len: u64,
}

/// Bitmap-based block allocator.
#[derive(Debug)]
pub struct BlockAllocator {
    /// One bit per block of the device; bit set = in use.
    words: Vec<u64>,
    total_blocks: u64,
    data_start: u64,
    /// Rotating allocation cursor to spread allocations and keep appends to
    /// different files from interleaving too aggressively.
    cursor: u64,
    free_blocks: u64,
}

impl BlockAllocator {
    /// Creates an allocator for a freshly formatted device: all metadata
    /// region blocks are marked used, all data blocks free.
    pub fn format(sb: &Superblock) -> Self {
        let words = vec![0u64; (sb.total_blocks as usize).div_ceil(64)];
        let mut alloc = Self {
            words,
            total_blocks: sb.total_blocks,
            data_start: sb.data_start,
            cursor: sb.data_start,
            free_blocks: sb.total_blocks,
        };
        // Reserve the metadata regions and any tail bits beyond the device.
        for b in 0..sb.data_start {
            alloc.set_used(b);
        }
        alloc
    }

    /// Rebuilds the allocator from a bitmap image read from the device.
    pub fn from_bitmap_image(sb: &Superblock, image: &[u8]) -> Self {
        let mut words = vec![0u64; (sb.total_blocks as usize).div_ceil(64)];
        for (i, word) in words.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            let src = &image[i * 8..(i + 1) * 8];
            bytes.copy_from_slice(src);
            *word = u64::from_le_bytes(bytes);
        }
        let mut free = 0;
        for b in 0..sb.total_blocks {
            if words[(b / 64) as usize] & (1 << (b % 64)) == 0 {
                free += 1;
            }
        }
        Self {
            words,
            total_blocks: sb.total_blocks,
            data_start: sb.data_start,
            cursor: sb.data_start,
            free_blocks: free,
        }
    }

    /// Serializes the bitmap into the image written to the bitmap region.
    pub fn to_bitmap_image(&self, sb: &Superblock) -> Vec<u8> {
        let mut image = vec![0u8; (sb.bitmap_blocks * BLOCK_SIZE as u64) as usize];
        for (i, word) in self.words.iter().enumerate() {
            let dst = &mut image[i * 8..(i + 1) * 8];
            dst.copy_from_slice(&word.to_le_bytes());
        }
        image
    }

    fn is_used(&self, block: u64) -> bool {
        self.words[(block / 64) as usize] & (1 << (block % 64)) != 0
    }

    fn set_used(&mut self, block: u64) {
        let word = &mut self.words[(block / 64) as usize];
        let bit = 1u64 << (block % 64);
        if *word & bit == 0 {
            *word |= bit;
            self.free_blocks -= 1;
        }
    }

    fn set_free(&mut self, block: u64) {
        let word = &mut self.words[(block / 64) as usize];
        let bit = 1u64 << (block % 64);
        if *word & bit != 0 {
            *word &= !bit;
            self.free_blocks += 1;
        }
    }

    /// Number of free data blocks.
    pub fn free_blocks(&self) -> u64 {
        self.free_blocks
    }

    /// Marks an explicit run as used (journal replay).
    pub fn mark_used(&mut self, start: u64, len: u64) {
        for b in start..start + len {
            if b < self.total_blocks {
                self.set_used(b);
            }
        }
    }

    /// Marks an explicit run as free (journal replay / file delete).
    pub fn mark_free(&mut self, start: u64, len: u64) {
        for b in start..start + len {
            if b >= self.data_start && b < self.total_blocks {
                self.set_free(b);
            }
        }
    }

    /// Blocks per 2 MiB huge page (with 4 KiB blocks).
    const HUGE_ALIGN: u64 = 512;

    /// Finds a free run of at least `min_len` blocks starting on a 2 MiB
    /// boundary.  ext4's multi-block allocator aligns large allocations the
    /// same way, which is what makes DAX huge-page mappings possible
    /// (paper §4 discusses how fragile this is once the device fragments).
    fn find_aligned_run_from(&self, from: u64, want: u64, min_len: u64) -> Option<BlockRun> {
        let mut b = from.max(self.data_start).div_ceil(Self::HUGE_ALIGN) * Self::HUGE_ALIGN;
        while b + min_len <= self.total_blocks {
            let mut len = 0;
            while b + len < self.total_blocks && !self.is_used(b + len) && len < want {
                len += 1;
            }
            if len >= min_len {
                return Some(BlockRun { start: b, len });
            }
            b += Self::HUGE_ALIGN.max((len / Self::HUGE_ALIGN + 1) * Self::HUGE_ALIGN);
        }
        None
    }

    fn find_run_from(&self, from: u64, want: u64) -> Option<BlockRun> {
        let mut b = from.max(self.data_start);
        while b < self.total_blocks {
            if self.is_used(b) {
                b += 1;
                continue;
            }
            let start = b;
            let mut len = 0;
            while b < self.total_blocks && !self.is_used(b) && len < want {
                len += 1;
                b += 1;
            }
            return Some(BlockRun { start, len });
        }
        None
    }

    /// Allocates `count` blocks, preferring a single contiguous run starting
    /// at the allocation cursor.  Returns the runs actually allocated
    /// (possibly more than one when fragmented) or [`FsError::NoSpace`].
    pub fn alloc_extents(&mut self, count: u64) -> FsResult<Vec<BlockRun>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        if count > self.free_blocks {
            return Err(FsError::NoSpace);
        }
        let mut runs = Vec::new();
        let mut remaining = count;
        let mut from = self.cursor;
        let mut wrapped = false;
        // Large allocations (a 2 MiB huge page or more) are aligned to
        // 2 MiB when a suitable run exists, so that DAX mappings of large
        // files and staging files can use huge pages.
        if remaining >= Self::HUGE_ALIGN {
            while remaining >= Self::HUGE_ALIGN {
                match self.find_aligned_run_from(from, remaining, Self::HUGE_ALIGN) {
                    Some(run) => {
                        for b in run.start..run.start + run.len {
                            self.set_used(b);
                        }
                        remaining -= run.len;
                        from = run.start + run.len;
                        runs.push(run);
                    }
                    None => break,
                }
            }
            if remaining == 0 {
                self.cursor = from;
                return Ok(runs);
            }
        }
        while remaining > 0 {
            match self.find_run_from(from, remaining) {
                Some(run) if run.len > 0 => {
                    for b in run.start..run.start + run.len {
                        self.set_used(b);
                    }
                    remaining -= run.len;
                    from = run.start + run.len;
                    runs.push(run);
                }
                _ => {
                    if wrapped {
                        // Roll back this partial allocation before failing.
                        for run in &runs {
                            self.mark_free(run.start, run.len);
                        }
                        return Err(FsError::NoSpace);
                    }
                    wrapped = true;
                    from = self.data_start;
                }
            }
        }
        self.cursor = from;
        Ok(runs)
    }

    /// Writes the bitmap bytes covering `runs` through to the device
    /// (metadata traffic), so the on-device bitmap tracks the in-memory one.
    pub fn persist_runs(&self, device: &Arc<PmemDevice>, sb: &Superblock, runs: &[BlockRun]) {
        let bitmap_base = sb.bitmap_start * BLOCK_SIZE as u64;
        for run in runs {
            // The bytes of the bitmap covering [start, start+len).
            let first_byte = run.start / 8;
            let last_byte = (run.start + run.len - 1) / 8;
            for byte_idx in first_byte..=last_byte {
                let word = self.words[(byte_idx / 8) as usize];
                let byte = word.to_le_bytes()[(byte_idx % 8) as usize];
                device.write(
                    bitmap_base + byte_idx,
                    &[byte],
                    PersistMode::NonTemporal,
                    TimeCategory::Metadata,
                );
            }
        }
        device.fence(TimeCategory::Metadata);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_sb() -> Superblock {
        Superblock::compute(1 << 16, 1024).unwrap()
    }

    #[test]
    fn fresh_allocator_reserves_metadata_regions() {
        let sb = test_sb();
        let alloc = BlockAllocator::format(&sb);
        assert_eq!(alloc.free_blocks(), sb.total_blocks - sb.data_start);
        assert!(alloc.is_used(0));
        assert!(alloc.is_used(sb.data_start - 1));
        assert!(!alloc.is_used(sb.data_start));
    }

    #[test]
    fn allocates_contiguous_runs_when_possible() {
        let sb = test_sb();
        let mut alloc = BlockAllocator::format(&sb);
        let runs = alloc.alloc_extents(64).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len, 64);
        assert!(runs[0].start >= sb.data_start);
    }

    #[test]
    fn consecutive_allocations_do_not_overlap() {
        let sb = test_sb();
        let mut alloc = BlockAllocator::format(&sb);
        let a = alloc.alloc_extents(16).unwrap();
        let b = alloc.alloc_extents(16).unwrap();
        let a_set: std::collections::HashSet<u64> = (a[0].start..a[0].start + a[0].len).collect();
        for run in &b {
            for blk in run.start..run.start + run.len {
                assert!(!a_set.contains(&blk));
            }
        }
    }

    #[test]
    fn freeing_makes_blocks_reusable() {
        let sb = test_sb();
        let mut alloc = BlockAllocator::format(&sb);
        let before = alloc.free_blocks();
        let runs = alloc.alloc_extents(128).unwrap();
        assert_eq!(alloc.free_blocks(), before - 128);
        for run in &runs {
            alloc.mark_free(run.start, run.len);
        }
        assert_eq!(alloc.free_blocks(), before);
    }

    #[test]
    fn exhausting_the_device_returns_no_space() {
        let sb = Superblock::compute(8192, 256).unwrap();
        let mut alloc = BlockAllocator::format(&sb);
        let free = alloc.free_blocks();
        alloc.alloc_extents(free).unwrap();
        assert!(matches!(alloc.alloc_extents(1), Err(FsError::NoSpace)));
    }

    #[test]
    fn fragmented_allocation_spans_multiple_runs() {
        let sb = test_sb();
        let mut alloc = BlockAllocator::format(&sb);
        // Consume the whole device, then free every other block of a 100-
        // block window so the only free space is single-block holes.
        let all = alloc.free_blocks();
        let runs = alloc.alloc_extents(all).unwrap();
        let start = runs[0].start;
        for i in (0..100).step_by(2) {
            alloc.mark_free(start + i, 1);
        }
        let frag = alloc.alloc_extents(10).unwrap();
        assert!(frag.len() > 1, "expected a fragmented allocation");
        assert_eq!(frag.iter().map(|r| r.len).sum::<u64>(), 10);
    }

    #[test]
    fn bitmap_image_round_trips() {
        let sb = test_sb();
        let mut alloc = BlockAllocator::format(&sb);
        alloc.alloc_extents(37).unwrap();
        let image = alloc.to_bitmap_image(&sb);
        let rebuilt = BlockAllocator::from_bitmap_image(&sb, &image);
        assert_eq!(rebuilt.free_blocks(), alloc.free_blocks());
        for b in 0..sb.total_blocks {
            assert_eq!(rebuilt.is_used(b), alloc.is_used(b), "block {b}");
        }
    }

    #[test]
    fn zero_block_allocation_is_empty() {
        let sb = test_sb();
        let mut alloc = BlockAllocator::format(&sb);
        assert!(alloc.alloc_extents(0).unwrap().is_empty());
    }
}
