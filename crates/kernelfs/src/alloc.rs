//! Block allocator.
//!
//! A bitmap over the whole device tracks which 4 KiB blocks are in use.
//! Allocation prefers contiguous runs (ext4's extent-friendly behaviour):
//! [`BlockAllocator::alloc_extents`] returns as few extents as possible for
//! a request, falling back to multiple runs only when the device is
//! fragmented.  The in-memory bitmap is authoritative during operation and
//! is written through to the device (metadata traffic) so a crash-recovered
//! mount can rebuild it; the journal's `AllocBlocks`/`FreeBlocks` records
//! repair any half-written bitmap updates.

use std::sync::Arc;

use pmem::{PersistMode, PmemDevice, TimeCategory};
use vfs::{FsError, FsResult};

use crate::layout::{Superblock, BLOCK_SIZE};

/// A contiguous run of physical blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRun {
    /// First physical block of the run.
    pub start: u64,
    /// Number of blocks in the run.
    pub len: u64,
}

/// Bitmap-based block allocator over a block region `[region_lo,
/// region_hi)`.  The whole-device constructors ([`BlockAllocator::format`],
/// [`BlockAllocator::from_bitmap_image`]) cover the full data area; the
/// `_region` variants restrict search and accounting to a slice of it, so
/// a [`ShardedAllocator`] can run one allocator per shard without the
/// shards ever touching the same bitmap words.
#[derive(Debug)]
pub struct BlockAllocator {
    /// One bit per block of the device; bit set = in use.  Only the bits
    /// inside `[region_lo, region_hi)` are meaningful for a region-scoped
    /// allocator.
    words: Vec<u64>,
    total_blocks: u64,
    data_start: u64,
    /// First block this allocator may hand out.
    region_lo: u64,
    /// One past the last block this allocator may hand out.
    region_hi: u64,
    /// Rotating allocation cursor to spread allocations and keep appends to
    /// different files from interleaving too aggressively.
    cursor: u64,
    free_blocks: u64,
}

impl BlockAllocator {
    /// Creates an allocator for a freshly formatted device: all metadata
    /// region blocks are marked used, all data blocks free.
    pub fn format(sb: &Superblock) -> Self {
        Self::format_region(sb, sb.data_start, sb.total_blocks)
    }

    /// Creates a fresh allocator restricted to blocks `[lo, hi)`.
    pub fn format_region(sb: &Superblock, lo: u64, hi: u64) -> Self {
        let words = vec![0u64; (sb.total_blocks as usize).div_ceil(64)];
        let mut alloc = Self {
            words,
            total_blocks: sb.total_blocks,
            data_start: sb.data_start,
            region_lo: lo,
            region_hi: hi,
            cursor: lo,
            free_blocks: sb.total_blocks,
        };
        // Reserve the metadata regions and any tail bits beyond the device.
        for b in 0..sb.data_start {
            alloc.set_used(b);
        }
        alloc.free_blocks = hi.saturating_sub(lo);
        alloc
    }

    /// Rebuilds the allocator from a bitmap image read from the device.
    pub fn from_bitmap_image(sb: &Superblock, image: &[u8]) -> Self {
        Self::from_bitmap_image_region(sb, image, sb.data_start, sb.total_blocks)
    }

    /// Rebuilds a region-scoped allocator from a bitmap image.
    pub fn from_bitmap_image_region(sb: &Superblock, image: &[u8], lo: u64, hi: u64) -> Self {
        let mut words = vec![0u64; (sb.total_blocks as usize).div_ceil(64)];
        for (i, word) in words.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            let src = &image[i * 8..(i + 1) * 8];
            bytes.copy_from_slice(src);
            *word = u64::from_le_bytes(bytes);
        }
        let mut free = 0;
        for b in lo..hi {
            if words[(b / 64) as usize] & (1 << (b % 64)) == 0 {
                free += 1;
            }
        }
        Self {
            words,
            total_blocks: sb.total_blocks,
            data_start: sb.data_start,
            region_lo: lo,
            region_hi: hi,
            cursor: lo,
            free_blocks: free,
        }
    }

    /// Serializes the bitmap into the image written to the bitmap region.
    pub fn to_bitmap_image(&self, sb: &Superblock) -> Vec<u8> {
        let mut image = vec![0u8; (sb.bitmap_blocks * BLOCK_SIZE as u64) as usize];
        for (i, word) in self.words.iter().enumerate() {
            let dst = &mut image[i * 8..(i + 1) * 8];
            dst.copy_from_slice(&word.to_le_bytes());
        }
        image
    }

    fn is_used(&self, block: u64) -> bool {
        self.words[(block / 64) as usize] & (1 << (block % 64)) != 0
    }

    fn set_used(&mut self, block: u64) {
        let word = &mut self.words[(block / 64) as usize];
        let bit = 1u64 << (block % 64);
        if *word & bit == 0 {
            *word |= bit;
            self.free_blocks -= 1;
        }
    }

    fn set_free(&mut self, block: u64) {
        let word = &mut self.words[(block / 64) as usize];
        let bit = 1u64 << (block % 64);
        if *word & bit != 0 {
            *word &= !bit;
            self.free_blocks += 1;
        }
    }

    /// Number of free data blocks.
    pub fn free_blocks(&self) -> u64 {
        self.free_blocks
    }

    /// Marks an explicit run as used (journal replay).
    pub fn mark_used(&mut self, start: u64, len: u64) {
        for b in start..start + len {
            if b < self.total_blocks {
                self.set_used(b);
            }
        }
    }

    /// Marks an explicit run as free (journal replay / file delete).
    pub fn mark_free(&mut self, start: u64, len: u64) {
        for b in start..start + len {
            if b >= self.data_start && b < self.total_blocks {
                self.set_free(b);
            }
        }
    }

    /// Blocks per 2 MiB huge page (with 4 KiB blocks).
    const HUGE_ALIGN: u64 = 512;

    /// Finds a free run of at least `min_len` blocks starting on a 2 MiB
    /// boundary.  ext4's multi-block allocator aligns large allocations the
    /// same way, which is what makes DAX huge-page mappings possible
    /// (paper §4 discusses how fragile this is once the device fragments).
    fn find_aligned_run_from(&self, from: u64, want: u64, min_len: u64) -> Option<BlockRun> {
        let mut b = from.max(self.region_lo).div_ceil(Self::HUGE_ALIGN) * Self::HUGE_ALIGN;
        while b + min_len <= self.region_hi {
            let mut len = 0;
            while b + len < self.region_hi && !self.is_used(b + len) && len < want {
                len += 1;
            }
            if len >= min_len {
                return Some(BlockRun { start: b, len });
            }
            b += Self::HUGE_ALIGN.max((len / Self::HUGE_ALIGN + 1) * Self::HUGE_ALIGN);
        }
        None
    }

    fn find_run_from(&self, from: u64, want: u64) -> Option<BlockRun> {
        let mut b = from.max(self.region_lo);
        while b < self.region_hi {
            if self.is_used(b) {
                b += 1;
                continue;
            }
            let start = b;
            let mut len = 0;
            while b < self.region_hi && !self.is_used(b) && len < want {
                len += 1;
                b += 1;
            }
            return Some(BlockRun { start, len });
        }
        None
    }

    /// Allocates `count` blocks, preferring a single contiguous run starting
    /// at the allocation cursor.  Returns the runs actually allocated
    /// (possibly more than one when fragmented) or [`FsError::NoSpace`].
    pub fn alloc_extents(&mut self, count: u64) -> FsResult<Vec<BlockRun>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        if count > self.free_blocks {
            return Err(FsError::NoSpace);
        }
        let mut runs = Vec::new();
        let mut remaining = count;
        let mut from = self.cursor;
        let mut wrapped = false;
        // Large allocations (a 2 MiB huge page or more) are aligned to
        // 2 MiB when a suitable run exists, so that DAX mappings of large
        // files and staging files can use huge pages.
        if remaining >= Self::HUGE_ALIGN {
            while remaining >= Self::HUGE_ALIGN {
                match self.find_aligned_run_from(from, remaining, Self::HUGE_ALIGN) {
                    Some(run) => {
                        for b in run.start..run.start + run.len {
                            self.set_used(b);
                        }
                        remaining -= run.len;
                        from = run.start + run.len;
                        runs.push(run);
                    }
                    None => break,
                }
            }
            if remaining == 0 {
                self.cursor = from;
                return Ok(runs);
            }
        }
        while remaining > 0 {
            match self.find_run_from(from, remaining) {
                Some(run) if run.len > 0 => {
                    for b in run.start..run.start + run.len {
                        self.set_used(b);
                    }
                    remaining -= run.len;
                    from = run.start + run.len;
                    runs.push(run);
                }
                _ => {
                    if wrapped {
                        // Roll back this partial allocation before failing.
                        for run in &runs {
                            self.mark_free(run.start, run.len);
                        }
                        return Err(FsError::NoSpace);
                    }
                    wrapped = true;
                    from = self.region_lo;
                }
            }
        }
        self.cursor = from;
        Ok(runs)
    }

    /// Writes the bitmap bytes covering `runs` through to the device
    /// (metadata traffic), so the on-device bitmap tracks the in-memory one.
    pub fn persist_runs(&self, device: &Arc<PmemDevice>, sb: &Superblock, runs: &[BlockRun]) {
        let bitmap_base = sb.bitmap_start * BLOCK_SIZE as u64;
        for run in runs {
            // The bytes of the bitmap covering [start, start+len).
            let first_byte = run.start / 8;
            let last_byte = (run.start + run.len - 1) / 8;
            for byte_idx in first_byte..=last_byte {
                let word = self.words[(byte_idx / 8) as usize];
                let byte = word.to_le_bytes()[(byte_idx % 8) as usize];
                device.write(
                    bitmap_base + byte_idx,
                    &[byte],
                    PersistMode::NonTemporal,
                    TimeCategory::Metadata,
                );
            }
        }
        device.fence(TimeCategory::Metadata);
    }
}

/// Maximum number of allocator shards.  The data area is split into up to
/// this many 2 MiB-aligned regions, each behind its own lock, so
/// allocations for different inode shards never serialize on one bitmap
/// lock (and never write the same bitmap word).
pub const ALLOC_SHARDS: usize = 8;

/// A block allocator sharded into per-region sub-allocators.
///
/// `hint` (the inode number) steers an allocation to a home shard; when
/// that shard runs dry the request spills into the others, so the sharded
/// allocator refuses an allocation only when the whole device is full.
/// Regions are 2 MiB-aligned: shards never share a bitmap word, so
/// concurrent `persist_runs` calls from different shards cannot clobber
/// each other's on-device bitmap bytes.
#[derive(Debug)]
pub struct ShardedAllocator {
    shards: Vec<parking_lot::Mutex<BlockAllocator>>,
    /// `(lo, hi)` block bounds per shard.
    regions: Vec<(u64, u64)>,
}

impl ShardedAllocator {
    fn region_bounds(sb: &Superblock) -> Vec<(u64, u64)> {
        // Interior boundaries must be **absolute** multiples of the 2 MiB
        // alignment unit (which is also a multiple of the 64-block bitmap
        // word): `data_start` itself is arbitrary, and a boundary inside a
        // bitmap word would let two shards persist the same on-device
        // bitmap byte from diverging private copies.
        let align = BlockAllocator::HUGE_ALIGN;
        let aligned_base = sb.data_start.div_ceil(align) * align;
        let aligned_blocks = sb.total_blocks.saturating_sub(aligned_base);
        let shards = ((aligned_blocks / align) as usize).clamp(1, ALLOC_SHARDS);
        if shards == 1 || aligned_blocks == 0 {
            return vec![(sb.data_start, sb.total_blocks)];
        }
        let per = (aligned_blocks / shards as u64) / align * align;
        let mut out = Vec::with_capacity(shards);
        for i in 0..shards as u64 {
            // Shard 0 absorbs the unaligned head below `aligned_base`.
            let lo = if i == 0 {
                sb.data_start
            } else {
                aligned_base + i * per
            };
            let hi = if i == shards as u64 - 1 {
                sb.total_blocks
            } else {
                aligned_base + (i + 1) * per
            };
            out.push((lo, hi));
        }
        out
    }

    /// Creates a sharded allocator for a freshly formatted device.
    pub fn format(sb: &Superblock) -> Self {
        let regions = Self::region_bounds(sb);
        let shards = regions
            .iter()
            .map(|&(lo, hi)| parking_lot::Mutex::new(BlockAllocator::format_region(sb, lo, hi)))
            .collect();
        Self { shards, regions }
    }

    /// Rebuilds the sharded allocator from a bitmap image.
    pub fn from_bitmap_image(sb: &Superblock, image: &[u8]) -> Self {
        let regions = Self::region_bounds(sb);
        let shards = regions
            .iter()
            .map(|&(lo, hi)| {
                parking_lot::Mutex::new(BlockAllocator::from_bitmap_image_region(sb, image, lo, hi))
            })
            .collect();
        Self { shards, regions }
    }

    /// Serializes the merged bitmap (metadata prefix plus every shard's
    /// region bits) into the image written to the bitmap region.
    pub fn to_bitmap_image(&self, sb: &Superblock) -> Vec<u8> {
        let mut image = vec![0u8; (sb.bitmap_blocks * BLOCK_SIZE as u64) as usize];
        // Metadata blocks are always in use.
        for b in 0..sb.data_start {
            image[(b / 8) as usize] |= 1 << (b % 8);
        }
        for (shard, &(lo, hi)) in self.shards.iter().zip(&self.regions) {
            let guard = shard.lock();
            for b in lo..hi {
                if guard.is_used(b) {
                    image[(b / 8) as usize] |= 1 << (b % 8);
                }
            }
        }
        image
    }

    fn shard_of(&self, block: u64) -> usize {
        self.regions
            .iter()
            .position(|&(lo, hi)| block >= lo && block < hi)
            .unwrap_or(self.regions.len() - 1)
    }

    /// Total free data blocks across all shards.
    pub fn free_blocks(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().free_blocks()).sum()
    }

    /// Allocates `count` blocks, preferring the shard `hint` maps to and
    /// spilling into the others when it runs dry.
    pub fn alloc_extents(&self, hint: u64, count: u64) -> FsResult<Vec<BlockRun>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let n = self.shards.len();
        let mut runs: Vec<BlockRun> = Vec::new();
        let mut remaining = count;
        for k in 0..n {
            let idx = (hint as usize + k) % n;
            let mut shard = self.shards[idx].lock();
            let avail = shard.free_blocks();
            if avail == 0 {
                continue;
            }
            let take = remaining.min(avail);
            if let Ok(got) = shard.alloc_extents(take) {
                remaining -= take;
                runs.extend(got);
            }
            if remaining == 0 {
                return Ok(runs);
            }
        }
        // Not enough space anywhere: roll back what was taken.
        for run in &runs {
            self.mark_free(run.start, run.len);
        }
        Err(FsError::NoSpace)
    }

    /// Splits `[start, start+len)` at shard-region boundaries.
    fn split_by_region(&self, start: u64, len: u64) -> Vec<(usize, u64, u64)> {
        let mut out = Vec::new();
        let mut b = start;
        let end = start + len;
        while b < end {
            let idx = self.shard_of(b);
            let (_, hi) = self.regions[idx];
            let chunk = (end - b).min(hi.saturating_sub(b).max(1));
            out.push((idx, b, chunk));
            b += chunk;
        }
        out
    }

    /// Marks an explicit run as used (journal replay).
    pub fn mark_used(&self, start: u64, len: u64) {
        for (idx, b, chunk) in self.split_by_region(start, len) {
            self.shards[idx].lock().mark_used(b, chunk);
        }
    }

    /// Marks an explicit run as free (journal replay / file delete).
    pub fn mark_free(&self, start: u64, len: u64) {
        for (idx, b, chunk) in self.split_by_region(start, len) {
            self.shards[idx].lock().mark_free(b, chunk);
        }
    }

    /// Writes the bitmap bytes covering `runs` through to the device.
    /// Each run is persisted under its owning shard's lock; interior
    /// region boundaries are absolute 2 MiB (and hence bitmap-word)
    /// multiples, so shards never write each other's bitmap bytes.
    pub fn persist_runs(&self, device: &Arc<PmemDevice>, sb: &Superblock, runs: &[BlockRun]) {
        for run in runs {
            for (idx, b, chunk) in self.split_by_region(run.start, run.len) {
                let shard = self.shards[idx].lock();
                shard.persist_runs(
                    device,
                    sb,
                    &[BlockRun {
                        start: b,
                        len: chunk,
                    }],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_sb() -> Superblock {
        Superblock::compute(1 << 16, 1024).unwrap()
    }

    #[test]
    fn fresh_allocator_reserves_metadata_regions() {
        let sb = test_sb();
        let alloc = BlockAllocator::format(&sb);
        assert_eq!(alloc.free_blocks(), sb.total_blocks - sb.data_start);
        assert!(alloc.is_used(0));
        assert!(alloc.is_used(sb.data_start - 1));
        assert!(!alloc.is_used(sb.data_start));
    }

    #[test]
    fn allocates_contiguous_runs_when_possible() {
        let sb = test_sb();
        let mut alloc = BlockAllocator::format(&sb);
        let runs = alloc.alloc_extents(64).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len, 64);
        assert!(runs[0].start >= sb.data_start);
    }

    #[test]
    fn consecutive_allocations_do_not_overlap() {
        let sb = test_sb();
        let mut alloc = BlockAllocator::format(&sb);
        let a = alloc.alloc_extents(16).unwrap();
        let b = alloc.alloc_extents(16).unwrap();
        let a_set: std::collections::HashSet<u64> = (a[0].start..a[0].start + a[0].len).collect();
        for run in &b {
            for blk in run.start..run.start + run.len {
                assert!(!a_set.contains(&blk));
            }
        }
    }

    #[test]
    fn freeing_makes_blocks_reusable() {
        let sb = test_sb();
        let mut alloc = BlockAllocator::format(&sb);
        let before = alloc.free_blocks();
        let runs = alloc.alloc_extents(128).unwrap();
        assert_eq!(alloc.free_blocks(), before - 128);
        for run in &runs {
            alloc.mark_free(run.start, run.len);
        }
        assert_eq!(alloc.free_blocks(), before);
    }

    #[test]
    fn exhausting_the_device_returns_no_space() {
        let sb = Superblock::compute(8192, 256).unwrap();
        let mut alloc = BlockAllocator::format(&sb);
        let free = alloc.free_blocks();
        alloc.alloc_extents(free).unwrap();
        assert!(matches!(alloc.alloc_extents(1), Err(FsError::NoSpace)));
    }

    #[test]
    fn fragmented_allocation_spans_multiple_runs() {
        let sb = test_sb();
        let mut alloc = BlockAllocator::format(&sb);
        // Consume the whole device, then free every other block of a 100-
        // block window so the only free space is single-block holes.
        let all = alloc.free_blocks();
        let runs = alloc.alloc_extents(all).unwrap();
        let start = runs[0].start;
        for i in (0..100).step_by(2) {
            alloc.mark_free(start + i, 1);
        }
        let frag = alloc.alloc_extents(10).unwrap();
        assert!(frag.len() > 1, "expected a fragmented allocation");
        assert_eq!(frag.iter().map(|r| r.len).sum::<u64>(), 10);
    }

    #[test]
    fn bitmap_image_round_trips() {
        let sb = test_sb();
        let mut alloc = BlockAllocator::format(&sb);
        alloc.alloc_extents(37).unwrap();
        let image = alloc.to_bitmap_image(&sb);
        let rebuilt = BlockAllocator::from_bitmap_image(&sb, &image);
        assert_eq!(rebuilt.free_blocks(), alloc.free_blocks());
        for b in 0..sb.total_blocks {
            assert_eq!(rebuilt.is_used(b), alloc.is_used(b), "block {b}");
        }
    }

    #[test]
    fn shard_region_boundaries_never_split_a_bitmap_word() {
        // data_start is not a multiple of 64 under realistic layouts; the
        // interior shard boundaries still must be, or two shards would
        // persist the same on-device bitmap byte from private copies.
        let sb = test_sb();
        assert_ne!(sb.data_start % 64, 0, "layout exercises the unaligned case");
        let sharded = ShardedAllocator::format(&sb);
        assert!(sharded.regions.len() > 1);
        // Contiguous cover of the whole data area.
        assert_eq!(sharded.regions.first().unwrap().0, sb.data_start);
        assert_eq!(sharded.regions.last().unwrap().1, sb.total_blocks);
        for pair in sharded.regions.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "regions are contiguous");
            assert_eq!(
                pair[0].1 % 64,
                0,
                "interior boundary {} splits a bitmap word",
                pair[0].1
            );
        }
        // Allocations from two adjacent shards persist without clobbering
        // each other: fill shard 0 so it spills nothing, allocate at the
        // head of shard 1, and check both survive a bitmap round trip.
        let a = sharded.alloc_extents(0, 16).unwrap();
        let b = sharded.alloc_extents(1, 16).unwrap();
        let image = sharded.to_bitmap_image(&sb);
        let rebuilt = ShardedAllocator::from_bitmap_image(&sb, &image);
        assert_eq!(rebuilt.free_blocks(), sharded.free_blocks());
        for run in a.iter().chain(b.iter()) {
            for blk in run.start..run.start + run.len {
                let byte = image[(blk / 8) as usize];
                assert_ne!(byte & (1 << (blk % 8)), 0, "block {blk} lost");
            }
        }
    }

    #[test]
    fn zero_block_allocation_is_empty() {
        let sb = test_sb();
        let mut alloc = BlockAllocator::format(&sb);
        assert!(alloc.alloc_extents(0).unwrap().is_empty());
    }
}
