//! On-device layout of the kernel file system.
//!
//! The device is divided into fixed regions, announced by a superblock in
//! block 0:
//!
//! ```text
//! +------------+-------------+-----------------+-------------+--------------+-----------------+
//! | superblock | lease table | journal         | inode table | block bitmap | data blocks ... |
//! | 1 block    | LEASE_BLOCKS| JOURNAL_BLOCKS  | computed    | computed     | rest            |
//! +------------+-------------+-----------------+-------------+--------------+-----------------+
//! ```
//!
//! The lease table records which U-Split instances currently own a slice
//! of the staging/operation-log resources (see [`crate::lease`]); it is a
//! journaled in-place structure like the inode table, so recovery knows
//! which instance owned what.
//!
//! All metadata is stored little-endian.  Blocks are 4 KiB, matching the
//! allocation unit of ext4 and the granularity at which SplitFS relinks
//! staged appends into target files.

use vfs::{FsError, FsResult};

/// File-system block size in bytes.
pub const BLOCK_SIZE: usize = 4096;

/// Size of one serialized inode record in the inode table.
pub const INODE_RECORD_SIZE: usize = 256;

/// Magic number identifying a formatted device.
pub const SUPERBLOCK_MAGIC: u64 = 0x5350_4C49_5446_5331; // "SPLITFS1"

/// Number of journal blocks (16 MiB with 4 KiB blocks).
pub const JOURNAL_BLOCKS: u64 = 4096;

/// Number of blocks in the instance-lease table.
pub const LEASE_BLOCKS: u64 = 1;

/// Default number of inodes a format creates.
pub const DEFAULT_INODE_COUNT: u64 = 65_536;

/// Number of blocks reserved at the head of the capacity region for the
/// segment-location table (256 KiB — thousands of segment records).
pub const SEGTAB_BLOCKS: u64 = 64;

/// The superblock: region boundaries and format parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Magic number ([`SUPERBLOCK_MAGIC`]).
    pub magic: u64,
    /// Total number of 4 KiB blocks on the device.
    pub total_blocks: u64,
    /// Number of inodes in the inode table.
    pub inode_count: u64,
    /// First block of the instance-lease table.
    pub lease_start: u64,
    /// Number of blocks in the instance-lease table.
    pub lease_blocks: u64,
    /// First block of the journal region.
    pub journal_start: u64,
    /// Number of blocks in the journal region.
    pub journal_blocks: u64,
    /// First block of the inode table.
    pub itable_start: u64,
    /// Number of blocks in the inode table.
    pub itable_blocks: u64,
    /// First block of the data-block bitmap.
    pub bitmap_start: u64,
    /// Number of blocks in the bitmap.
    pub bitmap_blocks: u64,
    /// First data block.
    pub data_start: u64,
    /// Number of 4 KiB blocks in the capacity tier that follows the PM
    /// region (`0` on flat, all-PM devices — the value older images
    /// deserialize, since `to_block` zero-fills).
    pub cap_blocks: u64,
    /// Blocks at the head of the capacity region reserved for the
    /// segment-location table (`0` on flat devices).
    pub segtab_blocks: u64,
}

impl Superblock {
    /// Computes a layout for an all-PM device with `total_blocks` blocks
    /// and `inode_count` inodes.
    pub fn compute(total_blocks: u64, inode_count: u64) -> FsResult<Self> {
        Self::compute_shaped(total_blocks, inode_count, 0)
    }

    /// Computes a layout for a PM region of `total_blocks` blocks backed
    /// by a capacity tier of `cap_blocks` blocks (`0` for a flat device).
    /// The capacity region starts right after the PM region; its first
    /// [`SEGTAB_BLOCKS`] blocks hold the segment-location table and the
    /// rest are capacity data blocks.
    pub fn compute_shaped(total_blocks: u64, inode_count: u64, cap_blocks: u64) -> FsResult<Self> {
        let lease_start = 1;
        let lease_blocks = LEASE_BLOCKS;
        let journal_start = lease_start + lease_blocks;
        let journal_blocks = JOURNAL_BLOCKS.min(total_blocks / 8).max(64);
        let itable_start = journal_start + journal_blocks;
        let inodes_per_block = (BLOCK_SIZE / INODE_RECORD_SIZE) as u64;
        let itable_blocks = inode_count.div_ceil(inodes_per_block);
        let bitmap_start = itable_start + itable_blocks;
        // One bit per block in the whole device (slightly generous: the
        // bitmap also covers the metadata regions, which are marked used).
        let bitmap_blocks = total_blocks.div_ceil(8 * BLOCK_SIZE as u64).max(1);
        let data_start = bitmap_start + bitmap_blocks;
        if data_start + 16 >= total_blocks {
            return Err(FsError::NoSpace);
        }
        let segtab_blocks = if cap_blocks > 0 {
            if cap_blocks < SEGTAB_BLOCKS + 16 {
                return Err(FsError::NoSpace);
            }
            SEGTAB_BLOCKS
        } else {
            0
        };
        Ok(Self {
            magic: SUPERBLOCK_MAGIC,
            total_blocks,
            inode_count,
            lease_start,
            lease_blocks,
            journal_start,
            journal_blocks,
            itable_start,
            itable_blocks,
            bitmap_start,
            bitmap_blocks,
            data_start,
            cap_blocks,
            segtab_blocks,
        })
    }

    /// Serializes the superblock into a 4 KiB block image.
    pub fn to_block(&self) -> Vec<u8> {
        let mut buf = vec![0u8; BLOCK_SIZE];
        let fields = [
            self.magic,
            self.total_blocks,
            self.inode_count,
            self.lease_start,
            self.lease_blocks,
            self.journal_start,
            self.journal_blocks,
            self.itable_start,
            self.itable_blocks,
            self.bitmap_start,
            self.bitmap_blocks,
            self.data_start,
            self.cap_blocks,
            self.segtab_blocks,
        ];
        for (i, v) in fields.iter().enumerate() {
            buf[i * 8..(i + 1) * 8].copy_from_slice(&v.to_le_bytes());
        }
        buf
    }

    /// Parses a superblock from a block image, validating the magic.
    pub fn from_block(buf: &[u8]) -> FsResult<Self> {
        if buf.len() < 96 {
            return Err(FsError::Corrupted("superblock too short".into()));
        }
        let read_u64 = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[i * 8..(i + 1) * 8]);
            u64::from_le_bytes(b)
        };
        let sb = Self {
            magic: read_u64(0),
            total_blocks: read_u64(1),
            inode_count: read_u64(2),
            lease_start: read_u64(3),
            lease_blocks: read_u64(4),
            journal_start: read_u64(5),
            journal_blocks: read_u64(6),
            itable_start: read_u64(7),
            itable_blocks: read_u64(8),
            bitmap_start: read_u64(9),
            bitmap_blocks: read_u64(10),
            data_start: read_u64(11),
            // Fields 12/13 postdate the flat-device format; short or
            // pre-tiering images read as 0 (no capacity tier).
            cap_blocks: if buf.len() >= 104 { read_u64(12) } else { 0 },
            segtab_blocks: if buf.len() >= 112 { read_u64(13) } else { 0 },
        };
        if sb.magic != SUPERBLOCK_MAGIC {
            return Err(FsError::Corrupted("bad superblock magic".into()));
        }
        Ok(sb)
    }

    /// Byte offset of a block number on the device.
    pub fn block_offset(&self, block: u64) -> u64 {
        block * BLOCK_SIZE as u64
    }

    /// Byte offset of the inode record for `ino`.
    pub fn inode_offset(&self, ino: u64) -> u64 {
        self.itable_start * BLOCK_SIZE as u64 + ino * INODE_RECORD_SIZE as u64
    }

    /// Number of data blocks available to files.
    pub fn data_blocks(&self) -> u64 {
        self.total_blocks - self.data_start
    }

    /// Whether this layout has a capacity tier with usable data blocks.
    pub fn is_tiered(&self) -> bool {
        self.cap_data_blocks() > 0
    }

    /// Capacity-tier data blocks (excluding the segment-table reserve).
    pub fn cap_data_blocks(&self) -> u64 {
        self.cap_blocks.saturating_sub(self.segtab_blocks)
    }

    /// Byte offset of the capacity region within the capacity tier's own
    /// address space where capacity data block `cap_block` lives (the
    /// segment table occupies the first [`Superblock::segtab_blocks`]
    /// blocks).
    pub fn cap_block_offset(&self, cap_block: u64) -> u64 {
        (self.segtab_blocks + cap_block) * BLOCK_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_regions_do_not_overlap() {
        let sb = Superblock::compute(1 << 18, DEFAULT_INODE_COUNT).unwrap(); // 1 GiB
        assert!(sb.lease_start >= 1);
        assert!(sb.journal_start >= sb.lease_start + sb.lease_blocks);
        assert!(sb.itable_start >= sb.journal_start + sb.journal_blocks);
        assert!(sb.bitmap_start >= sb.itable_start + sb.itable_blocks);
        assert!(sb.data_start >= sb.bitmap_start + sb.bitmap_blocks);
        assert!(sb.data_start < sb.total_blocks);
    }

    #[test]
    fn superblock_round_trips_through_serialization() {
        let sb = Superblock::compute(1 << 16, 4096).unwrap();
        let block = sb.to_block();
        let parsed = Superblock::from_block(&block).unwrap();
        assert_eq!(sb, parsed);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let sb = Superblock::compute(1 << 16, 4096).unwrap();
        let mut block = sb.to_block();
        block[0] ^= 0xFF;
        assert!(matches!(
            Superblock::from_block(&block),
            Err(FsError::Corrupted(_))
        ));
    }

    #[test]
    fn tiny_device_is_rejected() {
        assert!(Superblock::compute(128, 1024).is_err());
    }

    #[test]
    fn shaped_layout_reserves_a_segment_table() {
        let sb = Superblock::compute_shaped(1 << 16, 4096, 1 << 18).unwrap();
        assert!(sb.is_tiered());
        assert_eq!(sb.segtab_blocks, SEGTAB_BLOCKS);
        assert_eq!(sb.cap_data_blocks(), (1 << 18) - SEGTAB_BLOCKS);
        assert_eq!(sb.cap_block_offset(0), SEGTAB_BLOCKS * BLOCK_SIZE as u64);
        let parsed = Superblock::from_block(&sb.to_block()).unwrap();
        assert_eq!(sb, parsed);
        // A flat layout parses with no tier, as do pre-tiering images
        // whose field-12/13 slots are zero.
        let flat = Superblock::compute(1 << 16, 4096).unwrap();
        assert!(!flat.is_tiered());
        assert_eq!(Superblock::from_block(&flat.to_block()).unwrap(), flat);
        // A capacity tier too small to hold the table is rejected.
        assert!(Superblock::compute_shaped(1 << 16, 4096, SEGTAB_BLOCKS).is_err());
    }

    #[test]
    fn inode_offsets_are_within_the_itable() {
        let sb = Superblock::compute(1 << 18, 1024).unwrap();
        let first = sb.inode_offset(0);
        let last = sb.inode_offset(1023);
        assert_eq!(first, sb.itable_start * BLOCK_SIZE as u64);
        assert!(last < sb.bitmap_start * BLOCK_SIZE as u64);
    }
}
