//! The ext4-DAX-like kernel file system (`Ext4Dax`).
//!
//! This is the K-Split half of the SplitFS architecture and, used on its
//! own, the "ext4 DAX" baseline of the paper's evaluation.  Every public
//! operation models a system call: it charges a kernel trap and VFS path
//! cost before doing the real work against the journal, allocator, inode
//! table and directory structures, so the software overhead the paper
//! measures for kernel file systems emerges naturally from the same code
//! paths that maintain correctness.
//!
//! Two non-POSIX entry points exist solely for SplitFS:
//!
//! * [`Ext4Dax::dax_map`] — the `mmap(MAP_POPULATE)` equivalent, returning
//!   the physical device ranges backing a file range so U-Split can serve
//!   reads/overwrites with loads and stores.
//! * [`Ext4Dax::ioctl_relink`] — the patched `EXT4_IOC_MOVE_EXT` ioctl: an
//!   atomic, journaled, metadata-only move of blocks from one file to
//!   another, which is the primitive behind SplitFS's optimized appends and
//!   atomic data operations.
//!
//! # Sharded kernel state and lock ordering
//!
//! The seed kept every piece of kernel state behind one `RwLock<FsInner>`,
//! which made that lock the scalability ceiling for concurrent metadata
//! operations.  The state is now partitioned so writers on distinct files
//! never serialize:
//!
//! * **inode table** — [`INODE_SHARDS`] shards keyed by inode number; the
//!   data hot path (`appendv`, `writev_at`, `ioctl_relink_batch`) locks
//!   only the shards of the files it touches;
//! * **block allocator** — a [`ShardedAllocator`]: per-region
//!   sub-allocators behind independent locks, steered by inode number;
//! * **journal admission** — [`Journal`] regions with per-region admission
//!   locks and a global transaction-id order (see `journal.rs`);
//! * **descriptor table** — [`FD_SHARDS`] shards keyed by descriptor;
//! * **directory namespace** (directory entries, open counts, orphans) —
//!   [`NS_SHARDS`] shards of `NsShard` keyed by inode number: a
//!   directory's entry map lives in the shard of the directory's own
//!   inode, open counts and orphan flags in the shard of the file's
//!   inode, so metadata churn in disjoint directories never serializes.
//!   Inode numbers come from lock-free per-shard congruence pools
//!   (`Ext4Dax::alloc_ino`): a new file's number is congruent to its
//!   parent's namespace shard, and the inode shard follows the same
//!   congruence, so a directory's whole create path — parent inode,
//!   child inodes, namespace state — stays on one shard pair and
//!   threads in disjoint directories share no locks at all.
//!
//! Above the namespace shards sits a **full-path lookup cache**: resolving
//! a deep path is one hash probe instead of a per-component walk.  Entries
//! are pinned to a per-directory generation (bumped under the parent's
//! shard write lock by unlink/rename/rmdir) plus a global directory-move
//! generation (bumped when a directory is renamed, which invalidates
//! every cached deep path whose prefix could have moved; rmdir needs no
//! bump — a removed directory's state vanishes from its shard and inode
//! numbers are never reused, so descendants fail validation forever).
//! Creates overwrite their exact cache key instead of bumping the parent
//! generation, so sibling entries stay hot under create-heavy churn, and
//! negative entries record confirmed absences.  Cache fills happen while
//! the parent's shard is read-locked and mutations while it is
//! write-locked, so fills and invalidations on one key serialize through
//! the shard's `RwLock`.
//!
//! Lock ordering rules (deadlock freedom by construction):
//!
//! 1. Namespace shards before any inode shard.  Never acquire a
//!    namespace-shard lock while holding an inode-shard lock.
//! 2. Multiple inode shards are always acquired in ascending shard index
//!    (the internal `lock_inodes_write` helper); multiple namespace
//!    shards likewise in ascending shard index (`lock_ns_write`).
//! 3. Allocator and journal locks are acquired and released inside leaf
//!    calls only — no caller holds one across another lock acquisition.
//! 4. Descriptor-shard locks are leaf locks: look up, clone, release.
//!    Path-cache shard locks are leaf locks too: probe or update,
//!    release.
//!
//! Mutating metadata operations resolve their path optimistically (each
//! prefix component under a transient shard read lock), then take the
//! needed namespace-shard write guards and re-verify the resolved entry
//! and the directory-move generation under them, retrying the resolve if
//! a concurrent mutation won the race.
//!
//! Contended inode/descriptor shard acquisitions are counted in
//! `pmem::StatsSnapshot::shard_lock_waits`; contended namespace-shard
//! acquisitions in `ns_shard_lock_waits`; path-cache effectiveness in
//! `path_cache_hits` / `path_cache_misses` / `path_cache_invalidations`
//! (the `scaling` and `metadata` experiments report them).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use pmem::{AccessPattern, PersistMode, PmemDevice, TieredDevice, TimeCategory, PAGE_2M};
use vfs::{
    iov_total_len, path as vpath, ConsistencyClass, Fd, FileStat, FileSystem, FsError, FsResult,
    IoVec, OpenFlags, ReadView, SeekFrom,
};

use crate::alloc::{BlockRun, ShardedAllocator};
use crate::dax::{DaxMapping, MapSegment};
use crate::dir;
use crate::inode::{Extent, Inode, InodeKind};
use crate::journal::{Journal, JournalRecord};
use crate::layout::{Superblock, BLOCK_SIZE, DEFAULT_INODE_COUNT, INODE_RECORD_SIZE};
use crate::lease::{LeaseManager, MAX_INSTANCES};
use crate::segment::{SegmentRecord, SegmentTable};

/// Inode number of the root directory.
pub const ROOT_INO: u64 = 1;

/// Number of inode-table shards.
pub const INODE_SHARDS: usize = 16;

/// Number of descriptor-table shards.
pub const FD_SHARDS: usize = 16;

/// Number of namespace shards (directory entries, open counts, orphans).
pub const NS_SHARDS: usize = 16;

#[derive(Debug, Clone)]
struct OpenFile {
    ino: u64,
    offset: u64,
    flags: OpenFlags,
    /// End of the previous read, used to classify the next read as
    /// sequential or random for latency purposes.
    last_read_end: u64,
}

#[derive(Debug, Clone, Copy)]
struct DirSlot {
    ino: u64,
    /// Byte offset of the entry within the directory data.
    entry_offset: u64,
    /// Length of the serialized entry.
    entry_len: usize,
}

/// One directory's in-memory state: its entry map plus the invalidation
/// generation the full-path cache pins entries to.
#[derive(Debug, Default)]
struct DirState {
    entries: BTreeMap<String, DirSlot>,
    /// Bumped under the owning shard's write lock on every destructive
    /// entry change (unlink, rename, rmdir); path-cache entries pinned to
    /// an older generation fail validation.  Creates do not bump it —
    /// they overwrite their exact cache key instead, so sibling entries
    /// stay hot under create-heavy churn.
    gen: u64,
}

/// One shard of the directory namespace.  Directory operations used to
/// funnel through a single coarse `RwLock`; with metadata-heavy
/// workloads (varmail-style create/unlink churn, million-file trees)
/// that lock was the last single-lock choke point, so the namespace is
/// now [`NS_SHARDS`]-way sharded by inode number: a directory's entry
/// map lives in the shard of the directory's own inode, and a file's
/// open count / orphan flag in the shard of the file's inode.
#[derive(Debug, Default)]
struct NsShard {
    /// Directory inode → its entries and invalidation generation.
    dirs: HashMap<u64, DirState>,
    /// Open-descriptor counts, keyed by file inode.
    open_counts: HashMap<u64, u32>,
    /// Inodes whose last link was removed while still open; freed on the
    /// final close.
    orphans: HashMap<u64, bool>,
}

/// A validated full-path cache entry.  `ino == None` is a negative
/// entry: the name was confirmed absent from `parent` at fill time.
#[derive(Debug, Clone, Copy)]
struct PathCacheEntry {
    /// Inode of the directory holding (or lacking) the final component.
    parent: u64,
    /// The parent directory's [`DirState::gen`] at fill time.
    parent_gen: u64,
    /// The global directory-move generation at the start of the resolve
    /// that produced this entry.  A directory rename or rmdir anywhere
    /// bumps the global counter, invalidating every cached deep path
    /// whose prefix chain could have moved.
    move_gen: u64,
    ino: Option<u64>,
}

/// The full-path lookup cache layered above the namespace shards: deep
/// `resolve()` becomes one hash probe (plus a generation check under the
/// parent's shard lock) instead of a per-component walk.
#[derive(Debug)]
struct PathCache {
    shards: Vec<RwLock<HashMap<String, PathCacheEntry>>>,
    /// See [`PathCacheEntry::move_gen`].
    dir_move_gen: AtomicU64,
}

impl PathCache {
    fn new() -> Self {
        PathCache {
            shards: (0..NS_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            dir_move_gen: AtomicU64::new(0),
        }
    }

    fn shard(&self, path: &str) -> &RwLock<HashMap<String, PathCacheEntry>> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        path.hash(&mut h);
        &self.shards[h.finish() as usize % self.shards.len()]
    }

    fn get(&self, path: &str) -> Option<PathCacheEntry> {
        self.shard(path).read().get(path).copied()
    }

    fn insert(&self, path: &str, entry: PathCacheEntry) {
        self.shard(path).write().insert(path.to_string(), entry);
    }

    fn remove(&self, path: &str) {
        self.shard(path).write().remove(path);
    }

    fn move_gen(&self) -> u64 {
        self.dir_move_gen.load(Ordering::Acquire)
    }

    /// Bumps the directory-move generation, returning the new value.
    fn bump_move_gen(&self) -> u64 {
        self.dir_move_gen.fetch_add(1, Ordering::AcqRel) + 1
    }
}

type InodeShard = HashMap<u64, Inode>;

/// Maps an inode number to its inode shard.  Inode numbers are handed out
/// from per-namespace-shard congruence pools ([`Ext4Dax::alloc_ino`]) and
/// the inode shard follows the same congruence: a directory's files share
/// their parent's pool, so the whole working set of one directory — the
/// parent inode, the child inodes and the namespace state — lives on one
/// shard pair, and threads in disjoint directories touch disjoint inode
/// *and* namespace shards (nothing on their create path is shared).
fn inode_shard_of(ino: u64, shards: usize) -> usize {
    ino as usize % shards
}

/// The ext4-DAX-like kernel file system.
#[derive(Debug)]
pub struct Ext4Dax {
    device: Arc<PmemDevice>,
    sb: Superblock,
    inodes: Vec<RwLock<InodeShard>>,
    ns: Vec<RwLock<NsShard>>,
    /// Per-namespace-shard inode-number pools: pool `s` hands out numbers
    /// congruent to `s` modulo [`NS_SHARDS`] (see [`Ext4Dax::alloc_ino`]).
    next_inos: Vec<AtomicU64>,
    /// Round-robin pool selector for new *directories*, which should
    /// spread across namespace shards (each is a future parent) rather
    /// than pile onto their own parent's shard.
    dir_pool_rotor: AtomicU64,
    path_cache: PathCache,
    fds: Vec<RwLock<HashMap<Fd, OpenFile>>>,
    next_fd: AtomicU64,
    alloc: ShardedAllocator,
    journal: Journal,
    leases: LeaseManager,
    /// Two-tier view of the device: PM in `[0, total_blocks)`, capacity
    /// behind it (degenerate on flat devices).
    tier: TieredDevice,
    /// Which parts of which files live on the capacity tier (see
    /// [`crate::segment`]).  Empty — and every probe cheap — on flat
    /// devices.
    segments: SegmentTable,
}

/// One block move inside an [`Ext4Dax::ioctl_relink_batch`] call.
///
/// Equivalent to the argument list of [`Ext4Dax::ioctl_relink`]: move the
/// blocks backing `[src_offset, src_offset + len)` of `src_fd` so they back
/// `[dst_offset, dst_offset + len)` of `dst_fd`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelinkOp {
    /// Descriptor of the file the blocks move out of (a staging file).
    pub src_fd: Fd,
    /// Block-aligned byte offset of the source range.
    pub src_offset: u64,
    /// Descriptor of the file the blocks move into (the target file).
    pub dst_fd: Fd,
    /// Block-aligned byte offset of the destination range.
    pub dst_offset: u64,
    /// Block-aligned length of the move in bytes.
    pub len: u64,
}

/// Write guards over the distinct inode shards a multi-inode operation
/// touches, acquired in ascending shard order.
struct ShardSet<'a> {
    guards: Vec<(usize, RwLockWriteGuard<'a, InodeShard>)>,
}

impl ShardSet<'_> {
    fn map_for(&mut self, shard_idx: usize) -> &mut InodeShard {
        let slot = self
            .guards
            .iter_mut()
            .find(|(idx, _)| *idx == shard_idx)
            .expect("shard not locked by this set");
        &mut slot.1
    }

    fn inode_mut(&mut self, shards: usize, ino: u64) -> FsResult<&mut Inode> {
        self.map_for(inode_shard_of(ino, shards))
            .get_mut(&ino)
            .ok_or(FsError::BadFd)
    }

    fn inode(&mut self, shards: usize, ino: u64) -> FsResult<&Inode> {
        self.map_for(inode_shard_of(ino, shards))
            .get(&ino)
            .ok_or(FsError::BadFd)
    }
}

/// Write guards over the distinct namespace shards a metadata operation
/// touches, acquired in ascending shard order (lock-ordering rule 10:
/// ascending namespace-shard order, and namespace shards before inode
/// shards).
struct NsGuards<'a> {
    guards: Vec<(usize, RwLockWriteGuard<'a, NsShard>)>,
}

impl NsGuards<'_> {
    fn shard_mut(&mut self, shards: usize, ino: u64) -> &mut NsShard {
        let idx = ino as usize % shards;
        let slot = self
            .guards
            .iter_mut()
            .find(|(i, _)| *i == idx)
            .expect("ns shard not locked by this set");
        &mut slot.1
    }

    fn dir(&mut self, shards: usize, ino: u64) -> FsResult<&DirState> {
        self.shard_mut(shards, ino)
            .dirs
            .get(&ino)
            .ok_or(FsError::NotADirectory)
    }

    fn dir_mut(&mut self, shards: usize, ino: u64) -> FsResult<&mut DirState> {
        self.shard_mut(shards, ino)
            .dirs
            .get_mut(&ino)
            .ok_or(FsError::NotADirectory)
    }
}

impl Ext4Dax {
    fn inode_shard_idx(&self, ino: u64) -> usize {
        inode_shard_of(ino, self.inodes.len())
    }

    fn fd_shard_idx(&self, fd: Fd) -> usize {
        fd as usize % self.fds.len()
    }

    /// Write-locks one inode shard.  Contended acquisitions are counted
    /// and the blocked time (measured as the global simulated-clock delta
    /// — the work others completed while this thread waited) is charged to
    /// the calling thread's critical path, so lock serialization shows up
    /// in per-thread simulated throughput exactly as it would on real
    /// hardware.
    fn lock_inode_write(&self, ino: u64) -> RwLockWriteGuard<'_, InodeShard> {
        let shard = &self.inodes[self.inode_shard_idx(ino)];
        self.device
            .lock_contended(|| shard.try_write(), || shard.write())
    }

    /// Read-locks one inode shard, counting contention (see
    /// [`Ext4Dax::lock_inode_write`] for the wait accounting).
    fn lock_inode_read(&self, ino: u64) -> RwLockReadGuard<'_, InodeShard> {
        let shard = &self.inodes[self.inode_shard_idx(ino)];
        self.device
            .lock_contended(|| shard.try_read(), || shard.read())
    }

    /// Write-locks the distinct shards of `inos`, in ascending shard order.
    fn lock_inodes_write(&self, inos: &[u64]) -> ShardSet<'_> {
        let mut idxs: Vec<usize> = inos.iter().map(|&ino| self.inode_shard_idx(ino)).collect();
        idxs.sort_unstable();
        idxs.dedup();
        let mut guards = Vec::with_capacity(idxs.len());
        for idx in idxs {
            let shard = &self.inodes[idx];
            let guard = self
                .device
                .lock_contended(|| shard.try_write(), || shard.write());
            guards.push((idx, guard));
        }
        ShardSet { guards }
    }

    fn ns_shard_idx(&self, ino: u64) -> usize {
        ino as usize % self.ns.len()
    }

    /// Namespace-shard acquisition with contention accounting: a failed
    /// `try_lock` counts an `ns_shard_lock_waits`, emits an
    /// [`obs::SpanEvent::NsShardWait`], and charges the blocked time
    /// (global simulated-clock delta) to the calling thread's critical
    /// path — mirroring [`PmemDevice::lock_contended`] for the inode
    /// shards.
    fn ns_lock_contended<G>(
        &self,
        try_lock: impl FnOnce() -> Option<G>,
        lock: impl FnOnce() -> G,
    ) -> G {
        match try_lock() {
            Some(guard) => guard,
            None => {
                self.device.stats().add_ns_shard_lock_wait();
                obs::event(obs::SpanEvent::NsShardWait);
                let t0 = self.device.clock().now_ns_f64();
                let guard = lock();
                pmem::SimClock::charge_thread_wait(self.device.clock().now_ns_f64() - t0);
                guard
            }
        }
    }

    /// Read-locks the namespace shard owning `ino`.
    fn lock_ns_read(&self, ino: u64) -> RwLockReadGuard<'_, NsShard> {
        let shard = &self.ns[self.ns_shard_idx(ino)];
        self.ns_lock_contended(|| shard.try_read(), || shard.read())
    }

    /// Write-locks the namespace shard owning `ino`.
    fn lock_ns_shard_write(&self, ino: u64) -> RwLockWriteGuard<'_, NsShard> {
        let shard = &self.ns[self.ns_shard_idx(ino)];
        self.ns_lock_contended(|| shard.try_write(), || shard.write())
    }

    /// Write-locks the distinct namespace shards of `inos`, in ascending
    /// shard order (rule 10).
    fn lock_ns_write(&self, inos: &[u64]) -> NsGuards<'_> {
        let mut idxs: Vec<usize> = inos.iter().map(|&ino| self.ns_shard_idx(ino)).collect();
        idxs.sort_unstable();
        idxs.dedup();
        let mut guards = Vec::with_capacity(idxs.len());
        for idx in idxs {
            let shard = &self.ns[idx];
            let guard = self.ns_lock_contended(|| shard.try_write(), || shard.write());
            guards.push((idx, guard));
        }
        NsGuards { guards }
    }

    /// Looks up (and clones) an open descriptor.
    fn lookup_fd(&self, fd: Fd) -> FsResult<OpenFile> {
        self.fds[self.fd_shard_idx(fd)]
            .read()
            .get(&fd)
            .cloned()
            .ok_or(FsError::BadFd)
    }

    fn insert_fd(&self, ino: u64, flags: OpenFlags) -> Fd {
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.fds[self.fd_shard_idx(fd)].write().insert(
            fd,
            OpenFile {
                ino,
                offset: 0,
                flags,
                last_read_end: u64::MAX,
            },
        );
        fd
    }

    fn update_fd(&self, fd: Fd, f: impl FnOnce(&mut OpenFile)) {
        if let Some(file) = self.fds[self.fd_shard_idx(fd)].write().get_mut(&fd) {
            f(file);
        }
    }

    /// Builds the per-namespace-shard inode-number pool counters from the
    /// inos already in use (mkfs / mount constructor helper).  Pool `s`
    /// allocates numbers `n * NS_SHARDS + s`; each counter starts past the
    /// largest existing number in its congruence class.  Ino 0 is the
    /// "no inode" sentinel (e.g. `replaced_ino` in rename records), so
    /// pool 0 starts at 1.
    fn build_ino_pools(existing: impl Iterator<Item = u64>) -> Vec<AtomicU64> {
        let mut counters = vec![0u64; NS_SHARDS];
        counters[0] = 1;
        for ino in existing {
            let s = ino as usize % NS_SHARDS;
            counters[s] = counters[s].max(ino / NS_SHARDS as u64 + 1);
        }
        counters.into_iter().map(AtomicU64::new).collect()
    }

    /// Allocates an inode number for a new child of `parent`.
    ///
    /// Numbers come from [`NS_SHARDS`] congruence pools (`ino % NS_SHARDS`
    /// is the pool id).  Files prefer the pool matching the parent's
    /// namespace shard: the file's `open_counts`/`orphans` state then
    /// lives on the same shard as the directory entry being created, so
    /// threads working in disjoint directories take disjoint namespace
    /// locks.  Directories instead take the next pool off a round-robin
    /// rotor — each is a future parent, and sibling directories (e.g.
    /// per-thread working dirs) must land on *different* shards for the
    /// workload to scale.  The inode shard follows the same congruence
    /// (see [`inode_shard_of`]), so a directory's entire create path —
    /// parent inode, child inodes, namespace state — stays on one shard
    /// pair.  A full preferred pool falls back to the
    /// neighboring pools — alignment is a performance heuristic, never a
    /// correctness requirement — and the allocator only reports
    /// [`FsError::NoSpace`] once every pool has exhausted the inode table
    /// (which also closes the old overflow hazard of numbering straight
    /// past `inode_count` into the bitmap region).
    fn alloc_ino(&self, parent: u64, is_dir: bool) -> FsResult<u64> {
        let pools = self.next_inos.len();
        let preferred = if is_dir {
            // Skip the root's shard: every cache-miss resolve read-locks
            // the root's directory state, so parking a busy directory
            // (and with it every file it will ever hold) on that shard
            // would put writer traffic on the hottest read path.
            let root_shard = self.ns_shard_idx(ROOT_INO);
            let s = self.dir_pool_rotor.fetch_add(1, Ordering::Relaxed) as usize % (pools - 1);
            if s >= root_shard {
                s + 1
            } else {
                s
            }
        } else {
            self.ns_shard_idx(parent)
        };
        for attempt in 0..pools {
            let s = (preferred + attempt) % pools;
            let n = self.next_inos[s].fetch_add(1, Ordering::Relaxed);
            let ino = n * NS_SHARDS as u64 + s as u64;
            if ino < self.sb.inode_count {
                return Ok(ino);
            }
        }
        Err(FsError::NoSpace)
    }

    /// Distributes a flat directory map into [`NS_SHARDS`] namespace
    /// shards (mkfs / mount constructor helper).
    fn build_ns_shards(dirs: HashMap<u64, BTreeMap<String, DirSlot>>) -> Vec<RwLock<NsShard>> {
        let mut shards: Vec<NsShard> = (0..NS_SHARDS).map(|_| NsShard::default()).collect();
        for (ino, entries) in dirs {
            shards[ino as usize % NS_SHARDS]
                .dirs
                .insert(ino, DirState { entries, gen: 0 });
        }
        shards.into_iter().map(RwLock::new).collect()
    }

    /// Formats the device as a flat, all-PM file system and returns it
    /// mounted.
    ///
    /// Formatting itself is not an operation the paper measures, so its
    /// device traffic is written without simulated-time charges.
    pub fn mkfs(device: Arc<PmemDevice>) -> FsResult<Arc<Self>> {
        let pm_bytes = device.size();
        Self::mkfs_shaped(device, pm_bytes)
    }

    /// Formats the device with the first `pm_bytes` as the PM tier and
    /// everything behind it as the capacity tier (equal to `mkfs` when
    /// `pm_bytes` covers the whole device).  The capacity region opens
    /// with the segment-location table (see [`crate::segment`]) followed
    /// by capacity data blocks.
    pub fn mkfs_shaped(device: Arc<PmemDevice>, pm_bytes: usize) -> FsResult<Arc<Self>> {
        if pm_bytes > device.size() || !pm_bytes.is_multiple_of(BLOCK_SIZE) {
            return Err(FsError::InvalidArgument);
        }
        let total_blocks = pm_bytes as u64 / BLOCK_SIZE as u64;
        let cap_blocks = (device.size() - pm_bytes) as u64 / BLOCK_SIZE as u64;
        let sb = Superblock::compute_shaped(
            total_blocks,
            DEFAULT_INODE_COUNT.min(total_blocks / 4),
            cap_blocks,
        )?;
        device.write_uncharged(0, &sb.to_block());
        SegmentTable::format_uncharged(&device, &sb);

        let journal = Journal::new(Arc::clone(&device), &sb);
        journal.format();

        // Fresh lease table: no instance owns anything yet.
        device.write_uncharged(
            sb.lease_start * BLOCK_SIZE as u64,
            &vec![0u8; MAX_INSTANCES as usize],
        );
        let leases = LeaseManager::new(Arc::clone(&device), &sb, &[]);

        let alloc = ShardedAllocator::format(&sb);
        // Zero the inode table so unused slots parse as free.
        let itable_bytes = (sb.itable_blocks * BLOCK_SIZE as u64) as usize;
        device.write_uncharged(
            sb.itable_start * BLOCK_SIZE as u64,
            &vec![0u8; itable_bytes],
        );
        device.write_uncharged(
            sb.bitmap_start * BLOCK_SIZE as u64,
            &alloc.to_bitmap_image(&sb),
        );

        let mut inode_shards: Vec<RwLock<InodeShard>> = (0..INODE_SHARDS)
            .map(|_| RwLock::new(HashMap::new()))
            .collect();
        let root = Inode::new(ROOT_INO, InodeKind::Directory);
        inode_shards[inode_shard_of(ROOT_INO, INODE_SHARDS)]
            .get_mut()
            .insert(ROOT_INO, root);
        let mut dirs = HashMap::new();
        dirs.insert(ROOT_INO, BTreeMap::new());

        let tier = TieredDevice::new(Arc::clone(&device), pm_bytes);
        let segments = SegmentTable::new_empty(Arc::clone(&device), &sb);
        let fs = Self {
            device,
            sb,
            inodes: inode_shards,
            ns: Self::build_ns_shards(dirs),
            next_inos: Self::build_ino_pools(std::iter::once(ROOT_INO)),
            dir_pool_rotor: AtomicU64::new(0),
            path_cache: PathCache::new(),
            fds: (0..FD_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            next_fd: AtomicU64::new(3),
            alloc,
            journal,
            leases,
            tier,
            segments,
        };
        {
            let mut shard = fs.lock_inode_write(ROOT_INO);
            let inode = shard.get_mut(&ROOT_INO).expect("root exists");
            fs.persist_inode(inode, false);
        }
        Ok(Arc::new(fs))
    }

    /// Mounts an already-formatted device: reads the superblock, replays the
    /// journal, and rebuilds the in-memory inode, directory and allocator
    /// state from the on-device structures.
    pub fn mount(device: Arc<PmemDevice>) -> FsResult<Arc<Self>> {
        let mut sb_block = vec![0u8; BLOCK_SIZE];
        device.read_uncharged(0, &mut sb_block);
        let sb = Superblock::from_block(&sb_block)?;

        // 1. Journal recovery (regions merged in transaction-id order).
        let (records, max_tid) = Journal::recover(&device, &sb);

        // 2. Read the lease table: leases active at the crash whose owners
        //    died with it.  Journal replay below re-applies any
        //    acquire/release whose in-place table update did not land.
        let mut lease_ids: std::collections::HashSet<u32> = LeaseManager::load_active(&device, &sb)
            .into_iter()
            .collect();

        // 3. Read the bitmap and inode table.
        let mut bitmap_image = vec![0u8; (sb.bitmap_blocks * BLOCK_SIZE as u64) as usize];
        device.read_uncharged(sb.bitmap_start * BLOCK_SIZE as u64, &mut bitmap_image);
        let alloc = ShardedAllocator::from_bitmap_image(&sb, &bitmap_image);

        let mut inodes: HashMap<u64, Inode> = HashMap::new();
        let mut record_buf = vec![0u8; INODE_RECORD_SIZE];
        for ino in 1..sb.inode_count {
            device.read_uncharged(sb.inode_offset(ino), &mut record_buf);
            if let Some((mut inode, _count, overflow_head)) = Inode::deserialize(ino, &record_buf)?
            {
                let mut next = overflow_head;
                let mut block = vec![0u8; BLOCK_SIZE];
                while next != 0 {
                    device.read_uncharged(next * BLOCK_SIZE as u64, &mut block);
                    next = inode.load_overflow(next, &block)?;
                }
                inodes.insert(ino, inode);
            }
        }

        // 4. Rebuild directories from their data blocks.
        let mut dirs: HashMap<u64, BTreeMap<String, DirSlot>> = HashMap::new();
        for (&ino, inode) in &inodes {
            if !inode.is_dir() {
                continue;
            }
            let data = Self::read_file_raw(&device, inode);
            let mut map = BTreeMap::new();
            for entry in dir::scan_entries(&data)? {
                if entry.ino != 0 {
                    map.insert(
                        entry.name.clone(),
                        DirSlot {
                            ino: entry.ino,
                            entry_offset: entry.offset,
                            entry_len: entry.len,
                        },
                    );
                }
            }
            dirs.insert(ino, map);
        }

        // 5. Load the segment-location table (degenerate on flat devices),
        //    then replay committed journal records idempotently on the
        //    in-memory state — including SegmentMap records from a
        //    migration whose in-place table rewrite did not land.
        let segments = SegmentTable::load_uncharged(Arc::clone(&device), &sb)?;
        for rec in &records {
            Self::replay_record(
                rec,
                &mut inodes,
                &mut dirs,
                &alloc,
                &segments,
                &mut lease_ids,
            );
        }

        let next_inos =
            Self::build_ino_pools(inodes.keys().copied().chain(std::iter::once(ROOT_INO)));
        let mut inode_shards: Vec<RwLock<InodeShard>> = (0..INODE_SHARDS)
            .map(|_| RwLock::new(HashMap::new()))
            .collect();
        for (ino, inode) in inodes {
            inode_shards[inode_shard_of(ino, INODE_SHARDS)]
                .get_mut()
                .insert(ino, inode);
        }

        let lease_seed: Vec<u32> = lease_ids.into_iter().collect();
        let leases = LeaseManager::new(Arc::clone(&device), &sb, &lease_seed);

        let journal = Journal::new(Arc::clone(&device), &sb);
        let tier = TieredDevice::new(
            Arc::clone(&device),
            (sb.total_blocks * BLOCK_SIZE as u64) as usize,
        );
        let fs = Self {
            device,
            sb,
            inodes: inode_shards,
            ns: Self::build_ns_shards(dirs),
            next_inos,
            dir_pool_rotor: AtomicU64::new(0),
            path_cache: PathCache::new(),
            fds: (0..FD_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            next_fd: AtomicU64::new(3),
            alloc,
            journal,
            leases,
            tier,
            segments,
        };
        {
            // Make the in-place state match the replayed state, then the
            // journal contents are no longer needed.
            fs.leases.persist();
            if fs.sb.is_tiered() {
                fs.segments.persist_uncharged()?;
            }
            for shard in &fs.inodes {
                let mut guard = shard.write();
                for (_, inode) in guard.iter_mut() {
                    fs.persist_inode(inode, false);
                }
            }
            let image = fs.alloc.to_bitmap_image(&fs.sb);
            fs.device
                .write_uncharged(fs.sb.bitmap_start * BLOCK_SIZE as u64, &image);
            fs.journal.set_next_tid(max_tid + 1);
            fs.journal.format();
        }
        Ok(Arc::new(fs))
    }

    fn replay_record(
        rec: &JournalRecord,
        inodes: &mut HashMap<u64, Inode>,
        dirs: &mut HashMap<u64, BTreeMap<String, DirSlot>>,
        alloc: &ShardedAllocator,
        segments: &SegmentTable,
        lease_ids: &mut std::collections::HashSet<u32>,
    ) {
        match rec {
            JournalRecord::CreateInode {
                ino,
                parent,
                name,
                is_dir,
            } => {
                inodes.entry(*ino).or_insert_with(|| {
                    Inode::new(
                        *ino,
                        if *is_dir {
                            InodeKind::Directory
                        } else {
                            InodeKind::File
                        },
                    )
                });
                if *is_dir {
                    dirs.entry(*ino).or_default();
                }
                if let Some(parent_map) = dirs.get_mut(parent) {
                    parent_map.entry(name.clone()).or_insert(DirSlot {
                        ino: *ino,
                        entry_offset: u64::MAX,
                        entry_len: dir::entry_size(name),
                    });
                }
            }
            JournalRecord::Unlink {
                parent,
                name,
                ino,
                free_inode,
            } => {
                if let Some(parent_map) = dirs.get_mut(parent) {
                    parent_map.remove(name);
                }
                if *free_inode {
                    inodes.remove(ino);
                    dirs.remove(ino);
                }
            }
            JournalRecord::Rename {
                old_parent,
                old_name,
                new_parent,
                new_name,
                ino,
                replaced_ino,
            } => {
                if let Some(map) = dirs.get_mut(old_parent) {
                    map.remove(old_name);
                }
                if *replaced_ino != 0 {
                    inodes.remove(replaced_ino);
                    dirs.remove(replaced_ino);
                }
                if let Some(map) = dirs.get_mut(new_parent) {
                    map.insert(
                        new_name.clone(),
                        DirSlot {
                            ino: *ino,
                            entry_offset: u64::MAX,
                            entry_len: dir::entry_size(new_name),
                        },
                    );
                }
            }
            JournalRecord::SetSize { ino, size } => {
                if let Some(inode) = inodes.get_mut(ino) {
                    inode.size = *size;
                }
            }
            JournalRecord::AddExtent {
                ino,
                logical,
                phys,
                len,
            } => {
                if let Some(inode) = inodes.get_mut(ino) {
                    if inode.extents.lookup(*logical).is_none() {
                        inode.extents.insert(Extent {
                            logical: *logical,
                            phys: *phys,
                            len: *len,
                        });
                    }
                }
            }
            JournalRecord::TruncateExtents { ino, from_logical } => {
                if let Some(inode) = inodes.get_mut(ino) {
                    inode.extents.truncate_from(*from_logical);
                }
            }
            JournalRecord::AllocBlocks { start, len } => {
                alloc.mark_used(*start, *len);
            }
            JournalRecord::FreeBlocks { start, len } => {
                alloc.mark_free(*start, *len);
            }
            JournalRecord::SwapExtents { .. } => {
                // Descriptive only; relink journals SetRangeMapping records.
            }
            JournalRecord::SetRangeMapping {
                ino,
                logical,
                count,
                extents,
            } => {
                if let Some(inode) = inodes.get_mut(ino) {
                    inode.extents.remove_range(*logical, *count);
                    for &(l, p, n) in extents {
                        inode.extents.insert(Extent {
                            logical: l,
                            phys: p,
                            len: n,
                        });
                    }
                }
            }
            JournalRecord::Lease {
                instance_id,
                acquire,
            } => {
                if *acquire {
                    lease_ids.insert(*instance_id);
                } else {
                    lease_ids.remove(instance_id);
                }
            }
            JournalRecord::SegmentMap { .. } => segments.apply(rec),
            JournalRecord::Commit => {}
        }
    }

    /// Reads a whole file's contents straight from its extents, without any
    /// cost accounting (mount-time helper).
    fn read_file_raw(device: &Arc<PmemDevice>, inode: &Inode) -> Vec<u8> {
        let mut out = vec![0u8; inode.size as usize];
        let mut pos = 0u64;
        while pos < inode.size {
            let block = pos / BLOCK_SIZE as u64;
            let within = (pos % BLOCK_SIZE as u64) as usize;
            let remaining = (inode.size - pos) as usize;
            let chunk = (BLOCK_SIZE - within).min(remaining);
            if let Some((phys, _)) = inode.extents.lookup(block) {
                device.read_uncharged(
                    phys * BLOCK_SIZE as u64 + within as u64,
                    &mut out[pos as usize..pos as usize + chunk],
                );
            }
            pos += chunk as u64;
        }
        out
    }

    // ------------------------------------------------------------------
    // Cost helpers
    // ------------------------------------------------------------------

    fn charge_syscall(&self) {
        let cost = self.device.cost().clone();
        self.device.stats().add_kernel_trap();
        self.device
            .charge_software(cost.kernel_trap_ns + cost.vfs_path_ns);
    }

    fn charge(&self, ns: f64) {
        self.device.charge_software(ns);
    }

    // ------------------------------------------------------------------
    // Metadata persistence helpers
    // ------------------------------------------------------------------

    /// Writes the inode record (and its overflow chain) with charged
    /// metadata traffic.  Called with the inode's shard lock held.
    fn write_inode(&self, inode: &mut Inode) {
        self.persist_inode(inode, true);
    }

    fn persist_inode(&self, inode: &mut Inode, charged: bool) {
        // Adjust the overflow chain to the current extent count.
        let needed = inode.overflow_blocks_needed();
        let current = inode.overflow_blocks.len();
        if needed > current {
            let runs = self
                .alloc
                .alloc_extents(inode.ino, (needed - current) as u64)
                .unwrap_or_default();
            for run in runs {
                for b in run.start..run.start + run.len {
                    inode.overflow_blocks.push(b);
                }
            }
        } else if needed < current {
            let freed: Vec<u64> = inode.overflow_blocks.split_off(needed);
            for b in freed {
                self.alloc.mark_free(b, 1);
            }
        }
        let (record, overflow) = inode.serialize();
        let off = self.sb.inode_offset(inode.ino);
        if charged {
            self.device.write(
                off,
                &record,
                PersistMode::NonTemporal,
                TimeCategory::Metadata,
            );
            for (block, image) in &overflow {
                self.device.write(
                    block * BLOCK_SIZE as u64,
                    image,
                    PersistMode::NonTemporal,
                    TimeCategory::Metadata,
                );
            }
            self.device.fence(TimeCategory::Metadata);
        } else {
            self.device.write_uncharged(off, &record);
            for (block, image) in &overflow {
                self.device
                    .write_uncharged(block * BLOCK_SIZE as u64, image);
            }
        }
    }

    /// Zeroes a freed inode's on-device record.
    fn zero_inode_record(&self, ino: u64) {
        let zero = vec![0u8; INODE_RECORD_SIZE];
        let off = self.sb.inode_offset(ino);
        self.device
            .write(off, &zero, PersistMode::NonTemporal, TimeCategory::Metadata);
    }

    /// Resolves a **normalized** path to `(parent_ino, name, Option<ino>)`.
    ///
    /// Fast path: one hash probe of the full-path cache, validated under
    /// the parent directory's shard read lock (directory-move generation
    /// and parent generation both unchanged since fill) — a deep resolve
    /// costs one dirent charge instead of one per component.  Near miss:
    /// if the full path is absent but the parent directory's path is
    /// cached, the final component is looked up under the parent's shard
    /// alone (two dirent charges, no shared-prefix locks).  Slow path:
    /// a per-component walk taking each prefix directory's shard read
    /// lock transiently, then a cache fill while the final parent's
    /// shard is still read-locked (so fills and invalidations on one key
    /// serialize through that shard's `RwLock`).  Directory-ness of
    /// intermediate components is checked against the namespace's
    /// directory maps, so no inode shard is locked during resolution.
    fn resolve_norm(&self, norm: &str) -> FsResult<(u64, String, Option<u64>)> {
        let cost = self.device.cost().clone();
        let move_gen = self.path_cache.move_gen();
        let (parent_path, name) = vpath::split(norm)?;
        if let Some(e) = self.path_cache.get(norm) {
            if e.move_gen == move_gen {
                let guard = self.lock_ns_read(e.parent);
                if guard.dirs.get(&e.parent).map(|d| d.gen) == Some(e.parent_gen) {
                    self.charge(cost.ext4_dirent_ns);
                    self.device.stats().add_path_cache_hit();
                    return Ok((e.parent, name, e.ino));
                }
            }
            // Stale entry: drop it so the walk below refills the slot.
            self.path_cache.remove(norm);
        }
        self.device.stats().add_path_cache_miss();
        obs::event(obs::SpanEvent::PathCacheMiss);
        // Near miss: the parent directory's own path is often still
        // cached (creates of fresh names in a warm directory).  A
        // positive **directory** entry needs no parent-generation check
        // here: inode numbers are never reused and every directory move
        // bumps `move_gen`, so "`move_gen` unchanged and the directory
        // still exists" proves the inode is still at that path.  The
        // resolve then touches only the parent's own shard — a create in
        // a deep tree takes no shared-prefix locks at all, which is what
        // keeps disjoint-directory writers off each other's shards.
        if parent_path != "/" {
            if let Some(pe) = self.path_cache.get(&parent_path) {
                if pe.move_gen == move_gen {
                    if let Some(p_ino) = pe.ino {
                        let guard = self.lock_ns_read(p_ino);
                        if let Some(d) = guard.dirs.get(&p_ino) {
                            // One probe plus one dirent lookup instead of
                            // a per-component walk.
                            self.charge(2.0 * cost.ext4_dirent_ns);
                            let ino = d.entries.get(&name).map(|s| s.ino);
                            self.path_cache.insert(
                                norm,
                                PathCacheEntry {
                                    parent: p_ino,
                                    parent_gen: d.gen,
                                    move_gen,
                                    ino,
                                },
                            );
                            return Ok((p_ino, name, ino));
                        }
                        drop(guard);
                        // The cached inode is not a live directory (it
                        // was removed, or the entry names a file): evict
                        // and take the walk below.
                        self.path_cache.remove(&parent_path);
                    }
                } else {
                    self.path_cache.remove(&parent_path);
                }
            }
        }
        let comps = vpath::components(&parent_path)?;
        let mut dir_ino = ROOT_INO;
        for comp in &comps {
            self.charge(cost.ext4_dirent_ns);
            let guard = self.lock_ns_read(dir_ino);
            let d = guard.dirs.get(&dir_ino).ok_or(FsError::NotADirectory)?;
            let slot = d.entries.get(comp).ok_or(FsError::NotFound)?;
            dir_ino = slot.ino;
        }
        self.charge(cost.ext4_dirent_ns);
        let guard = self.lock_ns_read(dir_ino);
        let d = guard.dirs.get(&dir_ino).ok_or(FsError::NotADirectory)?;
        let ino = d.entries.get(&name).map(|s| s.ino);
        // Fill (positive or negative) while the parent shard is still
        // read-locked; `move_gen` was snapshotted before the walk, so an
        // overlapping directory move leaves this entry invalid.
        self.path_cache.insert(
            norm,
            PathCacheEntry {
                parent: dir_ino,
                parent_gen: d.gen,
                move_gen,
                ino,
            },
        );
        drop(guard);
        Ok((dir_ino, name, ino))
    }

    /// Ensures blocks are allocated to cover file byte range
    /// `[offset, offset+len)`, journaling the allocation.  Called with the
    /// inode's shard lock held; the journal guard is dropped internally
    /// after the allocator bitmap is persisted (a wrapped-away allocation
    /// record can at worst leak blocks, never corrupt).
    fn allocate_range(&self, inode: &mut Inode, offset: u64, len: u64) -> FsResult<Vec<BlockRun>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let cost = self.device.cost().clone();
        let first_block = offset / BLOCK_SIZE as u64;
        let last_block = (offset + len - 1) / BLOCK_SIZE as u64;
        // Find the holes.
        let mut holes: Vec<(u64, u64)> = Vec::new(); // (logical, count)
        {
            let mut b = first_block;
            while b <= last_block {
                match inode.extents.lookup(b) {
                    Some((_, contig)) => b += contig.min(last_block - b + 1),
                    None => {
                        let start = b;
                        while b <= last_block && inode.extents.lookup(b).is_none() {
                            b += 1;
                        }
                        holes.push((start, b - start));
                    }
                }
            }
        }
        if holes.is_empty() {
            return Ok(Vec::new());
        }
        let mut records = Vec::new();
        let mut all_runs = Vec::new();
        for (logical, count) in holes {
            self.charge(cost.ext4_alloc_ns);
            let runs = self.alloc.alloc_extents(inode.ino, count)?;
            let mut l = logical;
            for run in &runs {
                records.push(JournalRecord::AllocBlocks {
                    start: run.start,
                    len: run.len,
                });
                records.push(JournalRecord::AddExtent {
                    ino: inode.ino,
                    logical: l,
                    phys: run.start,
                    len: run.len,
                });
                inode.extents.insert(Extent {
                    logical: l,
                    phys: run.start,
                    len: run.len,
                });
                l += run.len;
            }
            all_runs.extend(runs);
        }
        let (_tid, txn) = self.journal.commit(inode.ino, &records)?;
        self.alloc.persist_runs(&self.device, &self.sb, &all_runs);
        drop(txn);
        Ok(all_runs)
    }

    /// Releases freed runs after their `FreeBlocks` records are durably
    /// journaled: marks them free in the allocator and persists the bitmap
    /// bytes.  Freeing before the commit would let a concurrent allocation
    /// re-issue the blocks while the free was still undurable.
    fn release_runs(&self, runs: &[BlockRun]) {
        if runs.is_empty() {
            return;
        }
        for run in runs {
            self.alloc.mark_free(run.start, run.len);
        }
        self.alloc.persist_runs(&self.device, &self.sb, runs);
    }

    /// Appends a directory entry, extending the directory data as needed.
    /// Called with the parent's namespace-shard write guard and the
    /// parent inode's shard lock held.
    fn dir_append_entry(
        &self,
        dir: &mut DirState,
        parent_inode: &mut Inode,
        name: &str,
        ino: u64,
    ) -> FsResult<()> {
        let cost = self.device.cost().clone();
        self.charge(cost.ext4_dirent_ns);
        let entry = dir::encode_entry(ino, name);
        let offset = parent_inode.size;
        self.allocate_range(parent_inode, offset, entry.len() as u64)?;
        self.write_blocks(parent_inode, offset, &entry, TimeCategory::Metadata)?;
        parent_inode.size = offset + entry.len() as u64;
        dir.entries.insert(
            name.to_string(),
            DirSlot {
                ino,
                entry_offset: offset,
                entry_len: entry.len(),
            },
        );
        Ok(())
    }

    /// Overwrites a directory entry with a tombstone and bumps the
    /// parent's invalidation generation (every destructive entry change —
    /// unlink, rename, rmdir — funnels through here).  Called with the
    /// parent's namespace-shard write guard and the parent inode's shard
    /// lock held.
    fn dir_remove_entry(
        &self,
        dir: &mut DirState,
        parent_inode: &Inode,
        name: &str,
    ) -> FsResult<DirSlot> {
        let cost = self.device.cost().clone();
        self.charge(cost.ext4_dirent_ns);
        let slot = dir.entries.remove(name).ok_or(FsError::NotFound)?;
        dir.gen += 1;
        self.device.stats().add_path_cache_invalidation();
        if slot.entry_offset != u64::MAX {
            let tomb = dir::encode_tombstone(slot.entry_len - 10);
            self.write_blocks(
                parent_inode,
                slot.entry_offset,
                &tomb,
                TimeCategory::Metadata,
            )?;
        }
        Ok(slot)
    }

    /// Writes `data` into the file's already-allocated blocks starting at
    /// byte `offset`, charging the given traffic category.
    fn write_blocks(
        &self,
        inode: &Inode,
        offset: u64,
        data: &[u8],
        cat: TimeCategory,
    ) -> FsResult<()> {
        let mut pos = 0usize;
        while pos < data.len() {
            let file_off = offset + pos as u64;
            let block = file_off / BLOCK_SIZE as u64;
            let within = (file_off % BLOCK_SIZE as u64) as usize;
            let chunk = (BLOCK_SIZE - within).min(data.len() - pos);
            let (phys, _) = inode
                .extents
                .lookup(block)
                .ok_or_else(|| FsError::Io("write to unallocated block".into()))?;
            self.device.write(
                phys * BLOCK_SIZE as u64 + within as u64,
                &data[pos..pos + chunk],
                PersistMode::NonTemporal,
                cat,
            );
            pos += chunk;
        }
        Ok(())
    }

    fn read_blocks(
        &self,
        inode: &Inode,
        offset: u64,
        buf: &mut [u8],
        pattern: AccessPattern,
        cat: TimeCategory,
    ) -> FsResult<()> {
        let cost = self.device.cost().clone();
        let mut pos = 0usize;
        let mut first = true;
        while pos < buf.len() {
            let file_off = offset + pos as u64;
            let block = file_off / BLOCK_SIZE as u64;
            let within = (file_off % BLOCK_SIZE as u64) as usize;
            let chunk = (BLOCK_SIZE - within).min(buf.len() - pos);
            self.charge(cost.ext4_extent_lookup_ns);
            match inode.extents.lookup(block) {
                Some((phys, _)) => {
                    let p = if first {
                        pattern
                    } else {
                        AccessPattern::Sequential
                    };
                    self.device.try_read(
                        phys * BLOCK_SIZE as u64 + within as u64,
                        &mut buf[pos..pos + chunk],
                        p,
                        cat,
                    )?;
                }
                None => match self.segments.lookup(inode.ino, block) {
                    // Demoted segment: staged bounce-read from the
                    // capacity tier at block-granular cost.
                    Some((cap_block, _)) => self.tier.cap_read(
                        self.sb.cap_block_offset(cap_block) + within as u64,
                        &mut buf[pos..pos + chunk],
                        cat,
                    ),
                    // True hole: reads as zeroes.
                    None => buf[pos..pos + chunk].fill(0),
                },
            }
            first = false;
            pos += chunk;
        }
        Ok(())
    }

    /// Detaches every block of `inode` — PM extents, overflow blocks and
    /// any capacity-tier segments — returning the journal records
    /// describing the frees plus the PM runs to release **after** those
    /// records commit.  Callers whose file may be demoted must call
    /// [`SegmentTable::persist_if_dirty`] under the same transaction
    /// guard (the purge may have removed segment records).
    fn free_inode_blocks(&self, inode: &mut Inode) -> (Vec<JournalRecord>, Vec<BlockRun>) {
        let mut records = Vec::new();
        let mut runs = Vec::new();
        let freed = inode.extents.truncate_from(0);
        let overflow: Vec<u64> = inode.overflow_blocks.drain(..).collect();
        for run in freed {
            records.push(JournalRecord::FreeBlocks {
                start: run.start,
                len: run.len,
            });
            runs.push(run);
        }
        for b in overflow {
            records.push(JournalRecord::FreeBlocks { start: b, len: 1 });
            runs.push(BlockRun { start: b, len: 1 });
        }
        for seg in self.segments.take_ino(inode.ino) {
            records.push(JournalRecord::SegmentMap {
                ino: seg.ino,
                logical: seg.logical,
                len: seg.len,
                cap_block: seg.cap_block,
                demote: false,
            });
        }
        (records, runs)
    }

    /// Writes a gather list at `offset` with the inode's shard lock held:
    /// one allocation pass over the whole range, one data write per slice,
    /// one `SetSize` journal commit when extending, and one inode persist —
    /// the per-operation costs are paid once regardless of how many slices
    /// the caller assembled the write from.
    fn writev_locked(&self, inode: &mut Inode, offset: u64, iov: &[IoVec<'_>]) -> FsResult<usize> {
        let cost = self.device.cost().clone();
        let total = iov_total_len(iov);
        if total == 0 {
            return Ok(0);
        }
        self.ensure_resident(inode)?;
        self.allocate_range(inode, offset, total)?;
        let mut cur = offset;
        for v in iov {
            if v.is_empty() {
                continue;
            }
            self.write_blocks(inode, cur, v.as_slice(), TimeCategory::UserData)?;
            cur += v.len() as u64;
        }
        self.charge(cost.ext4_inode_update_ns);
        let new_end = offset + total;
        if new_end > inode.size {
            let (_tid, txn) = self.journal.commit(
                inode.ino,
                &[JournalRecord::SetSize {
                    ino: inode.ino,
                    size: new_end,
                }],
            )?;
            inode.size = new_end;
            self.write_inode(inode);
            drop(txn);
        } else {
            self.write_inode(inode);
        }
        Ok(total as usize)
    }

    /// Shared entry path for the vectored writes: one trap, permission
    /// check, then [`Ext4Dax::writev_locked`] at either the given offset or
    /// (for appends) the end of file **resolved under the same shard
    /// lock**, so concurrent appenders to one file serialize instead of
    /// racing a stale `fstat` — while appenders to different files proceed
    /// on their own shards in parallel.
    fn vectored_write(&self, fd: Fd, at: Option<u64>, iov: &[IoVec<'_>]) -> FsResult<usize> {
        self.charge_syscall();
        let file = self.lookup_fd(fd)?;
        if !file.flags.write {
            return Err(FsError::PermissionDenied);
        }
        let mut shard = self.lock_inode_write(file.ino);
        let inode = shard.get_mut(&file.ino).ok_or(FsError::BadFd)?;
        let offset = match at {
            Some(offset) => offset,
            None => inode.size,
        };
        self.writev_locked(inode, offset, iov)
    }

    // ------------------------------------------------------------------
    // SplitFS-specific entry points
    // ------------------------------------------------------------------

    /// Pre-allocates blocks covering `[offset, offset+len)` without changing
    /// the file size (the `fallocate(KEEP_SIZE)` equivalent SplitFS uses for
    /// staging files).
    pub fn fallocate(&self, fd: Fd, offset: u64, len: u64) -> FsResult<()> {
        self.charge_syscall();
        let file = self.lookup_fd(fd)?;
        let mut shard = self.lock_inode_write(file.ino);
        let inode = shard.get_mut(&file.ino).ok_or(FsError::BadFd)?;
        self.ensure_resident(inode)?;
        self.allocate_range(inode, offset, len)?;
        self.write_inode(inode);
        Ok(())
    }

    /// Establishes a DAX mapping over `[offset, offset+len)` of the file.
    ///
    /// All blocks in the range must be allocated (SplitFS guarantees this by
    /// pre-allocating staging files and only mapping written regions).  With
    /// `populate`, page faults for the whole range are taken up front
    /// (`MAP_POPULATE`), using a 2 MiB huge-page fault per aligned,
    /// physically contiguous 2 MiB chunk and 4 KiB faults elsewhere.
    pub fn dax_map(&self, fd: Fd, offset: u64, len: u64, populate: bool) -> FsResult<DaxMapping> {
        self.charge_syscall();
        let cost = self.device.cost().clone();
        self.charge(cost.mmap_setup_ns);
        let file = self.lookup_fd(fd)?;
        // A DAX mapping is a declaration of PM-speed access intent:
        // promote a demoted file before exposing extents to load/store.
        if self.segments.has(file.ino) {
            let mut shard = self.lock_inode_write(file.ino);
            let inode = shard.get_mut(&file.ino).ok_or(FsError::BadFd)?;
            self.promote_locked(inode)?;
        }
        let shard = self.lock_inode_read(file.ino);
        let inode = shard.get(&file.ino).ok_or(FsError::BadFd)?;

        let first_block = offset / BLOCK_SIZE as u64;
        let block_count = len.div_ceil(BLOCK_SIZE as u64);
        let extents = inode
            .extents
            .extract_range(first_block, block_count)
            .map_err(|_| FsError::InvalidArgument)?;
        let mut segments = Vec::with_capacity(extents.len());
        for ext in &extents {
            segments.push(MapSegment {
                file_offset: ext.logical * BLOCK_SIZE as u64,
                device_offset: ext.phys * BLOCK_SIZE as u64,
                len: ext.len * BLOCK_SIZE as u64,
            });
        }
        // Clamp the first/last segment to the requested byte range.
        if let Some(first) = segments.first_mut() {
            let skip = offset - first.file_offset;
            first.file_offset += skip;
            first.device_offset += skip;
            first.len -= skip;
        }
        let end = offset + len;
        if let Some(last) = segments.last_mut() {
            let seg_end = last.file_offset + last.len;
            if seg_end > end {
                last.len -= seg_end - end;
            }
        }

        let mut huge = false;
        if populate {
            // Fault accounting.
            let mut remaining = len;
            let mut fault_4k = 0u64;
            let mut fault_2m = 0u64;
            for seg in &segments {
                let virt_aligned = seg.file_offset % PAGE_2M as u64 == 0;
                let phys_aligned = seg.device_offset % PAGE_2M as u64 == 0;
                let mut seg_rem = seg.len.min(remaining);
                if virt_aligned && phys_aligned {
                    let huge_pages = seg_rem / PAGE_2M as u64;
                    fault_2m += huge_pages;
                    seg_rem -= huge_pages * PAGE_2M as u64;
                    if huge_pages > 0 {
                        huge = true;
                    }
                }
                fault_4k += seg_rem.div_ceil(BLOCK_SIZE as u64);
                remaining = remaining.saturating_sub(seg.len);
            }
            self.charge(fault_4k as f64 * cost.page_fault_4k_ns);
            self.charge(fault_2m as f64 * cost.page_fault_2m_ns);
            self.device.stats().add_page_faults(fault_4k);
            self.device.stats().add_huge_page_faults(fault_2m);
        }

        Ok(DaxMapping {
            ino: file.ino,
            file_offset: offset,
            len,
            segments,
            huge,
        })
    }

    /// The relink ioctl (patched `EXT4_IOC_MOVE_EXT`).
    ///
    /// Atomically moves the blocks backing `[src_offset, src_offset+len)` of
    /// `src_fd` so that they back `[dst_offset, dst_offset+len)` of
    /// `dst_fd`, without copying data.  See [`Ext4Dax::ioctl_relink_batch`]
    /// for the constraints; this is the single-op convenience form.
    pub fn ioctl_relink(
        &self,
        src_fd: Fd,
        src_offset: u64,
        dst_fd: Fd,
        dst_offset: u64,
        len: u64,
    ) -> FsResult<()> {
        self.ioctl_relink_batch(&[RelinkOp {
            src_fd,
            src_offset,
            dst_fd,
            dst_offset,
            len,
        }])
        .map(|_| ())
    }

    /// The batched relink ioctl: applies every op in `ops` as **one**
    /// journal transaction.
    ///
    /// Semantically each op is an [`Ext4Dax::ioctl_relink`], but the whole
    /// batch commits atomically: after a crash either every move in the
    /// batch is visible or none is, and the jbd2-style transaction cost is
    /// paid once instead of once per op.  SplitFS's `fsync` path submits
    /// all of a file's coalesced staged extents through this entry point,
    /// and the background maintenance daemon uses it to retire many files'
    /// staged data in a single transaction.
    ///
    /// Only the inode shards of the files named by the batch are locked, so
    /// concurrent batches on disjoint files run in parallel.
    ///
    /// Constraints, checked up front before any state changes:
    ///
    /// * every op's offsets and length are block-aligned,
    /// * `src != dst` within an op, and every source range is fully mapped,
    /// * ops must not consume another op's output (a batch never relinks
    ///   out of a range that an earlier op of the same batch wrote).
    ///
    /// Zero-length ops are permitted and skipped.  Returns the number of
    /// ops applied.
    pub fn ioctl_relink_batch(&self, ops: &[RelinkOp]) -> FsResult<usize> {
        // Validate alignment before taking any lock.
        for op in ops {
            if !op.src_offset.is_multiple_of(BLOCK_SIZE as u64)
                || !op.dst_offset.is_multiple_of(BLOCK_SIZE as u64)
                || !op.len.is_multiple_of(BLOCK_SIZE as u64)
            {
                return Err(FsError::InvalidArgument);
            }
        }
        let ops: Vec<&RelinkOp> = ops.iter().filter(|op| op.len > 0).collect();
        if ops.is_empty() {
            return Ok(0);
        }
        // One kernel trap for the whole batch.
        self.charge_syscall();
        let cost = self.device.cost().clone();
        let shards = self.inodes.len();

        // Resolve descriptors, then lock every involved shard in order.
        let mut resolved: Vec<(u64, u64, &RelinkOp)> = Vec::with_capacity(ops.len());
        let mut inos: Vec<u64> = Vec::with_capacity(ops.len() * 2);
        for op in &ops {
            let src = self.lookup_fd(op.src_fd)?;
            let dst = self.lookup_fd(op.dst_fd)?;
            if src.ino == dst.ino {
                return Err(FsError::InvalidArgument);
            }
            inos.push(src.ino);
            inos.push(dst.ino);
            resolved.push((src.ino, dst.ino, op));
        }
        let mut set = self.lock_inodes_write(&inos);

        // Demoted files come back to PM before their extents move: relink
        // rewrites block mappings, which must never operate on a file
        // whose data is split across tiers.
        if self.segments.any_records() {
            let mut unique = inos.clone();
            unique.sort_unstable();
            unique.dedup();
            for ino in unique {
                if self.segments.has(ino) {
                    let inode = set.inode_mut(shards, ino)?;
                    self.promote_locked(inode)?;
                }
            }
        }

        // Upfront validation pass: all inodes resolve and all source ranges
        // are fully mapped.  Nothing is mutated until every op has passed,
        // so a bad batch leaves the file system untouched.
        let mut ranges: Vec<(u64, u64, u64)> = Vec::with_capacity(resolved.len() * 2);
        for &(src_ino, dst_ino, op) in &resolved {
            let src_inode = set.inode(shards, src_ino)?;
            src_inode.extents.extract_range(
                op.src_offset / BLOCK_SIZE as u64,
                op.len / BLOCK_SIZE as u64,
            )?;
            set.inode(shards, dst_ino)?;
            ranges.push((src_ino, op.src_offset, op.len));
            ranges.push((dst_ino, op.dst_offset, op.len));
        }
        // The initial-state validation above is only sound if no op
        // consumes another op's input or output: reject any overlapping
        // ranges within one file across the batch, so a mid-apply failure
        // (which would leave volatile state diverged from the journal) is
        // impossible by construction.
        for (i, &(ino_a, off_a, len_a)) in ranges.iter().enumerate() {
            for &(ino_b, off_b, len_b) in &ranges[i + 1..] {
                if ino_a == ino_b && off_a < off_b + len_b && off_b < off_a + len_a {
                    return Err(FsError::InvalidArgument);
                }
            }
        }

        let mut records: Vec<JournalRecord> = Vec::with_capacity(resolved.len() * 2 + 2);
        let mut freed_all: Vec<BlockRun> = Vec::new();
        let mut touched: Vec<u64> = Vec::new();

        for &(src_ino, dst_ino, op) in &resolved {
            let src_block = op.src_offset / BLOCK_SIZE as u64;
            let dst_block = op.dst_offset / BLOCK_SIZE as u64;
            let count = op.len / BLOCK_SIZE as u64;

            self.charge(cost.ext4_extent_lookup_ns * 2.0);

            // The source range was validated as fully mapped above.
            let moved = set
                .inode(shards, src_ino)?
                .extents
                .extract_range(src_block, count)?;

            // Unmap the destination range; replaced blocks are freed only
            // after the batch's journal records commit.
            let freed = set
                .inode_mut(shards, dst_ino)?
                .extents
                .remove_range(dst_block, count);

            // Move the source mappings into the destination.
            let mut dst_extents_record = Vec::new();
            {
                let dst_inode = set.inode_mut(shards, dst_ino)?;
                for ext in &moved {
                    let logical = dst_block + (ext.logical - src_block);
                    dst_inode.extents.insert(Extent {
                        logical,
                        phys: ext.phys,
                        len: ext.len,
                    });
                    dst_extents_record.push((logical, ext.phys, ext.len));
                }
            }
            // Unmap the source range (the blocks now belong to the
            // destination).
            set.inode_mut(shards, src_ino)?
                .extents
                .remove_range(src_block, count);

            records.push(JournalRecord::SetRangeMapping {
                ino: dst_ino,
                logical: dst_block,
                count,
                extents: dst_extents_record,
            });
            records.push(JournalRecord::SetRangeMapping {
                ino: src_ino,
                logical: src_block,
                count,
                extents: Vec::new(),
            });
            for run in &freed {
                records.push(JournalRecord::FreeBlocks {
                    start: run.start,
                    len: run.len,
                });
            }
            freed_all.extend(freed);

            // Grow the destination size for the append case.
            let new_end = op.dst_offset + op.len;
            {
                let dst_inode = set.inode_mut(shards, dst_ino)?;
                if new_end > dst_inode.size {
                    dst_inode.size = new_end;
                    records.push(JournalRecord::SetSize {
                        ino: dst_ino,
                        size: new_end,
                    });
                }
            }
            touched.push(src_ino);
            touched.push(dst_ino);
        }

        // Journal every move of the batch as one transaction.
        let hint = resolved.first().map(|&(_, dst, _)| dst).unwrap_or(0);
        let (_tid, txn) = self.journal.commit(hint, &records)?;

        // In-place metadata updates, once per touched inode.
        touched.sort_unstable();
        touched.dedup();
        for ino in touched {
            let inode = set.inode_mut(shards, ino)?;
            self.write_inode(inode);
        }
        self.release_runs(&freed_all);
        drop(txn);
        self.device.stats().add_batched_relink(ops.len() as u64);
        obs::event(obs::SpanEvent::RelinkBatch);
        Ok(ops.len())
    }

    // ------------------------------------------------------------------
    // Tiered capacity: segment demotion / promotion (see `segment.rs`)
    // ------------------------------------------------------------------

    /// Moves every extent of `inode` to the capacity tier, freeing its PM
    /// blocks.  Each extent becomes an independently placed segment, but
    /// one journal transaction covers the whole file, so a crash lands
    /// either fully before the commit (PM extents authoritative, the
    /// capacity copies unreferenced garbage) or fully after it (segment
    /// records authoritative).  The capacity copies ride the commit fence
    /// into durability — data durable no later than the metadata that
    /// references it.  Called with the inode's shard write lock held;
    /// returns the bytes moved (0 for an empty or already-demoted file).
    fn demote_locked(&self, inode: &mut Inode) -> FsResult<u64> {
        if !self.sb.is_tiered() {
            return Err(FsError::NotSupported);
        }
        let extents: Vec<Extent> = inode.extents.iter().collect();
        if extents.is_empty() {
            return Ok(0);
        }
        let cost = self.device.cost().clone();
        let mut records = Vec::new();
        let mut seg_recs = Vec::new();
        let mut runs = Vec::new();
        let mut bytes = 0u64;
        let staged = (|| -> FsResult<()> {
            for ext in &extents {
                self.charge(cost.ext4_alloc_ns);
                let cap = self.segments.alloc_cap(ext.len)?;
                let mut buf = vec![0u8; (ext.len as usize) * BLOCK_SIZE];
                self.device.try_read(
                    ext.phys * BLOCK_SIZE as u64,
                    &mut buf,
                    AccessPattern::Sequential,
                    TimeCategory::Metadata,
                )?;
                self.tier
                    .cap_write(self.sb.cap_block_offset(cap), &buf, TimeCategory::Metadata);
                records.push(JournalRecord::SegmentMap {
                    ino: inode.ino,
                    logical: ext.logical,
                    len: ext.len,
                    cap_block: cap,
                    demote: true,
                });
                records.push(JournalRecord::FreeBlocks {
                    start: ext.phys,
                    len: ext.len,
                });
                seg_recs.push(SegmentRecord {
                    ino: inode.ino,
                    logical: ext.logical,
                    len: ext.len,
                    cap_block: cap,
                });
                runs.push(BlockRun {
                    start: ext.phys,
                    len: ext.len,
                });
                bytes += ext.len * BLOCK_SIZE as u64;
            }
            records.push(JournalRecord::TruncateExtents {
                ino: inode.ino,
                from_logical: 0,
            });
            Ok(())
        })();
        if let Err(e) = staged {
            // Nothing journaled or published: return the staged capacity
            // blocks (their contents are unreferenced garbage).
            for rec in &seg_recs {
                self.segments.free_cap(rec.cap_block, rec.len);
            }
            return Err(e);
        }
        let (_tid, txn) = self.journal.commit(inode.ino, &records)?;
        inode.extents.truncate_from(0);
        for rec in seg_recs {
            self.segments.insert(rec);
        }
        self.segments.persist_if_dirty()?;
        self.write_inode(inode);
        self.release_runs(&runs);
        drop(txn);
        self.device.stats().add_tier_demotion(bytes);
        obs::event(obs::SpanEvent::TierDemote);
        Ok(bytes)
    }

    /// Moves every capacity-tier segment of `inode` back into freshly
    /// allocated PM extents.  The mirror image of
    /// [`Ext4Dax::demote_locked`]: one transaction for the whole file,
    /// the PM copies durable at the commit fence, the capacity blocks
    /// freed only after the commit publishes the removals.  Called with
    /// the inode's shard write lock held; returns the bytes moved.
    fn promote_locked(&self, inode: &mut Inode) -> FsResult<u64> {
        let segs = self.segments.records_for(inode.ino);
        if segs.is_empty() {
            return Ok(0);
        }
        let cost = self.device.cost().clone();
        let mut records = Vec::new();
        let mut all_runs: Vec<BlockRun> = Vec::new();
        let mut inserts: Vec<Extent> = Vec::new();
        let mut bytes = 0u64;
        let staged = (|| -> FsResult<()> {
            for seg in &segs {
                self.charge(cost.ext4_alloc_ns);
                let seg_runs = self.alloc.alloc_extents(inode.ino, seg.len)?;
                let mut l = seg.logical;
                let mut cap_byte = self.sb.cap_block_offset(seg.cap_block);
                for run in seg_runs {
                    let mut buf = vec![0u8; (run.len as usize) * BLOCK_SIZE];
                    self.tier
                        .cap_read(cap_byte, &mut buf, TimeCategory::Metadata);
                    self.device.write(
                        run.start * BLOCK_SIZE as u64,
                        &buf,
                        PersistMode::NonTemporal,
                        TimeCategory::Metadata,
                    );
                    records.push(JournalRecord::AllocBlocks {
                        start: run.start,
                        len: run.len,
                    });
                    records.push(JournalRecord::AddExtent {
                        ino: inode.ino,
                        logical: l,
                        phys: run.start,
                        len: run.len,
                    });
                    inserts.push(Extent {
                        logical: l,
                        phys: run.start,
                        len: run.len,
                    });
                    l += run.len;
                    cap_byte += run.len * BLOCK_SIZE as u64;
                    bytes += run.len * BLOCK_SIZE as u64;
                    all_runs.push(run);
                }
                records.push(JournalRecord::SegmentMap {
                    ino: seg.ino,
                    logical: seg.logical,
                    len: seg.len,
                    cap_block: seg.cap_block,
                    demote: false,
                });
            }
            Ok(())
        })();
        let txn = match staged.and_then(|()| self.journal.commit(inode.ino, &records)) {
            Ok((_tid, txn)) => txn,
            Err(e) => {
                // Nothing journaled: hand the staged PM blocks back.
                for run in &all_runs {
                    self.alloc.mark_free(run.start, run.len);
                }
                return Err(e);
            }
        };
        for ext in inserts {
            inode.extents.insert(ext);
        }
        for seg in &segs {
            self.segments.remove(seg.ino, seg.logical);
        }
        self.segments.persist_if_dirty()?;
        self.write_inode(inode);
        self.alloc.persist_runs(&self.device, &self.sb, &all_runs);
        drop(txn);
        self.device.stats().add_tier_promotion(bytes);
        obs::event(obs::SpanEvent::TierPromote);
        Ok(bytes)
    }

    /// Promotes `inode` back to PM if any of it lives on the capacity
    /// tier.  Every mutating data path calls this first, preserving the
    /// whole-file tier invariant: writes never land on a file whose data
    /// is split across tiers.  Cheap when nothing is demoted anywhere
    /// (one relaxed atomic load).
    fn ensure_resident(&self, inode: &mut Inode) -> FsResult<()> {
        if self.segments.has(inode.ino) {
            self.promote_locked(inode)?;
        }
        Ok(())
    }

    /// Demotes the whole file behind `fd` to the capacity tier (the
    /// policy entry point U-Split's maintenance daemon drives for
    /// long-idle relinked files).  Returns the bytes moved; directories
    /// are rejected and flat devices report [`FsError::NotSupported`].
    pub fn ioctl_demote(&self, fd: Fd) -> FsResult<u64> {
        self.charge_syscall();
        let file = self.lookup_fd(fd)?;
        let mut shard = self.lock_inode_write(file.ino);
        let inode = shard.get_mut(&file.ino).ok_or(FsError::BadFd)?;
        if inode.is_dir() {
            return Err(FsError::IsADirectory);
        }
        self.demote_locked(inode)
    }

    /// Promotes the whole file behind `fd` back to PM (heat promotion).
    /// Returns the bytes moved (0 when already resident).
    pub fn ioctl_promote(&self, fd: Fd) -> FsResult<u64> {
        self.charge_syscall();
        let file = self.lookup_fd(fd)?;
        let mut shard = self.lock_inode_write(file.ino);
        let inode = shard.get_mut(&file.ino).ok_or(FsError::BadFd)?;
        self.promote_locked(inode)
    }

    /// Whether the file behind `fd` currently lives on the capacity tier.
    pub fn is_demoted(&self, fd: Fd) -> FsResult<bool> {
        Ok(self.segments.has(self.lookup_fd(fd)?.ino))
    }

    /// Whether the mounted layout has a capacity tier.
    pub fn is_tiered(&self) -> bool {
        self.sb.is_tiered()
    }

    /// Fraction of PM data blocks in use — the input to the daemon's
    /// adaptive demotion watermark.
    pub fn pm_utilization(&self) -> f64 {
        let data = self.sb.data_blocks();
        if data == 0 {
            return 0.0;
        }
        1.0 - self.alloc.free_blocks() as f64 / data as f64
    }

    /// `(used, total)` capacity-tier data blocks.
    pub fn cap_usage(&self) -> (u64, u64) {
        (self.segments.used_blocks(), self.segments.cap_data_blocks())
    }

    /// Returns the number of free data blocks (used by tests and by the
    /// resource-consumption experiment).
    pub fn free_blocks(&self) -> u64 {
        self.alloc.free_blocks()
    }

    /// Whole-tree namespace consistency check (an in-memory fsck), used by
    /// the concurrent-metadata stress tests and the `metaload` workload's
    /// verify phase.  Takes every namespace shard (read, ascending) and
    /// then every inode shard (read, ascending) — the same order as rule 1
    /// — so it can run concurrently with foreground metadata traffic and
    /// still observe an atomic snapshot.  Returns one human-readable
    /// string per violation; an empty vector means the tree is consistent.
    pub fn check_namespace(&self) -> Vec<String> {
        let ns_guards: Vec<RwLockReadGuard<'_, NsShard>> = self
            .ns
            .iter()
            .map(|s| self.ns_lock_contended(|| s.try_read(), || s.read()))
            .collect();
        let inode_guards: Vec<RwLockReadGuard<'_, InodeShard>> = self
            .inodes
            .iter()
            .map(|s| self.device.lock_contended(|| s.try_read(), || s.read()))
            .collect();
        let ishards = inode_guards.len();
        let nshards = ns_guards.len();
        let mut violations = Vec::new();

        // Pass 1: every directory state belongs to a directory inode, every
        // entry points at a live inode; count how often each ino is linked.
        let mut refcount: HashMap<u64, u64> = HashMap::new();
        for g in &ns_guards {
            for (&dir_ino, dir) in &g.dirs {
                match inode_guards[inode_shard_of(dir_ino, ishards)].get(&dir_ino) {
                    None => {
                        violations.push(format!("dir {dir_ino}: directory state without an inode"))
                    }
                    Some(inode) if !inode.is_dir() => violations.push(format!(
                        "dir {dir_ino}: directory state but inode kind is not a directory"
                    )),
                    Some(_) => {}
                }
                for (name, slot) in &dir.entries {
                    if inode_guards[inode_shard_of(slot.ino, ishards)]
                        .get(&slot.ino)
                        .is_none()
                    {
                        violations.push(format!(
                            "dir {dir_ino}: entry {name:?} points at missing inode {}",
                            slot.ino
                        ));
                    }
                    *refcount.entry(slot.ino).or_insert(0) += 1;
                }
            }
        }

        // Pass 2: link-count discipline.  Every live inode except the root
        // is referenced exactly once (no hard links in this model), except
        // unlinked-while-open orphans, which must not be referenced at all;
        // directory inodes must have directory state and files must not.
        for g in &inode_guards {
            for (&ino, inode) in g.iter() {
                let refs = refcount.get(&ino).copied().unwrap_or(0);
                let ns = &ns_guards[ino as usize % nshards];
                let orphaned = ns.orphans.contains_key(&ino);
                let has_dir_state = ns.dirs.contains_key(&ino);
                if inode.is_dir() != has_dir_state {
                    violations.push(format!(
                        "ino {ino}: inode is_dir={} but directory state present={}",
                        inode.is_dir(),
                        has_dir_state
                    ));
                }
                if ino == ROOT_INO {
                    continue;
                }
                if orphaned && refs != 0 {
                    violations.push(format!(
                        "ino {ino}: orphaned (unlinked while open) but still linked {refs}x"
                    ));
                } else if !orphaned && refs != 1 {
                    violations.push(format!("ino {ino}: linked {refs}x (expected exactly 1)"));
                }
            }
        }

        // Pass 3: tier exclusivity.  Every capacity-tier segment belongs
        // to a live file inode, lies within the file, stays inside the
        // capacity tier, and no logical block is mapped on both tiers —
        // a crash anywhere inside a migration must leave each segment
        // wholly on exactly one tier.
        for rec in self.segments.all_records() {
            if rec.cap_block + rec.len > self.segments.cap_data_blocks() {
                violations.push(format!(
                    "segment ino {} logical {}: capacity placement {}+{} outside the tier",
                    rec.ino, rec.logical, rec.cap_block, rec.len
                ));
            }
            match inode_guards[inode_shard_of(rec.ino, ishards)].get(&rec.ino) {
                None => violations.push(format!(
                    "segment ino {} logical {}: record without a live inode",
                    rec.ino, rec.logical
                )),
                Some(inode) => {
                    if inode.is_dir() {
                        violations.push(format!(
                            "segment ino {}: directories cannot be demoted",
                            rec.ino
                        ));
                    }
                    if rec.logical * BLOCK_SIZE as u64 >= inode.size {
                        violations.push(format!(
                            "segment ino {} logical {}: starts past EOF ({} B)",
                            rec.ino, rec.logical, inode.size
                        ));
                    }
                    for lb in rec.logical..rec.logical + rec.len {
                        if inode.extents.lookup(lb).is_some() {
                            violations.push(format!(
                                "ino {} block {lb}: mapped on both PM and capacity tiers",
                                rec.ino
                            ));
                            break;
                        }
                    }
                }
            }
        }
        violations
    }

    /// Opens an existing inode by number, bypassing path resolution.  This
    /// models opening through the inode cache / a file handle; SplitFS's
    /// crash recovery uses it because operation-log entries reference files
    /// by inode number, not by path.
    pub fn open_by_ino(&self, ino: u64, flags: OpenFlags) -> FsResult<Fd> {
        self.charge_syscall();
        {
            let shard = self.lock_inode_read(ino);
            if !shard.contains_key(&ino) {
                return Err(FsError::NotFound);
            }
        }
        *self
            .lock_ns_shard_write(ino)
            .open_counts
            .entry(ino)
            .or_insert(0) += 1;
        Ok(self.insert_fd(ino, flags))
    }

    /// Returns the inode number behind an open descriptor.
    pub fn fd_ino(&self, fd: Fd) -> FsResult<u64> {
        Ok(self.lookup_fd(fd)?.ino)
    }

    /// Returns `true` when every block of `[offset, offset+len)` is mapped
    /// (allocated) in the file.  SplitFS recovery uses this as the
    /// idempotency test for replaying a staged append: once the relink has
    /// moved the blocks out of the staging file the range is a hole and the
    /// log entry must be skipped.
    pub fn range_mapped(&self, fd: Fd, offset: u64, len: u64) -> FsResult<bool> {
        self.charge_syscall();
        let file = self.lookup_fd(fd)?;
        let shard = self.lock_inode_read(file.ino);
        let inode = shard.get(&file.ino).ok_or(FsError::BadFd)?;
        if len == 0 {
            return Ok(true);
        }
        let first = offset / BLOCK_SIZE as u64;
        let count = len.div_ceil(BLOCK_SIZE as u64);
        Ok(inode.extents.extract_range(first, count).is_ok())
    }

    // ------------------------------------------------------------------
    // Instance leases (multi-instance U-Split; see `lease.rs`)
    // ------------------------------------------------------------------

    /// Acquires a lease on the lowest free instance id, journaling the
    /// lease record and persisting the lease table.  The id maps onto the
    /// instance's exclusive staging directory and operation-log path
    /// ([`crate::lease::staging_dir`] / [`crate::lease::oplog_path`]).
    pub fn lease_acquire(&self) -> FsResult<u32> {
        self.charge_syscall();
        let id = self.leases.reserve().ok_or(FsError::NoSpace)?;
        if let Err(e) = self.commit_lease(id, true) {
            // Nothing was journaled or persisted: undo the in-memory
            // reservation so the id is not leaked (and in-memory state
            // keeps matching the device).
            self.leases.clear(id);
            return Err(e);
        }
        self.device.stats().add_lease_acquire();
        Ok(id)
    }

    /// Acquires a lease on a **specific** instance id.  Fails with
    /// [`FsError::AlreadyExists`] — and counts a lease conflict — when the
    /// id is held by a live instance or still active as an unrecovered
    /// orphan.
    pub fn lease_acquire_specific(&self, id: u32) -> FsResult<u32> {
        self.charge_syscall();
        if !self.leases.reserve_specific(id) {
            self.device.stats().add_lease_conflict();
            return Err(FsError::AlreadyExists);
        }
        if let Err(e) = self.commit_lease(id, true) {
            self.leases.clear(id);
            return Err(e);
        }
        self.device.stats().add_lease_acquire();
        Ok(id)
    }

    /// Releases an instance lease (clean shutdown, or recovery retiring an
    /// orphan), journaling the release and persisting the lease table.
    pub fn lease_release(&self, id: u32) -> FsResult<()> {
        self.charge_syscall();
        self.leases.clear(id);
        self.commit_lease(id, false)?;
        self.device.stats().add_lease_release();
        Ok(())
    }

    /// Abandons the in-process hold on a lease without releasing the
    /// persisted record — emulates the owning process crashing.  The
    /// lease becomes an orphan: [`Ext4Dax::lease_orphans`] reports it and
    /// recovery replays its operation log before the id is reused.
    pub fn lease_abandon(&self, id: u32) {
        self.leases.abandon(id);
    }

    /// Instance ids with an active lease but no live holder — crashed
    /// instances awaiting per-instance log recovery.
    pub fn lease_orphans(&self) -> Vec<u32> {
        self.leases.orphans()
    }

    /// Atomically claims an orphaned lease for recovery (see
    /// [`LeaseManager::claim_orphan`]); the claimer replays the orphan's
    /// operation log and then calls [`Ext4Dax::lease_release`].
    pub fn lease_claim_orphan(&self, id: u32) -> bool {
        self.leases.claim_orphan(id)
    }

    /// Whether `id`'s lease is active (held by a live instance or
    /// orphaned).
    pub fn lease_is_active(&self, id: u32) -> bool {
        self.leases.is_active(id)
    }

    /// Number of active instance leases.
    pub fn lease_active_count(&self) -> usize {
        self.leases.active_count()
    }

    /// Commits the lease record and updates the in-place lease table
    /// under the transaction guard (record → fence → in-place update,
    /// like every other metadata mutation).
    fn commit_lease(&self, instance_id: u32, acquire: bool) -> FsResult<()> {
        let (_tid, txn) = self.journal.commit(
            u64::from(instance_id),
            &[JournalRecord::Lease {
                instance_id,
                acquire,
            }],
        )?;
        self.leases.persist();
        drop(txn);
        // Journaled and persisted: recovery must now honor this lease
        // state (active or orphaned if acquired; gone if released).
        self.device.declare(pmem::Promise::LeaseJournaled {
            instance: instance_id,
            acquired: acquire,
        });
        Ok(())
    }
}

impl FileSystem for Ext4Dax {
    fn name(&self) -> String {
        "ext4-DAX".to_string()
    }

    fn consistency(&self) -> ConsistencyClass {
        ConsistencyClass::Posix
    }

    fn device(&self) -> &Arc<PmemDevice> {
        &self.device
    }

    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        self.charge_syscall();
        let cost = self.device.cost().clone();
        let norm = vpath::normalize(path)?;
        let shards = self.ns.len();
        let ino = loop {
            let move_gen = self.path_cache.move_gen();
            let (parent, name, existing) = self.resolve_norm(&norm)?;
            match existing {
                Some(ino) => {
                    if flags.exclusive && flags.create {
                        return Err(FsError::AlreadyExists);
                    }
                    let mut g = self.lock_ns_write(&[parent, ino]);
                    if self.path_cache.move_gen() != move_gen
                        || g.dir(shards, parent)?.entries.get(&name).map(|s| s.ino) != Some(ino)
                    {
                        continue; // lost a race to a rename/unlink: re-resolve
                    }
                    let is_dir = g.shard_mut(shards, ino).dirs.contains_key(&ino);
                    if is_dir && (flags.write || flags.truncate) {
                        return Err(FsError::IsADirectory);
                    }
                    if flags.truncate {
                        let mut shard = self.lock_inode_write(ino);
                        let inode = shard.get_mut(&ino).ok_or(FsError::NotFound)?;
                        let mut records = vec![
                            JournalRecord::SetSize { ino, size: 0 },
                            JournalRecord::TruncateExtents {
                                ino,
                                from_logical: 0,
                            },
                        ];
                        let (free_records, runs) = self.free_inode_blocks(inode);
                        records.extend(free_records);
                        inode.size = 0;
                        let (_tid, txn) = self.journal.commit(ino, &records)?;
                        self.segments.persist_if_dirty()?;
                        self.write_inode(inode);
                        self.release_runs(&runs);
                        drop(txn);
                    }
                    *g.shard_mut(shards, ino).open_counts.entry(ino).or_insert(0) += 1;
                    break ino;
                }
                None => {
                    if !flags.create {
                        return Err(FsError::NotFound);
                    }
                    // Allocate the ino before locking so the ns guard set can
                    // cover its shard; a lost race leaks the number, which is
                    // harmless (inos are never reused anyway).
                    let ino = self.alloc_ino(parent, false)?;
                    let mut g = self.lock_ns_write(&[parent, ino]);
                    if self.path_cache.move_gen() != move_gen
                        || g.dir(shards, parent)?.entries.contains_key(&name)
                    {
                        continue;
                    }
                    self.charge(cost.ext4_inode_update_ns);
                    let (_tid, txn) = self.journal.commit(
                        ino,
                        &[JournalRecord::CreateInode {
                            ino,
                            parent,
                            name: name.clone(),
                            is_dir: false,
                        }],
                    )?;
                    let ishards = self.inodes.len();
                    let mut set = self.lock_inodes_write(&[ino, parent]);
                    set.map_for(inode_shard_of(ino, ishards))
                        .insert(ino, Inode::new(ino, InodeKind::File));
                    {
                        let parent_inode = set.inode_mut(ishards, parent)?;
                        let dir = g.dir_mut(shards, parent)?;
                        self.dir_append_entry(dir, parent_inode, &name, ino)?;
                    }
                    {
                        let inode = set.inode_mut(ishards, ino)?;
                        self.write_inode(inode);
                    }
                    {
                        let parent_inode = set.inode_mut(ishards, parent)?;
                        self.write_inode(parent_inode);
                    }
                    drop(txn);
                    // Exact-key positive overwrite (no generation bump):
                    // sibling cache entries stay live across create churn.
                    let parent_gen = g.dir(shards, parent)?.gen;
                    self.path_cache.insert(
                        &norm,
                        PathCacheEntry {
                            parent,
                            parent_gen,
                            move_gen,
                            ino: Some(ino),
                        },
                    );
                    *g.shard_mut(shards, ino).open_counts.entry(ino).or_insert(0) += 1;
                    break ino;
                }
            }
        };
        Ok(self.insert_fd(ino, flags))
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        self.charge_syscall();
        let file = {
            self.fds[self.fd_shard_idx(fd)]
                .write()
                .remove(&fd)
                .ok_or(FsError::BadFd)?
        };
        let mut ns = self.lock_ns_shard_write(file.ino);
        let count = ns.open_counts.entry(file.ino).or_insert(1);
        *count = count.saturating_sub(1);
        if *count == 0 {
            ns.open_counts.remove(&file.ino);
            if ns.orphans.remove(&file.ino).is_some() {
                // Last close of an unlinked file: release its storage.
                let mut shard = self.lock_inode_write(file.ino);
                if let Some(mut inode) = shard.remove(&file.ino) {
                    let (mut records, runs) = self.free_inode_blocks(&mut inode);
                    records.push(JournalRecord::Unlink {
                        parent: 0,
                        name: String::new(),
                        ino: file.ino,
                        free_inode: true,
                    });
                    let (_tid, txn) = self.journal.commit(file.ino, &records)?;
                    self.segments.persist_if_dirty()?;
                    self.zero_inode_record(file.ino);
                    self.release_runs(&runs);
                    drop(txn);
                }
            }
        }
        Ok(())
    }

    fn read_at(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.charge_syscall();
        let file = self.lookup_fd(fd)?;
        if !file.flags.read {
            return Err(FsError::PermissionDenied);
        }
        let n = {
            let shard = self.lock_inode_read(file.ino);
            let inode = shard.get(&file.ino).ok_or(FsError::BadFd)?;
            if offset >= inode.size || buf.is_empty() {
                return Ok(0);
            }
            let n = ((inode.size - offset) as usize).min(buf.len());
            let pattern = if offset == file.last_read_end {
                AccessPattern::Sequential
            } else {
                AccessPattern::Random
            };
            self.read_blocks(
                inode,
                offset,
                &mut buf[..n],
                pattern,
                TimeCategory::UserData,
            )?;
            n
        };
        self.update_fd(fd, |f| f.last_read_end = offset + n as u64);
        Ok(n)
    }

    fn write_at(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.vectored_write(fd, Some(offset), &[IoVec::new(data)])
    }

    fn writev_at(&self, fd: Fd, offset: u64, iov: &[IoVec<'_>]) -> FsResult<usize> {
        self.vectored_write(fd, Some(offset), iov)
    }

    fn appendv(&self, fd: Fd, iov: &[IoVec<'_>]) -> FsResult<usize> {
        let n = self.vectored_write(fd, None, iov)?;
        self.device.stats().add_appendv(iov.len() as u64);
        Ok(n)
    }

    fn read_view(&self, fd: Fd, offset: u64, len: usize) -> FsResult<ReadView<'_>> {
        self.charge_syscall();
        let cost = self.device.cost().clone();
        let file = self.lookup_fd(fd)?;
        if !file.flags.read {
            return Err(FsError::PermissionDenied);
        }
        let pattern = if offset == file.last_read_end {
            AccessPattern::Sequential
        } else {
            AccessPattern::Random
        };
        let shard = self.lock_inode_read(file.ino);
        let inode = shard.get(&file.ino).ok_or(FsError::BadFd)?;
        if offset >= inode.size || len == 0 {
            return Ok(ReadView::Owned(Vec::new()));
        }
        let n = ((inode.size - offset) as usize).min(len);
        // Zero-copy when one physical extent covers the whole range: the
        // bytes are served straight from the DAX-mapped blocks with no
        // memcpy, exactly what a load from the mapping would do.
        let block = offset / BLOCK_SIZE as u64;
        let within = offset % BLOCK_SIZE as u64;
        self.charge(cost.ext4_extent_lookup_ns);
        let direct = inode.extents.lookup(block).and_then(|(phys, contig)| {
            let contig_bytes = contig * BLOCK_SIZE as u64 - within;
            if contig_bytes >= n as u64 {
                Some(phys * BLOCK_SIZE as u64 + within)
            } else {
                None
            }
        });
        self.update_fd(fd, |f| f.last_read_end = offset + n as u64);
        if let Some(dev_off) = direct {
            if let Some(view) =
                self.device
                    .try_read_view(dev_off, n, pattern, TimeCategory::UserData)
            {
                return Ok(ReadView::Mapped(view));
            }
        }
        // Multi-extent range or hole: fall back to an owned copy.
        let mut buf = vec![0u8; n];
        self.read_blocks(inode, offset, &mut buf, pattern, TimeCategory::UserData)?;
        Ok(ReadView::Owned(buf))
    }

    fn fsync_many(&self, fds: &[Fd]) -> FsResult<()> {
        if fds.is_empty() {
            return Ok(());
        }
        // One trap and one forced jbd2 commit cover the whole set: the
        // running transaction holds every descriptor's metadata, so forcing
        // it once is exactly what `fsync`-ing them back to back would have
        // paid M times.
        self.charge_syscall();
        let cost = self.device.cost().clone();
        for &fd in fds {
            self.lookup_fd(fd)?;
        }
        self.device.fence(TimeCategory::UserData);
        self.charge(cost.ext4_journal_txn_ns + 8.0 * cost.ext4_journal_per_block_ns);
        self.device
            .charge_write_traffic(2 * BLOCK_SIZE, TimeCategory::Journal);
        self.device.fence(TimeCategory::Journal);
        self.device.stats().add_journal_txn();
        self.device.stats().add_fsync_many(fds.len() as u64);
        Ok(())
    }

    fn fdatasync(&self, fd: Fd) -> FsResult<()> {
        // Data writes were issued with non-temporal stores and metadata is
        // journaled at operation time, so data durability needs only the
        // trap and a fence — the jbd2 forcing that makes `fsync` expensive
        // (Table 6) is skipped.
        self.charge_syscall();
        self.lookup_fd(fd)?;
        self.device.fence(TimeCategory::UserData);
        Ok(())
    }

    fn read(&self, fd: Fd, buf: &mut [u8]) -> FsResult<usize> {
        let offset = self.lookup_fd(fd)?.offset;
        let n = self.read_at(fd, offset, buf)?;
        self.update_fd(fd, |f| f.offset = offset + n as u64);
        Ok(n)
    }

    fn write(&self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        let file = self.lookup_fd(fd)?;
        if file.flags.append {
            // O_APPEND: resolve the end of file under the shard lock, so
            // concurrent appenders never interleave.
            let n = self.vectored_write(fd, None, &[IoVec::new(data)])?;
            let size = {
                let shard = self.lock_inode_read(file.ino);
                shard.get(&file.ino).map(|i| i.size).unwrap_or(0)
            };
            self.update_fd(fd, |f| f.offset = size);
            return Ok(n);
        }
        let offset = file.offset;
        let n = self.write_at(fd, offset, data)?;
        self.update_fd(fd, |f| f.offset = offset + n as u64);
        Ok(n)
    }

    fn lseek(&self, fd: Fd, pos: SeekFrom) -> FsResult<u64> {
        self.charge_syscall();
        let file = self.lookup_fd(fd)?;
        let size = {
            let shard = self.lock_inode_read(file.ino);
            shard.get(&file.ino).ok_or(FsError::BadFd)?.size
        };
        let new = match pos {
            SeekFrom::Start(o) => o as i128,
            SeekFrom::Current(d) => file.offset as i128 + d as i128,
            SeekFrom::End(d) => size as i128 + d as i128,
        };
        if new < 0 {
            return Err(FsError::InvalidArgument);
        }
        let new = new as u64;
        self.update_fd(fd, |f| f.offset = new);
        Ok(new)
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        self.charge_syscall();
        let cost = self.device.cost().clone();
        self.lookup_fd(fd)?;
        // Data writes were issued with non-temporal stores; the fence pushes
        // anything still pending into the persistence domain.
        self.device.fence(TimeCategory::UserData);
        // fsync on ext4 also forces the running jbd2 transaction to commit:
        // the handle wait, commit record and metadata buffer flushes are
        // what make ext4 DAX fsync so much more expensive than SplitFS's
        // relink-based fsync (paper Table 6).
        self.charge(cost.ext4_journal_txn_ns + 8.0 * cost.ext4_journal_per_block_ns);
        self.device
            .charge_write_traffic(2 * BLOCK_SIZE, TimeCategory::Journal);
        self.device.fence(TimeCategory::Journal);
        self.device.stats().add_journal_txn();
        Ok(())
    }

    fn ftruncate(&self, fd: Fd, size: u64) -> FsResult<()> {
        self.charge_syscall();
        let cost = self.device.cost().clone();
        let file = self.lookup_fd(fd)?;
        let ino = file.ino;
        let mut shard = self.lock_inode_write(ino);
        let inode = shard.get_mut(&ino).ok_or(FsError::BadFd)?;
        self.ensure_resident(inode)?;
        let old_size = inode.size;
        self.charge(cost.ext4_inode_update_ns);
        if size < old_size {
            let from_block = size.div_ceil(BLOCK_SIZE as u64);
            inode.size = size;
            let freed = inode.extents.truncate_from(from_block);
            // POSIX: bytes between the new EOF and the end of its block must
            // read as zero if the file is later extended, so the partial
            // tail block is zeroed (as ext4 does on truncate).
            let within = size % BLOCK_SIZE as u64;
            if within != 0 {
                if let Some((phys, _)) = inode.extents.lookup(size / BLOCK_SIZE as u64) {
                    self.device.zero(
                        phys * BLOCK_SIZE as u64 + within,
                        (BLOCK_SIZE as u64 - within) as usize,
                        PersistMode::NonTemporal,
                        TimeCategory::Metadata,
                    );
                }
            }
            let mut records = vec![
                JournalRecord::SetSize { ino, size },
                JournalRecord::TruncateExtents {
                    ino,
                    from_logical: from_block,
                },
            ];
            for run in &freed {
                records.push(JournalRecord::FreeBlocks {
                    start: run.start,
                    len: run.len,
                });
            }
            let (_tid, txn) = self.journal.commit(ino, &records)?;
            self.write_inode(inode);
            self.release_runs(&freed);
            drop(txn);
        } else if size > old_size {
            // Eager allocation on extension; SplitFS relies on this to
            // pre-allocate staging files.
            self.allocate_range(inode, old_size, size - old_size)?;
            let (_tid, txn) = self
                .journal
                .commit(ino, &[JournalRecord::SetSize { ino, size }])?;
            inode.size = size;
            self.write_inode(inode);
            drop(txn);
        } else {
            self.write_inode(inode);
        }
        Ok(())
    }

    fn fstat(&self, fd: Fd) -> FsResult<FileStat> {
        self.charge_syscall();
        let file = self.lookup_fd(fd)?;
        let shard = self.lock_inode_read(file.ino);
        let inode = shard.get(&file.ino).ok_or(FsError::BadFd)?;
        Ok(FileStat {
            ino: inode.ino,
            size: inode.size,
            blocks: inode.mapped_blocks(),
            is_dir: inode.is_dir(),
            nlink: inode.nlink,
        })
    }

    fn stat(&self, path: &str) -> FsResult<FileStat> {
        self.charge_syscall();
        let norm = vpath::normalize(path)?;
        let ino = if norm == "/" {
            ROOT_INO
        } else {
            let (_, _, existing) = self.resolve_norm(&norm)?;
            existing.ok_or(FsError::NotFound)?
        };
        let shard = self.lock_inode_read(ino);
        let inode = shard.get(&ino).ok_or(FsError::NotFound)?;
        Ok(FileStat {
            ino: inode.ino,
            size: inode.size,
            blocks: inode.mapped_blocks(),
            is_dir: inode.is_dir(),
            nlink: inode.nlink,
        })
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        self.charge_syscall();
        let norm = vpath::normalize(path)?;
        let shards = self.ns.len();
        loop {
            let move_gen = self.path_cache.move_gen();
            let (parent, name, existing) = self.resolve_norm(&norm)?;
            let ino = existing.ok_or(FsError::NotFound)?;
            let mut g = self.lock_ns_write(&[parent, ino]);
            if self.path_cache.move_gen() != move_gen
                || g.dir(shards, parent)?.entries.get(&name).map(|s| s.ino) != Some(ino)
            {
                continue;
            }
            if g.shard_mut(shards, ino).dirs.contains_key(&ino) {
                return Err(FsError::IsADirectory);
            }
            let ishards = self.inodes.len();
            let mut set = self.lock_inodes_write(&[parent, ino]);
            {
                let parent_inode = set.inode(ishards, parent)?;
                let dir = g.dir_mut(shards, parent)?;
                self.dir_remove_entry(dir, parent_inode, &name)?;
            }
            let still_open = g
                .shard_mut(shards, ino)
                .open_counts
                .get(&ino)
                .copied()
                .unwrap_or(0)
                > 0;
            if still_open {
                g.shard_mut(shards, ino).orphans.insert(ino, true);
                let (_tid, txn) = self.journal.commit(
                    ino,
                    &[JournalRecord::Unlink {
                        parent,
                        name,
                        ino,
                        free_inode: false,
                    }],
                )?;
                {
                    let parent_inode = set.inode_mut(ishards, parent)?;
                    self.write_inode(parent_inode);
                }
                drop(txn);
            } else {
                let (mut records, runs) = {
                    let inode = set.inode_mut(ishards, ino)?;
                    self.free_inode_blocks(inode)
                };
                records.push(JournalRecord::Unlink {
                    parent,
                    name,
                    ino,
                    free_inode: true,
                });
                let (_tid, txn) = self.journal.commit(ino, &records)?;
                self.segments.persist_if_dirty()?;
                set.map_for(inode_shard_of(ino, ishards)).remove(&ino);
                self.zero_inode_record(ino);
                {
                    let parent_inode = set.inode_mut(ishards, parent)?;
                    self.write_inode(parent_inode);
                }
                self.release_runs(&runs);
                drop(txn);
            }
            // Negative entry filled after the gen bump, under the parent's
            // shard write guard: the next create-then-open of this exact
            // path still misses once, but repeat lookups of a deleted path
            // (create-heavy churn probing for collisions) hit.
            let parent_gen = g.dir(shards, parent)?.gen;
            self.path_cache.insert(
                &norm,
                PathCacheEntry {
                    parent,
                    parent_gen,
                    move_gen,
                    ino: None,
                },
            );
            return Ok(());
        }
    }

    fn rename(&self, old: &str, new: &str) -> FsResult<()> {
        self.charge_syscall();
        let old_norm = vpath::normalize(old)?;
        let new_norm = vpath::normalize(new)?;
        let nshards = self.ns.len();
        loop {
            let move_gen = self.path_cache.move_gen();
            let (old_parent, old_name, old_ino) = self.resolve_norm(&old_norm)?;
            let ino = old_ino.ok_or(FsError::NotFound)?;
            let (new_parent, new_name, new_existing) = self.resolve_norm(&new_norm)?;
            let replaced_ino = new_existing.unwrap_or(0);
            if replaced_ino == ino {
                return Ok(());
            }
            let mut involved_ns = vec![old_parent, new_parent, ino];
            if replaced_ino != 0 {
                involved_ns.push(replaced_ino);
            }
            let mut g = self.lock_ns_write(&involved_ns);
            if self.path_cache.move_gen() != move_gen
                || g.dir(nshards, old_parent)?
                    .entries
                    .get(&old_name)
                    .map(|s| s.ino)
                    != Some(ino)
                || g.dir(nshards, new_parent)?
                    .entries
                    .get(&new_name)
                    .map(|s| s.ino)
                    != new_existing
            {
                continue;
            }
            if replaced_ino != 0
                && g.shard_mut(nshards, replaced_ino)
                    .dirs
                    .contains_key(&replaced_ino)
            {
                return Err(FsError::IsADirectory);
            }
            let moving_dir = g.shard_mut(nshards, ino).dirs.contains_key(&ino);
            // A directory move changes the meaning of every path beneath
            // it, including paths whose parent shards this guard set does
            // not hold.  Bump the global directory-move generation while
            // the guards are held and *before* mutating: any resolve that
            // snapshots the new generation will block on the old/new
            // parent shard and observe the post-move namespace.
            let entry_move_gen = if moving_dir {
                self.path_cache.bump_move_gen()
            } else {
                move_gen
            };

            let shards = self.inodes.len();
            let mut involved = vec![old_parent, new_parent, ino];
            if replaced_ino != 0 {
                involved.push(replaced_ino);
            }
            let mut set = self.lock_inodes_write(&involved);

            let mut records = vec![JournalRecord::Rename {
                old_parent,
                old_name: old_name.clone(),
                new_parent,
                new_name: new_name.clone(),
                ino,
                replaced_ino,
            }];
            let mut freed_runs = Vec::new();
            if replaced_ino != 0 {
                let replaced = set.inode_mut(shards, replaced_ino)?;
                let (free_records, runs) = self.free_inode_blocks(replaced);
                records.extend(free_records);
                freed_runs = runs;
            }
            let (_tid, txn) = self.journal.commit(ino, &records)?;
            self.segments.persist_if_dirty()?;

            {
                let old_parent_inode = set.inode(shards, old_parent)?;
                let dir = g.dir_mut(nshards, old_parent)?;
                self.dir_remove_entry(dir, old_parent_inode, &old_name)?;
            }
            if replaced_ino != 0 {
                {
                    let new_parent_inode = set.inode(shards, new_parent)?;
                    let dir = g.dir_mut(nshards, new_parent)?;
                    self.dir_remove_entry(dir, new_parent_inode, &new_name)?;
                }
                set.map_for(inode_shard_of(replaced_ino, shards))
                    .remove(&replaced_ino);
                self.zero_inode_record(replaced_ino);
            }
            {
                let new_parent_inode = set.inode_mut(shards, new_parent)?;
                let dir = g.dir_mut(nshards, new_parent)?;
                self.dir_append_entry(dir, new_parent_inode, &new_name, ino)?;
            }
            {
                let old_parent_inode = set.inode_mut(shards, old_parent)?;
                self.write_inode(old_parent_inode);
            }
            {
                let new_parent_inode = set.inode_mut(shards, new_parent)?;
                self.write_inode(new_parent_inode);
            }
            self.release_runs(&freed_runs);
            drop(txn);
            // Refresh both endpoints under the guards (a directory move
            // uses the bumped generation so its own fills survive it).
            let old_parent_gen = g.dir(nshards, old_parent)?.gen;
            self.path_cache.insert(
                &old_norm,
                PathCacheEntry {
                    parent: old_parent,
                    parent_gen: old_parent_gen,
                    move_gen: entry_move_gen,
                    ino: None,
                },
            );
            let new_parent_gen = g.dir(nshards, new_parent)?.gen;
            self.path_cache.insert(
                &new_norm,
                PathCacheEntry {
                    parent: new_parent,
                    parent_gen: new_parent_gen,
                    move_gen: entry_move_gen,
                    ino: Some(ino),
                },
            );
            return Ok(());
        }
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        self.charge_syscall();
        let norm = vpath::normalize(path)?;
        let nshards = self.ns.len();
        loop {
            let move_gen = self.path_cache.move_gen();
            let (parent, name, existing) = self.resolve_norm(&norm)?;
            if existing.is_some() {
                return Err(FsError::AlreadyExists);
            }
            let ino = self.alloc_ino(parent, true)?;
            let mut g = self.lock_ns_write(&[parent, ino]);
            if self.path_cache.move_gen() != move_gen
                || g.dir(nshards, parent)?.entries.contains_key(&name)
            {
                continue;
            }
            let (_tid, txn) = self.journal.commit(
                ino,
                &[JournalRecord::CreateInode {
                    ino,
                    parent,
                    name: name.clone(),
                    is_dir: true,
                }],
            )?;
            let shards = self.inodes.len();
            let mut set = self.lock_inodes_write(&[ino, parent]);
            set.map_for(inode_shard_of(ino, shards))
                .insert(ino, Inode::new(ino, InodeKind::Directory));
            g.shard_mut(nshards, ino)
                .dirs
                .insert(ino, DirState::default());
            {
                let parent_inode = set.inode_mut(shards, parent)?;
                let dir = g.dir_mut(nshards, parent)?;
                self.dir_append_entry(dir, parent_inode, &name, ino)?;
            }
            {
                let inode = set.inode_mut(shards, ino)?;
                self.write_inode(inode);
            }
            {
                let parent_inode = set.inode_mut(shards, parent)?;
                self.write_inode(parent_inode);
            }
            drop(txn);
            let parent_gen = g.dir(nshards, parent)?.gen;
            self.path_cache.insert(
                &norm,
                PathCacheEntry {
                    parent,
                    parent_gen,
                    move_gen,
                    ino: Some(ino),
                },
            );
            return Ok(());
        }
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        self.charge_syscall();
        let norm = vpath::normalize(path)?;
        let nshards = self.ns.len();
        loop {
            let move_gen = self.path_cache.move_gen();
            let (parent, name, existing) = self.resolve_norm(&norm)?;
            let ino = existing.ok_or(FsError::NotFound)?;
            let mut g = self.lock_ns_write(&[parent, ino]);
            if self.path_cache.move_gen() != move_gen
                || g.dir(nshards, parent)?.entries.get(&name).map(|s| s.ino) != Some(ino)
            {
                continue;
            }
            if !g.shard_mut(nshards, ino).dirs.contains_key(&ino) {
                return Err(FsError::NotADirectory);
            }
            if !g.dir(nshards, ino)?.entries.is_empty() {
                return Err(FsError::NotEmpty);
            }
            let shards = self.inodes.len();
            let mut set = self.lock_inodes_write(&[parent, ino]);
            {
                let parent_inode = set.inode(shards, parent)?;
                let dir = g.dir_mut(nshards, parent)?;
                self.dir_remove_entry(dir, parent_inode, &name)?;
            }
            let (mut records, runs) = {
                let inode = set.inode_mut(shards, ino)?;
                self.free_inode_blocks(inode)
            };
            records.push(JournalRecord::Unlink {
                parent,
                name,
                ino,
                free_inode: true,
            });
            let (_tid, txn) = self.journal.commit(ino, &records)?;
            set.map_for(inode_shard_of(ino, shards)).remove(&ino);
            // No directory-move bump needed: cached descendants carry
            // `parent == ino`, and inos are never reused, so the missing
            // `DirState` fails their validation probe forever after.
            g.shard_mut(nshards, ino).dirs.remove(&ino);
            self.zero_inode_record(ino);
            {
                let parent_inode = set.inode_mut(shards, parent)?;
                self.write_inode(parent_inode);
            }
            self.release_runs(&runs);
            drop(txn);
            let parent_gen = g.dir(nshards, parent)?.gen;
            self.path_cache.insert(
                &norm,
                PathCacheEntry {
                    parent,
                    parent_gen,
                    move_gen,
                    ino: None,
                },
            );
            return Ok(());
        }
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        self.charge_syscall();
        let norm = vpath::normalize(path)?;
        let ino = if norm == "/" {
            ROOT_INO
        } else {
            let (_, _, existing) = self.resolve_norm(&norm)?;
            existing.ok_or(FsError::NotFound)?
        };
        let guard = self.lock_ns_read(ino);
        let dir = guard.dirs.get(&ino).ok_or(FsError::NotADirectory)?;
        Ok(dir.entries.keys().cloned().collect())
    }

    fn sync(&self) -> FsResult<()> {
        self.charge_syscall();
        self.device.fence(TimeCategory::Metadata);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemBuilder;

    fn fs() -> Arc<Ext4Dax> {
        let device = PmemBuilder::new(256 * 1024 * 1024).build();
        Ext4Dax::mkfs(device).unwrap()
    }

    #[test]
    fn create_write_read_round_trip() {
        let fs = fs();
        let fd = fs.open("/a.txt", OpenFlags::create()).unwrap();
        let data = b"hello persistent memory".to_vec();
        assert_eq!(fs.write_at(fd, 0, &data).unwrap(), data.len());
        let mut buf = vec![0u8; data.len()];
        assert_eq!(fs.read_at(fd, 0, &mut buf).unwrap(), data.len());
        assert_eq!(buf, data);
        assert_eq!(fs.fstat(fd).unwrap().size, data.len() as u64);
        fs.close(fd).unwrap();
    }

    #[test]
    fn open_missing_without_create_fails() {
        let fs = fs();
        assert_eq!(
            fs.open("/missing", OpenFlags::read_only()),
            Err(FsError::NotFound)
        );
    }

    #[test]
    fn relink_moves_blocks_without_copy() {
        let fs = fs();
        let staging = fs.open("/staging", OpenFlags::create()).unwrap();
        let target = fs.open("/target", OpenFlags::create()).unwrap();
        // Write two blocks of recognizable data into the staging file.
        let block_a = vec![0xAAu8; BLOCK_SIZE];
        let block_b = vec![0xBBu8; BLOCK_SIZE];
        fs.write_at(staging, 0, &block_a).unwrap();
        fs.write_at(staging, BLOCK_SIZE as u64, &block_b).unwrap();

        let written_before = fs.device().stats().snapshot().total_bytes_written();
        fs.ioctl_relink(staging, 0, target, 0, 2 * BLOCK_SIZE as u64)
            .unwrap();
        let delta = fs.device().stats().snapshot().total_bytes_written() - written_before;
        // Only metadata (inode records, journal, bitmap) is written; the
        // 8 KiB of data must not be copied.
        assert!(
            delta < BLOCK_SIZE as u64,
            "relink wrote {delta} bytes; expected metadata only"
        );

        let mut buf = vec![0u8; BLOCK_SIZE];
        fs.read_at(target, 0, &mut buf).unwrap();
        assert_eq!(buf, block_a);
        fs.read_at(target, BLOCK_SIZE as u64, &mut buf).unwrap();
        assert_eq!(buf, block_b);
        assert_eq!(fs.fstat(target).unwrap().size, 2 * BLOCK_SIZE as u64);
        // The staging range is now a hole.
        assert_eq!(fs.fstat(staging).unwrap().blocks, 0);
    }

    #[test]
    fn relink_batch_moves_many_extents_in_one_transaction() {
        let fs = fs();
        let staging = fs.open("/staging", OpenFlags::create()).unwrap();
        let a = fs.open("/a", OpenFlags::create()).unwrap();
        let b = fs.open("/b", OpenFlags::create()).unwrap();
        // Four distinct blocks of staged data.
        for i in 0..4u8 {
            fs.write_at(
                staging,
                i as u64 * BLOCK_SIZE as u64,
                &vec![0x10 + i; BLOCK_SIZE],
            )
            .unwrap();
        }
        let before = fs.device().stats().snapshot();
        let applied = fs
            .ioctl_relink_batch(&[
                RelinkOp {
                    src_fd: staging,
                    src_offset: 0,
                    dst_fd: a,
                    dst_offset: 0,
                    len: 2 * BLOCK_SIZE as u64,
                },
                RelinkOp {
                    src_fd: staging,
                    src_offset: 2 * BLOCK_SIZE as u64,
                    dst_fd: b,
                    dst_offset: 0,
                    len: 2 * BLOCK_SIZE as u64,
                },
            ])
            .unwrap();
        assert_eq!(applied, 2);
        let delta = fs.device().stats().snapshot().delta_since(&before);
        assert_eq!(delta.kernel_traps, 1, "one syscall for the whole batch");
        assert_eq!(delta.batched_relinks, 1);
        assert_eq!(delta.relink_batch_ops, 2);
        // No data was copied.
        assert!(delta.written(TimeCategory::UserData) == 0);
        let mut buf = vec![0u8; BLOCK_SIZE];
        fs.read_at(a, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&v| v == 0x10));
        fs.read_at(b, BLOCK_SIZE as u64, &mut buf).unwrap();
        assert!(buf.iter().all(|&v| v == 0x13));
        // Staging ranges became holes.
        assert_eq!(fs.fstat(staging).unwrap().blocks, 0);
    }

    #[test]
    fn relink_batch_validates_before_mutating() {
        let fs = fs();
        let staging = fs.open("/staging", OpenFlags::create()).unwrap();
        let target = fs.open("/t", OpenFlags::create()).unwrap();
        fs.write_at(staging, 0, &vec![9u8; BLOCK_SIZE]).unwrap();
        // Second op references an unmapped source range, so the whole batch
        // must be rejected with the first op not applied.
        let err = fs.ioctl_relink_batch(&[
            RelinkOp {
                src_fd: staging,
                src_offset: 0,
                dst_fd: target,
                dst_offset: 0,
                len: BLOCK_SIZE as u64,
            },
            RelinkOp {
                src_fd: staging,
                src_offset: 64 * BLOCK_SIZE as u64,
                dst_fd: target,
                dst_offset: BLOCK_SIZE as u64,
                len: BLOCK_SIZE as u64,
            },
        ]);
        assert!(err.is_err());
        assert_eq!(fs.fstat(target).unwrap().size, 0);
        assert_eq!(fs.fstat(staging).unwrap().blocks, 1, "source untouched");
    }

    #[test]
    fn crash_after_relink_batch_preserves_every_move() {
        let device = PmemBuilder::new(256 * 1024 * 1024).build();
        let fs = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
        let staging = fs.open("/staging", OpenFlags::create()).unwrap();
        let a = fs.open("/a", OpenFlags::create()).unwrap();
        let b = fs.open("/b", OpenFlags::create()).unwrap();
        let pa = vec![1u8; BLOCK_SIZE];
        let pb = vec![2u8; BLOCK_SIZE];
        fs.write_at(staging, 0, &pa).unwrap();
        fs.write_at(staging, BLOCK_SIZE as u64, &pb).unwrap();
        fs.fsync(staging).unwrap();
        fs.ioctl_relink_batch(&[
            RelinkOp {
                src_fd: staging,
                src_offset: 0,
                dst_fd: a,
                dst_offset: 0,
                len: BLOCK_SIZE as u64,
            },
            RelinkOp {
                src_fd: staging,
                src_offset: BLOCK_SIZE as u64,
                dst_fd: b,
                dst_offset: 0,
                len: BLOCK_SIZE as u64,
            },
        ])
        .unwrap();

        device.crash();
        let fs2 = Ext4Dax::mount(device).unwrap();
        assert_eq!(fs2.read_file("/a").unwrap(), pa);
        assert_eq!(fs2.read_file("/b").unwrap(), pb);
    }

    #[test]
    fn relink_rejects_unaligned_requests() {
        let fs = fs();
        let a = fs.open("/a", OpenFlags::create()).unwrap();
        let b = fs.open("/b", OpenFlags::create()).unwrap();
        assert_eq!(
            fs.ioctl_relink(a, 10, b, 0, BLOCK_SIZE as u64),
            Err(FsError::InvalidArgument)
        );
    }

    #[test]
    fn crash_after_relink_preserves_the_move() {
        let device = PmemBuilder::new(256 * 1024 * 1024).build();
        let fs = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
        let staging = fs.open("/staging", OpenFlags::create()).unwrap();
        let target = fs.open("/t", OpenFlags::create()).unwrap();
        let payload = vec![7u8; BLOCK_SIZE];
        fs.write_at(staging, 0, &payload).unwrap();
        fs.fsync(staging).unwrap();
        fs.ioctl_relink(staging, 0, target, 0, BLOCK_SIZE as u64)
            .unwrap();

        device.crash();
        let fs2 = Ext4Dax::mount(device).unwrap();
        let data = fs2.read_file("/t").unwrap();
        assert_eq!(data, payload);
    }

    #[test]
    fn truncate_to_unaligned_size_zeroes_the_block_tail() {
        // Regression test: shrink to a mid-block size, then extend the file
        // past that point; the bytes between the truncation point and the
        // old data must read as zero.
        let fs = fs();
        let fd = fs.open("/t.bin", OpenFlags::create()).unwrap();
        fs.write_at(fd, 0, &vec![0xAAu8; 2 * BLOCK_SIZE]).unwrap();
        fs.ftruncate(fd, 5000).unwrap();
        // Extend far past the old end with a sparse write.
        fs.write_at(fd, 3 * BLOCK_SIZE as u64, b"tail").unwrap();
        let mut buf = vec![0xFFu8; 1000];
        fs.read_at(fd, 5000, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == 0),
            "bytes beyond the truncation point must be zero"
        );
        let mut head = vec![0u8; 5000];
        fs.read_at(fd, 0, &mut head).unwrap();
        assert!(head.iter().all(|&b| b == 0xAA));
        fs.close(fd).unwrap();
    }

    #[test]
    fn appendv_gathers_slices_with_one_trap_and_one_size_commit() {
        let fs = fs();
        let fd = fs.open("/v.bin", OpenFlags::create()).unwrap();
        let parts: [&[u8]; 3] = [&[1u8; 100], &[2u8; 4096], &[3u8; 17]];
        let iov: Vec<IoVec<'_>> = parts.iter().map(|p| IoVec::new(p)).collect();
        let before = fs.device().stats().snapshot();
        assert_eq!(fs.appendv(fd, &iov).unwrap(), 100 + 4096 + 17);
        let delta = fs.device().stats().snapshot().delta_since(&before);
        assert_eq!(delta.kernel_traps, 1, "one trap for the whole gather");
        assert_eq!(delta.appendv_calls, 1);
        assert_eq!(delta.appendv_slices, 3);

        // The gathered bytes are logically contiguous.
        let mut expected = Vec::new();
        for p in parts {
            expected.extend_from_slice(p);
        }
        assert_eq!(fs.read_file("/v.bin").unwrap(), expected);

        // A second appendv lands exactly after the first (EOF resolved
        // under the same lock as the write).
        fs.appendv(fd, &[IoVec::new(&[9u8; 10])]).unwrap();
        assert_eq!(fs.fstat(fd).unwrap().size, (100 + 4096 + 17 + 10) as u64);
    }

    #[test]
    fn concurrent_appends_never_overlap() {
        let fs = fs();
        let fd = fs.open("/race.bin", OpenFlags::create()).unwrap();
        let fs2 = Arc::clone(&fs);
        std::thread::scope(|scope| {
            for t in 0..4u8 {
                let fs = Arc::clone(&fs2);
                scope.spawn(move || {
                    for _ in 0..50 {
                        fs.append(fd, &[t + 1; 64]).unwrap();
                    }
                });
            }
        });
        let data = fs.read_file("/race.bin").unwrap();
        assert_eq!(data.len(), 4 * 50 * 64, "no append may overwrite another");
        // Every 64-byte record is homogeneous: interleaved-at-overlapping-
        // offsets appends would tear records.
        for rec in data.chunks(64) {
            assert!(rec.iter().all(|&b| b == rec[0]), "torn append record");
        }
    }

    #[test]
    fn concurrent_distinct_file_appends_stay_isolated() {
        // The sharded kernel state: eight threads, eight files, every
        // append and fsync runs against a different inode shard.  Each
        // file's contents must come out intact and in order.
        let fs = fs();
        let fds: Vec<Fd> = (0..8)
            .map(|t| {
                fs.open(&format!("/shard-{t}.bin"), OpenFlags::create())
                    .unwrap()
            })
            .collect();
        std::thread::scope(|scope| {
            for (t, &fd) in fds.iter().enumerate() {
                let fs = Arc::clone(&fs);
                scope.spawn(move || {
                    for i in 0..64u64 {
                        let mut rec = vec![t as u8 + 1; 256];
                        rec[0] = (i % 251) as u8;
                        fs.append(fd, &rec).unwrap();
                    }
                    fs.fsync(fd).unwrap();
                });
            }
        });
        for (t, &fd) in fds.iter().enumerate() {
            let data = fs.read_file(&format!("/shard-{t}.bin")).unwrap();
            assert_eq!(data.len(), 64 * 256, "file {t}");
            for (i, rec) in data.chunks(256).enumerate() {
                assert_eq!(rec[0], (i as u64 % 251) as u8, "file {t} record {i} order");
                assert!(
                    rec[1..].iter().all(|&b| b == t as u8 + 1),
                    "file {t} record {i} torn"
                );
            }
            fs.close(fd).unwrap();
        }
    }

    #[test]
    fn concurrent_relink_batches_on_disjoint_files() {
        // Relink batches for disjoint file pairs must be able to run
        // concurrently and land all moves intact.
        let fs = fs();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let fs = Arc::clone(&fs);
                scope.spawn(move || {
                    let staging = fs
                        .open(&format!("/stage-{t}"), OpenFlags::create())
                        .unwrap();
                    let target = fs.open(&format!("/tgt-{t}"), OpenFlags::create()).unwrap();
                    for round in 0..8u64 {
                        let fill = (t * 16 + round + 1) as u8;
                        fs.write_at(staging, round * BLOCK_SIZE as u64, &vec![fill; BLOCK_SIZE])
                            .unwrap();
                        fs.ioctl_relink(
                            staging,
                            round * BLOCK_SIZE as u64,
                            target,
                            round * BLOCK_SIZE as u64,
                            BLOCK_SIZE as u64,
                        )
                        .unwrap();
                    }
                });
            }
        });
        for t in 0..4u64 {
            let data = fs.read_file(&format!("/tgt-{t}")).unwrap();
            assert_eq!(data.len(), 8 * BLOCK_SIZE);
            for (round, chunk) in data.chunks(BLOCK_SIZE).enumerate() {
                let fill = (t * 16 + round as u64 + 1) as u8;
                assert!(chunk.iter().all(|&b| b == fill), "file {t} round {round}");
            }
        }
    }

    #[test]
    fn read_view_is_zero_copy_for_extent_contiguous_ranges() {
        let fs = fs();
        let fd = fs.open("/view.bin", OpenFlags::create()).unwrap();
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        fs.write_at(fd, 0, &data).unwrap();
        let before = fs.device().stats().snapshot();
        let view = fs.read_view(fd, 100, 4000).unwrap();
        assert!(view.is_zero_copy(), "single-extent range must borrow");
        assert_eq!(&*view, &data[100..4100]);
        drop(view);
        let delta = fs.device().stats().snapshot().delta_since(&before);
        assert_eq!(delta.zero_copy_read_bytes, 4000);

        // Clipped at end of file, empty past it.
        assert_eq!(fs.read_view(fd, 8000, 1000).unwrap().len(), 192);
        assert!(fs.read_view(fd, 9000, 10).unwrap().is_empty());
    }

    #[test]
    fn fsync_many_forces_one_journal_commit_for_many_files() {
        let fs = fs();
        let mut fds = Vec::new();
        for i in 0..6 {
            let fd = fs.open(&format!("/f{i}"), OpenFlags::create()).unwrap();
            fs.write_at(fd, 0, &[i as u8; 512]).unwrap();
            fds.push(fd);
        }
        let before = fs.device().stats().snapshot();
        fs.fsync_many(&fds).unwrap();
        let delta = fs.device().stats().snapshot().delta_since(&before);
        assert_eq!(delta.kernel_traps, 1);
        assert_eq!(delta.journal_txns, 1, "one forced commit for all six");
        assert_eq!(delta.fsync_many_calls, 1);
        assert_eq!(delta.fsync_many_files, 6);
        assert!(fs.fsync_many(&[]).is_ok());
        assert_eq!(fs.fsync_many(&[9999]), Err(FsError::BadFd));
    }

    #[test]
    fn fdatasync_skips_the_journal_forcing() {
        let fs = fs();
        let fd = fs.open("/d.bin", OpenFlags::create()).unwrap();
        fs.write_at(fd, 0, &[1u8; 4096]).unwrap();
        let before = fs.device().stats().snapshot();
        fs.fdatasync(fd).unwrap();
        let delta = fs.device().stats().snapshot().delta_since(&before);
        assert_eq!(delta.written(TimeCategory::Journal), 0);
        assert_eq!(delta.journal_txns, 0);
        let before = fs.device().stats().snapshot();
        fs.fsync(fd).unwrap();
        let delta = fs.device().stats().snapshot().delta_since(&before);
        assert!(delta.written(TimeCategory::Journal) > 0);
    }

    #[test]
    fn mount_after_clean_operations_recovers_tree() {
        let device = PmemBuilder::new(256 * 1024 * 1024).build();
        let fs = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
        fs.mkdir("/dir").unwrap();
        fs.write_file("/dir/file.bin", &vec![3u8; 10_000]).unwrap();
        fs.write_file("/top.txt", b"top level").unwrap();
        drop(fs);

        let fs2 = Ext4Dax::mount(device).unwrap();
        assert_eq!(fs2.read_file("/dir/file.bin").unwrap(), vec![3u8; 10_000]);
        assert_eq!(fs2.read_file("/top.txt").unwrap(), b"top level");
        let entries = fs2.readdir("/").unwrap();
        assert!(entries.contains(&"dir".to_string()));
        assert!(entries.contains(&"top.txt".to_string()));
    }

    /// 48 MiB PM + 16 MiB capacity tier.
    fn tiered_fs() -> Arc<Ext4Dax> {
        let device = PmemBuilder::new(64 * 1024 * 1024).build();
        Ext4Dax::mkfs_shaped(device, 48 * 1024 * 1024).unwrap()
    }

    #[test]
    fn demote_moves_data_to_capacity_and_reads_reassemble() {
        let fs = tiered_fs();
        assert!(fs.is_tiered());
        let fd = fs.open("/cold", OpenFlags::create()).unwrap();
        let data: Vec<u8> = (0..6 * BLOCK_SIZE + 123).map(|i| (i % 251) as u8).collect();
        fs.write_at(fd, 0, &data).unwrap();
        let free_before = fs.free_blocks();

        let moved = fs.ioctl_demote(fd).unwrap();
        assert_eq!(moved, 7 * BLOCK_SIZE as u64);
        assert!(fs.is_demoted(fd).unwrap());
        assert!(
            fs.free_blocks() > free_before,
            "demotion must free PM blocks"
        );
        let (used, _) = fs.cap_usage();
        assert_eq!(used, 7);
        assert!(fs.check_namespace().is_empty());

        // Reads reassemble transparently from the capacity tier.
        let mut buf = vec![0u8; data.len()];
        assert_eq!(fs.read_at(fd, 0, &mut buf).unwrap(), data.len());
        assert_eq!(buf, data);
        assert_eq!(fs.fstat(fd).unwrap().size, data.len() as u64);
        let snap = fs.device().stats().snapshot();
        assert_eq!(snap.tier_demotions, 1);
        assert!(
            snap.tier_cap_reads > 0,
            "cold read must hit the capacity tier"
        );

        // Promotion brings everything back and empties the tier.
        let back = fs.ioctl_promote(fd).unwrap();
        assert_eq!(back, moved);
        assert!(!fs.is_demoted(fd).unwrap());
        assert_eq!(fs.cap_usage().0, 0);
        let mut buf2 = vec![0u8; data.len()];
        fs.read_at(fd, 0, &mut buf2).unwrap();
        assert_eq!(buf2, data);
        assert!(fs.check_namespace().is_empty());
    }

    #[test]
    fn writes_promote_demoted_files_before_touching_them() {
        let fs = tiered_fs();
        let fd = fs.open("/f", OpenFlags::create()).unwrap();
        let block = vec![0x5au8; BLOCK_SIZE];
        fs.write_at(fd, 0, &block).unwrap();
        fs.ioctl_demote(fd).unwrap();
        // An overwrite must pull the file back to PM first (whole-file
        // residency invariant), not diverge from the capacity copy.
        fs.write_at(fd, 16, b"patch").unwrap();
        assert!(!fs.is_demoted(fd).unwrap());
        let mut buf = vec![0u8; BLOCK_SIZE];
        fs.read_at(fd, 0, &mut buf).unwrap();
        assert_eq!(&buf[16..21], b"patch");
        assert_eq!(buf[0], 0x5a);
        assert_eq!(fs.device().stats().snapshot().tier_promotions, 1);
        assert!(fs.check_namespace().is_empty());
    }

    #[test]
    fn unlink_of_demoted_file_releases_capacity_blocks() {
        let fs = tiered_fs();
        let fd = fs.open("/gone", OpenFlags::create()).unwrap();
        fs.write_at(fd, 0, &vec![1u8; 4 * BLOCK_SIZE]).unwrap();
        fs.ioctl_demote(fd).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.cap_usage().0, 4);
        fs.unlink("/gone").unwrap();
        assert_eq!(fs.cap_usage().0, 0, "unlink must free capacity blocks");
        assert!(fs.check_namespace().is_empty());
    }

    #[test]
    fn demoted_segments_survive_remount() {
        let device = PmemBuilder::new(64 * 1024 * 1024).build();
        let data: Vec<u8> = (0..3 * BLOCK_SIZE).map(|i| (i % 241) as u8).collect();
        {
            let fs = Ext4Dax::mkfs_shaped(Arc::clone(&device), 48 * 1024 * 1024).unwrap();
            let fd = fs.open("/persist", OpenFlags::create()).unwrap();
            fs.write_at(fd, 0, &data).unwrap();
            fs.ioctl_demote(fd).unwrap();
            fs.close(fd).unwrap();
        }
        let fs2 = Ext4Dax::mount(device).unwrap();
        assert!(fs2.is_tiered());
        assert_eq!(fs2.cap_usage().0, 3);
        let fd = fs2.open("/persist", OpenFlags::read_only()).unwrap();
        assert!(fs2.is_demoted(fd).unwrap());
        let mut buf = vec![0u8; data.len()];
        fs2.read_at(fd, 0, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert!(fs2.check_namespace().is_empty());
    }

    #[test]
    fn relink_into_demoted_target_promotes_it_first() {
        let fs = tiered_fs();
        let target = fs.open("/t", OpenFlags::create()).unwrap();
        fs.write_at(target, 0, &vec![7u8; BLOCK_SIZE]).unwrap();
        fs.ioctl_demote(target).unwrap();
        let staging = fs.open("/s", OpenFlags::create()).unwrap();
        fs.write_at(staging, 0, &vec![9u8; BLOCK_SIZE]).unwrap();
        fs.ioctl_relink(staging, 0, target, BLOCK_SIZE as u64, BLOCK_SIZE as u64)
            .unwrap();
        assert!(!fs.is_demoted(target).unwrap());
        let mut buf = vec![0u8; 2 * BLOCK_SIZE];
        fs.read_at(target, 0, &mut buf).unwrap();
        assert!(buf[..BLOCK_SIZE].iter().all(|&b| b == 7));
        assert!(buf[BLOCK_SIZE..].iter().all(|&b| b == 9));
        assert!(fs.check_namespace().is_empty());
    }
}
