//! Small utilities shared by the file-system implementations.

/// 32-bit FNV-1a checksum.
///
/// Used as the transactional checksum embedded in journal records and in
/// SplitFS operation-log entries (§3.3: a 4-byte checksum lets a log entry
/// be validated with a single fence instead of two).  FNV-1a is not
/// cryptographic; it only needs to detect torn or partially written
/// entries, the same role CRC32 plays in the original system.
pub fn checksum32(data: &[u8]) -> u32 {
    const OFFSET: u32 = 0x811c_9dc5;
    const PRIME: u32 = 0x0100_0193;
    let mut hash = OFFSET;
    for &b in data {
        hash ^= b as u32;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// A tiny little-endian byte writer used to serialize metadata records.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` (little endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` (little endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte string (u16 length).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u16(v.len() as u16);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Consumes the writer and returns the bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A little-endian byte reader matching [`ByteWriter`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.get_u16()? as usize;
        self.take(len).map(|s| s.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Option<String> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes).ok()
    }

    /// Number of bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_detects_single_bit_flips() {
        let data = b"splitfs operation log entry";
        let base = checksum32(data);
        let mut corrupted = data.to_vec();
        corrupted[3] ^= 0x01;
        assert_ne!(base, checksum32(&corrupted));
    }

    #[test]
    fn checksum_of_empty_is_fnv_offset() {
        assert_eq!(checksum32(&[]), 0x811c_9dc5);
    }

    #[test]
    fn byte_writer_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_str("wal.log");
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8(), Some(7));
        assert_eq!(r.get_u16(), Some(300));
        assert_eq!(r.get_u32(), Some(70_000));
        assert_eq!(r.get_u64(), Some(1 << 40));
        assert_eq!(r.get_str().as_deref(), Some("wal.log"));
        assert_eq!(r.position(), bytes.len());
    }

    #[test]
    fn reader_returns_none_past_the_end() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.get_u32(), None);
        assert_eq!(r.get_u16(), Some(0x0201));
        assert_eq!(r.get_u8(), None);
    }
}
