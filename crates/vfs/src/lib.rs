//! Common file-system interface for the SplitFS reproduction.
//!
//! Every file system in the workspace — the ext4-DAX-like kernel file
//! system (`kernelfs`), the baselines (PMFS, NOVA, Strata) and SplitFS
//! itself — implements the [`FileSystem`] trait, so workloads, example
//! applications and the benchmark harness are written once and run against
//! any of them.  The trait mirrors the subset of POSIX the paper's U-Split
//! library intercepts: `open`, `close`, `pread`/`pwrite`, `read`/`write`
//! with a file offset, `fsync`, `ftruncate`, `unlink`, `rename`, `mkdir`,
//! `readdir`, `stat` and `lseek`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod path;
pub mod types;
pub mod util;

use std::sync::Arc;

pub use error::{FsError, FsResult};
pub use types::{ConsistencyClass, Fd, FileStat, OpenFlags, SeekFrom};

use pmem::PmemDevice;

/// The POSIX-like file-system interface shared by every file system in the
/// reproduction.
///
/// Paths are absolute, `/`-separated UTF-8 strings (e.g. `"/db/wal.log"`).
/// File descriptors are plain integers scoped to the file-system instance.
pub trait FileSystem: Send + Sync {
    /// Short human-readable name used in experiment reports
    /// (e.g. `"ext4-DAX"`, `"NOVA-strict"`, `"SplitFS-POSIX"`).
    fn name(&self) -> String;

    /// The crash-consistency guarantee class this configuration provides,
    /// used to group comparable file systems (paper Table 3).
    fn consistency(&self) -> ConsistencyClass;

    /// The persistent-memory device this file system runs on.
    fn device(&self) -> &Arc<PmemDevice>;

    /// Opens (and possibly creates) the file at `path`.
    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd>;

    /// Closes an open descriptor.
    fn close(&self, fd: Fd) -> FsResult<()>;

    /// Reads up to `buf.len()` bytes at absolute `offset` (like `pread`).
    /// Returns the number of bytes read; 0 at or past end of file.
    fn read_at(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> FsResult<usize>;

    /// Writes `data` at absolute `offset` (like `pwrite`), extending the
    /// file if the range goes past the current end.  Returns bytes written.
    fn write_at(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize>;

    /// Reads from the descriptor's current offset, advancing it.
    fn read(&self, fd: Fd, buf: &mut [u8]) -> FsResult<usize>;

    /// Writes at the descriptor's current offset (or at end of file when the
    /// descriptor was opened with `append`), advancing it.
    fn write(&self, fd: Fd, data: &[u8]) -> FsResult<usize>;

    /// Moves the descriptor's offset.  Returns the new absolute offset.
    fn lseek(&self, fd: Fd, pos: SeekFrom) -> FsResult<u64>;

    /// Flushes all completed-but-volatile state of this file to the
    /// persistence domain.  In SplitFS this is where staged appends are
    /// relinked into the target file.
    fn fsync(&self, fd: Fd) -> FsResult<()>;

    /// Truncates or extends the file to exactly `size` bytes.
    fn ftruncate(&self, fd: Fd, size: u64) -> FsResult<()>;

    /// Returns metadata for the open descriptor.
    fn fstat(&self, fd: Fd) -> FsResult<FileStat>;

    /// Returns metadata for `path`.
    fn stat(&self, path: &str) -> FsResult<FileStat>;

    /// Removes the file at `path` (directories use [`FileSystem::rmdir`]).
    fn unlink(&self, path: &str) -> FsResult<()>;

    /// Atomically renames `old` to `new`, replacing `new` if it exists.
    fn rename(&self, old: &str, new: &str) -> FsResult<()>;

    /// Creates a directory at `path` (parent must exist).
    fn mkdir(&self, path: &str) -> FsResult<()>;

    /// Removes an empty directory.
    fn rmdir(&self, path: &str) -> FsResult<()>;

    /// Lists the entry names (not full paths) in the directory at `path`.
    fn readdir(&self, path: &str) -> FsResult<Vec<String>>;

    /// Whole-file-system synchronization point.  For most file systems this
    /// is a no-op; Strata uses it to run a digest, and SplitFS uses it in
    /// tests to force relinks of every open file.
    fn sync(&self) -> FsResult<()> {
        Ok(())
    }

    /// Returns `true` when `path` refers to an existing file or directory.
    fn exists(&self, path: &str) -> bool {
        self.stat(path).is_ok()
    }

    /// Convenience: appends `data` at the current end of file.
    fn append(&self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        let size = self.fstat(fd)?.size;
        self.write_at(fd, size, data)
    }

    /// Convenience: reads the whole file at `path` into a vector.
    fn read_file(&self, path: &str) -> FsResult<Vec<u8>> {
        let fd = self.open(path, OpenFlags::read_only())?;
        let size = self.fstat(fd)?.size as usize;
        let mut buf = vec![0u8; size];
        let mut done = 0usize;
        while done < size {
            let n = self.read_at(fd, done as u64, &mut buf[done..])?;
            if n == 0 {
                break;
            }
            done += n;
        }
        self.close(fd)?;
        buf.truncate(done);
        Ok(buf)
    }

    /// Convenience: creates/truncates `path` and writes `data` to it,
    /// followed by an `fsync`.
    fn write_file(&self, path: &str, data: &[u8]) -> FsResult<()> {
        let fd = self.open(path, OpenFlags::create_truncate())?;
        let mut done = 0usize;
        while done < data.len() {
            let n = self.write_at(fd, done as u64, &data[done..])?;
            if n == 0 {
                return Err(FsError::Io("short write".to_string()));
            }
            done += n;
        }
        self.fsync(fd)?;
        self.close(fd)
    }
}

#[cfg(test)]
mod tests {
    // The trait's provided methods are exercised against real file systems
    // in the kernelfs / splitfs crates and in the workspace integration
    // tests; this module only checks that the trait is object safe.
    use super::*;

    #[test]
    fn filesystem_trait_is_object_safe() {
        fn _takes_dyn(_fs: &dyn FileSystem) {}
    }
}
