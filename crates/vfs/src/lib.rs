//! Common file-system interface for the SplitFS reproduction.
//!
//! Every file system in the workspace — the ext4-DAX-like kernel file
//! system (`kernelfs`), the baselines (PMFS, NOVA, Strata) and SplitFS
//! itself — implements the [`FileSystem`] trait, so workloads, example
//! applications and the benchmark harness are written once and run against
//! any of them.  The trait mirrors the subset of POSIX the paper's U-Split
//! library intercepts — `open`, `close`, `pread`/`pwrite`, `read`/`write`
//! with a file offset, `fsync`, `ftruncate`, `unlink`, `rename`, `mkdir`,
//! `readdir`, `stat` and `lseek` — and extends it with the operations a
//! persistent-memory file system can serve better than POSIX can express:
//!
//! * **Zero-copy reads** — [`FileSystem::read_view`] returns a
//!   [`ReadView`] borrow guard; SplitFS and the kernel file system serve
//!   it directly from their DAX mappings with no memcpy, while the
//!   baselines fall back to an owned buffer behind the same type.
//! * **Vectored writes** — [`FileSystem::writev_at`] and
//!   [`FileSystem::appendv`] take a gather list of [`IoVec`]s and apply it
//!   as *one* operation: one syscall-equivalent, one allocation/journal
//!   decision, and on SplitFS one staging gather whose operation-log
//!   entries group-commit under a single fence.
//! * **Batched durability** — [`FileSystem::fsync_many`] retires the
//!   staged state of many descriptors in one transaction (SplitFS routes
//!   it through the batched relink ioctl: one kernel journal commit for M
//!   files), and [`FileSystem::fdatasync`] skips metadata work when only
//!   data durability is needed.
//!
//! The POSIX conveniences (`append`, `read_file`, `write_file`) are
//! provided in terms of the new primitives, so every implementor that
//! overrides the primitives gets the optimized conveniences for free.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod io;
pub mod path;
pub mod trace;
pub mod types;
pub mod util;

use std::sync::Arc;

pub use error::{FsError, FsResult};
pub use io::{iov_gather, iov_total_len, IoVec, ReadView};
pub use trace::TracedFs;
pub use types::{ConsistencyClass, Fd, FileStat, OpenFlags, SeekFrom};

use pmem::PmemDevice;

/// The POSIX-like file-system interface shared by every file system in the
/// reproduction.
///
/// Paths are absolute, `/`-separated UTF-8 strings (e.g. `"/db/wal.log"`).
/// File descriptors are plain integers scoped to the file-system instance.
pub trait FileSystem: Send + Sync {
    /// Short human-readable name used in experiment reports
    /// (e.g. `"ext4-DAX"`, `"NOVA-strict"`, `"SplitFS-POSIX"`).
    fn name(&self) -> String;

    /// The crash-consistency guarantee class this configuration provides,
    /// used to group comparable file systems (paper Table 3).
    fn consistency(&self) -> ConsistencyClass;

    /// The persistent-memory device this file system runs on.
    fn device(&self) -> &Arc<PmemDevice>;

    /// Opens (and possibly creates) the file at `path`.
    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd>;

    /// Closes an open descriptor.
    fn close(&self, fd: Fd) -> FsResult<()>;

    /// Reads up to `buf.len()` bytes at absolute `offset` (like `pread`).
    /// Returns the number of bytes read; 0 at or past end of file.
    fn read_at(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> FsResult<usize>;

    /// Writes `data` at absolute `offset` (like `pwrite`), extending the
    /// file if the range goes past the current end.  Returns bytes written.
    fn write_at(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize>;

    /// Reads from the descriptor's current offset, advancing it.
    fn read(&self, fd: Fd, buf: &mut [u8]) -> FsResult<usize>;

    /// Writes at the descriptor's current offset (or at end of file when the
    /// descriptor was opened with `append`), advancing it.
    fn write(&self, fd: Fd, data: &[u8]) -> FsResult<usize>;

    /// Moves the descriptor's offset.  Returns the new absolute offset.
    fn lseek(&self, fd: Fd, pos: SeekFrom) -> FsResult<u64>;

    /// Flushes all completed-but-volatile state of this file to the
    /// persistence domain.  In SplitFS this is where staged appends are
    /// relinked into the target file.
    fn fsync(&self, fd: Fd) -> FsResult<()>;

    /// Truncates or extends the file to exactly `size` bytes.
    fn ftruncate(&self, fd: Fd, size: u64) -> FsResult<()>;

    /// Returns metadata for the open descriptor.
    fn fstat(&self, fd: Fd) -> FsResult<FileStat>;

    /// Returns metadata for `path`.
    fn stat(&self, path: &str) -> FsResult<FileStat>;

    /// Removes the file at `path` (directories use [`FileSystem::rmdir`]).
    fn unlink(&self, path: &str) -> FsResult<()>;

    /// Atomically renames `old` to `new`, replacing `new` if it exists.
    fn rename(&self, old: &str, new: &str) -> FsResult<()>;

    /// Creates a directory at `path` (parent must exist).
    fn mkdir(&self, path: &str) -> FsResult<()>;

    /// Removes an empty directory.
    fn rmdir(&self, path: &str) -> FsResult<()>;

    /// Lists the entry names (not full paths) in the directory at `path`.
    fn readdir(&self, path: &str) -> FsResult<Vec<String>>;

    /// Whole-file-system synchronization point.  For most file systems this
    /// is a no-op; Strata uses it to run a digest, and SplitFS uses it in
    /// tests to force relinks of every open file.
    fn sync(&self) -> FsResult<()> {
        Ok(())
    }

    // ------------------------------------------------------------------
    // Zero-copy / vectored / batch-durable extensions
    // ------------------------------------------------------------------

    /// Reads up to `len` bytes at absolute `offset` as a [`ReadView`].
    ///
    /// File systems that can serve the range from a DAX mapping return a
    /// zero-copy borrow ([`ReadView::Mapped`]); the provided default reads
    /// through [`FileSystem::read_at`] into an owned buffer.  Like
    /// `read_at`, the view is clipped at end of file and empty at or past
    /// it.
    ///
    /// A mapped view is a borrow guard over device memory: drop it (or
    /// [`ReadView::into_vec`] it) before issuing writes that may touch the
    /// same region from the same thread.
    fn read_view(&self, fd: Fd, offset: u64, len: usize) -> FsResult<ReadView<'_>> {
        let mut buf = vec![0u8; len];
        let mut done = 0usize;
        while done < len {
            let n = self.read_at(fd, offset + done as u64, &mut buf[done..])?;
            if n == 0 {
                break;
            }
            done += n;
        }
        buf.truncate(done);
        Ok(ReadView::Owned(buf))
    }

    /// Writes a gather list at absolute `offset` as one logical operation,
    /// extending the file if the range goes past the current end.  Returns
    /// the total bytes written.
    ///
    /// The provided default issues one `write_at` per slice; real
    /// implementations override it to pay the per-operation costs
    /// (syscall, allocation, journal/log commit) once for the whole
    /// gather.  Like `writev(2)`, a short write stops the gather: the
    /// bytes written so far are returned and no later slice is written at
    /// a shifted offset.
    fn writev_at(&self, fd: Fd, offset: u64, iov: &[IoVec<'_>]) -> FsResult<usize> {
        let mut cur = offset;
        for v in iov {
            if v.is_empty() {
                continue;
            }
            let n = self.write_at(fd, cur, v.as_slice())?;
            cur += n as u64;
            if n < v.len() {
                break;
            }
        }
        Ok((cur - offset) as usize)
    }

    /// Appends a gather list at the end of file as one logical operation.
    ///
    /// Implementations resolve the end-of-file offset and perform the
    /// write under a single file-state lock, so two concurrent appenders
    /// can never interleave into overlapping offsets.  The provided
    /// default (fstat-then-write) does **not** have that property; every
    /// file system in the workspace overrides it.
    fn appendv(&self, fd: Fd, iov: &[IoVec<'_>]) -> FsResult<usize> {
        let size = self.fstat(fd)?.size;
        self.writev_at(fd, size, iov)
    }

    /// Flushes the completed-but-volatile state of many descriptors to the
    /// persistence domain as one batch.
    ///
    /// On SplitFS the staged extents of every named file are retired
    /// through a single batched relink — one kernel trap and one journal
    /// transaction for the whole set — and the kernel file system forces
    /// one journal commit instead of one per descriptor.  The provided
    /// default fsyncs each descriptor in turn.
    fn fsync_many(&self, fds: &[Fd]) -> FsResult<()> {
        for &fd in fds {
            self.fsync(fd)?;
        }
        Ok(())
    }

    /// Like [`FileSystem::fsync`], but only guarantees *data* durability:
    /// file systems that force a metadata journal commit on `fsync` may
    /// skip it here (the `fdatasync(2)` contract).  The provided default
    /// falls back to a full `fsync`.
    fn fdatasync(&self, fd: Fd) -> FsResult<()> {
        self.fsync(fd)
    }

    // ------------------------------------------------------------------
    // Conveniences (implemented on the primitives above)
    // ------------------------------------------------------------------

    /// Returns `true` when `path` refers to an existing file or directory.
    fn exists(&self, path: &str) -> bool {
        self.stat(path).is_ok()
    }

    /// Convenience: appends `data` at the current end of file.  Delegates
    /// to [`FileSystem::appendv`], so implementations that resolve the end
    /// of file under their file-state lock make plain `append` race-free
    /// too.
    fn append(&self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        self.appendv(fd, &[IoVec::new(data)])
    }

    /// Convenience: reads the whole file at `path` into a vector, through
    /// [`FileSystem::read_view`] (one copy at most, zero while viewing).
    fn read_file(&self, path: &str) -> FsResult<Vec<u8>> {
        let fd = self.open(path, OpenFlags::read_only())?;
        let size = self.fstat(fd)?.size as usize;
        // Materialize before close: a mapped view is a borrow guard over
        // device memory and must not be held across further operations.
        let buf = self.read_view(fd, 0, size)?.into_vec();
        self.close(fd)?;
        Ok(buf)
    }

    /// Convenience: creates/truncates `path` and writes `data` to it,
    /// followed by an `fsync`.
    fn write_file(&self, path: &str, data: &[u8]) -> FsResult<()> {
        let fd = self.open(path, OpenFlags::create_truncate())?;
        let mut done = 0usize;
        while done < data.len() {
            let n = self.write_at(fd, done as u64, &data[done..])?;
            if n == 0 {
                return Err(FsError::Io("short write".to_string()));
            }
            done += n;
        }
        self.fsync(fd)?;
        self.close(fd)
    }
}

#[cfg(test)]
mod tests {
    // The trait's provided methods are exercised against real file systems
    // in the kernelfs / splitfs crates and in the workspace integration
    // tests; this module only checks that the trait is object safe.
    use super::*;

    #[test]
    fn filesystem_trait_is_object_safe() {
        fn _takes_dyn(_fs: &dyn FileSystem) {}
    }
}
