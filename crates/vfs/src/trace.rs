//! [`TracedFs`]: the span-recording decorator over any [`FileSystem`].
//!
//! Wrapping a file system in `TracedFs` opens one [`obs::SpanGuard`]
//! around *every* trait method, so each operation's simulated time —
//! per [`pmem::TimeCategory`], plus lock waits — lands in the
//! recorder's per-op histograms.  Data-path methods get their own
//! [`obs::OpKind`]; metadata operations (stat, rename, mkdir,
//! readdir, ...) are spanned as [`obs::OpKind::Other`] so the sum of
//! all spans reconciles against the device's aggregate stats.
//!
//! The wrapper adds no synchronization of its own (spans are
//! thread-local and lock-free) and delegates every call unchanged, so
//! a traced run behaves identically to an untraced one — the only
//! override beyond spanning is [`FileSystem::append`], which forwards
//! straight to the inner `appendv` under an [`obs::OpKind::Append`]
//! span rather than re-entering the traced `appendv` (the nested
//! guard would be passive anyway; this keeps one guard per call).

use std::sync::Arc;

use obs::{OpKind, Recorder};
use pmem::PmemDevice;

use crate::{
    ConsistencyClass, Fd, FileStat, FileSystem, FsResult, IoVec, OpenFlags, ReadView, SeekFrom,
};

/// A [`FileSystem`] decorator that records one span per operation into
/// an [`obs::Recorder`].
pub struct TracedFs {
    inner: Arc<dyn FileSystem>,
    recorder: Arc<Recorder>,
}

impl TracedFs {
    /// Wraps `inner` so every operation records into `recorder`.
    pub fn new(inner: Arc<dyn FileSystem>, recorder: Arc<Recorder>) -> Self {
        Self { inner, recorder }
    }

    /// The recorder operations are recorded into.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// The wrapped file system.
    pub fn inner(&self) -> &Arc<dyn FileSystem> {
        &self.inner
    }
}

impl FileSystem for TracedFs {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn consistency(&self) -> ConsistencyClass {
        self.inner.consistency()
    }

    fn device(&self) -> &Arc<PmemDevice> {
        self.inner.device()
    }

    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        let kind = if flags.create {
            OpKind::Create
        } else {
            OpKind::Open
        };
        let _span = self.recorder.span(kind);
        self.inner.open(path, flags)
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        let _span = self.recorder.span(OpKind::Close);
        self.inner.close(fd)
    }

    fn read_at(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        let _span = self.recorder.span(OpKind::Read);
        self.inner.read_at(fd, offset, buf)
    }

    fn write_at(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize> {
        let _span = self.recorder.span(OpKind::Write);
        self.inner.write_at(fd, offset, data)
    }

    fn read(&self, fd: Fd, buf: &mut [u8]) -> FsResult<usize> {
        let _span = self.recorder.span(OpKind::Read);
        self.inner.read(fd, buf)
    }

    fn write(&self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        let _span = self.recorder.span(OpKind::Write);
        self.inner.write(fd, data)
    }

    fn lseek(&self, fd: Fd, pos: SeekFrom) -> FsResult<u64> {
        let _span = self.recorder.span(OpKind::Other);
        self.inner.lseek(fd, pos)
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        let _span = self.recorder.span(OpKind::Fsync);
        self.inner.fsync(fd)
    }

    fn ftruncate(&self, fd: Fd, size: u64) -> FsResult<()> {
        let _span = self.recorder.span(OpKind::Other);
        self.inner.ftruncate(fd, size)
    }

    fn fstat(&self, fd: Fd) -> FsResult<FileStat> {
        let _span = self.recorder.span(OpKind::Other);
        self.inner.fstat(fd)
    }

    fn stat(&self, path: &str) -> FsResult<FileStat> {
        let _span = self.recorder.span(OpKind::Other);
        self.inner.stat(path)
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        let _span = self.recorder.span(OpKind::Other);
        self.inner.unlink(path)
    }

    fn rename(&self, old: &str, new: &str) -> FsResult<()> {
        let _span = self.recorder.span(OpKind::Other);
        self.inner.rename(old, new)
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        let _span = self.recorder.span(OpKind::Other);
        self.inner.mkdir(path)
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        let _span = self.recorder.span(OpKind::Other);
        self.inner.rmdir(path)
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        let _span = self.recorder.span(OpKind::Other);
        self.inner.readdir(path)
    }

    fn sync(&self) -> FsResult<()> {
        let _span = self.recorder.span(OpKind::Other);
        self.inner.sync()
    }

    fn read_view(&self, fd: Fd, offset: u64, len: usize) -> FsResult<ReadView<'_>> {
        let _span = self.recorder.span(OpKind::ReadView);
        self.inner.read_view(fd, offset, len)
    }

    fn writev_at(&self, fd: Fd, offset: u64, iov: &[IoVec<'_>]) -> FsResult<usize> {
        let _span = self.recorder.span(OpKind::WritevAt);
        self.inner.writev_at(fd, offset, iov)
    }

    fn appendv(&self, fd: Fd, iov: &[IoVec<'_>]) -> FsResult<usize> {
        let _span = self.recorder.span(OpKind::Appendv);
        self.inner.appendv(fd, iov)
    }

    fn append(&self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        let _span = self.recorder.span(OpKind::Append);
        self.inner.appendv(fd, &[IoVec::new(data)])
    }

    fn fsync_many(&self, fds: &[Fd]) -> FsResult<()> {
        let _span = self.recorder.span(OpKind::FsyncMany);
        self.inner.fsync_many(fds)
    }

    fn fdatasync(&self, fd: Fd) -> FsResult<()> {
        let _span = self.recorder.span(OpKind::Fdatasync);
        self.inner.fdatasync(fd)
    }
}
