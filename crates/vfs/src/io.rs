//! Zero-copy and vectored I/O types for the [`FileSystem`] trait.
//!
//! SplitFS's central claim is that data operations should be processor
//! loads and stores on mapped persistent memory.  The plain POSIX read
//! path contradicts that: `read_at` memcpys bytes out of a DAX mapping
//! into a caller buffer, and every `write` is one contiguous span even
//! when the application assembled the record from parts.  This module
//! provides the types that let the API express what the hardware can do:
//!
//! * [`IoVec`] — one slice of a gathered write, the argument unit of
//!   [`FileSystem::writev_at`] and [`FileSystem::appendv`];
//! * [`ReadView`] — the result of [`FileSystem::read_view`]: either a
//!   **borrow-guard** over mapped device memory (zero memcpy; SplitFS and
//!   the kernel file system serve this from their mapping structures) or
//!   an owned buffer (the baseline fallback), behind one type so callers
//!   are written once.
//!
//! [`FileSystem`]: crate::FileSystem
//! [`FileSystem::writev_at`]: crate::FileSystem::writev_at
//! [`FileSystem::appendv`]: crate::FileSystem::appendv
//! [`FileSystem::read_view`]: crate::FileSystem::read_view

use std::ops::Deref;

use pmem::PmemView;

/// One slice of a gathered (vectored) write, the moral equivalent of
/// `struct iovec`.
///
/// A `&[IoVec<'_>]` describes a logically contiguous byte range assembled
/// from discontiguous parts; [`FileSystem::writev_at`](crate::FileSystem::writev_at)
/// and [`FileSystem::appendv`](crate::FileSystem::appendv) write it as one
/// operation — one syscall-equivalent, one allocation/journal decision,
/// and (on SplitFS) one staging gather with one log fence.
#[derive(Debug, Clone, Copy)]
pub struct IoVec<'a> {
    data: &'a [u8],
}

impl<'a> IoVec<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data }
    }

    /// The wrapped bytes.
    pub fn as_slice(&self) -> &'a [u8] {
        self.data
    }

    /// Length of this slice in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl<'a> From<&'a [u8]> for IoVec<'a> {
    fn from(data: &'a [u8]) -> Self {
        Self::new(data)
    }
}

impl<'a, const N: usize> From<&'a [u8; N]> for IoVec<'a> {
    fn from(data: &'a [u8; N]) -> Self {
        Self::new(data)
    }
}

/// Total byte length of a gather list.
pub fn iov_total_len(iov: &[IoVec<'_>]) -> u64 {
    iov.iter().map(|v| v.len() as u64).sum()
}

/// Concatenates a gather list into one owned buffer (the fallback used by
/// file systems without a native gathered write path).
pub fn iov_gather(iov: &[IoVec<'_>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(iov_total_len(iov) as usize);
    for v in iov {
        out.extend_from_slice(v.as_slice());
    }
    out
}

/// The result of a [`FileSystem::read_view`](crate::FileSystem::read_view):
/// file bytes served either as a zero-copy borrow of mapped device memory
/// or as an owned buffer, behind one dereferenceable type.
///
/// A `Mapped` view is a borrow guard: it pins the underlying device region
/// (readers-writer semantics) for its lifetime, exactly like holding a
/// pointer into a DAX mapping.  Treat it as short-lived: drop it (or
/// [`ReadView::into_vec`] it) before issuing further writes from the same
/// thread, and never hold one while blocking on a lock that a writing
/// thread may own — the pinned region blocks writers from **any** thread,
/// so parking on such a lock with a live view is an ABBA deadlock.
#[derive(Debug)]
pub enum ReadView<'a> {
    /// A zero-copy borrow of mapped persistent memory — no memcpy was
    /// performed to produce these bytes.
    Mapped(PmemView<'a>),
    /// An owned copy (baseline fallback, hole-spanning reads, or ranges
    /// overlaid by not-yet-relinked staged data).
    Owned(Vec<u8>),
}

impl ReadView<'_> {
    /// The bytes of the view.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            ReadView::Mapped(view) => view,
            ReadView::Owned(buf) => buf,
        }
    }

    /// Length of the view in bytes (like a `read` return value, this may be
    /// shorter than requested near end of file).
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the view is empty (offset at or past end of file).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the bytes were served without a memcpy.
    pub fn is_zero_copy(&self) -> bool {
        matches!(self, ReadView::Mapped(_))
    }

    /// Converts the view into an owned vector, copying only if the view was
    /// zero-copy (an `Owned` view is returned as-is).  This also releases
    /// the borrow guard, so it is the right way to keep the bytes around
    /// across further file-system calls.
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            ReadView::Mapped(view) => view.to_vec(),
            ReadView::Owned(buf) => buf,
        }
    }
}

impl Deref for ReadView<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for ReadView<'_> {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iovec_wraps_and_measures_slices() {
        let a = [1u8, 2, 3];
        let b: &[u8] = &[4, 5];
        let iov = [IoVec::from(&a), IoVec::new(b), IoVec::new(&[])];
        assert_eq!(iov_total_len(&iov), 5);
        assert_eq!(iov_gather(&iov), vec![1, 2, 3, 4, 5]);
        assert!(iov[2].is_empty());
        assert_eq!(iov[0].len(), 3);
    }

    #[test]
    fn owned_view_dereferences_and_converts_without_copy_semantics() {
        let view = ReadView::Owned(vec![7u8; 10]);
        assert_eq!(view.len(), 10);
        assert!(!view.is_zero_copy());
        assert_eq!(&view[..3], &[7, 7, 7]);
        assert_eq!(view.into_vec(), vec![7u8; 10]);
    }

    #[test]
    fn mapped_view_reports_zero_copy() {
        let device = pmem::PmemBuilder::new(1024 * 1024).build();
        device.write_uncharged(64, &[9u8; 32]);
        let inner = device
            .try_read_view(
                64,
                32,
                pmem::AccessPattern::Sequential,
                pmem::TimeCategory::UserData,
            )
            .unwrap();
        let view = ReadView::Mapped(inner);
        assert!(view.is_zero_copy());
        assert_eq!(view.len(), 32);
        assert!(view.iter().all(|&b| b == 9));
        assert_eq!(view.into_vec(), vec![9u8; 32]);
    }
}
