//! Absolute-path helpers shared by the file-system implementations.
//!
//! Paths in the reproduction are simple: absolute, `/`-separated, no `.` or
//! `..` components after normalization, and no trailing slash except for
//! the root itself.

use crate::error::{FsError, FsResult};

/// Normalizes `path` into a canonical absolute path.
///
/// * collapses repeated slashes,
/// * removes `.` components,
/// * resolves `..` components (never above the root),
/// * strips any trailing slash (except for `/` itself).
///
/// Returns [`FsError::InvalidArgument`] for relative or empty paths.
pub fn normalize(path: &str) -> FsResult<String> {
    if !path.starts_with('/') {
        return Err(FsError::InvalidArgument);
    }
    let mut parts: Vec<&str> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            other => parts.push(other),
        }
    }
    if parts.is_empty() {
        Ok("/".to_string())
    } else {
        Ok(format!("/{}", parts.join("/")))
    }
}

/// Splits a normalized path into `(parent, file_name)`.
///
/// The root has no parent and returns [`FsError::InvalidArgument`].
pub fn split(path: &str) -> FsResult<(String, String)> {
    let norm = normalize(path)?;
    if norm == "/" {
        return Err(FsError::InvalidArgument);
    }
    match norm.rfind('/') {
        Some(0) => Ok(("/".to_string(), norm[1..].to_string())),
        Some(idx) => Ok((norm[..idx].to_string(), norm[idx + 1..].to_string())),
        None => Err(FsError::InvalidArgument),
    }
}

/// Returns the components of a normalized path, excluding the root.
pub fn components(path: &str) -> FsResult<Vec<String>> {
    let norm = normalize(path)?;
    if norm == "/" {
        return Ok(Vec::new());
    }
    Ok(norm[1..].split('/').map(str::to_string).collect())
}

/// Joins a directory path with an entry name.
pub fn join(dir: &str, name: &str) -> String {
    if dir == "/" {
        format!("/{name}")
    } else {
        format!("{dir}/{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_common_forms() {
        assert_eq!(normalize("/a/b/c").unwrap(), "/a/b/c");
        assert_eq!(normalize("//a///b/").unwrap(), "/a/b");
        assert_eq!(normalize("/a/./b").unwrap(), "/a/b");
        assert_eq!(normalize("/a/../b").unwrap(), "/b");
        assert_eq!(normalize("/..").unwrap(), "/");
        assert_eq!(normalize("/").unwrap(), "/");
    }

    #[test]
    fn rejects_relative_paths() {
        assert_eq!(normalize("a/b"), Err(FsError::InvalidArgument));
        assert_eq!(normalize(""), Err(FsError::InvalidArgument));
    }

    #[test]
    fn splits_into_parent_and_name() {
        assert_eq!(split("/a").unwrap(), ("/".to_string(), "a".to_string()));
        assert_eq!(
            split("/a/b/c").unwrap(),
            ("/a/b".to_string(), "c".to_string())
        );
        assert_eq!(split("/"), Err(FsError::InvalidArgument));
    }

    #[test]
    fn components_and_join_round_trip() {
        let comps = components("/x/y/z").unwrap();
        assert_eq!(comps, vec!["x", "y", "z"]);
        assert_eq!(join("/", "a"), "/a");
        assert_eq!(join("/a/b", "c"), "/a/b/c");
        assert!(components("/").unwrap().is_empty());
    }
}
