//! Plain data types used across the file-system interface.

/// A file descriptor.  Descriptors are per-file-system-instance integers.
pub type Fd = u64;

/// How a file is opened.  Mirrors the subset of `open(2)` flags the paper's
/// workloads use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create the file if it does not exist (`O_CREAT`).
    pub create: bool,
    /// Truncate the file to zero length on open (`O_TRUNC`).
    pub truncate: bool,
    /// All writes go to the end of the file (`O_APPEND`).
    pub append: bool,
    /// Fail if the file already exists (`O_EXCL`, with `create`).
    pub exclusive: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn read_only() -> Self {
        Self {
            read: true,
            ..Self::default()
        }
    }

    /// `O_RDWR`.
    pub fn read_write() -> Self {
        Self {
            read: true,
            write: true,
            ..Self::default()
        }
    }

    /// `O_RDWR | O_CREAT`.
    pub fn create() -> Self {
        Self {
            read: true,
            write: true,
            create: true,
            ..Self::default()
        }
    }

    /// `O_RDWR | O_CREAT | O_TRUNC`.
    pub fn create_truncate() -> Self {
        Self {
            read: true,
            write: true,
            create: true,
            truncate: true,
            ..Self::default()
        }
    }

    /// `O_RDWR | O_CREAT | O_EXCL`.
    pub fn create_new() -> Self {
        Self {
            read: true,
            write: true,
            create: true,
            exclusive: true,
            ..Self::default()
        }
    }

    /// `O_RDWR | O_CREAT | O_APPEND`.
    pub fn append() -> Self {
        Self {
            read: true,
            write: true,
            create: true,
            append: true,
            ..Self::default()
        }
    }
}

/// File metadata, the subset of `struct stat` the workloads need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FileStat {
    /// Inode number.
    pub ino: u64,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// Number of file-system blocks allocated to the file.
    pub blocks: u64,
    /// Whether this is a directory.
    pub is_dir: bool,
    /// Link count.
    pub nlink: u32,
}

/// Seek origin for [`crate::FileSystem::lseek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeekFrom {
    /// Absolute offset from the start of the file.
    Start(u64),
    /// Signed offset from the current position.
    Current(i64),
    /// Signed offset from the end of the file.
    End(i64),
}

/// The guarantee class a file-system configuration provides, used to group
/// comparable systems in the evaluation (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsistencyClass {
    /// Metadata consistency only; data operations are neither synchronous
    /// nor atomic (ext4 DAX, SplitFS-POSIX).
    Posix,
    /// Data and metadata operations are synchronous but data operations are
    /// not atomic (PMFS, NOVA-relaxed, SplitFS-sync).
    Sync,
    /// All operations are synchronous and atomic (NOVA-strict, Strata,
    /// SplitFS-strict).
    Strict,
}

impl ConsistencyClass {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ConsistencyClass::Posix => "POSIX",
            ConsistencyClass::Sync => "sync",
            ConsistencyClass::Strict => "strict",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_flag_constructors_set_expected_bits() {
        assert!(OpenFlags::read_only().read);
        assert!(!OpenFlags::read_only().write);
        assert!(OpenFlags::create_truncate().truncate);
        assert!(OpenFlags::create_new().exclusive);
        assert!(OpenFlags::append().append);
        assert!(OpenFlags::append().create);
    }

    #[test]
    fn consistency_labels() {
        assert_eq!(ConsistencyClass::Posix.label(), "POSIX");
        assert_eq!(ConsistencyClass::Sync.label(), "sync");
        assert_eq!(ConsistencyClass::Strict.label(), "strict");
    }

    #[test]
    fn file_stat_default_is_empty_regular_file() {
        let st = FileStat::default();
        assert_eq!(st.size, 0);
        assert!(!st.is_dir);
    }
}
