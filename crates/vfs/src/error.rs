//! Error types shared by every file system in the workspace.

use std::fmt;

/// Result alias used throughout the file-system crates.
pub type FsResult<T> = Result<T, FsError>;

/// Errors a file-system operation can return.  The variants map onto the
/// POSIX errno values an application linked against the real SplitFS
/// library would observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The path does not exist (`ENOENT`).
    NotFound,
    /// The path already exists and exclusive creation was requested
    /// (`EEXIST`).
    AlreadyExists,
    /// A path component that must be a directory is not one (`ENOTDIR`).
    NotADirectory,
    /// The operation requires a regular file but got a directory
    /// (`EISDIR`).
    IsADirectory,
    /// The directory is not empty (`ENOTEMPTY`).
    NotEmpty,
    /// The file descriptor is not open (`EBADF`).
    BadFd,
    /// The device ran out of space (`ENOSPC`).
    NoSpace,
    /// An argument was invalid, e.g. a negative seek (`EINVAL`).
    InvalidArgument,
    /// The descriptor was not opened for this access mode (`EACCES`).
    PermissionDenied,
    /// The operation is not supported by this file system (`ENOTSUP`).
    NotSupported,
    /// On-media state failed a consistency check during recovery.
    Corrupted(String),
    /// Any other I/O failure, with a description.
    Io(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::AlreadyExists => write!(f, "file already exists"),
            FsError::NotADirectory => write!(f, "not a directory"),
            FsError::IsADirectory => write!(f, "is a directory"),
            FsError::NotEmpty => write!(f, "directory not empty"),
            FsError::BadFd => write!(f, "bad file descriptor"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::InvalidArgument => write!(f, "invalid argument"),
            FsError::PermissionDenied => write!(f, "permission denied"),
            FsError::NotSupported => write!(f, "operation not supported"),
            FsError::Corrupted(msg) => write!(f, "corrupted file system state: {msg}"),
            FsError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<pmem::MediaError> for FsError {
    /// An uncorrectable media error surfaces to applications as `EIO`.
    fn from(e: pmem::MediaError) -> Self {
        FsError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_posix_like() {
        assert_eq!(FsError::NotFound.to_string(), "no such file or directory");
        assert_eq!(FsError::BadFd.to_string(), "bad file descriptor");
        assert!(FsError::Corrupted("bad checksum".into())
            .to_string()
            .contains("bad checksum"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(FsError::NoSpace, FsError::NoSpace);
        assert_ne!(FsError::NoSpace, FsError::NotFound);
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(FsError::InvalidArgument);
        assert!(e.to_string().contains("invalid"));
    }
}
