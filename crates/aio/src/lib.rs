//! io_uring-shaped asynchronous frontend over [`vfs::FileSystem`].
//!
//! The synchronous API blocks every caller through staging plus a log
//! fence, so a server fronting many connections cannot keep thousands
//! of operations in flight per core.  This crate adds the missing
//! shape: callers enqueue [`Sqe`]s (append/write/read/fsync) into a
//! lock-free per-thread **submission ring** and harvest [`Cqe`]s from a
//! paired **completion ring**.  Completions carry a **durability
//! epoch** — a monotonically published sequence number meaning "every
//! write with epoch ≤ N is durable" — so a caller awaits
//! [`RingFs::await_epoch`] instead of issuing `fsync`.
//!
//! A *drainer* (the caller itself, or a file system's maintenance
//! daemon) pops submissions from every registered ring and hands the
//! whole cross-ring batch to one [`RingBackend::run_batch`] call.
//! That is the structural win over the synchronous path: the backend
//! sees operations against *unrelated* files side by side and can
//! coalesce their ordering fences — something a blocking `appendv`,
//! which returns before the next operation exists, can never do.
//!
//! Epoch rules (the invariants the tests and CI gate):
//!
//! 1. A backend publishes an epoch only *after* the fence that made
//!    every write with that epoch durable.
//! 2. A [`Cqe`] never reports an epoch greater than the backend's
//!    published epoch at the time the completion is posted.
//! 3. Published epochs are monotone (`fetch_max` publication).
//!
//! Lock ordering: the drain lock is the outermost lock — a drainer
//! acquires file-system locks (file states, lanes) *under* it, so no
//! thread may submit, drain, or await an epoch while holding any
//! file-system lock.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;
use pmem::PmemDevice;
use vfs::{Fd, FileSystem, FsError, FsResult, IoVec};

/// Default number of submissions a single drain pass will pop.
pub const DEFAULT_DRAIN_BATCH: usize = 256;

// ---------------------------------------------------------------------
// Submission and completion entries
// ---------------------------------------------------------------------

/// The operation carried by one submission entry.  Buffers are owned:
/// a submission outlives the submitting stack frame and crosses
/// threads to whichever drainer executes it.
#[derive(Debug, Clone)]
pub enum SqeOp {
    /// Append a gather list at the end of file (offset resolved under
    /// the file-state lock at execution time, like `appendv`).
    Appendv {
        /// Target descriptor.
        fd: Fd,
        /// Gather list, one owned buffer per slice.
        bufs: Vec<Vec<u8>>,
    },
    /// Write a gather list at an absolute offset (like `writev_at`).
    WritevAt {
        /// Target descriptor.
        fd: Fd,
        /// Absolute file offset of the first byte.
        offset: u64,
        /// Gather list, one owned buffer per slice.
        bufs: Vec<Vec<u8>>,
    },
    /// Read up to `len` bytes at an absolute offset; the bytes come
    /// back in [`Cqe::data`].
    Read {
        /// Source descriptor.
        fd: Fd,
        /// Absolute file offset of the first byte.
        offset: u64,
        /// Maximum bytes to read.
        len: usize,
    },
    /// Flush the descriptor's completed-but-volatile state.
    Fsync {
        /// Target descriptor.
        fd: Fd,
    },
}

impl SqeOp {
    /// Whether this operation writes data (and therefore participates
    /// in the batch's durability fence and epoch).
    pub fn is_write(&self) -> bool {
        matches!(self, SqeOp::Appendv { .. } | SqeOp::WritevAt { .. })
    }

    /// The descriptor the operation targets.
    pub fn fd(&self) -> Fd {
        match self {
            SqeOp::Appendv { fd, .. }
            | SqeOp::WritevAt { fd, .. }
            | SqeOp::Read { fd, .. }
            | SqeOp::Fsync { fd } => *fd,
        }
    }
}

/// One submission-queue entry.
#[derive(Debug, Clone)]
pub struct Sqe {
    /// Opaque caller tag, echoed verbatim in the matching [`Cqe`].
    pub user_data: u64,
    /// The operation to perform.
    pub op: SqeOp,
}

impl Sqe {
    /// Builds an append submission from owned buffers.
    pub fn appendv(user_data: u64, fd: Fd, bufs: Vec<Vec<u8>>) -> Self {
        Self {
            user_data,
            op: SqeOp::Appendv { fd, bufs },
        }
    }

    /// Builds a positioned vectored-write submission.
    pub fn writev_at(user_data: u64, fd: Fd, offset: u64, bufs: Vec<Vec<u8>>) -> Self {
        Self {
            user_data,
            op: SqeOp::WritevAt { fd, offset, bufs },
        }
    }

    /// Builds a positioned read submission.
    pub fn read(user_data: u64, fd: Fd, offset: u64, len: usize) -> Self {
        Self {
            user_data,
            op: SqeOp::Read { fd, offset, len },
        }
    }

    /// Builds an fsync submission.
    pub fn fsync(user_data: u64, fd: Fd) -> Self {
        Self {
            user_data,
            op: SqeOp::Fsync { fd },
        }
    }
}

/// One completion-queue entry.
#[derive(Debug)]
pub struct Cqe {
    /// The submitting caller's tag, copied from the [`Sqe`].
    pub user_data: u64,
    /// Bytes transferred (writes/reads) or 0 (fsync), or the error the
    /// operation failed with.
    pub result: FsResult<u64>,
    /// The durability epoch this completion is covered by: once
    /// [`RingBackend::published_epoch`] reaches this value, the
    /// operation's effects are durable.  Never greater than the
    /// published epoch at posting time (epoch rule 2).
    pub epoch: u64,
    /// The bytes a [`SqeOp::Read`] produced.
    pub data: Option<Vec<u8>>,
}

// ---------------------------------------------------------------------
// Lock-free single-producer / single-consumer ring
// ---------------------------------------------------------------------

/// A bounded lock-free SPSC ring buffer.
///
/// Soundness contract (enforced by the owning types, not by this
/// struct): at most one thread pushes concurrently and at most one
/// thread pops concurrently.  [`Ring`] is `!Sync`, making the caller
/// side single-threaded; the drainer side is serialized by
/// [`RingFs`]'s drain lock.
struct SpscRing<T> {
    slots: Box<[UnsafeCell<Option<T>>]>,
    mask: usize,
    /// Next slot to pop (consumer cursor).
    head: AtomicUsize,
    /// Next slot to push (producer cursor).
    tail: AtomicUsize,
}

// SAFETY: the single-producer/single-consumer contract above means a
// slot is touched by exactly one thread at a time, with the Acquire /
// Release cursor pair ordering the hand-off.
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }

    fn try_push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.slots.len() {
            return Err(value);
        }
        // SAFETY: only the single producer writes this slot, and the
        // consumer cannot read it until the Release store below.
        unsafe { *self.slots[tail & self.mask].get() = Some(value) };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    fn try_pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: only the single consumer reads this slot, and the
        // producer cannot reuse it until the Release store below.
        let value = unsafe { (*self.slots[head & self.mask].get()).take() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        value
    }
}

// ---------------------------------------------------------------------
// Ring pair
// ---------------------------------------------------------------------

/// The shared state behind one caller's ring pair: its submission
/// ring, its completion ring, a bounded-overflow spill list, and the
/// submitted-but-unharvested count.
struct RingCore {
    sq: SpscRing<Sqe>,
    cq: SpscRing<Cqe>,
    /// Completions that arrived while the completion ring was full
    /// (the caller stopped harvesting).  Never dropped — io_uring's
    /// overflow semantics, minus the flag.
    overflow: Mutex<VecDeque<Cqe>>,
    /// Submitted entries whose completion has not been *posted* yet
    /// (queued plus executing).  Lets `await_epoch` distinguish "work
    /// still in flight elsewhere" from "that epoch will never come".
    in_flight: AtomicUsize,
}

/// A caller's handle to one submission/completion ring pair.
///
/// `Ring` is `Send` but deliberately `!Sync`: one thread owns the
/// submitting and harvesting side (the single-producer /
/// single-consumer half of the lock-free contract).  Drop the handle
/// to retire the pair; the hub holds only a weak reference and prunes
/// dead rings on the next drain.
pub struct Ring {
    core: Arc<RingCore>,
    /// `Cell` is `Send + !Sync`; inherits exactly that marker pair.
    _single_thread: PhantomData<Cell<()>>,
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.capacity())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

impl Ring {
    /// Submission-queue capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.core.sq.capacity()
    }

    /// Entries submitted and not yet harvested (queued, executing, or
    /// waiting in the completion ring).
    pub fn in_flight(&self) -> usize {
        self.core.in_flight.load(Ordering::Acquire)
    }

    /// Entries sitting in the submission ring awaiting a drain.
    pub fn pending(&self) -> usize {
        self.core.sq.len()
    }

    /// Enqueues one submission.  Fails (returning the entry) when the
    /// submission ring is full — the caller should drain or harvest
    /// and retry.
    pub fn try_submit(&self, sqe: Sqe) -> Result<(), Sqe> {
        self.core.in_flight.fetch_add(1, Ordering::AcqRel);
        match self.core.sq.try_push(sqe) {
            Ok(()) => Ok(()),
            Err(sqe) => {
                self.core.in_flight.fetch_sub(1, Ordering::AcqRel);
                Err(sqe)
            }
        }
    }

    /// Pops every available completion into `out`; returns how many.
    pub fn harvest(&self, out: &mut Vec<Cqe>) -> usize {
        let mut n = 0;
        {
            let mut spilled = self.core.overflow.lock();
            while let Some(cqe) = spilled.pop_front() {
                out.push(cqe);
                n += 1;
            }
        }
        while let Some(cqe) = self.core.cq.try_pop() {
            out.push(cqe);
            n += 1;
        }
        n
    }
}

// ---------------------------------------------------------------------
// Backend
// ---------------------------------------------------------------------

/// What executes drained batches: a file system (or an adapter over
/// one) that can run a cross-ring batch of submissions and stamp the
/// resulting completions with durability epochs.
pub trait RingBackend: Send + Sync {
    /// Executes `sqes` and returns exactly one [`Cqe`] per entry, in
    /// the same order.  Writes in the batch may share durability
    /// fences; the backend publishes the batch's epoch *before*
    /// returning (epoch rules 1–2).
    fn run_batch(&self, sqes: Vec<Sqe>) -> Vec<Cqe>;

    /// The highest epoch known durable.  Monotone.
    fn published_epoch(&self) -> u64;

    /// The device the backend runs on (for counter attribution).
    fn device(&self) -> &Arc<PmemDevice>;
}

/// A [`RingBackend`] any [`FileSystem`] can back: executes each
/// operation synchronously, then retires the batch's write
/// descriptors with one `fsync_many` and advances a private epoch.
/// The batch still amortizes the per-descriptor durability work even
/// though the file system underneath has no epoch concept of its own.
pub struct SyncBackend {
    fs: Arc<dyn FileSystem>,
    epoch: AtomicU64,
}

impl SyncBackend {
    /// Wraps `fs` with a fresh epoch counter starting at zero.
    pub fn new(fs: Arc<dyn FileSystem>) -> Self {
        Self {
            fs,
            epoch: AtomicU64::new(0),
        }
    }

    fn execute(&self, op: &SqeOp) -> (FsResult<u64>, Option<Vec<u8>>) {
        match op {
            SqeOp::Appendv { fd, bufs } => {
                let iov: Vec<IoVec<'_>> = bufs.iter().map(|b| IoVec::new(b)).collect();
                (self.fs.appendv(*fd, &iov).map(|n| n as u64), None)
            }
            SqeOp::WritevAt { fd, offset, bufs } => {
                let iov: Vec<IoVec<'_>> = bufs.iter().map(|b| IoVec::new(b)).collect();
                (
                    self.fs.writev_at(*fd, *offset, &iov).map(|n| n as u64),
                    None,
                )
            }
            SqeOp::Read { fd, offset, len } => {
                let mut buf = vec![0u8; *len];
                match self.fs.read_at(*fd, *offset, &mut buf) {
                    Ok(n) => {
                        buf.truncate(n);
                        (Ok(n as u64), Some(buf))
                    }
                    Err(e) => (Err(e), None),
                }
            }
            SqeOp::Fsync { fd } => (self.fs.fsync(*fd).map(|_| 0), None),
        }
    }
}

impl RingBackend for SyncBackend {
    fn run_batch(&self, sqes: Vec<Sqe>) -> Vec<Cqe> {
        let mut results = Vec::with_capacity(sqes.len());
        let mut write_fds: Vec<Fd> = Vec::new();
        let mut durable_work = false;
        for sqe in &sqes {
            let (result, data) = self.execute(&sqe.op);
            if result.is_ok() {
                match sqe.op {
                    SqeOp::Appendv { fd, .. } | SqeOp::WritevAt { fd, .. } => write_fds.push(fd),
                    SqeOp::Fsync { .. } => durable_work = true,
                    SqeOp::Read { .. } => {}
                }
            }
            results.push((result, data));
        }
        write_fds.sort_unstable();
        write_fds.dedup();
        let mut fsync_err = None;
        if !write_fds.is_empty() {
            match self.fs.fsync_many(&write_fds) {
                Ok(()) => durable_work = true,
                Err(e) => fsync_err = Some(e),
            }
        }
        // Publish before posting completions (epoch rule 2).
        let epoch = if durable_work {
            self.epoch.fetch_add(1, Ordering::AcqRel) + 1
        } else {
            self.epoch.load(Ordering::Acquire)
        };
        sqes.into_iter()
            .zip(results)
            .map(|(sqe, (result, data))| {
                // A write is only durable if the batch fence ran; surface
                // the fence failure on every write it stranded.
                let result = match (&fsync_err, &sqe.op) {
                    (Some(e), op) if op.is_write() && result.is_ok() => Err(e.clone()),
                    _ => result,
                };
                Cqe {
                    user_data: sqe.user_data,
                    result,
                    epoch,
                    data,
                }
            })
            .collect()
    }

    fn published_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn device(&self) -> &Arc<PmemDevice> {
        self.fs.device()
    }
}

// ---------------------------------------------------------------------
// The hub
// ---------------------------------------------------------------------

/// The ring hub: hands out per-thread ring pairs over one
/// [`RingBackend`] and drains them in cross-ring batches.
///
/// Drains may be driven by any thread — the submitting caller while it
/// waits, or a background daemon — and are serialized by an internal
/// drain lock, so the backend always sees one batch at a time and the
/// submission rings keep their single-consumer contract.
pub struct RingFs {
    backend: Arc<dyn RingBackend>,
    rings: Mutex<Vec<Weak<RingCore>>>,
    drain_lock: Mutex<()>,
}

impl std::fmt::Debug for RingFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingFs")
            .field("rings", &self.rings.lock().len())
            .field("published_epoch", &self.published_epoch())
            .finish()
    }
}

impl RingFs {
    /// Builds a hub over an explicit backend.
    pub fn with_backend(backend: Arc<dyn RingBackend>) -> Arc<Self> {
        Arc::new(Self {
            backend,
            rings: Mutex::new(Vec::new()),
            drain_lock: Mutex::new(()),
        })
    }

    /// Builds a hub over any file system via [`SyncBackend`].
    pub fn new(fs: Arc<dyn FileSystem>) -> Arc<Self> {
        Self::with_backend(Arc::new(SyncBackend::new(fs)))
    }

    /// Creates and registers a ring pair with at least `depth`
    /// submission slots (rounded up to a power of two).
    pub fn ring(&self, depth: usize) -> Ring {
        let core = Arc::new(RingCore {
            sq: SpscRing::new(depth),
            cq: SpscRing::new(depth.max(2) * 2),
            overflow: Mutex::new(VecDeque::new()),
            in_flight: AtomicUsize::new(0),
        });
        self.rings.lock().push(Arc::downgrade(&core));
        Ring {
            core,
            _single_thread: PhantomData,
        }
    }

    /// The backend's highest published durability epoch.
    pub fn published_epoch(&self) -> u64 {
        self.backend.published_epoch()
    }

    /// Entries submitted to any live ring whose completion has not
    /// been posted yet.
    pub fn in_flight(&self) -> usize {
        self.rings
            .lock()
            .iter()
            .filter_map(Weak::upgrade)
            .map(|core| core.in_flight.load(Ordering::Acquire))
            .sum()
    }

    /// Pops up to `max` submissions round-robin across every live ring,
    /// executes them as **one** backend batch (coalescing durability
    /// fences across unrelated files), and posts the completions back
    /// to their submitting rings.  Returns the number of completions
    /// posted.  Safe to call from any thread; concurrent drains
    /// serialize.
    pub fn drain(&self, max: usize) -> usize {
        let _consumer = self.drain_lock.lock();
        let cores: Vec<Arc<RingCore>> = {
            let mut rings = self.rings.lock();
            rings.retain(|w| w.strong_count() > 0);
            rings.iter().filter_map(Weak::upgrade).collect()
        };
        if cores.is_empty() || max == 0 {
            return 0;
        }
        let mut origins: Vec<usize> = Vec::new();
        let mut sqes: Vec<Sqe> = Vec::new();
        'fill: loop {
            let mut popped_any = false;
            for (i, core) in cores.iter().enumerate() {
                if sqes.len() >= max {
                    break 'fill;
                }
                if let Some(sqe) = core.sq.try_pop() {
                    origins.push(i);
                    sqes.push(sqe);
                    popped_any = true;
                }
            }
            if !popped_any {
                break;
            }
        }
        if sqes.is_empty() {
            return 0;
        }
        let stats = self.backend.device().stats();
        stats.add_ring_drain(sqes.len() as u64);
        let count = sqes.len();
        let cqes = self.backend.run_batch(sqes);
        debug_assert_eq!(cqes.len(), count, "run_batch must map sqes 1:1 to cqes");
        if count >= 2 {
            stats.add_completion_batch();
        }
        for (i, cqe) in origins.into_iter().zip(cqes) {
            let core = &cores[i];
            if let Err(cqe) = core.cq.try_push(cqe) {
                core.overflow.lock().push_back(cqe);
            }
            core.in_flight.fetch_sub(1, Ordering::AcqRel);
        }
        count
    }

    /// Blocks (draining) until the published durability epoch reaches
    /// `epoch`.  Fails with [`FsError::InvalidArgument`] if nothing is
    /// in flight anywhere and the epoch still has not been published —
    /// that epoch was never submitted, so it will never arrive.
    pub fn await_epoch(&self, epoch: u64) -> FsResult<()> {
        loop {
            if self.backend.published_epoch() >= epoch {
                self.declare_epoch(epoch);
                return Ok(());
            }
            if self.drain(DEFAULT_DRAIN_BATCH) == 0 {
                if self.backend.published_epoch() >= epoch {
                    self.declare_epoch(epoch);
                    return Ok(());
                }
                if self.in_flight() == 0 {
                    return Err(FsError::InvalidArgument);
                }
                // Another drainer holds the batch; let it finish.
                std::thread::yield_now();
            }
        }
    }

    /// Declares the satisfied `await_epoch` on the device's durability
    /// ledger: this is the application-visible promise the crash-point
    /// fuzzer's oracle checks (publication happened under the backend's
    /// fence, so the declaration rule holds).
    fn declare_epoch(&self, epoch: u64) {
        self.backend
            .device()
            .declare(pmem::Promise::EpochDurable { epoch });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::OpenFlags;

    fn test_fs() -> Arc<dyn FileSystem> {
        let device = pmem::PmemBuilder::new(64 * 1024 * 1024)
            .track_persistence(false)
            .build();
        kernelfs::Ext4Dax::mkfs(device).unwrap()
    }

    #[test]
    fn spsc_ring_pushes_and_pops_in_order() {
        let ring = SpscRing::new(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..4 {
            ring.try_push(i).unwrap();
        }
        assert!(ring.try_push(99).is_err());
        for i in 0..4 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert_eq!(ring.try_pop(), None);
        // Wrap around the cursor mask.
        for round in 0..10 {
            ring.try_push(round).unwrap();
            assert_eq!(ring.try_pop(), Some(round));
        }
    }

    #[test]
    fn spsc_ring_survives_concurrent_producer_consumer() {
        let ring = Arc::new(SpscRing::new(8));
        const N: u64 = 10_000;
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..N {
                    let mut v = i;
                    loop {
                        match ring.try_push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            })
        };
        let mut next = 0u64;
        while next < N {
            if let Some(v) = ring.try_pop() {
                assert_eq!(v, next);
                next += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn ring_round_trip_appends_read_and_awaits_epoch() {
        let fs = test_fs();
        let hub = RingFs::new(Arc::clone(&fs));
        let fd = fs.open("/ring.log", OpenFlags::create()).unwrap();
        let ring = hub.ring(8);

        ring.try_submit(Sqe::appendv(1, fd, vec![b"hello ".to_vec()]))
            .unwrap();
        ring.try_submit(Sqe::appendv(2, fd, vec![b"rings".to_vec()]))
            .unwrap();
        assert_eq!(ring.pending(), 2);
        assert_eq!(hub.drain(DEFAULT_DRAIN_BATCH), 2);

        let mut cqes = Vec::new();
        assert_eq!(ring.harvest(&mut cqes), 2);
        let max_epoch = cqes.iter().map(|c| c.epoch).max().unwrap();
        assert!(max_epoch > 0);
        assert!(max_epoch <= hub.published_epoch());
        hub.await_epoch(max_epoch).unwrap();

        ring.try_submit(Sqe::read(3, fd, 0, 11)).unwrap();
        hub.drain(DEFAULT_DRAIN_BATCH);
        cqes.clear();
        ring.harvest(&mut cqes);
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].user_data, 3);
        assert_eq!(cqes[0].data.as_deref(), Some(&b"hello rings"[..]));
        assert_eq!(ring.in_flight(), 0);
    }

    #[test]
    fn full_submission_ring_rejects_and_recovers() {
        let fs = test_fs();
        let hub = RingFs::new(Arc::clone(&fs));
        let fd = fs.open("/full.log", OpenFlags::create()).unwrap();
        let ring = hub.ring(2);
        for i in 0..ring.capacity() as u64 {
            ring.try_submit(Sqe::appendv(i, fd, vec![vec![0u8; 8]]))
                .unwrap();
        }
        let rejected = ring.try_submit(Sqe::fsync(99, fd));
        assert!(rejected.is_err());
        assert_eq!(ring.in_flight(), ring.capacity());
        hub.drain(DEFAULT_DRAIN_BATCH);
        ring.try_submit(rejected.unwrap_err()).unwrap();
        hub.drain(DEFAULT_DRAIN_BATCH);
        let mut cqes = Vec::new();
        ring.harvest(&mut cqes);
        assert_eq!(cqes.len(), ring.capacity() + 1);
        assert!(cqes.iter().all(|c| c.result.is_ok()));
    }

    #[test]
    fn await_epoch_rejects_epochs_that_were_never_submitted() {
        let fs = test_fs();
        let hub = RingFs::new(fs);
        assert!(matches!(hub.await_epoch(1), Err(FsError::InvalidArgument)));
    }

    #[test]
    fn completion_overflow_never_drops_entries() {
        let fs = test_fs();
        let hub = RingFs::new(Arc::clone(&fs));
        let fd = fs.open("/overflow.log", OpenFlags::create()).unwrap();
        let ring = hub.ring(4);
        // Submit + drain repeatedly without harvesting: completions
        // exceed the completion ring and spill into the overflow list.
        let mut submitted = 0u64;
        for _round in 0..6 {
            for _ in 0..4 {
                ring.try_submit(Sqe::appendv(submitted, fd, vec![vec![1u8; 4]]))
                    .unwrap();
                submitted += 1;
            }
            hub.drain(DEFAULT_DRAIN_BATCH);
        }
        let mut cqes = Vec::new();
        ring.harvest(&mut cqes);
        assert_eq!(cqes.len() as u64, submitted);
        let mut tags: Vec<u64> = cqes.iter().map(|c| c.user_data).collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..submitted).collect::<Vec<_>>());
    }

    #[test]
    fn errors_travel_in_the_cqe_not_the_batch() {
        let fs = test_fs();
        let hub = RingFs::new(Arc::clone(&fs));
        let fd = fs.open("/errs.log", OpenFlags::create()).unwrap();
        let ring = hub.ring(4);
        ring.try_submit(Sqe::appendv(1, fd, vec![b"ok".to_vec()]))
            .unwrap();
        ring.try_submit(Sqe::fsync(2, 9999 as Fd)).unwrap();
        hub.drain(DEFAULT_DRAIN_BATCH);
        let mut cqes = Vec::new();
        ring.harvest(&mut cqes);
        assert_eq!(cqes.len(), 2);
        let ok = cqes.iter().find(|c| c.user_data == 1).unwrap();
        let bad = cqes.iter().find(|c| c.user_data == 2).unwrap();
        assert!(ok.result.is_ok());
        assert!(bad.result.is_err());
    }
}
