//! Multi-instance U-Split over one kernel file system.
//!
//! The invariants under test:
//!
//! * N concurrent [`SplitFs`] instances over one [`Ext4Dax`] lease
//!   disjoint staging directories and operation-log files, with zero
//!   lease conflicts;
//! * an instance crashing — even **mid-relink** — never disturbs another
//!   instance, and per-instance recovery restores the crashed instance's
//!   files while the survivor keeps appending;
//! * a whole-device crash recovers every instance's log independently;
//! * entries tagged with another instance's id never replay
//!   (cross-contamination guard).

use std::sync::Arc;

use chaos::Recovered;
use kernelfs::{Ext4Dax, RelinkOp, BLOCK_SIZE};
use pmem::{PmemBuilder, PmemDevice};
use splitfs::oplog::{LogEntry, LogOp, OpLog};
use splitfs::{Mode, SplitConfig, SplitFs};
use vfs::{FileSystem, OpenFlags};

fn device() -> Arc<PmemDevice> {
    PmemBuilder::new(512 * 1024 * 1024).build()
}

fn strict_config() -> SplitConfig {
    SplitConfig::new(Mode::Strict)
        .with_staging(2, 8 * 1024 * 1024)
        .with_oplog_size(256 * 1024)
        .without_daemon()
}

/// Scans one instance's operation log through the kernel and returns its
/// staged-write entries.
fn staged_entries(kernel: &Arc<Ext4Dax>, instance_id: u32) -> Vec<LogEntry> {
    let path = kernelfs::lease::oplog_path(instance_id);
    let log_fd = kernel.open(&path, OpenFlags::read_only()).unwrap();
    let log_size = kernel.fstat(log_fd).unwrap().size;
    let mapping = kernel.dax_map(log_fd, 0, log_size, false).unwrap();
    let entries = OpLog::scan(kernel.device(), &mapping, log_size);
    kernel.close(log_fd).unwrap();
    entries
        .into_iter()
        .filter(|e| e.op == LogOp::StagedWrite)
        .collect()
}

/// Relinks exactly the first `count` staged entries of an instance's log
/// at the kernel level — the deterministic stand-in for a crash landing
/// mid-way through a relink sweep.
fn relink_first_entries(kernel: &Arc<Ext4Dax>, instance_id: u32, count: usize) {
    let entries = staged_entries(kernel, instance_id);
    assert!(
        entries.len() > count,
        "need more than {count} staged entries to emulate a partial relink"
    );
    let mut fds = Vec::new();
    let mut ops = Vec::new();
    for entry in entries.iter().take(count) {
        let src_fd = kernel
            .open_by_ino(entry.staging_ino, OpenFlags::read_write())
            .unwrap();
        let dst_fd = kernel
            .open_by_ino(entry.target_ino, OpenFlags::read_write())
            .unwrap();
        fds.push(src_fd);
        fds.push(dst_fd);
        ops.push(RelinkOp {
            src_fd,
            src_offset: entry.staging_offset,
            dst_fd,
            dst_offset: entry.target_offset,
            len: entry.len,
        });
    }
    assert_eq!(kernel.ioctl_relink_batch(&ops).unwrap(), count);
    for fd in fds {
        kernel.close(fd).unwrap();
    }
}

#[test]
fn concurrent_instances_lease_disjoint_resources() {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let a = SplitFs::new(Arc::clone(&kernel), strict_config()).unwrap();
    let b = SplitFs::new(Arc::clone(&kernel), strict_config()).unwrap();

    assert_eq!(a.instance_id(), 0);
    assert_eq!(b.instance_id(), 1);
    assert_ne!(a.staging_dir(), b.staging_dir());
    assert_ne!(a.oplog_file(), b.oplog_file());
    assert_eq!(kernel.lease_active_count(), 2);

    // Both instances append and fsync concurrently-visible files.
    let fa = a.open("/a.log", OpenFlags::create()).unwrap();
    let fb = b.open("/b.log", OpenFlags::create()).unwrap();
    let pa = vec![0xAAu8; 3 * BLOCK_SIZE];
    let pb = vec![0xBBu8; 3 * BLOCK_SIZE];
    a.append(fa, &pa).unwrap();
    b.append(fb, &pb).unwrap();
    a.fsync(fa).unwrap();
    b.fsync(fb).unwrap();
    assert_eq!(a.read_file("/a.log").unwrap(), pa);
    assert_eq!(b.read_file("/b.log").unwrap(), pb);

    // No lease was contended, and clean drops return both leases.
    let snap = device.stats().snapshot();
    assert_eq!(snap.lease_conflicts, 0, "{snap:?}");
    drop(a);
    drop(b);
    assert_eq!(kernel.lease_active_count(), 0);
}

#[test]
fn instance_crash_mid_relink_recovers_while_other_keeps_appending() {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let config = strict_config();
    let a = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();
    let b = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();
    let a_id = a.instance_id();

    // A stages four block-aligned appends (never fsynced: everything
    // lives in staging files plus A's log).
    let fa = a.open("/a.db", OpenFlags::create()).unwrap();
    let mut expected_a = Vec::new();
    for i in 0..4u8 {
        let block = vec![0x10 + i; BLOCK_SIZE];
        a.append(fa, &block).unwrap();
        expected_a.extend_from_slice(&block);
    }

    // B starts its own append stream.
    let fb = b.open("/b.db", OpenFlags::create()).unwrap();
    let mut expected_b = Vec::new();
    for i in 0..4u8 {
        let block = vec![0x80 + i; BLOCK_SIZE];
        b.append(fb, &block).unwrap();
        expected_b.extend_from_slice(&block);
    }

    // A crashes MID-RELINK: the first two staged entries were already
    // moved by the kernel (journaled, atomic), the rest were not, and no
    // Invalidate marker or log truncation ever happened.
    relink_first_entries(&kernel, a_id, 2);
    a.abandon_lease_on_drop();
    drop(a);
    assert_eq!(kernel.lease_orphans(), vec![a_id]);

    // B keeps appending and fsyncing while A lies dead — a live instance
    // is never disturbed by another's crash.
    for i in 4..8u8 {
        let block = vec![0x80 + i; BLOCK_SIZE];
        b.append(fb, &block).unwrap();
        expected_b.extend_from_slice(&block);
    }
    b.fsync(fb).unwrap();

    // Per-instance recovery replays A's log: the relinked prefix is
    // recognized as applied (holes), the rest replays.  B is untouched.
    let mut rec = Recovered::attach(Arc::clone(&kernel));
    rec.recover_orphans(&config).unwrap();
    assert_eq!(rec.recovered_orphan_ids(), vec![a_id]);
    let report = *rec.report(a_id).unwrap();
    assert!(report.already_applied >= 2, "{report:?}");
    assert!(report.replayed >= 2, "{report:?}");
    rec.assert_clean();
    assert_eq!(kernel.read_file("/a.db").unwrap(), expected_a);

    // B's view and the kernel's agree, with no contamination from A's
    // replay.
    assert_eq!(b.read_file("/b.db").unwrap(), expected_b);
    b.close(fb).unwrap();
    assert_eq!(kernel.read_file("/b.db").unwrap(), expected_b);

    // A's lease was released by recovery; the id is reusable and a fresh
    // instance starts clean on it.
    assert!(kernel.lease_orphans().is_empty());
    let a2 = SplitFs::new(Arc::clone(&kernel), config).unwrap();
    assert_eq!(a2.instance_id(), a_id);
    assert_eq!(a2.read_file("/a.db").unwrap(), expected_a);
    assert_eq!(a2.oplog_entries(), 0);
    let snap = device.stats().snapshot();
    assert_eq!(snap.lease_conflicts, 0, "{snap:?}");
    assert_eq!(snap.instances_recovered, 1, "{snap:?}");
}

#[test]
fn full_device_crash_recovers_every_instance_independently() {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let config = strict_config();
    let a = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();
    let b = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();

    let fa = a.open("/a.db", OpenFlags::create()).unwrap();
    let fb = b.open("/b.db", OpenFlags::create()).unwrap();
    let pa: Vec<u8> = (0..3 * BLOCK_SIZE as u32)
        .map(|i| (i % 251) as u8)
        .collect();
    let pb: Vec<u8> = (0..2 * BLOCK_SIZE as u32)
        .map(|i| (i % 239) as u8)
        .collect();
    a.append(fa, &pa).unwrap();
    b.append(fb, &pb).unwrap();
    // No fsync, no close: both instances' data exists only in staging
    // files plus their private logs.  The machine dies with both leases
    // active.
    a.abandon_lease_on_drop();
    b.abandon_lease_on_drop();
    drop(a);
    drop(b);
    device.crash();

    let mut rec = Recovered::mount(&device).unwrap();
    let mut orphans = rec.kernel.lease_orphans();
    orphans.sort_unstable();
    assert_eq!(orphans, vec![0, 1], "both leases survive the crash");

    rec.recover_orphans(&config).unwrap();
    let mut recovered_ids = rec.recovered_orphan_ids();
    recovered_ids.sort_unstable();
    assert_eq!(recovered_ids, vec![0, 1]);
    for (_, report) in &rec.orphan_reports {
        assert!(report.replayed >= 1, "{report:?}");
    }
    rec.assert_clean();
    let kernel2 = Arc::clone(&rec.kernel);
    assert_eq!(kernel2.read_file("/a.db").unwrap(), pa);
    assert_eq!(kernel2.read_file("/b.db").unwrap(), pb);
    assert_eq!(kernel2.lease_active_count(), 0);

    // The next mount starts with a clean slate and reuses the ids.
    let fresh = SplitFs::new(Arc::clone(&kernel2), config).unwrap();
    assert_eq!(fresh.instance_id(), 0);
    assert_eq!(fresh.read_file("/a.db").unwrap(), pa);
}

#[test]
fn foreign_tagged_entries_are_never_replayed() {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let config = strict_config();
    let a = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();
    let a_id = a.instance_id();

    let fa = a.open("/a.db", OpenFlags::create()).unwrap();
    let payload = vec![0x42u8; BLOCK_SIZE];
    a.append(fa, &payload).unwrap();

    // Forge an entry in A's log tagged with another instance's id: a
    // checksum-valid copy of A's staged write, pointing one block past
    // the real append.  If replay ignored the tag, /a.db would grow a
    // garbage block.
    let real = staged_entries(&kernel, a_id);
    assert_eq!(real.len(), 1);
    let mut forged = real[0];
    forged.instance_id = a_id + 7;
    forged.target_offset = real[0].target_offset + BLOCK_SIZE as u64;
    forged.seq = real[0].seq + 1;
    let path = kernelfs::lease::oplog_path(a_id);
    let log_fd = kernel.open(&path, OpenFlags::read_write()).unwrap();
    let log_size = kernel.fstat(log_fd).unwrap().size;
    let mapping = kernel.dax_map(log_fd, 0, log_size, false).unwrap();
    // The real entry occupies slot 0 of the active epoch; slot 1 is free.
    let slot_off = {
        let entries = OpLog::scan(kernel.device(), &mapping, log_size);
        entries.len() as u64 * 64
    };
    let (dev_off, _) = mapping.translate(slot_off).unwrap();
    device.write(
        dev_off,
        &forged.encode(),
        pmem::PersistMode::NonTemporal,
        pmem::TimeCategory::OpLog,
    );
    device.fence(pmem::TimeCategory::OpLog);
    kernel.close(log_fd).unwrap();

    a.abandon_lease_on_drop();
    drop(a);
    device.crash();

    let mut rec = Recovered::mount(&device).unwrap();
    let report = *rec.recover_instance(&config, a_id).unwrap();
    assert_eq!(
        report.foreign, 1,
        "the forged entry is rejected: {report:?}"
    );
    assert_eq!(report.replayed, 1, "the genuine entry replays: {report:?}");
    // assert_clean would trip on the *deliberately* foreign entry; the
    // containment claim here is the inverse — it was counted and skipped
    // — so only the fsck half applies.
    assert!(rec.fsck().is_empty(), "{:?}", rec.fsck());
    assert_eq!(
        rec.kernel.read_file("/a.db").unwrap(),
        payload,
        "the foreign entry must not extend the file"
    );
}

#[test]
fn orphaned_ids_are_not_reused_before_recovery() {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    // Orphan recovery disabled: the crashed instance must stay orphaned
    // until this test recovers it explicitly.
    let config = strict_config().without_orphan_recovery();

    let a = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();
    assert_eq!(a.instance_id(), 0);
    a.abandon_lease_on_drop();
    drop(a);

    // The orphan blocks id 0; a new instance leases the next id.
    let b = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();
    assert_eq!(b.instance_id(), 1);
    assert_eq!(kernel.lease_orphans(), vec![0]);

    // Recovery releases the orphan; the id becomes reusable.
    let mut rec = Recovered::attach(Arc::clone(&kernel));
    rec.recover_orphans(&config).unwrap();
    assert_eq!(rec.recovered_orphan_ids(), vec![0]);
    let c = SplitFs::new(Arc::clone(&kernel), config).unwrap();
    assert_eq!(c.instance_id(), 0);
}
