//! Multi-threaded writer stress and epoch-swap crash consistency.
//!
//! The sharded hot path's contract under concurrency:
//!
//! * appends from N threads to N distinct files never tear, reorder or
//!   cross files, across epoch swaps and on-demand log growth;
//! * operation-log sequence numbers stay globally unique and, per file,
//!   order the staged writes exactly as they were issued;
//! * a crash while the log is split across a sealed and an active epoch
//!   recovers by replaying **both halves** in sequence order;
//! * the foreground never stalls on log truncation (epoch swaps and
//!   growth only).

use std::sync::Arc;

use kernelfs::Ext4Dax;
use pmem::{PmemBuilder, PmemDevice};
use splitfs::oplog::{LogOp, OpLog};
use splitfs::{recover, Mode, SplitConfig, SplitFs, OPLOG_PATH};
use vfs::{FileSystem, OpenFlags};

fn device() -> Arc<PmemDevice> {
    PmemBuilder::new(512 * 1024 * 1024).build()
}

/// Scans the on-device operation log (whatever its current size).
fn scan_log(kernel: &Arc<Ext4Dax>) -> Vec<splitfs::oplog::LogEntry> {
    let fd = kernel.open(OPLOG_PATH, OpenFlags::read_only()).unwrap();
    let size = kernel.fstat(fd).unwrap().size;
    let mapping = kernel.dax_map(fd, 0, size, false).unwrap();
    let entries = OpLog::scan(kernel.device(), &mapping, size);
    kernel.close(fd).unwrap();
    entries
}

#[test]
fn eight_concurrent_writers_keep_files_isolated_and_seqs_ordered() {
    const THREADS: usize = 8;
    const RECORDS: u64 = 48;
    const RECORD: usize = 512;

    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    // Small log (256 entries, two epochs of 128) so the stream crosses its
    // capacity several times: every crossing must be absorbed by a seal or
    // a growth, never a stall.  No daemon: the swaps happen inline on the
    // writer threads, the worst case for ordering.
    let config = SplitConfig::new(Mode::Strict)
        .with_staging(4, 8 * 1024 * 1024)
        .with_oplog_size(256 * 64)
        .without_daemon();
    let fs = SplitFs::new(Arc::clone(&kernel), config).unwrap();

    let fds: Vec<_> = (0..THREADS)
        .map(|t| fs.open(&format!("/w{t}.log"), OpenFlags::create()).unwrap())
        .collect();
    let before = device.stats().snapshot();
    std::thread::scope(|scope| {
        for (t, &fd) in fds.iter().enumerate() {
            let fs = Arc::clone(&fs);
            scope.spawn(move || {
                for i in 0..RECORDS {
                    let mut rec = vec![t as u8 + 1; RECORD];
                    rec[0] = (i % 251) as u8;
                    fs.append(fd, &rec).unwrap();
                    if (i + 1) % 16 == 0 {
                        fs.fsync(fd).unwrap();
                    }
                }
            });
        }
    });
    let delta = device.stats().snapshot().delta_since(&before);
    assert_eq!(
        delta.checkpoint_stalls, 0,
        "writers must never stall on log truncation: {delta:?}"
    );
    assert!(
        delta.oplog_epoch_swaps + delta.oplog_grows > 0,
        "the stream crossed the log's capacity: {delta:?}"
    );

    // Ordering across epoch swaps: every surviving staged write's
    // sequence number is globally unique (an `Invalidate` marker reuses
    // its cohort's max seq by design), and per target file the staged
    // writes appear in issue order (monotonic target offsets when sorted
    // by seq).
    let entries = scan_log(&kernel);
    let mut seqs: Vec<u64> = entries
        .iter()
        .filter(|e| e.op == LogOp::StagedWrite)
        .map(|e| e.seq)
        .collect();
    let n = seqs.len();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), n, "duplicate staged-write sequence numbers");
    for &fd in &fds {
        let ino = fs.fstat(fd).unwrap().ino;
        let mut last = None;
        for e in entries
            .iter()
            .filter(|e| e.op == LogOp::StagedWrite && e.target_ino == ino)
        {
            if let Some(prev) = last {
                assert!(
                    e.target_offset > prev,
                    "file {ino}: staged writes out of order across swaps"
                );
            }
            last = Some(e.target_offset);
        }
    }

    // Per-file byte integrity.
    for (t, &fd) in fds.iter().enumerate() {
        fs.fsync(fd).unwrap();
        let data = fs.read_file(&format!("/w{t}.log")).unwrap();
        assert_eq!(data.len(), RECORDS as usize * RECORD, "file {t} length");
        for (i, rec) in data.chunks(RECORD).enumerate() {
            assert_eq!(rec[0], (i as u64 % 251) as u8, "file {t} record {i} order");
            assert!(
                rec[1..].iter().all(|&b| b == t as u8 + 1),
                "file {t} record {i} torn or cross-contaminated"
            );
        }
        fs.close(fd).unwrap();
    }
}

#[test]
fn crash_mid_epoch_swap_replays_both_halves_in_order() {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let config = SplitConfig::new(Mode::Strict)
        .with_staging(2, 8 * 1024 * 1024)
        .with_oplog_size(256 * 64)
        .without_daemon();
    let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();

    // Stage writes for /a: their log entries land in the first epoch.
    let fa = fs.open("/a.db", OpenFlags::create()).unwrap();
    let part1: Vec<u8> = (0..8192u32).map(|i| (i % 240) as u8).collect();
    fs.append(fa, &part1).unwrap();

    // Seal: entries for /a are now in the SEALED half, unretired.
    assert!(fs.seal_oplog_epoch(), "seal must succeed");
    assert!(!fs.seal_oplog_epoch(), "second seal refused while pending");

    // More staged writes land in the new ACTIVE half — including an
    // overwrite-adjacent append to /a (ordering across the halves
    // matters) and a second file.
    let part2 = vec![0xE7u8; 4096];
    fs.append(fa, &part2).unwrap();
    let fb = fs.open("/b.db", OpenFlags::create()).unwrap();
    let content_b = vec![0x3Cu8; 6000];
    fs.append(fb, &content_b).unwrap();

    // Crash with the log split across both epochs: no fsync, no close, no
    // retirement ran.
    drop(fs);
    device.crash();

    let kernel2 = Ext4Dax::mount(Arc::clone(&device)).unwrap();
    let report = recover(&kernel2, &config).unwrap();
    assert!(
        report.replayed >= 3,
        "staged appends from both halves replay: {report:?}"
    );

    let mut expected_a = part1.clone();
    expected_a.extend_from_slice(&part2);
    assert_eq!(
        kernel2.read_file("/a.db").unwrap(),
        expected_a,
        "/a.db must recover sealed-epoch then active-epoch bytes in order"
    );
    assert_eq!(kernel2.read_file("/b.db").unwrap(), content_b);

    // Recovery is idempotent and a new instance starts clean.
    let fs2 = SplitFs::new(Arc::clone(&kernel2), config).unwrap();
    assert_eq!(fs2.read_file("/a.db").unwrap(), expected_a);
    assert_eq!(fs2.oplog_entries(), 0, "log re-zeroed after recovery");
}

#[test]
fn crash_after_grow_during_checkpoint_recovers_every_epoch() {
    // Grow-during-checkpoint, end to end: seal with entries pending, fill
    // the new active epoch until the log must GROW (the sealed half is
    // still pending, so a swap is impossible), then crash.  Recovery must
    // see the sealed half, the original active half and the grown
    // extension.
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    // 32 entries per epoch.
    let config = SplitConfig::new(Mode::Strict)
        .with_staging(2, 8 * 1024 * 1024)
        .with_oplog_size(64 * 64)
        .without_daemon();
    let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();
    let before = device.stats().snapshot();

    let fd = fs.open("/grow.db", OpenFlags::create()).unwrap();
    let mut expected = Vec::new();
    // Fill part of the first epoch.
    for i in 0..8u32 {
        let rec = vec![(i + 1) as u8; 1024];
        fs.append(fd, &rec).unwrap();
        expected.extend_from_slice(&rec);
    }
    assert!(fs.seal_oplog_epoch());
    // Keep appending: the active epoch fills and, with the sealed half
    // pending, must grow rather than stall.
    for i in 8..80u32 {
        let rec = vec![((i % 240) + 1) as u8; 1024];
        fs.append(fd, &rec).unwrap();
        expected.extend_from_slice(&rec);
    }
    let delta = device.stats().snapshot().delta_since(&before);
    assert!(
        delta.oplog_grows > 0,
        "the log grew mid-checkpoint: {delta:?}"
    );
    assert_eq!(
        delta.checkpoint_stalls, 0,
        "growth, never a stall: {delta:?}"
    );

    drop(fs);
    device.crash();

    let kernel2 = Ext4Dax::mount(Arc::clone(&device)).unwrap();
    let report = recover(&kernel2, &config).unwrap();
    assert!(report.replayed > 0, "{report:?}");
    assert_eq!(
        kernel2.read_file("/grow.db").unwrap(),
        expected,
        "sealed + active + grown entries all replay in order"
    );
}
