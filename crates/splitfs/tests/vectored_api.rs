//! Acceptance tests for the zero-copy / vectored / batch-durable API on
//! SplitFS: `read_view` serves mapped bytes with zero memcpy, `appendv`
//! gathers N slices under one operation-log fence, and `fsync_many`
//! retires M staged files in one kernel journal transaction — each
//! verified by counters, not asserted by construction.

use std::sync::Arc;

use kernelfs::Ext4Dax;
use pmem::PmemBuilder;
use splitfs::{Mode, SplitConfig, SplitFs};
use vfs::{FileSystem, IoVec, OpenFlags};

fn strict_fs() -> Arc<SplitFs> {
    let device = PmemBuilder::new(256 * 1024 * 1024)
        .track_persistence(false)
        .build();
    let kernel = Ext4Dax::mkfs(device).unwrap();
    // The daemon is disabled so background work cannot perturb the fence
    // and transaction counts the assertions depend on.
    let config = SplitConfig::new(Mode::Strict)
        .with_staging(4, 16 * 1024 * 1024)
        .without_daemon();
    SplitFs::new(kernel, config).unwrap()
}

#[test]
fn read_view_serves_committed_bytes_with_zero_memcpy() {
    let fs = strict_fs();
    let fd = fs.open("/zc.bin", OpenFlags::create()).unwrap();
    let data: Vec<u8> = (0..16384u32).map(|i| (i % 251) as u8).collect();
    fs.append(fd, &data).unwrap();
    fs.fsync(fd).unwrap(); // relink: the bytes are now committed + mapped

    let before = fs.device().stats().snapshot();
    let view = fs.read_view(fd, 4096, 8192).unwrap();
    assert!(
        view.is_zero_copy(),
        "committed, mapped, unstaged range must be served as a borrow"
    );
    assert_eq!(&*view, &data[4096..12288]);
    drop(view);
    let delta = fs.device().stats().snapshot().delta_since(&before);
    assert_eq!(
        delta.zero_copy_read_bytes, 8192,
        "every byte of the view was served without a memcpy"
    );
}

#[test]
fn read_view_falls_back_to_owned_over_staged_data() {
    let fs = strict_fs();
    let fd = fs.open("/staged.bin", OpenFlags::create()).unwrap();
    fs.append(fd, &[7u8; 4096]).unwrap();
    // Not fsynced: the bytes live in the staging file, overlaid on reads.
    let view = fs.read_view(fd, 0, 4096).unwrap();
    assert!(!view.is_zero_copy(), "staged overlays take the owned path");
    assert_eq!(view.len(), 4096);
    assert!(view.iter().all(|&b| b == 7));
}

#[test]
fn appendv_gathers_n_slices_under_one_oplog_fence() {
    let fs = strict_fs();
    let fd = fs.open("/gather.log", OpenFlags::create()).unwrap();
    let parts: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i + 1; 512]).collect();
    let iov: Vec<IoVec<'_>> = parts.iter().map(|p| IoVec::new(p)).collect();

    let before = fs.device().stats().snapshot();
    assert_eq!(fs.appendv(fd, &iov).unwrap(), 8 * 512);
    let delta = fs.device().stats().snapshot().delta_since(&before);
    assert_eq!(
        delta.fences, 2,
        "one fence for the staged data, one for the group-committed log \
         entries — independent of slice count"
    );
    assert_eq!(delta.oplog_group_commits, 1);
    assert_eq!(delta.appendv_calls, 1);
    assert_eq!(delta.appendv_slices, 8);
    assert_eq!(delta.kernel_traps, 0, "the gather never enters the kernel");

    // The gather reads back contiguously (through the staged overlay).
    let mut expected = Vec::new();
    for p in &parts {
        expected.extend_from_slice(p);
    }
    assert_eq!(fs.read_file("/gather.log").unwrap(), expected);

    // N individual appends cost 2 fences each; the gather cost 2 total.
    let before = fs.device().stats().snapshot();
    for p in &parts {
        fs.append(fd, p).unwrap();
    }
    let loop_delta = fs.device().stats().snapshot().delta_since(&before);
    assert_eq!(loop_delta.fences, 16, "2 fences per individual append");
}

#[test]
fn concurrent_appendv_streams_never_interleave_into_overlap() {
    let fs = strict_fs();
    let fd = fs.open("/race.log", OpenFlags::create()).unwrap();
    std::thread::scope(|scope| {
        for t in 0..4u8 {
            let fs = Arc::clone(&fs);
            scope.spawn(move || {
                let half = vec![t + 1; 96];
                for _ in 0..32 {
                    fs.appendv(fd, &[IoVec::new(&half), IoVec::new(&half)])
                        .unwrap();
                }
            });
        }
    });
    fs.fsync(fd).unwrap();
    let data = fs.read_file("/race.log").unwrap();
    assert_eq!(data.len(), 4 * 32 * 192);
    for rec in data.chunks(192) {
        assert!(
            rec.iter().all(|&b| b == rec[0]),
            "a gathered append must land as one contiguous record"
        );
    }
}

#[test]
fn fsync_many_retires_m_files_in_one_journal_transaction() {
    let fs = strict_fs();
    const FILES: usize = 5;
    let mut fds = Vec::new();
    for i in 0..FILES {
        let fd = fs
            .open(&format!("/many-{i}.dat"), OpenFlags::create())
            .unwrap();
        // Block-aligned appends so the whole batch relinks with no
        // unaligned head/tail copies (copies would journal separately).
        fs.append(fd, &vec![i as u8 + 1; 8192]).unwrap();
        fds.push(fd);
    }

    let before = fs.device().stats().snapshot();
    fs.fsync_many(&fds).unwrap();
    let delta = fs.device().stats().snapshot().delta_since(&before);
    assert_eq!(
        delta.journal_txns, 1,
        "one journal transaction commits every file's relink: {delta:?}"
    );
    assert_eq!(delta.batched_relinks, 1, "one ioctl covers all five files");
    assert_eq!(delta.relink_batch_ops as usize, FILES);
    assert_eq!(delta.fsync_many_calls, 1);
    assert_eq!(delta.fsync_many_files as usize, FILES);

    // Everything is durably in its target file.
    for (i, _) in fds.iter().enumerate() {
        let data = fs.read_file(&format!("/many-{i}.dat")).unwrap();
        assert_eq!(data, vec![i as u8 + 1; 8192]);
    }

    // Compare: fsyncing the same files one at a time costs one
    // transaction per file.
    for (i, &fd) in fds.iter().enumerate() {
        fs.append(fd, &vec![i as u8 + 1; 8192]).unwrap();
    }
    let before = fs.device().stats().snapshot();
    for &fd in &fds {
        fs.fsync(fd).unwrap();
    }
    let loop_delta = fs.device().stats().snapshot().delta_since(&before);
    assert_eq!(loop_delta.journal_txns as usize, FILES);
}

#[test]
fn fsync_many_with_nothing_staged_only_fences() {
    let fs = strict_fs();
    let a = fs.open("/a", OpenFlags::create()).unwrap();
    let b = fs.open("/b", OpenFlags::create()).unwrap();
    fs.fsync_many(&[a, b]).unwrap();
    let before = fs.device().stats().snapshot();
    fs.fsync_many(&[a, b, a]).unwrap(); // duplicates are fine
    let delta = fs.device().stats().snapshot().delta_since(&before);
    assert_eq!(delta.batched_relinks, 0);
    assert_eq!(delta.fences, 1);
}

#[test]
fn writev_at_straddling_eof_overwrites_and_stages_in_one_call() {
    // POSIX mode: the overwrite half goes in place through the mmaps, the
    // append half is staged — one call, correct split.
    let device = PmemBuilder::new(256 * 1024 * 1024)
        .track_persistence(false)
        .build();
    let kernel = Ext4Dax::mkfs(device).unwrap();
    let config = SplitConfig::new(Mode::Posix)
        .with_staging(4, 16 * 1024 * 1024)
        .without_daemon();
    let fs = SplitFs::new(kernel, config).unwrap();

    let fd = fs.open("/straddle.bin", OpenFlags::create()).unwrap();
    fs.append(fd, &vec![0xAA; 8192]).unwrap();
    fs.fsync(fd).unwrap();

    let head = vec![0xBB; 3000];
    let tail = vec![0xCC; 9000];
    let n = fs
        .writev_at(fd, 6000, &[IoVec::new(&head), IoVec::new(&tail)])
        .unwrap();
    assert_eq!(n, 12000);
    fs.fsync(fd).unwrap();

    let data = fs.read_file("/straddle.bin").unwrap();
    assert_eq!(data.len(), 18000);
    assert!(data[..6000].iter().all(|&b| b == 0xAA));
    assert!(data[6000..9000].iter().all(|&b| b == 0xBB));
    assert!(data[9000..].iter().all(|&b| b == 0xCC));
}
