//! Tiered-capacity policy: daemon-driven demotion of idle files to the
//! capacity tier, heat promotion back to PM, the adaptive PM-utilization
//! watermark gate, and the per-tick QoS bandwidth cap.
//!
//! The mechanism itself (journaled segment records, crash atomicity,
//! tier-exclusive placement) is tested in `kernelfs`; these tests drive
//! the **policy** that decides when files move.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pmem::{PmemBuilder, PmemDevice};
use splitfs::{Mode, SplitConfig, SplitFs};
use vfs::{FileSystem, OpenFlags};

const MIB: usize = 1024 * 1024;

fn tiered_kernel(device: &Arc<PmemDevice>, pm: usize) -> Arc<kernelfs::Ext4Dax> {
    kernelfs::Ext4Dax::mkfs_shaped(Arc::clone(device), pm).unwrap()
}

fn config() -> SplitConfig {
    SplitConfig::new(Mode::Strict)
        .with_staging(2, 4 * MIB as u64)
        .with_oplog_size(256 * 1024)
        .without_daemon()
        .with_tier_demote_after_ms(1.0)
        .with_tier_pm_watermark(0.0)
}

fn write_file(fs: &Arc<SplitFs>, path: &str, fill: u8, len: usize) -> vfs::Fd {
    let fd = fs.open(path, OpenFlags::create()).unwrap();
    fs.append(fd, &vec![fill; len]).unwrap();
    fs.fsync(fd).unwrap();
    fd
}

#[test]
fn sweep_demotes_only_idle_relinked_files() {
    let device = PmemBuilder::new(64 * MIB).build();
    let kernel = tiered_kernel(&device, 48 * MIB);
    let fs = SplitFs::new(Arc::clone(&kernel), config()).unwrap();

    let idle = write_file(&fs, "/idle.dat", 0x11, 256 * 1024);
    let busy = write_file(&fs, "/busy.dat", 0x22, 256 * 1024);

    // Nothing is idle yet: the sweep must not move anything.
    assert_eq!(fs.sweep_tier_demotions(), 0);

    // Make both files old, then touch one: only the untouched file is a
    // candidate.
    device.clock().advance(2_000_000.0);
    let mut one = [0u8; 1];
    fs.read_at(busy, 0, &mut one).unwrap();
    assert_eq!(fs.sweep_tier_demotions(), 1, "only the idle file demotes");
    assert_eq!(device.stats().snapshot().tier_demotions, 1);
    let (cap_used, _) = kernel.cap_usage();
    assert_eq!(cap_used, 64, "256 KiB = 64 capacity blocks");

    // The demoted file reads back correctly from the capacity tier.
    let mut buf = vec![0u8; 256 * 1024];
    fs.read_at(idle, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x11));
    assert!(device.stats().snapshot().tier_cap_reads > 0);
    fs.close(idle).unwrap();
    fs.close(busy).unwrap();
}

#[test]
fn pm_watermark_gates_demotion() {
    let device = PmemBuilder::new(64 * MIB).build();
    let kernel = tiered_kernel(&device, 48 * MIB);
    // Watermark 1.0: PM can never be "full enough", so nothing demotes
    // no matter how idle it gets.
    let fs = SplitFs::new(Arc::clone(&kernel), config().with_tier_pm_watermark(1.0)).unwrap();
    let fd = write_file(&fs, "/pinned.dat", 0x33, 128 * 1024);
    device.clock().advance(10_000_000.0);
    assert_eq!(fs.sweep_tier_demotions(), 0, "below the watermark");
    assert_eq!(kernel.cap_usage().0, 0);
    fs.close(fd).unwrap();
}

#[test]
fn bandwidth_cap_defers_demotions_across_ticks() {
    let device = PmemBuilder::new(64 * MIB).build();
    let kernel = tiered_kernel(&device, 48 * MIB);
    // Budget of one block per tick: the first candidate consumes it and
    // every further candidate is deferred (and counted).
    let fs = SplitFs::new(
        Arc::clone(&kernel),
        config().with_tier_bandwidth_per_tick(4096),
    )
    .unwrap();
    let a = write_file(&fs, "/a.dat", 0x44, 64 * 1024);
    let b = write_file(&fs, "/b.dat", 0x55, 64 * 1024);
    device.clock().advance(5_000_000.0);

    assert_eq!(fs.sweep_tier_demotions(), 1, "budget admits one file");
    let snap = device.stats().snapshot();
    assert_eq!(snap.tier_demotions, 1);
    assert!(
        snap.tier_bandwidth_deferrals >= 1,
        "the second candidate was deferred, not dropped"
    );
    // The next tick picks up the deferred file.
    device.clock().advance(5_000_000.0);
    assert_eq!(fs.sweep_tier_demotions(), 1, "deferred file demotes later");
    assert_eq!(device.stats().snapshot().tier_demotions, 2);
    fs.close(a).unwrap();
    fs.close(b).unwrap();
}

#[test]
fn writes_promote_demoted_files_eagerly() {
    let device = PmemBuilder::new(64 * MIB).build();
    let kernel = tiered_kernel(&device, 48 * MIB);
    let fs = SplitFs::new(Arc::clone(&kernel), config()).unwrap();
    let fd = write_file(&fs, "/hot.dat", 0x66, 128 * 1024);
    device.clock().advance(5_000_000.0);
    assert_eq!(fs.sweep_tier_demotions(), 1);
    assert!(kernel.cap_usage().0 > 0);

    // A write means the file is hot again: it promotes before the bytes
    // land, and the merged contents read back from PM.
    fs.write_at(fd, 0, &[0x77; 4096]).unwrap();
    fs.fsync(fd).unwrap();
    assert_eq!(kernel.cap_usage().0, 0, "whole file back on PM");
    assert!(device.stats().snapshot().tier_promotions >= 1);
    let mut buf = vec![0u8; 128 * 1024];
    fs.read_at(fd, 0, &mut buf).unwrap();
    assert!(buf[..4096].iter().all(|&b| b == 0x77));
    assert!(buf[4096..].iter().all(|&b| b == 0x66));
    fs.close(fd).unwrap();
}

#[test]
fn flat_devices_never_demote() {
    let device = PmemBuilder::new(64 * MIB).build();
    let kernel = kernelfs::Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    assert!(!kernel.is_tiered());
    let fs = SplitFs::new(Arc::clone(&kernel), config()).unwrap();
    let fd = write_file(&fs, "/flat.dat", 0x88, 64 * 1024);
    device.clock().advance(10_000_000.0);
    assert_eq!(fs.sweep_tier_demotions(), 0, "no capacity tier, no sweep");
    fs.close(fd).unwrap();
}

#[test]
fn daemon_demotes_in_the_background() {
    let device = PmemBuilder::new(64 * MIB).build();
    let kernel = tiered_kernel(&device, 48 * MIB);
    // Daemon on: the maintenance tick runs the sweep without any nudge.
    let cfg = SplitConfig::new(Mode::Strict)
        .with_staging(2, 4 * MIB as u64)
        .with_oplog_size(256 * 1024)
        .with_tier_demote_after_ms(1.0)
        .with_tier_pm_watermark(0.0);
    let fs = SplitFs::new(Arc::clone(&kernel), cfg).unwrap();
    assert!(fs.daemon_running());
    let fd = write_file(&fs, "/bg.dat", 0x99, 128 * 1024);
    device.clock().advance(5_000_000.0);

    let deadline = Instant::now() + Duration::from_secs(10);
    while device.stats().snapshot().tier_demotions == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        device.stats().snapshot().tier_demotions >= 1,
        "a maintenance tick demoted the idle file"
    );
    // Data still correct through the bounce path.
    let mut buf = vec![0u8; 128 * 1024];
    fs.read_at(fd, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x99));
    fs.close(fd).unwrap();
}

#[test]
fn demoted_files_survive_remount_and_reopen_cold() {
    let device = PmemBuilder::new(64 * MIB).build();
    let kernel = tiered_kernel(&device, 48 * MIB);
    let cfg = config();
    let fs = SplitFs::new(Arc::clone(&kernel), cfg.clone()).unwrap();
    let fd = write_file(&fs, "/persist.dat", 0xAB, 96 * 1024);
    device.clock().advance(5_000_000.0);
    assert_eq!(fs.sweep_tier_demotions(), 1);
    fs.close(fd).unwrap();
    drop(fs);
    drop(kernel);
    device.crash();

    // Remount: the segment table reloads and a fresh instance opens the
    // file already knowing it is cold (no stale PM mapping is created).
    let kernel2 = kernelfs::Ext4Dax::mount(Arc::clone(&device)).unwrap();
    assert!(kernel2.is_tiered());
    assert!(kernel2.cap_usage().0 > 0, "segments survived the remount");
    let fs2 = SplitFs::new(Arc::clone(&kernel2), cfg).unwrap();
    let fd = fs2.open("/persist.dat", OpenFlags::read_only()).unwrap();
    let mut buf = vec![0u8; 96 * 1024];
    fs2.read_at(fd, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0xAB));
    fs2.close(fd).unwrap();
}
