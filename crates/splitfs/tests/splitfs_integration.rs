//! Integration tests for SplitFS over the kernel file system, covering the
//! behaviours the paper's design section promises: user-space data paths,
//! staged appends with relink, the three consistency modes, functional
//! equivalence with ext4 DAX (§5.3), and crash recovery of the operation
//! log.

use std::sync::Arc;

use kernelfs::{Ext4Dax, BLOCK_SIZE};
use pmem::{PmemBuilder, PmemDevice, TimeCategory};
use splitfs::{recover, Mode, SplitConfig, SplitFs};
use vfs::{FileSystem, FsError, OpenFlags, SeekFrom};

fn device() -> Arc<PmemDevice> {
    PmemBuilder::new(256 * 1024 * 1024).build()
}

fn small_config(mode: Mode) -> SplitConfig {
    SplitConfig::new(mode)
        .with_staging(2, 8 * 1024 * 1024)
        .with_oplog_size(256 * 1024)
}

fn splitfs(mode: Mode) -> (Arc<PmemDevice>, Arc<Ext4Dax>, Arc<SplitFs>) {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let fs = SplitFs::new(Arc::clone(&kernel), small_config(mode)).unwrap();
    (device, kernel, fs)
}

#[test]
fn append_fsync_read_round_trip_in_all_modes() {
    for mode in [Mode::Posix, Mode::Sync, Mode::Strict] {
        let (_d, _k, fs) = splitfs(mode);
        let fd = fs.open("/log", OpenFlags::create()).unwrap();
        let mut expected = Vec::new();
        for i in 0..20u32 {
            let chunk = vec![i as u8; 4096];
            fs.append(fd, &chunk).unwrap();
            expected.extend_from_slice(&chunk);
            if i % 5 == 4 {
                fs.fsync(fd).unwrap();
            }
        }
        fs.fsync(fd).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.read_file("/log").unwrap(), expected, "mode {mode:?}");
    }
}

#[test]
fn staged_appends_are_visible_before_fsync() {
    let (_d, _k, fs) = splitfs(Mode::Posix);
    let fd = fs.open("/f", OpenFlags::create()).unwrap();
    fs.append(fd, b"hello ").unwrap();
    fs.append(fd, b"world").unwrap();
    // No fsync yet: the data lives in staging files but must be visible to
    // this process.
    assert_eq!(fs.fstat(fd).unwrap().size, 11);
    let mut buf = vec![0u8; 11];
    assert_eq!(fs.read_at(fd, 0, &mut buf).unwrap(), 11);
    assert_eq!(&buf, b"hello world");
    fs.close(fd).unwrap();
}

#[test]
fn repeated_overwrites_of_the_same_range_keep_the_last_write() {
    // Regression test: strict mode stages every write, so overwriting one
    // range twice between fsyncs produces overlapping staged runs; the
    // relink path must apply them in generations (last writer wins), not
    // reject the batch as overlapping.
    let (_d, _k, fs) = splitfs(Mode::Strict);
    let fd = fs.open("/page", OpenFlags::create()).unwrap();
    fs.write_at(fd, 0, &vec![0xAAu8; 4096]).unwrap();
    fs.write_at(fd, 0, &vec![0xBBu8; 4096]).unwrap();
    // Partial third overwrite on top, unaligned.
    fs.write_at(fd, 100, &[0xCCu8; 200]).unwrap();
    fs.fsync(fd).expect("fsync after overlapping overwrites");
    let data = fs.read_file("/page").unwrap();
    assert!(data[..100].iter().all(|&b| b == 0xBB));
    assert!(data[100..300].iter().all(|&b| b == 0xCC));
    assert!(data[300..4096].iter().all(|&b| b == 0xBB));
    fs.close(fd).unwrap();
}

#[test]
fn overwrites_round_trip_in_all_modes() {
    for mode in [Mode::Posix, Mode::Sync, Mode::Strict] {
        let (_d, _k, fs) = splitfs(mode);
        let base: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 251) as u8).collect();
        fs.write_file("/data", &base).unwrap();

        let fd = fs.open("/data", OpenFlags::read_write()).unwrap();
        // Aligned overwrite.
        fs.write_at(fd, 8192, &vec![0xAB; 4096]).unwrap();
        // Unaligned overwrite crossing a block boundary.
        fs.write_at(fd, 4000, &vec![0xCD; 300]).unwrap();
        fs.fsync(fd).unwrap();
        fs.close(fd).unwrap();

        let out = fs.read_file("/data").unwrap();
        assert_eq!(&out[..4000], &base[..4000], "mode {mode:?}");
        assert_eq!(&out[4000..4300], &[0xCD; 300][..], "mode {mode:?}");
        assert_eq!(&out[4300..8192], &base[4300..8192], "mode {mode:?}");
        assert_eq!(&out[8192..12288], &[0xAB; 4096][..], "mode {mode:?}");
        assert_eq!(&out[12288..], &base[12288..], "mode {mode:?}");
    }
}

#[test]
fn functional_equivalence_with_ext4_dax() {
    // §5.3: the file-system state after a workload on SplitFS must match
    // the state the same workload produces on ext4 DAX.
    let run = |fs: &dyn FileSystem| {
        fs.mkdir("/app").unwrap();
        let fd = fs.open("/app/a.db", OpenFlags::create()).unwrap();
        for i in 0..10u32 {
            fs.append(fd, &vec![i as u8; 1000]).unwrap();
        }
        fs.write_at(fd, 500, b"PATCHED").unwrap();
        fs.fsync(fd).unwrap();
        fs.close(fd).unwrap();
        fs.write_file("/app/b.txt", b"second file").unwrap();
        fs.rename("/app/b.txt", "/app/c.txt").unwrap();
        fs.unlink("/app/a.db").unwrap();
        fs.write_file("/app/a.db", b"recreated").unwrap();
        (
            fs.read_file("/app/a.db").unwrap(),
            fs.read_file("/app/c.txt").unwrap(),
            {
                let mut names = fs.readdir("/app").unwrap();
                names.sort();
                names
            },
        )
    };

    let ext4_device = device();
    let ext4 = Ext4Dax::mkfs(ext4_device).unwrap();
    let expected = run(ext4.as_ref());

    for mode in [Mode::Posix, Mode::Sync, Mode::Strict] {
        let (_d, _k, fs) = splitfs(mode);
        let got = run(fs.as_ref());
        assert_eq!(got, expected, "mode {mode:?}");
    }
}

#[test]
fn data_operations_avoid_kernel_traps() {
    let (d, _k, fs) = splitfs(Mode::Posix);
    let payload: Vec<u8> = (0..256 * 1024u32).map(|i| (i % 199) as u8).collect();
    fs.write_file("/big", &payload).unwrap();

    let fd = fs.open("/big", OpenFlags::read_write()).unwrap();
    // Warm the mapping with one read.
    let mut buf = vec![0u8; 4096];
    fs.read_at(fd, 0, &mut buf).unwrap();

    // Drain the maintenance daemon: write_file nudged background staging
    // provisioning, whose file creations trap into the kernel by design.
    // Only the foreground read/overwrite path is under test here.
    fs.maintenance_quiesce();

    let before = d.stats().snapshot();
    for i in 0..32u64 {
        fs.read_at(fd, i * 4096, &mut buf).unwrap();
        fs.write_at(fd, i * 4096, &buf).unwrap();
    }
    let delta = d.stats().snapshot().delta_since(&before);
    assert_eq!(
        delta.kernel_traps, 0,
        "reads and overwrites of mapped regions must not trap into the kernel"
    );
    fs.close(fd).unwrap();
}

#[test]
fn append_fsync_relinks_without_copying_data() {
    let (d, _k, fs) = splitfs(Mode::Posix);
    let fd = fs.open("/wal", OpenFlags::create()).unwrap();
    // Block-aligned appends: relink should move them with metadata only.
    for i in 0..8u32 {
        fs.append(fd, &vec![i as u8; BLOCK_SIZE]).unwrap();
    }
    let staged_bytes = 8 * BLOCK_SIZE as u64;
    let before = d.stats().snapshot();
    fs.fsync(fd).unwrap();
    let delta = d.stats().snapshot().delta_since(&before);
    assert!(
        delta.written(TimeCategory::UserData) < BLOCK_SIZE as u64,
        "fsync must not rewrite the {staged_bytes} staged bytes, wrote {}",
        delta.written(TimeCategory::UserData)
    );
    fs.close(fd).unwrap();
    // And the data is still correct.
    let data = fs.read_file("/wal").unwrap();
    assert_eq!(data.len(), staged_bytes as usize);
    for i in 0..8usize {
        assert!(data[i * BLOCK_SIZE..(i + 1) * BLOCK_SIZE]
            .iter()
            .all(|&b| b == i as u8));
    }
}

#[test]
fn unaligned_appends_still_round_trip() {
    let (_d, _k, fs) = splitfs(Mode::Strict);
    let fd = fs.open("/aof", OpenFlags::append()).unwrap();
    let mut expected = Vec::new();
    for i in 0..200u32 {
        let record = format!("SET key{i} value{i}\n");
        fs.write(fd, record.as_bytes()).unwrap();
        expected.extend_from_slice(record.as_bytes());
        if i % 50 == 49 {
            fs.fsync(fd).unwrap();
        }
    }
    fs.fsync(fd).unwrap();
    fs.close(fd).unwrap();
    assert_eq!(fs.read_file("/aof").unwrap(), expected);
}

#[test]
fn strict_append_uses_one_log_entry_and_one_extra_fence() {
    let (d, _k, fs) = splitfs(Mode::Strict);
    let fd = fs.open("/f", OpenFlags::create()).unwrap();
    // Warm up staging allocation paths.
    fs.append(fd, &vec![0u8; BLOCK_SIZE]).unwrap();
    let before = d.stats().snapshot();
    fs.append(fd, &vec![1u8; BLOCK_SIZE]).unwrap();
    let delta = d.stats().snapshot().delta_since(&before);
    assert_eq!(
        delta.written(TimeCategory::OpLog),
        64,
        "exactly one 64-byte operation-log entry per append"
    );
    assert_eq!(
        delta.kernel_traps, 0,
        "appends must not trap into the kernel"
    );
    assert!(
        delta.fences <= 2,
        "append needs at most a data fence plus one log fence, saw {}",
        delta.fences
    );
    fs.close(fd).unwrap();
}

#[test]
fn oplog_checkpoint_relinks_and_resets_when_full() {
    let (_d, _k, fs) = {
        let device = device();
        let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
        // Tiny log: 64 entries.
        let config = SplitConfig::new(Mode::Strict)
            .with_staging(2, 8 * 1024 * 1024)
            .with_oplog_size(64 * 64);
        let fs = SplitFs::new(Arc::clone(&kernel), config).unwrap();
        (device, kernel, fs)
    };
    let fd = fs.open("/f", OpenFlags::create()).unwrap();
    // More appends than the log can hold: SplitFS must checkpoint and keep
    // going rather than fail.
    for i in 0..200u32 {
        fs.append(fd, &vec![(i % 256) as u8; 512]).unwrap();
    }
    fs.fsync(fd).unwrap();
    fs.close(fd).unwrap();
    let data = fs.read_file("/f").unwrap();
    assert_eq!(data.len(), 200 * 512);
    // The final checkpoint runs on the maintenance daemon; drain it so the
    // entry count below reflects the log's post-checkpoint steady state.
    fs.maintenance_quiesce();
    assert!(fs.oplog_entries() < 64);
}

#[test]
fn crash_before_fsync_loses_nothing_in_strict_mode() {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let config = small_config(Mode::Strict);
    let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();

    let fd = fs.open("/db", OpenFlags::create()).unwrap();
    let payload: Vec<u8> = (0..3 * BLOCK_SIZE as u32)
        .map(|i| (i % 253) as u8)
        .collect();
    fs.append(fd, &payload).unwrap();
    // No fsync, no close: strict mode still guarantees the append is
    // durable and atomic once the call returned.
    device.crash();

    let kernel2 = Ext4Dax::mount(Arc::clone(&device)).unwrap();
    let report = recover(&kernel2, &config).unwrap();
    assert!(
        report.replayed >= 1,
        "recovery must replay the staged append"
    );
    let data = kernel2.read_file("/db").unwrap();
    assert_eq!(data, payload);
}

#[test]
fn crash_after_fsync_does_not_double_apply() {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let config = small_config(Mode::Strict);
    let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();

    let fd = fs.open("/db", OpenFlags::create()).unwrap();
    let payload = vec![7u8; 2 * BLOCK_SIZE];
    fs.append(fd, &payload).unwrap();
    fs.fsync(fd).unwrap();
    device.crash();

    let kernel2 = Ext4Dax::mount(Arc::clone(&device)).unwrap();
    let report = recover(&kernel2, &config).unwrap();
    assert_eq!(
        report.replayed, 0,
        "already-relinked appends must not be replayed (report: {report:?})"
    );
    assert_eq!(kernel2.read_file("/db").unwrap(), payload);
}

#[test]
fn recovery_is_idempotent_across_repeated_crashes() {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let config = small_config(Mode::Strict);
    let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();

    let fd = fs.open("/db", OpenFlags::create()).unwrap();
    let payload = vec![3u8; BLOCK_SIZE];
    fs.append(fd, &payload).unwrap();
    device.crash();

    // First recovery, then crash again immediately (before the log reset is
    // necessarily the last thing that persisted), then recover again.
    let kernel2 = Ext4Dax::mount(Arc::clone(&device)).unwrap();
    recover(&kernel2, &config).unwrap();
    device.crash();
    let kernel3 = Ext4Dax::mount(Arc::clone(&device)).unwrap();
    recover(&kernel3, &config).unwrap();
    assert_eq!(kernel3.read_file("/db").unwrap(), payload);
}

#[test]
fn posix_mode_append_without_fsync_may_lose_data_but_keeps_metadata_consistent() {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let fs = SplitFs::new(Arc::clone(&kernel), small_config(Mode::Posix)).unwrap();
    let fd = fs.open("/maybe", OpenFlags::create()).unwrap();
    fs.append(fd, &vec![1u8; BLOCK_SIZE]).unwrap();
    device.crash();

    // POSIX mode promises only metadata consistency: the file exists, the
    // file system mounts, but the unsynced append may be gone.
    let kernel2 = Ext4Dax::mount(Arc::clone(&device)).unwrap();
    assert!(kernel2.exists("/maybe"));
    let size = kernel2.stat("/maybe").unwrap().size;
    assert!(size == 0 || size == BLOCK_SIZE as u64);
}

#[test]
fn dup_descriptors_share_their_offset() {
    let (_d, _k, fs) = splitfs(Mode::Posix);
    let fd = fs.open("/f", OpenFlags::create()).unwrap();
    fs.write(fd, b"0123456789").unwrap();
    fs.lseek(fd, SeekFrom::Start(2)).unwrap();
    let dup = fs.dup(fd).unwrap();
    let mut buf = [0u8; 3];
    fs.read(dup, &mut buf).unwrap();
    assert_eq!(&buf, b"234");
    // The original descriptor observes the dup's reads.
    let mut buf2 = [0u8; 2];
    fs.read(fd, &mut buf2).unwrap();
    assert_eq!(&buf2, b"56");
    fs.close(fd).unwrap();
    fs.close(dup).unwrap();
}

#[test]
fn truncate_discards_staged_appends_beyond_new_size() {
    let (_d, _k, fs) = splitfs(Mode::Posix);
    let fd = fs.open("/t", OpenFlags::create()).unwrap();
    fs.append(fd, &vec![1u8; 6000]).unwrap();
    fs.ftruncate(fd, 1000).unwrap();
    assert_eq!(fs.fstat(fd).unwrap().size, 1000);
    fs.fsync(fd).unwrap();
    fs.close(fd).unwrap();
    let data = fs.read_file("/t").unwrap();
    assert_eq!(data.len(), 1000);
    assert!(data.iter().all(|&b| b == 1));
}

#[test]
fn unlink_removes_file_and_cached_state() {
    let (_d, _k, fs) = splitfs(Mode::Posix);
    fs.write_file("/gone", b"bye").unwrap();
    fs.unlink("/gone").unwrap();
    assert!(!fs.exists("/gone"));
    assert_eq!(fs.read_file("/gone"), Err(FsError::NotFound));
    // Re-creating the path works and starts empty.
    fs.write_file("/gone", b"new").unwrap();
    assert_eq!(fs.read_file("/gone").unwrap(), b"new");
}

#[test]
fn concurrent_instances_with_different_modes_coexist() {
    // §3.2: applications using different modes run side by side on the same
    // kernel file system without interfering.
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let posix = SplitFs::new(Arc::clone(&kernel), small_config(Mode::Posix)).unwrap();
    let strict = SplitFs::new(
        Arc::clone(&kernel),
        SplitConfig::new(Mode::Strict)
            .with_staging(2, 4 * 1024 * 1024)
            .with_oplog_size(128 * 1024),
    )
    .unwrap();

    posix.write_file("/from_posix", b"posix data").unwrap();
    strict.write_file("/from_strict", b"strict data").unwrap();

    assert_eq!(strict.read_file("/from_posix").unwrap(), b"posix data");
    assert_eq!(posix.read_file("/from_strict").unwrap(), b"strict data");
    assert_eq!(posix.consistency(), vfs::ConsistencyClass::Posix);
    assert_eq!(strict.consistency(), vfs::ConsistencyClass::Strict);
}

#[test]
fn ablation_configurations_still_produce_correct_files() {
    // Figure 3's ablation settings change performance, never correctness.
    let configs = [
        small_config(Mode::Posix).without_staging(),
        small_config(Mode::Posix).without_relink(),
        small_config(Mode::Posix),
    ];
    for config in configs {
        let device = device();
        let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
        let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();
        let fd = fs.open("/w", OpenFlags::create()).unwrap();
        let mut expected = Vec::new();
        for i in 0..10u32 {
            let block = vec![i as u8; BLOCK_SIZE];
            fs.append(fd, &block).unwrap();
            expected.extend_from_slice(&block);
            if i % 3 == 2 {
                fs.fsync(fd).unwrap();
            }
        }
        fs.fsync(fd).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(
            fs.read_file("/w").unwrap(),
            expected,
            "config {:?}",
            (config.use_staging, config.use_relink)
        );
    }
}

#[test]
fn memory_usage_is_bounded_and_observable() {
    let (_d, _k, fs) = splitfs(Mode::Strict);
    for i in 0..20 {
        fs.write_file(&format!("/file-{i}"), &vec![0u8; 8192])
            .unwrap();
    }
    let usage = fs.memory_usage();
    assert!(usage.cached_files >= 20);
    assert!(usage.approx_bytes > 0);
    // §5.10: SplitFS metadata stays within ~100 MB even for large workloads;
    // twenty small files must be nowhere near that.
    assert!(usage.approx_bytes < 10 * 1024 * 1024);
}
