//! Crash consistency of the background maintenance daemon.
//!
//! The invariant under test: recovery produces **identical file contents**
//! whether a crash lands before, during, or after a background batch
//! relink.  "During" is emulated deterministically by replaying exactly
//! what a maintenance worker does — scan the operation log, build the
//! [`RelinkOp`] batch, submit it through `ioctl_relink_batch` — and then
//! crashing before any U-Split bookkeeping (`Invalidate` markers, log
//! truncation) happens.

use std::sync::Arc;

use chaos::Recovered;
use kernelfs::{Ext4Dax, RelinkOp, BLOCK_SIZE};
use pmem::{PmemBuilder, PmemDevice};
use splitfs::oplog::{LogOp, OpLog};
use splitfs::{recover, DaemonConfig, Mode, SplitConfig, SplitFs, OPLOG_PATH};
use vfs::{FileSystem, IoVec, OpenFlags};

fn device() -> Arc<PmemDevice> {
    PmemBuilder::new(256 * 1024 * 1024).build()
}

fn strict_config() -> SplitConfig {
    SplitConfig::new(Mode::Strict)
        .with_staging(2, 8 * 1024 * 1024)
        .with_oplog_size(256 * 1024)
}

/// Runs the common workload: block-aligned appends to two files, never
/// fsynced, so everything is staged and logged when the function returns.
/// Returns the expected per-file contents.
fn stage_workload(fs: &Arc<SplitFs>) -> Vec<(String, Vec<u8>)> {
    let mut expected = Vec::new();
    for (name, fill) in [("/a.db", 0x11u8), ("/b.db", 0x22u8)] {
        let fd = fs.open(name, OpenFlags::create()).unwrap();
        let mut content = Vec::new();
        for i in 0..4u8 {
            let block = vec![fill.wrapping_add(i); BLOCK_SIZE];
            fs.append(fd, &block).unwrap();
            content.extend_from_slice(&block);
        }
        expected.push((name.to_string(), content));
        // No fsync, no close: the data exists only in staging files plus
        // the operation log.
    }
    expected
}

/// Emulates the daemon's batched relink at the kernel level: scan the
/// log, build one `RelinkOp` per staged entry, submit the whole batch.
/// Mirrors what `checkpoint_quiesced` submits, without any of the
/// follow-up bookkeeping — as if the crash hit right after the batch.
fn apply_background_batch(kernel: &Arc<Ext4Dax>, config: &SplitConfig) -> usize {
    let log_fd = kernel.open(OPLOG_PATH, OpenFlags::read_write()).unwrap();
    let log_size = kernel.fstat(log_fd).unwrap().size.min(config.oplog_size);
    let mapping = kernel.dax_map(log_fd, 0, log_size, false).unwrap();
    let entries = OpLog::scan(kernel.device(), &mapping, log_size);
    let mut ops = Vec::new();
    let mut fds = Vec::new();
    for entry in entries.iter().filter(|e| e.op == LogOp::StagedWrite) {
        let src_fd = kernel
            .open_by_ino(entry.staging_ino, OpenFlags::read_write())
            .unwrap();
        let dst_fd = kernel
            .open_by_ino(entry.target_ino, OpenFlags::read_write())
            .unwrap();
        fds.push(src_fd);
        fds.push(dst_fd);
        ops.push(RelinkOp {
            src_fd,
            src_offset: entry.staging_offset,
            dst_fd,
            dst_offset: entry.target_offset,
            len: entry.len,
        });
    }
    let applied = kernel.ioctl_relink_batch(&ops).unwrap();
    for fd in fds {
        kernel.close(fd).unwrap();
    }
    kernel.close(log_fd).unwrap();
    applied
}

/// Mounts the crashed device through the shared chaos harness, replays
/// instance 0's log, asserts the recovered tree is fsck-clean with no
/// foreign entries, and returns per-file contents.
fn recover_and_read(
    device: &Arc<PmemDevice>,
    config: &SplitConfig,
    names: &[String],
) -> (splitfs::RecoveryReport, Vec<Vec<u8>>) {
    let mut rec = Recovered::mount(device).unwrap();
    let report = *rec.recover_instance(config, 0).unwrap();
    rec.assert_clean();
    let contents = names
        .iter()
        .map(|name| rec.kernel.read_file(name).unwrap())
        .collect();
    (report, contents)
}

#[test]
fn crash_before_background_batch_replays_from_the_log() {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let config = strict_config();
    let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();
    let expected = stage_workload(&fs);
    fs.maintenance_quiesce();
    drop(fs); // joins the daemon's workers before the crash snapshot
    device.crash();

    let names: Vec<String> = expected.iter().map(|(n, _)| n.clone()).collect();
    let (report, contents) = recover_and_read(&device, &config, &names);
    assert!(
        report.replayed >= names.len(),
        "nothing was relinked, so every staged append replays: {report:?}"
    );
    for ((name, want), got) in expected.iter().zip(contents) {
        assert_eq!(&got, want, "{name}");
    }
}

#[test]
fn crash_between_batch_submission_and_completion_is_idempotent() {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let config = strict_config();
    let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();
    let expected = stage_workload(&fs);
    fs.maintenance_quiesce();
    drop(fs);

    // The daemon's batch lands (journaled, atomic), but the crash hits
    // before any Invalidate marker or log truncation.
    let applied = apply_background_batch(&kernel, &config);
    assert!(applied >= 2, "the batch covers both files' staged runs");
    device.crash();

    let names: Vec<String> = expected.iter().map(|(n, _)| n.clone()).collect();
    let (report, contents) = recover_and_read(&device, &config, &names);
    assert_eq!(
        report.replayed, 0,
        "relinked entries leave holes and must not replay: {report:?}"
    );
    assert!(
        report.already_applied >= names.len(),
        "the stale log entries are recognized as applied: {report:?}"
    );
    for ((name, want), got) in expected.iter().zip(contents) {
        assert_eq!(&got, want, "{name}");
    }
}

#[test]
fn recovered_contents_identical_before_during_and_after_the_batch() {
    // Run the same workload three times, crashing at a different point of
    // the background relink each time; the recovered images must agree.
    let mut images: Vec<Vec<Vec<u8>>> = Vec::new();
    for scenario in ["before", "during", "after"] {
        let device = device();
        let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
        let config = strict_config();
        let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();
        let expected = stage_workload(&fs);
        fs.maintenance_quiesce();
        drop(fs);
        match scenario {
            "before" => {}
            "during" => {
                apply_background_batch(&kernel, &config);
            }
            "after" => {
                // Batch plus completion: a second recovery pass stands in
                // for the bookkeeping that marks entries applied.
                apply_background_batch(&kernel, &config);
                recover(&kernel, &config).unwrap();
            }
            _ => unreachable!(),
        }
        device.crash();
        let names: Vec<String> = expected.iter().map(|(n, _)| n.clone()).collect();
        let (_report, contents) = recover_and_read(&device, &config, &names);
        for ((name, want), got) in expected.iter().zip(&contents) {
            assert_eq!(got, want, "scenario {scenario}, file {name}");
        }
        images.push(contents);
    }
    assert!(
        images.windows(2).all(|w| w[0] == w[1]),
        "crash timing must not change the recovered image"
    );
}

#[test]
fn crash_after_background_checkpoint_truncates_cleanly() {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    // Tiny log so the daemon's checkpoint threshold (50%) is crossed by a
    // modest append stream.
    let config = SplitConfig::new(Mode::Strict)
        .with_staging(2, 8 * 1024 * 1024)
        .with_oplog_size(128 * 64);
    let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();
    assert!(fs.daemon_running());

    let fd = fs.open("/wal", OpenFlags::create()).unwrap();
    let mut expected = Vec::new();
    for i in 0..100u32 {
        let chunk = vec![(i % 251) as u8; 512];
        fs.append(fd, &chunk).unwrap();
        expected.extend_from_slice(&chunk);
    }
    fs.maintenance_quiesce();
    let snap = device.stats().snapshot();
    assert!(
        snap.daemon_checkpoints >= 1,
        "the daemon checkpointed in the background: {snap:?}"
    );
    assert!(
        fs.oplog_entries() < 64,
        "the log was truncated in the background ({} entries)",
        fs.oplog_entries()
    );
    drop(fs);
    device.crash();

    let (report, contents) = recover_and_read(&device, &config, &["/wal".to_string()]);
    assert_eq!(contents[0], expected, "no acknowledged byte may be lost");
    // The checkpoint truncated the log, so recovery sees far fewer entries
    // than the 100 staged writes, and none of them double-applies.
    assert!(
        report.entries_scanned < 100,
        "the truncated log holds only post-checkpoint entries: {report:?}"
    );
}

#[test]
fn daemon_provisioning_eliminates_inline_staging_creation() {
    let device = PmemBuilder::new(512 * 1024 * 1024)
        .track_persistence(false)
        .build();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    // Small staging files so the workload exhausts the initial pool many
    // times over; low/high watermarks give the daemon headroom.
    let config = SplitConfig::new(Mode::Posix)
        .with_staging(4, 2 * 1024 * 1024)
        .with_staging_watermarks(2, 6);
    let fs = SplitFs::new(Arc::clone(&kernel), config).unwrap();

    let fds: Vec<_> = (0..4)
        .map(|i| fs.open(&format!("/t{i}"), OpenFlags::create()).unwrap())
        .collect();
    let block = vec![0xEEu8; 4096];
    // ~24 MiB total through an 8 MiB pool: without provisioning this would
    // force inline creations.  Round-robin appends interleave the files'
    // staging space, so each fsync submits a multi-extent batch.
    for round in 0..24 {
        // Interleave the files' appends so their staging space is
        // interleaved too: each file's staged data then forms many
        // discontiguous runs, exactly like concurrent appenders.
        for _ in 0..64 {
            for &fd in &fds {
                fs.append(fd, &block).unwrap();
            }
        }
        for &fd in &fds {
            fs.fsync(fd).unwrap();
        }
        if round % 2 == 1 {
            // Give the nudged provisioning a deterministic point to land.
            fs.maintenance_quiesce();
        }
    }
    fs.maintenance_quiesce();
    let snap = device.stats().snapshot();
    assert_eq!(
        snap.staging_inline_creates, 0,
        "the daemon must keep the foreground path free of file creation: {snap:?}"
    );
    assert!(
        snap.staging_bg_creates + snap.staging_recycles > 0,
        "replenishment happened in the background (fresh files or \
         recycled fully-relinked ones): {snap:?}"
    );
    assert!(snap.batched_relinks > 0);
    assert!(
        snap.relink_batch_ops > snap.batched_relinks,
        "at least one batch covered multiple staged runs: {snap:?}"
    );
    for &fd in &fds {
        fs.close(fd).unwrap();
    }
}

#[test]
fn dropping_the_instance_joins_the_workers() {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let fs = SplitFs::new(kernel, strict_config()).unwrap();
    assert!(fs.daemon_running());
    let fd = fs.open("/x", OpenFlags::create()).unwrap();
    fs.append(fd, &[1u8; 4096]).unwrap();
    fs.maintenance_quiesce();
    drop(fs); // must not hang or leak threads

    // A second instance over the same device recovers and starts cleanly.
    let kernel2 = Ext4Dax::mount(Arc::clone(&device)).unwrap();
    let fs2 = SplitFs::new(kernel2, strict_config()).unwrap();
    assert_eq!(fs2.read_file("/x").unwrap(), vec![1u8; 4096]);
}

#[test]
fn flight_recorder_keeps_the_event_tail_across_a_simulated_crash() {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let config = strict_config();
    let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();

    // A two-slice appendv logs two entries in one transaction, firing a
    // GroupCommit flight event on this thread.  The surrounding span
    // stamps the event with the Appendv op kind, which uniquely
    // identifies this workload's events inside this test binary.
    let recorder = Arc::new(obs::Recorder::new());
    let fd = fs.open("/flight.db", OpenFlags::create()).unwrap();
    let a = vec![0x33u8; BLOCK_SIZE];
    let b = vec![0x44u8; BLOCK_SIZE];
    {
        let _span = recorder.span(obs::OpKind::Appendv);
        fs.appendv(fd, &[IoVec::new(&a), IoVec::new(&b)]).unwrap();
    }
    fs.maintenance_quiesce();
    drop(fs);
    device.crash();

    // The crash killed the instance, not the process: the per-thread
    // flight rings survive and hold the event tail leading up to it, so
    // a post-mortem (or the panic hook) can see what the dying instance
    // was doing.
    let rings = obs::recent_events();
    assert!(
        rings
            .iter()
            .flatten()
            .any(|e| e.kind == obs::OpKind::Appendv && e.event == obs::SpanEvent::GroupCommit),
        "the pre-crash group commit must still be visible in the flight rings"
    );

    // And recovery over the crashed device still replays the append.
    let (report, contents) = recover_and_read(&device, &config, &["/flight.db".to_string()]);
    assert!(report.replayed >= 1, "{report:?}");
    assert_eq!(contents[0], [a, b].concat());
}

#[test]
fn disabled_daemon_still_works_with_inline_maintenance() {
    let device = device();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let config = strict_config().with_daemon(DaemonConfig::disabled());
    let fs = SplitFs::new(kernel, config).unwrap();
    assert!(!fs.daemon_running());
    let fd = fs.open("/inline", OpenFlags::create()).unwrap();
    let payload = vec![9u8; 64 * 1024];
    fs.append(fd, &payload).unwrap();
    fs.fsync(fd).unwrap();
    assert_eq!(fs.read_file("/inline").unwrap(), payload);
    fs.maintenance_quiesce(); // no-op, must not block
}
