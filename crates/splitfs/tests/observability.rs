//! End-to-end span attribution through the traced SplitFS stack.
//!
//! The invariants under test: work a foreground operation triggers
//! internally — here, the inline staging-file creation that a drained
//! pool forces onto the `appendv` path — is charged to the *enclosing*
//! operation's span (as an event annotation and as category time),
//! never double-counted under a nested span; and the per-op breakdown
//! across the whole run reconciles against the device's aggregate
//! per-category times.

use std::sync::Arc;

use kernelfs::Ext4Dax;
use obs::{MetricsSnapshot, OpKind, Recorder, SpanEvent};
use pmem::{PmemBuilder, TimeCategory};
use splitfs::{DaemonConfig, Mode, SplitConfig, SplitFs};
use vfs::{FileSystem, IoVec, OpenFlags, TracedFs};

fn event_index(event: SpanEvent) -> usize {
    SpanEvent::ALL.iter().position(|e| *e == event).unwrap()
}

#[test]
fn inline_create_is_charged_to_the_appendv_span() {
    let device = PmemBuilder::new(256 * 1024 * 1024)
        .track_persistence(false)
        .build();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    // Minimum-size staging files (2 MiB floor) and no daemon: once the
    // pre-provisioned 4 MiB pool drains, the appendv path must create
    // replacement staging files inline, inside the foreground operation.
    let config = SplitConfig::new(Mode::Strict)
        .with_staging(2, 2 * 1024 * 1024)
        .with_oplog_size(512 * 1024)
        .with_daemon(DaemonConfig::disabled());
    let fs = SplitFs::new(kernel, config).unwrap();
    let recorder = Arc::new(Recorder::new());
    fs.attach_recorder(Arc::clone(&recorder));
    let traced: Arc<dyn FileSystem> = Arc::new(TracedFs::new(fs, Arc::clone(&recorder)));

    let before = device.stats().snapshot();
    let fd = traced.open("/spans.dat", OpenFlags::create()).unwrap();
    let header = [0xAAu8; 16];
    let body = [0xBBu8; 4080];
    for _ in 0..1536 {
        let iov = [IoVec::new(&header), IoVec::new(&body)];
        traced.appendv(fd, &iov).unwrap();
    }
    traced.fsync(fd).unwrap();
    traced.close(fd).unwrap();
    let stats = device.stats().snapshot().delta(&before);
    assert!(
        stats.staging_inline_creates > 0,
        "6 MiB of appends through a 4 MiB pool must create staging \
         files inline: {stats:?}"
    );

    let snap = MetricsSnapshot::new("SplitFS-strict", 1, &recorder, stats);
    let appendv = snap.op(OpKind::Appendv).expect("appendv spans recorded");
    assert_eq!(appendv.count, 1536);

    // Every inline creation fired inside an appendv span and is
    // annotated there...
    assert_eq!(
        appendv.events[event_index(SpanEvent::InlineCreate)],
        snap.stats.staging_inline_creates,
        "inline creations must be attributed to the appendv spans"
    );
    // ...and its cost (kernel file creation = metadata + journal work)
    // lands in the appendv spans' own category time.
    assert!(appendv.cat_ns[TimeCategory::Metadata.index_in_all()] > 0.0);
    assert!(appendv.cat_ns[TimeCategory::Journal.index_in_all()] > 0.0);

    // No nested span was opened for the internal work: exactly one span
    // per traced call (open + 1536 appendv + fsync + close).
    assert_eq!(snap.total_spans(), 1 + 1536 + 1 + 1);

    // The whole window still reconciles: per-op category time sums to
    // the aggregate stats within 1%.
    let err = snap.attribution_error(1000.0);
    assert!(
        err < 0.01,
        "span attribution off by {:.3}% (spans {:?} vs stats {:?})",
        err * 100.0,
        snap.span_time_by_category(),
        snap.stats.time_ns
    );
}

#[test]
fn relink_batches_are_charged_to_the_fsync_span() {
    let device = PmemBuilder::new(256 * 1024 * 1024)
        .track_persistence(false)
        .build();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let config = SplitConfig::new(Mode::Strict)
        .with_staging(4, 4 * 1024 * 1024)
        .with_oplog_size(512 * 1024);
    let fs = SplitFs::new(kernel, config).unwrap();
    let recorder = Arc::new(Recorder::new());
    fs.attach_recorder(Arc::clone(&recorder));
    let traced: Arc<dyn FileSystem> = Arc::new(TracedFs::new(fs, Arc::clone(&recorder)));

    let fd = traced.open("/relink.dat", OpenFlags::create()).unwrap();
    let block = [0x5Au8; 4096];
    for _ in 0..16 {
        traced.append(fd, &block).unwrap();
    }
    traced.fsync(fd).unwrap();
    traced.close(fd).unwrap();

    let snap = MetricsSnapshot::new("SplitFS-strict", 1, &recorder, device.stats().snapshot());
    let fsync = snap.op(OpKind::Fsync).expect("fsync spans recorded");
    assert!(
        fsync.events[event_index(SpanEvent::RelinkBatch)] > 0,
        "the fsync-time relink batch must be annotated on the fsync span"
    );
    // The append override routes through appendv under a single Append
    // span — 16 spans, no extra Appendv spans underneath.
    let append = snap.op(OpKind::Append).expect("append spans recorded");
    assert_eq!(append.count, 16);
    assert!(snap.op(OpKind::Appendv).is_none());
}
