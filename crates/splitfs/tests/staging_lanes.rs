//! Lane-sharded staging pool: recycle-path correctness and crash
//! recovery under lanes.
//!
//! The contracts under test:
//!
//! * a fully-retired staging file recycled through the `StagingRecycle`
//!   machinery re-enters the **same lane's** free list it was consumed
//!   from, so recycling never migrates capacity between lanes behind the
//!   adaptive controller's back;
//! * a crash anywhere around a recycle — file out of the pool, marker
//!   durable, rebuild not yet done — recovers to the right file contents
//!   and a freshly mounted instance rebuilds a consistent lane geometry
//!   (every lane stocked, cursors reset, leftovers reclaimed);
//! * disjoint writers with a lane each never contend on staging locks,
//!   and the cold-file relink policy retires long-unsynced staged
//!   extents so their staging files become recyclable.

use std::sync::Arc;

use pmem::{PmemBuilder, PmemDevice};
use splitfs::{recover, Mode, SplitConfig, SplitFs};
use vfs::{FileSystem, OpenFlags};

fn device() -> Arc<PmemDevice> {
    PmemBuilder::new(256 * 1024 * 1024).build()
}

const FILE_SIZE: u64 = 2 * 1024 * 1024;

fn laned_config(lanes: usize) -> SplitConfig {
    SplitConfig::new(Mode::Strict)
        .with_staging(lanes * 2, FILE_SIZE)
        .with_staging_lanes(lanes)
        .with_oplog_size(256 * 1024)
        .without_daemon()
}

/// Appends one staging file's worth (plus a little) so the home lane's
/// cursor moves past its first file, then fsyncs so every staged byte is
/// retired.  Returns the file's expected contents.
fn exhaust_one_staging_file(fs: &Arc<SplitFs>, path: &str, fill: u8) -> Vec<u8> {
    let fd = fs.open(path, OpenFlags::create()).unwrap();
    let mut content = Vec::new();
    let block = vec![fill; 64 * 1024];
    let blocks = (FILE_SIZE / block.len() as u64) + 2;
    for _ in 0..blocks {
        fs.append(fd, &block).unwrap();
        content.extend_from_slice(&block);
    }
    fs.fsync(fd).unwrap();
    fs.close(fd).unwrap();
    content
}

#[test]
fn recycled_staging_file_reenters_the_lane_it_came_from() {
    let device = device();
    let kernel = kernelfs::Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let fs = SplitFs::new(Arc::clone(&kernel), laned_config(2)).unwrap();
    let pool = fs.staging_pool();
    let home = pool.lane_for_current_thread();

    exhaust_one_staging_file(&fs, "/wal.log", 0x5A);

    // The home lane's first file is now exhausted and fully retired.
    let rec = pool.begin_recycle().expect("an exhausted, retired file");
    assert_eq!(
        rec.lane(),
        home,
        "the recyclable file came from the writer's home lane"
    );
    let ino = rec.ino();
    let before = pool.lane_unconsumed(home);
    pool.rebuild(rec).unwrap();
    assert_eq!(
        pool.lane_of(ino),
        Some(home),
        "rebuild returned the file to its own lane's free list"
    );
    assert_eq!(
        pool.lane_unconsumed(home),
        before + 1,
        "the home lane regained one unconsumed file"
    );
    assert_eq!(device.stats().snapshot().staging_recycles, 1);

    // An aborted recycle also lands back in the same lane.
    exhaust_one_staging_file(&fs, "/wal2.log", 0x3C);
    let rec = pool.begin_recycle().expect("second recyclable file");
    let lane = rec.lane();
    let ino = rec.ino();
    pool.abort_recycle(rec);
    assert_eq!(pool.lane_of(ino), Some(lane), "abort restores the lane");
}

#[test]
fn crash_mid_recycle_recovers_contents_and_lane_geometry() {
    let device = device();
    let kernel = kernelfs::Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let config = laned_config(2);
    let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();
    let pool = fs.staging_pool();

    let content = exhaust_one_staging_file(&fs, "/db.log", 0x77);
    // Stage (but do not fsync) a second file: its bytes live only in
    // staging plus the log, so recovery must replay them.
    let fd = fs.open("/tail.log", OpenFlags::create()).unwrap();
    let tail = vec![0xE1u8; 100_000];
    fs.append(fd, &tail).unwrap();

    // Crash **mid-recycle**: the retired staging file is out of the pool
    // (DRAM state only) but neither truncated nor rebuilt — exactly the
    // window between `begin_recycle` and the durable marker/rebuild.
    let rec = pool.begin_recycle().expect("a recyclable file");
    let recycled_ino = rec.ino();
    drop(rec); // the crash destroys the in-flight recycle bookkeeping
    drop(fs);
    device.crash();

    let kernel2 = kernelfs::Ext4Dax::mount(Arc::clone(&device)).unwrap();
    let report = recover(&kernel2, &config).unwrap();
    assert!(report.replayed > 0, "the unsynced tail replays: {report:?}");
    assert_eq!(
        kernel2.read_file("/db.log").unwrap(),
        content,
        "relinked bytes survive a crash mid-recycle"
    );
    assert_eq!(kernel2.read_file("/tail.log").unwrap(), tail);

    // A fresh instance adopts the staging directory and rebuilds a
    // consistent lane geometry: every lane fully stocked, cursors reset.
    let fs2 = SplitFs::new(Arc::clone(&kernel2), config.clone()).unwrap();
    let pool2 = fs2.staging_pool();
    assert_eq!(pool2.lane_count(), 2);
    let total: usize = (0..pool2.lane_count())
        .map(|i| pool2.lane_unconsumed(i))
        .sum();
    assert_eq!(
        total, config.staging_files,
        "every adopted staging file is unconsumed again (cursors rebuilt)"
    );
    for lane in 0..pool2.lane_count() {
        assert_eq!(
            pool2.lane_unconsumed(lane),
            config.staging_files / 2,
            "round-robin distribution across lanes"
        );
    }
    // The file caught mid-recycle is back in rotation (adopted under
    // some lane) and the instance is fully writable.
    assert!(
        pool2.lane_of(recycled_ino).is_some() || pool2.translate(recycled_ino, 0).is_none(),
        "the mid-recycle file either rejoined the pool or was reclaimed"
    );
    let fd = fs2.open("/after.log", OpenFlags::create()).unwrap();
    fs2.append(fd, b"post-recovery append").unwrap();
    fs2.fsync(fd).unwrap();
    assert_eq!(
        fs2.read_file("/after.log").unwrap(),
        b"post-recovery append"
    );
}

#[test]
fn remount_truncates_staging_leftovers_beyond_the_pool_size() {
    let device = device();
    let kernel = kernelfs::Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    // First incarnation provisions extra files beyond the configured
    // pool: emulate by taking enough to force inline creations.
    let config = SplitConfig::new(Mode::Strict)
        .with_staging(2, FILE_SIZE)
        .with_staging_lanes(1)
        .with_oplog_size(256 * 1024)
        .without_daemon();
    let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();
    let fd = fs.open("/big.log", OpenFlags::create()).unwrap();
    let block = vec![0x42u8; 128 * 1024];
    // > 2 files' capacity: the pool must create extras inline.
    for _ in 0..40 {
        fs.append(fd, &block).unwrap();
    }
    fs.fsync(fd).unwrap();
    assert!(fs.staging_pool().files_created_inline() > 0);
    fs.close(fd).unwrap();
    drop(fs);

    // Remount: the new pool adopts `staging_files` files and truncates
    // the leftovers so their blocks return to the allocator.
    let fs2 = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();
    let entries = kernel.readdir(fs2.staging_dir()).unwrap();
    let mut rebuilt = 0;
    let mut reclaimed = 0;
    for name in entries.iter().filter(|n| n.starts_with("stage-")) {
        let stat = kernel
            .stat(&format!("{}/{}", fs2.staging_dir(), name))
            .unwrap();
        if stat.size == FILE_SIZE {
            rebuilt += 1;
        } else {
            assert_eq!(stat.size, 0, "{name}: leftovers are truncated");
            reclaimed += 1;
        }
    }
    assert_eq!(rebuilt, config.staging_files, "adopted set matches config");
    assert!(reclaimed > 0, "the inline extras were reclaimed");
}

#[test]
fn cold_file_relink_reclaims_staging_space() {
    let device = device();
    let kernel = kernelfs::Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let config = laned_config(1).with_cold_relink_after_ms(1.0);
    let fs = SplitFs::new(Arc::clone(&kernel), config).unwrap();

    // Stage a file's worth of appends and never fsync: the staging file
    // is exhausted but unretired, so it cannot recycle.
    let fd = fs.open("/cold.log", OpenFlags::create()).unwrap();
    let block = vec![0x99u8; 64 * 1024];
    let blocks = (FILE_SIZE / block.len() as u64) + 2;
    let mut content = Vec::new();
    for _ in 0..blocks {
        fs.append(fd, &block).unwrap();
        content.extend_from_slice(&block);
    }
    assert!(fs.staging_pool().begin_recycle().is_none(), "unretired");

    // Too fresh to be cold: the policy must not touch it yet.
    assert_eq!(fs.reclaim_cold_staging(), 0);

    // One simulated millisecond of idleness later, the file is cold: the
    // policy relinks it, which retires its staged bytes and makes the
    // exhausted staging file recyclable.
    device.clock().advance(1_000_000.0);
    assert_eq!(fs.reclaim_cold_staging(), 1);
    assert_eq!(device.stats().snapshot().staging_cold_relinks, 1);
    let rec = fs
        .staging_pool()
        .begin_recycle()
        .expect("cold relink made the staging file recyclable");
    fs.staging_pool().rebuild(rec).unwrap();
    assert_eq!(fs.read_file("/cold.log").unwrap(), content);
    fs.close(fd).unwrap();
}

#[test]
fn cold_relinked_then_demoted_file_recycles_staging_and_stays_readable() {
    // The full cold lifecycle on a tiered device: stage, go cold, get
    // relinked by the cold policy, get demoted to the capacity tier by
    // the tier sweep — and through all of it the exhausted staging file
    // must recycle back into its own lane and the data must stay
    // readable (bounce-read from capacity, then heat promotion).
    let device = device();
    let kernel = kernelfs::Ext4Dax::mkfs_shaped(Arc::clone(&device), 192 * 1024 * 1024).unwrap();
    let config = laned_config(2)
        .with_cold_relink_after_ms(1.0)
        .with_tier_demote_after_ms(1.0)
        .with_tier_pm_watermark(0.0);
    let fs = SplitFs::new(Arc::clone(&kernel), config).unwrap();
    let pool = fs.staging_pool();
    let home = pool.lane_for_current_thread();

    // Exhaust the home lane's first staging file without ever fsyncing.
    let fd = fs.open("/frozen.log", OpenFlags::create()).unwrap();
    let block = vec![0xC4u8; 64 * 1024];
    let blocks = (FILE_SIZE / block.len() as u64) + 2;
    let mut content = Vec::new();
    for _ in 0..blocks {
        fs.append(fd, &block).unwrap();
        content.extend_from_slice(&block);
    }
    assert!(pool.begin_recycle().is_none(), "unretired while staged");

    // Cold relink retires the staged bytes; the tier sweep then finds a
    // fully relinked, idle file and moves it to the capacity tier.
    device.clock().advance(2_000_000.0);
    assert_eq!(fs.reclaim_cold_staging(), 1);
    assert_eq!(fs.sweep_tier_demotions(), 1, "idle relinked file demotes");
    assert!(kernel.is_demoted(fd_kernel(&fs, "/frozen.log")).unwrap());
    let (cap_used, _) = kernel.cap_usage();
    assert!(cap_used > 0, "segments landed on the capacity tier");

    // The staging file the cold data came from recycles into its lane.
    let rec = pool
        .begin_recycle()
        .expect("cold relink + demotion made the staging file recyclable");
    assert_eq!(rec.lane(), home, "recycled into the lane it came from");
    pool.rebuild(rec).unwrap();

    // Reads reassemble from capacity transparently and the heat counter
    // eventually promotes the file back to PM.
    let mut buf = vec![0u8; content.len()];
    let n = fs.read_at(fd, 0, &mut buf).unwrap();
    assert_eq!(n, content.len());
    assert_eq!(buf, content, "bounce-read from the capacity tier");
    let _ = fs.read_at(fd, 0, &mut buf).unwrap();
    assert_eq!(buf, content, "still correct across the promotion");
    assert!(
        !kernel.is_demoted(fd_kernel(&fs, "/frozen.log")).unwrap(),
        "read heat promoted the file back to PM"
    );
    assert!(device.stats().snapshot().tier_promotions >= 1);
    fs.close(fd).unwrap();
}

/// The kernel descriptor U-Split keeps for a path (tier state queries).
fn fd_kernel(fs: &Arc<SplitFs>, path: &str) -> vfs::Fd {
    let kernel = fs.kernel();
    kernel.open(path, OpenFlags::read_only()).unwrap()
}
