//! Durability-epoch ordering across the async submission rings.
//!
//! Two invariants, one property-based and one crash-based:
//!
//! 1. A completion may **never** report an epoch the instance has not
//!    published — i.e. an epoch whose operation-log group commit has
//!    not fenced yet.  The property test drives random cross-file
//!    batches through a ring and checks every harvested completion
//!    against `published_epoch()` at harvest time.
//! 2. After a crash, recovery replays exactly the writes whose epochs
//!    were published: everything harvested (and hence fenced) survives,
//!    and submissions that were never drained — which have no epoch —
//!    leave no trace.

use std::sync::Arc;

use kernelfs::Ext4Dax;
use pmem::PmemBuilder;
use proptest::prelude::*;
use splitfs::{recover, Mode, SplitConfig, SplitFs};
use vfs::{FileSystem, OpenFlags};

fn strict_config() -> SplitConfig {
    SplitConfig::new(Mode::Strict)
        .with_staging(2, 8 * 1024 * 1024)
        .with_oplog_size(256 * 1024)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random cross-file append batches: every completion's epoch is
    /// already published when harvested (the fence happened first),
    /// every batch completes 1:1, and the per-file contents equal the
    /// submission order once the final epoch is awaited.
    #[test]
    fn completions_never_outrun_the_published_epoch(
        batches in prop::collection::vec(
            prop::collection::vec((0usize..3, 1usize..1500), 1..10),
            1..6,
        ),
    ) {
        let device = PmemBuilder::new(128 * 1024 * 1024)
            .track_persistence(false)
            .build();
        let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
        let fs = SplitFs::new(kernel, strict_config()).unwrap();
        let hub = splitfs::ring_hub(&fs);
        let ring = hub.ring(32);
        let fds: Vec<_> = (0..3)
            .map(|i| fs.open(&format!("/p{i}.log"), OpenFlags::create()).unwrap())
            .collect();
        let mut expected = vec![Vec::new(); 3];
        let mut user_data = 0u64;
        let mut cqes = Vec::new();
        for batch in &batches {
            for &(file, len) in batch {
                let fill = (user_data % 251) as u8 + 1;
                ring.try_submit(aio::Sqe::appendv(
                    user_data,
                    fds[file],
                    vec![vec![fill; len]],
                ))
                .unwrap();
                expected[file].extend(std::iter::repeat_n(fill, len));
                user_data += 1;
            }
            while hub.in_flight() > 0 {
                hub.drain(aio::DEFAULT_DRAIN_BATCH);
            }
            cqes.clear();
            ring.harvest(&mut cqes);
            let published = fs.published_epoch();
            prop_assert_eq!(cqes.len(), batch.len());
            for cqe in &cqes {
                prop_assert!(cqe.result.is_ok(), "{:?}", cqe.result);
                prop_assert!(
                    cqe.epoch <= published,
                    "epoch {} reported before publication {}",
                    cqe.epoch,
                    published
                );
                prop_assert!(cqe.epoch > 0, "logged writes carry a real epoch");
            }
        }
        hub.await_epoch(fs.published_epoch()).unwrap();
        for (i, fd) in fds.iter().enumerate() {
            fs.fsync(*fd).unwrap();
            prop_assert_eq!(
                fs.read_file(&format!("/p{i}.log")).unwrap(),
                expected[i].clone()
            );
        }
    }
}

/// Crash after awaiting the harvested epochs, with eight more
/// submissions sitting undrained in the ring: recovery replays every
/// published epoch (all 24 harvested appends reappear byte-for-byte)
/// and nothing beyond it (the undrained submissions never touched the
/// log, so the file ends exactly at the awaited epoch's data).
#[test]
fn recovery_replays_exactly_the_published_epochs() {
    // Persistence tracking on: this test crashes the device.  The
    // daemon stays off so undrained submissions provably stay undrained.
    let device = PmemBuilder::new(256 * 1024 * 1024).build();
    let kernel = Ext4Dax::mkfs(Arc::clone(&device)).unwrap();
    let config = strict_config().without_daemon();
    let fs = SplitFs::new(Arc::clone(&kernel), config.clone()).unwrap();
    let hub = splitfs::ring_hub(&fs);
    let ring = hub.ring(64);
    let fd = fs.open("/epochs.db", OpenFlags::create()).unwrap();

    let mut expected = Vec::new();
    for i in 0..24u64 {
        let fill = i as u8 + 1;
        ring.try_submit(aio::Sqe::appendv(i, fd, vec![vec![fill; 600]]))
            .unwrap();
        expected.extend(std::iter::repeat_n(fill, 600));
    }
    while hub.in_flight() > 0 {
        hub.drain(aio::DEFAULT_DRAIN_BATCH);
    }
    let mut cqes = Vec::new();
    ring.harvest(&mut cqes);
    assert_eq!(cqes.len(), 24);
    assert!(cqes.iter().all(|c| c.result == Ok(600)));
    let max_epoch = cqes.iter().map(|c| c.epoch).max().unwrap();
    hub.await_epoch(max_epoch).unwrap();
    assert!(max_epoch <= fs.published_epoch());

    // Eight more submissions that nothing ever drains: they have no
    // epoch and must not survive the crash.
    for i in 24..32u64 {
        ring.try_submit(aio::Sqe::appendv(i, fd, vec![vec![0xEEu8; 600]]))
            .unwrap();
    }

    drop(ring);
    drop(hub); // the hub's backend holds the instance's strong Arc
    drop(fs);
    device.crash();

    let kernel2 = Ext4Dax::mount(Arc::clone(&device)).unwrap();
    let report = recover(&kernel2, &config).unwrap();
    assert!(report.replayed > 0, "{report:?}");
    assert_eq!(
        kernel2.read_file("/epochs.db").unwrap(),
        expected,
        "recovery must replay every published epoch and nothing past it"
    );
}
