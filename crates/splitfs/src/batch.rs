//! Relink batching: turning staged extents into one batched kernel call.
//!
//! The seed applied each staged run with its own `ioctl_relink` call — one
//! kernel trap and one journal transaction per run.  This module plans the
//! work instead: staged extents are coalesced into runs, each run is split
//! into a block-aligned middle (moved with zero copies) and unaligned
//! head/tail bytes (copied), and every aligned middle of every run becomes
//! one [`RelinkOp`] in a single [`kernelfs::Ext4Dax::ioctl_relink_batch`]
//! submission.  One journal transaction then covers the whole `fsync` — or,
//! when the [maintenance daemon](crate::daemon) checkpoints in the
//! background, many files' worth of staged data at once.

use kernelfs::{RelinkOp, BLOCK_SIZE};
use vfs::Fd;

use crate::state::StagedExtent;

/// A group of staged extents that are contiguous in both the target file
/// and the staging file, so they can be applied with a single relink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagedRun {
    /// Offset of the run within the target file.
    pub target_offset: u64,
    /// Kernel descriptor of the staging file holding the run's bytes.
    pub staging_fd: Fd,
    /// Offset of the run within the staging file.
    pub staging_offset: u64,
    /// Device offset of the run (staging files are pre-mapped).
    pub device_offset: u64,
    /// Length of the run in bytes.
    pub len: u64,
    /// Highest operation-log sequence number the run covers.
    pub max_seq: u64,
}

/// Coalesces staged extents (in operation order) into maximal runs.
pub fn coalesce(staged: &[StagedExtent]) -> Vec<StagedRun> {
    let mut runs: Vec<StagedRun> = Vec::new();
    for ext in staged {
        if let Some(last) = runs.last_mut() {
            let contiguous_target = last.target_offset + last.len == ext.target_offset;
            let contiguous_staging = last.staging_fd == ext.staging_fd
                && last.staging_offset + last.len == ext.staging_offset;
            if contiguous_target && contiguous_staging {
                last.len += ext.len;
                last.max_seq = last.max_seq.max(ext.seq);
                continue;
            }
        }
        runs.push(StagedRun {
            target_offset: ext.target_offset,
            staging_fd: ext.staging_fd,
            staging_offset: ext.staging_offset,
            device_offset: ext.device_offset,
            len: ext.len,
            max_seq: ext.seq,
        });
    }
    runs
}

/// Partitions `runs` (in operation order) into *generations*: contiguous
/// groups whose target ranges are mutually disjoint.  A run overwriting a
/// range that an earlier run of the current group already covers starts a
/// new generation.
///
/// Each generation can be applied with one batched relink (the kernel
/// rejects overlapping ranges within a batch); applying the generations
/// **in order** preserves last-writer-wins semantics for overwrites — in
/// strict mode the same file range is routinely staged more than once
/// between fsyncs.
pub fn generations(runs: &[StagedRun]) -> Vec<&[StagedRun]> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for i in 0..runs.len() {
        let overlaps_current = runs[start..i].iter().any(|prev| {
            prev.target_offset < runs[i].target_offset + runs[i].len
                && runs[i].target_offset < prev.target_offset + prev.len
        });
        if overlaps_current {
            out.push(&runs[start..i]);
            start = i;
        }
    }
    if start < runs.len() {
        out.push(&runs[start..]);
    }
    out
}

/// A byte span that must be copied into the target through the kernel
/// write path (unaligned head/tail bytes, or whole runs when relink is
/// disabled or the staging phase does not match).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopySpan {
    /// Device offset the bytes are read from (staging blocks).
    pub device_offset: u64,
    /// Target-file offset the bytes are written to.
    pub target_offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// A staging mapping retained for the target file's mmap collection: after
/// the relink the physical blocks that backed the staging range back the
/// target range, so reads keep hitting them without new page faults
/// (paper Figure 2, step 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetainedMapping {
    /// Target-file offset the mapping now serves.
    pub target_offset: u64,
    /// Device offset of the physical blocks.
    pub device_offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Everything needed to apply a file's staged runs.
#[derive(Debug, Default)]
pub struct RelinkPlan {
    /// Block moves, submitted through `ioctl_relink_batch`.
    pub ops: Vec<RelinkOp>,
    /// Byte spans applied by copying.
    pub copies: Vec<CopySpan>,
    /// Mappings to retain in the target's collection after the moves.
    pub retained: Vec<RetainedMapping>,
}

impl RelinkPlan {
    /// Whether the plan does nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty() && self.copies.is_empty()
    }
}

/// Plans the application of `runs` to the target file behind `target_fd`.
///
/// With `use_relink`, every run's block-aligned middle becomes a
/// [`RelinkOp`] and only unaligned head/tail bytes (or phase-mismatched
/// runs) are copied; without it (the Figure 3 ablation) everything is
/// copied.
pub fn plan(runs: &[StagedRun], target_fd: Fd, use_relink: bool) -> RelinkPlan {
    let block = BLOCK_SIZE as u64;
    let mut plan = RelinkPlan::default();
    for run in runs {
        if !use_relink {
            plan.copies.push(CopySpan {
                device_offset: run.device_offset,
                target_offset: run.target_offset,
                len: run.len,
            });
            continue;
        }
        let t_start = run.target_offset;
        let t_end = run.target_offset + run.len;
        let aligned_start = t_start.div_ceil(block) * block;
        let aligned_end = (t_end / block) * block;

        // The staging allocation was phase-aligned with the target, so the
        // aligned target range corresponds to an aligned staging range.
        let phase_matches = run.staging_offset % block == t_start % block;

        if phase_matches && aligned_end > aligned_start {
            let head = aligned_start - t_start;
            let len = aligned_end - aligned_start;
            plan.ops.push(RelinkOp {
                src_fd: run.staging_fd,
                src_offset: run.staging_offset + head,
                dst_fd: target_fd,
                dst_offset: aligned_start,
                len,
            });
            plan.retained.push(RetainedMapping {
                target_offset: aligned_start,
                device_offset: run.device_offset + head,
                len,
            });
            if head > 0 {
                plan.copies.push(CopySpan {
                    device_offset: run.device_offset,
                    target_offset: t_start,
                    len: head,
                });
            }
            let tail = t_end - aligned_end;
            if tail > 0 {
                plan.copies.push(CopySpan {
                    device_offset: run.device_offset + (aligned_end - t_start),
                    target_offset: aligned_end,
                    len: tail,
                });
            }
        } else {
            // Fully unaligned (sub-block) run: copy it.
            plan.copies.push(CopySpan {
                device_offset: run.device_offset,
                target_offset: run.target_offset,
                len: run.len,
            });
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(target: u64, staging: u64, len: u64, seq: u64) -> StagedExtent {
        StagedExtent {
            target_offset: target,
            len,
            staging_ino: 70,
            staging_fd: 10,
            staging_offset: staging,
            device_offset: 1_000_000 + staging,
            seq,
        }
    }

    #[test]
    fn contiguous_staged_extents_coalesce_into_one_run() {
        let staged = vec![
            ext(0, 0, 4096, 1),
            ext(4096, 4096, 4096, 2),
            ext(8192, 8192, 4096, 3),
        ];
        let runs = coalesce(&staged);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len, 12288);
        assert_eq!(runs[0].max_seq, 3);
    }

    #[test]
    fn gaps_in_target_or_staging_split_runs() {
        // Gap in the target range.
        let staged = vec![ext(0, 0, 4096, 1), ext(8192, 4096, 4096, 2)];
        assert_eq!(coalesce(&staged).len(), 2);
        // Gap in the staging range.
        let staged = vec![ext(0, 0, 4096, 1), ext(4096, 8192, 4096, 2)];
        assert_eq!(coalesce(&staged).len(), 2);
    }

    #[test]
    fn overlapping_runs_split_into_ordered_generations() {
        // Two overwrites of [0, 4096) with a disjoint run between them.
        let runs = coalesce(&[
            ext(0, 0, 4096, 1),
            ext(8192, 4096, 4096, 2),
            ext(0, 8192, 4096, 3),
        ]);
        assert_eq!(runs.len(), 3);
        let gens = generations(&runs);
        assert_eq!(gens.len(), 2, "overwrite of the same range splits");
        assert_eq!(gens[0].len(), 2);
        assert_eq!(gens[1].len(), 1);
        assert_eq!(gens[1][0].max_seq, 3, "the later write lands last");

        // Disjoint runs stay in one generation.
        let runs = coalesce(&[ext(0, 0, 4096, 1), ext(8192, 4096, 4096, 2)]);
        assert_eq!(generations(&runs).len(), 1);
        assert!(generations(&[]).is_empty());
    }

    #[test]
    fn aligned_runs_become_pure_relink_ops() {
        let runs = coalesce(&[ext(0, 0, 8192, 1), ext(16384, 16384, 4096, 2)]);
        let plan = plan(&runs, 42, true);
        assert_eq!(plan.ops.len(), 2);
        assert!(plan.copies.is_empty());
        assert_eq!(plan.retained.len(), 2);
        assert_eq!(plan.ops[0].dst_fd, 42);
        assert_eq!(plan.ops[0].len, 8192);
        assert_eq!(plan.ops[1].dst_offset, 16384);
    }

    #[test]
    fn unaligned_head_and_tail_are_copied() {
        // Run covering [100, 8292): head [100, 4096), middle [4096, 8192),
        // tail [8192, 8292).
        let runs = coalesce(&[ext(100, 100, 8192, 5)]);
        let plan = plan(&runs, 7, true);
        assert_eq!(plan.ops.len(), 1);
        assert_eq!(plan.ops[0].dst_offset, 4096);
        assert_eq!(plan.ops[0].len, 4096);
        assert_eq!(plan.copies.len(), 2);
        assert_eq!(plan.copies[0].len, 4096 - 100);
        assert_eq!(plan.copies[1].target_offset, 8192);
        assert_eq!(plan.copies[1].len, 100);
    }

    #[test]
    fn phase_mismatch_falls_back_to_copy() {
        // Target offset aligned but staging offset is not congruent.
        let mut e = ext(0, 100, 4096, 1);
        e.staging_offset = 100;
        let plan = plan(&coalesce(&[e]), 7, true);
        assert!(plan.ops.is_empty());
        assert_eq!(plan.copies.len(), 1);
    }

    #[test]
    fn relink_disabled_copies_everything() {
        let runs = coalesce(&[ext(0, 0, 8192, 1)]);
        let plan = plan(&runs, 7, false);
        assert!(plan.ops.is_empty());
        assert_eq!(plan.copies.len(), 1);
        assert_eq!(plan.copies[0].len, 8192);
    }
}
