//! The U-Split user-space library file system.
//!
//! [`SplitFs`] implements the [`vfs::FileSystem`] trait the way the paper's
//! LD_PRELOAD library implements the POSIX API:
//!
//! * **reads and overwrites** are served from the collection of memory
//!   mappings with loads and non-temporal stores — no kernel trap;
//! * **appends** (and, in strict mode, overwrites) are redirected to
//!   pre-allocated staging files and moved into the target file with the
//!   relink primitive at the next `fsync`/`close`;
//! * **metadata operations** (`open`, `close`, `unlink`, `rename`,
//!   `mkdir`, ...) are passed through to the kernel file system
//!   ([`kernelfs::Ext4Dax`]), which journals them;
//! * in sync/strict mode, staged operations are recorded in the
//!   [operation log](crate::oplog) so they survive a crash that happens
//!   before the relink;
//! * the staging pool and the operation log are **leased per instance**
//!   from the kernel ([`kernelfs::lease`]), so many `SplitFs` instances —
//!   one per application process in the paper's deployment — share one
//!   kernel file system without stepping on each other's resources.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use kernelfs::{Ext4Dax, BLOCK_SIZE};
use pmem::{AccessPattern, PersistMode, PmemDevice, TimeCategory};
use vfs::{
    iov_total_len, path as vpath, ConsistencyClass, Fd, FileStat, FileSystem, FsError, FsResult,
    IoVec, OpenFlags, ReadView, SeekFrom,
};

use crate::adaptive::{WatermarkController, Watermarks};
use crate::config::SplitConfig;
use crate::daemon::{MaintenanceDaemon, Task};
use crate::modes::Mode;
use crate::oplog::{LogEntry, LogOp, OpLog};
use crate::recovery;
use crate::staging::StagingPool;
use crate::state::{Descriptor, FileState, ShardedFdTable, ShardedRegistry, StagedExtent};

/// Directory on the kernel file system holding SplitFS's own files
/// (staging files and the operation logs).  Instance 0 stages directly in
/// it; every further concurrent instance leases a subdirectory (see
/// [`kernelfs::lease::staging_dir`]).  Aliases the kernel-side layout
/// constant so the two crates can never disagree about the paths.
pub const SPLITFS_DIR: &str = kernelfs::lease::SPLITFS_ROOT;

/// Path of instance 0's operation-log file.  Further instances lease
/// their own log file (see [`kernelfs::lease::oplog_path`]).
pub const OPLOG_PATH: &str = kernelfs::lease::OPLOG_PATH_0;

/// A SplitFS (U-Split) instance layered over a kernel file system.
///
/// Many instances can be mounted concurrently over **one** shared
/// [`Ext4Dax`] — the paper's multi-process story, one instance per
/// process.  Each instance holds a kernel lease on an exclusive slice of
/// the staging pool (its staging directory) and a dedicated operation-log
/// file; the lease is released on clean [`Drop`] and left behind as a
/// recoverable orphan when the owner crashes (see
/// [`SplitFs::abandon_lease_on_drop`] and [`crate::recovery`]).
pub struct SplitFs {
    pub(crate) kernel: Arc<Ext4Dax>,
    pub(crate) device: Arc<PmemDevice>,
    pub(crate) config: SplitConfig,
    /// Instance id leased from the kernel file system; stamps every
    /// operation-log entry and names the staging dir / oplog file.
    pub(crate) instance_id: u32,
    /// This instance's exclusive staging directory.
    pub(crate) staging_dir: String,
    /// This instance's operation-log path.
    pub(crate) oplog_file: String,
    /// When set, `Drop` abandons the lease instead of releasing it —
    /// emulating a process crash so tests can drive per-instance
    /// recovery while other instances keep running.
    pub(crate) crash_on_drop: std::sync::atomic::AtomicBool,
    pub(crate) files: ShardedRegistry,
    pub(crate) fds: ShardedFdTable,
    pub(crate) staging: StagingPool,
    pub(crate) oplog: Option<OpLog>,
    /// Background maintenance workers (None when disabled by config).
    /// Behind a mutex so `Drop` can take and join them.
    pub(crate) daemon: Mutex<Option<MaintenanceDaemon>>,
    /// Serializes [`SplitFs::grow_oplog`]'s extend/zero/install sequence:
    /// without it a stale grower could zero a region a concurrent grower
    /// already handed to appenders, or ftruncate the file back down.
    grow_lock: Mutex<()>,
    /// Serializes sealed-epoch retirement (the sweep that relinks every
    /// file with sealed staged data and then truncates the sealed epoch).
    /// Foreground paths only `try_lock` it — holding a file-state lock
    /// while blocking on it could deadlock against the retirer's sweep.
    pub(crate) retire_lock: Mutex<()>,
    /// Set when a checkpoint nudge is outstanding, so the append hot path
    /// can skip the daemon mutexes while utilization stays above the
    /// threshold.  Cleared by the worker when the checkpoint runs.
    pub(crate) checkpoint_nudged: std::sync::atomic::AtomicBool,
    /// Same, for staging-provisioning nudges.
    pub(crate) provision_nudged: std::sync::atomic::AtomicBool,
    /// The adaptive provisioning controller: per-lane consumption-rate
    /// windows sized into watermarks on each maintenance tick.  Only the
    /// daemon touches it, so the mutex is uncontended.
    pub(crate) adaptive: Mutex<WatermarkController>,
    /// Daemon health gauges, overwritten by each maintenance tick and
    /// read through [`SplitFs::health`] / the metrics export.
    pub(crate) health: obs::HealthProbe,
    /// Span recorder for background maintenance work, when one is
    /// attached (see [`SplitFs::attach_recorder`]).  Foreground spans
    /// come from the `vfs::TracedFs` wrapper; the daemon cannot go
    /// through the wrapper, so it opens its own `Maintenance` spans
    /// against this recorder.  RwLock: written once per measured run,
    /// read once per daemon dispatch.
    pub(crate) recorder: parking_lot::RwLock<Option<Arc<obs::Recorder>>>,
    /// Highest durability epoch published by this instance: every
    /// operation-log sequence number ≤ this value is covered by a
    /// group-commit fence (see [`crate::rings`]).  Published with
    /// `fetch_max` *after* the fence, so readers can never observe an
    /// epoch whose entries are still volatile.
    pub(crate) published_epoch: std::sync::atomic::AtomicU64,
    /// The async ring hub attached to this instance, if any (weak: the
    /// hub's backend holds the `Arc<SplitFs>`, so a strong reference
    /// here would leak the cycle).  Drained by the maintenance workers.
    pub(crate) ring_hub: parking_lot::RwLock<Option<std::sync::Weak<aio::RingFs>>>,
}

impl std::fmt::Debug for SplitFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SplitFs")
            .field("mode", &self.config.mode)
            .field("instance", &self.instance_id)
            .field("open_files", &self.files.len())
            .finish()
    }
}

/// DRAM footprint of a U-Split instance (resource-consumption experiment,
/// §5.10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryUsage {
    /// Number of files with cached state.
    pub cached_files: usize,
    /// Number of staged extents awaiting relink.
    pub staged_extents: usize,
    /// Number of mapped segments across all collections.
    pub mmap_segments: usize,
    /// Approximate bytes of DRAM used by the above.
    pub approx_bytes: usize,
}

impl SplitFs {
    /// Creates a U-Split instance over `kernel` with the given
    /// configuration.
    ///
    /// This pre-allocates the staging files, creates (or recovers) the
    /// operation log when the mode requires one, and is the moral
    /// equivalent of `LD_PRELOAD`-ing the SplitFS library into a process.
    pub fn new(kernel: Arc<Ext4Dax>, config: SplitConfig) -> FsResult<Arc<Self>> {
        let device = Arc::clone(kernel.device());

        // Instances that crashed earlier left orphaned leases behind;
        // replay their per-instance logs (and release their leases) before
        // any resource is reused.  Each orphan's log replays independently,
        // so instance B recovers even if instance A died mid-relink.
        if config.recover_orphans_on_mount {
            recovery::recover_orphans(&kernel, &config)?;
        }

        // Lease this instance's slice of the staging pool and its
        // operation-log range.  The lease record is journaled by the
        // kernel, so a crash from here on leaves a recoverable orphan.
        let instance_id = kernel.lease_acquire()?;

        // Everything between the acquire and the construction of the
        // instance (which owns the release-on-Drop) must give the lease
        // back on failure — otherwise every failed mount would leak an id
        // that is neither held by anyone nor reported as an orphan.
        match Self::build_leased_resources(&kernel, &device, &config, instance_id) {
            Ok((staging_dir, oplog_file, staging, oplog)) => {
                let adaptive = Mutex::new(Self::make_watermark_controller(
                    &config,
                    staging.lane_count(),
                ));
                let fs = Arc::new(Self {
                    kernel,
                    device: Arc::clone(&device),
                    config,
                    instance_id,
                    staging_dir,
                    oplog_file,
                    crash_on_drop: std::sync::atomic::AtomicBool::new(false),
                    files: ShardedRegistry::new(Some(device)),
                    fds: ShardedFdTable::new(),
                    staging,
                    oplog,
                    daemon: Mutex::new(None),
                    grow_lock: Mutex::new(()),
                    retire_lock: Mutex::new(()),
                    checkpoint_nudged: std::sync::atomic::AtomicBool::new(false),
                    provision_nudged: std::sync::atomic::AtomicBool::new(false),
                    adaptive,
                    health: obs::HealthProbe::new(),
                    recorder: parking_lot::RwLock::new(None),
                    published_epoch: std::sync::atomic::AtomicU64::new(0),
                    ring_hub: parking_lot::RwLock::new(None),
                });
                if fs.config.daemon.enabled && fs.config.use_staging {
                    *fs.daemon.lock() = Some(MaintenanceDaemon::start(&fs, &fs.config.daemon));
                }
                Ok(fs)
            }
            Err(e) => {
                let _ = kernel.lease_release(instance_id);
                Err(e)
            }
        }
    }

    /// Builds everything the freshly leased `instance_id` owns: replays
    /// any leftover log at its path, ensures the bookkeeping root exists,
    /// constructs the staging pool and (when the mode logs) the operation
    /// log.  Split out of [`SplitFs::new`] so a failure anywhere in here
    /// has exactly one cleanup path: release the lease.
    #[allow(clippy::type_complexity)]
    fn build_leased_resources(
        kernel: &Arc<Ext4Dax>,
        device: &Arc<PmemDevice>,
        config: &SplitConfig,
        instance_id: u32,
    ) -> FsResult<(String, String, StagingPool, Option<OpLog>)> {
        let staging_dir = kernelfs::lease::staging_dir(instance_id);
        let oplog_file = kernelfs::lease::oplog_path(instance_id);

        // A cleanly shut-down predecessor with the same id may have left a
        // log file with covered entries behind; replay is idempotent and
        // leaves the file zeroed for this instance.
        if config.mode.logs_data_ops() && kernel.exists(&oplog_file) {
            recovery::recover_instance(kernel, config, instance_id)?;
        }

        // Instance subdirectories nest under the shared bookkeeping root;
        // make sure it exists (another instance may win the race).
        if !kernel.exists(SPLITFS_DIR) {
            match kernel.mkdir(SPLITFS_DIR) {
                Ok(()) | Err(FsError::AlreadyExists) => {}
                Err(e) => return Err(e),
            }
        }
        let staging =
            StagingPool::new(Arc::clone(kernel), Arc::clone(device), &staging_dir, config)?;

        let oplog = if config.mode.logs_data_ops() {
            let fd = kernel.open(&oplog_file, OpenFlags::create())?;
            kernel.ftruncate(fd, config.oplog_size)?;
            let mapping = kernel.dax_map(fd, 0, config.oplog_size, config.populate_mmaps)?;
            let log = OpLog::new(Arc::clone(device), mapping, config.oplog_size);
            // §3.3: the log is zeroed at initialization so recovery can tell
            // written slots from never-used ones.
            log.reset();
            Some(log)
        } else {
            None
        };
        Ok((staging_dir, oplog_file, staging, oplog))
    }

    /// Builds the adaptive watermark controller for a pool of
    /// `lane_count` lanes.  The per-lane floor splits the configured
    /// static shape across the lanes — `staging_files` (and the static
    /// watermarks) bound the watermarks from below, so adaptive shrink
    /// can never drop provisioning under the configured pool shape.
    fn make_watermark_controller(config: &SplitConfig, lane_count: usize) -> WatermarkController {
        let lanes = lane_count.max(1);
        // Same formula as the pool's construction-time watermarks, so an
        // idle system's first tick computes exactly the values the lanes
        // already run with (no spurious "resize", no shrink below the
        // configured pool shape).
        let (floor_low, floor_high) = crate::staging::lane_watermark_floor(config, lanes);
        WatermarkController::new(
            lanes,
            config.daemon.adapt_window_ms,
            config.daemon.adapt_horizon_ms,
            config.staging_file_size,
            Watermarks {
                low: floor_low,
                high: floor_high,
            },
            config.daemon.adapt_lane_cap,
        )
    }

    /// The mode this instance runs in.
    pub fn mode(&self) -> Mode {
        self.config.mode
    }

    /// The instance id leased from the kernel file system.
    pub fn instance_id(&self) -> u32 {
        self.instance_id
    }

    /// This instance's exclusive staging directory.
    pub fn staging_dir(&self) -> &str {
        &self.staging_dir
    }

    /// This instance's operation-log path.
    pub fn oplog_file(&self) -> &str {
        &self.oplog_file
    }

    /// Arms crash emulation: when the instance is dropped, its kernel
    /// lease is **abandoned** instead of released — exactly what the
    /// owning process dying would leave behind.  The lease then shows up
    /// in [`Ext4Dax::lease_orphans`] and the instance's operation log is
    /// replayed by [`crate::recovery::recover_orphans`] (or the next
    /// `SplitFs::new`) while other instances keep running.
    pub fn abandon_lease_on_drop(&self) {
        self.crash_on_drop
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Whether background maintenance workers are running.
    pub fn daemon_running(&self) -> bool {
        self.daemon.lock().is_some()
    }

    /// The staging pool (exposed for experiments and tests that assert on
    /// provisioning behaviour).
    pub fn staging_pool(&self) -> &StagingPool {
        &self.staging
    }

    /// Blocks until the maintenance daemon has drained its queue and every
    /// worker is idle.  A no-op when the daemon is disabled.  Used by
    /// experiments that need a deterministic point at which all nudged
    /// background work (provisioning, relinks, checkpoints) has landed.
    pub fn maintenance_quiesce(&self) {
        let shareds = self.daemon.lock().as_ref().map(|d| d.shared_handles());
        if let Some(shareds) = shareds {
            MaintenanceDaemon::wait_idle(&shareds);
        }
    }

    /// Attaches a span recorder for background maintenance work: every
    /// daemon dispatch from now on runs under an
    /// [`obs::OpKind::Maintenance`] span against `recorder`, so the
    /// per-op time breakdown covers daemon charges too.  Foreground
    /// operations are spanned by wrapping the instance in
    /// [`vfs::TracedFs`] with the same recorder.
    pub fn attach_recorder(&self, recorder: Arc<obs::Recorder>) {
        *self.recorder.write() = Some(recorder);
    }

    /// The daemon's health gauges as of its last maintenance tick (all
    /// zero until the first tick, or forever when the daemon is off).
    pub fn health(&self) -> obs::HealthSnapshot {
        self.health.read()
    }

    /// Opens a `Maintenance` span when a recorder is attached (daemon
    /// workers call this around each dispatched task).
    pub(crate) fn maintenance_span(&self) -> Option<obs::SpanGuard> {
        self.recorder
            .read()
            .as_ref()
            .map(|r| r.span(obs::OpKind::Maintenance))
    }

    /// Nudges the daemon with `task`; a no-op when the daemon is disabled.
    pub(crate) fn nudge(&self, task: Task) {
        if let Some(daemon) = self.daemon.lock().as_ref() {
            daemon.submit(task);
        }
    }

    /// The kernel file system underneath.
    pub fn kernel(&self) -> &Arc<Ext4Dax> {
        &self.kernel
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SplitConfig {
        &self.config
    }

    /// Duplicates a descriptor; both descriptors share one file offset
    /// (§3.5, "Handling dup").
    pub fn dup(&self, fd: Fd) -> FsResult<Fd> {
        self.charge_usplit();
        self.fds.dup(fd)
    }

    /// DRAM footprint of the instance's bookkeeping structures.
    pub fn memory_usage(&self) -> MemoryUsage {
        let states = self.files.snapshot();
        let mut usage = MemoryUsage {
            cached_files: states.len(),
            ..MemoryUsage::default()
        };
        for state in &states {
            let st = state.read();
            usage.staged_extents += st.staged.len();
            usage.mmap_segments += st.mmaps.len();
        }
        usage.approx_bytes = usage.cached_files * std::mem::size_of::<FileState>()
            + usage.staged_extents * std::mem::size_of::<StagedExtent>()
            + usage.mmap_segments * 24
            + self.fds.len() * std::mem::size_of::<Descriptor>();
        usage
    }

    /// Number of operation-log entries currently in use (0 in POSIX mode).
    pub fn oplog_entries(&self) -> u64 {
        self.oplog.as_ref().map(|l| l.entries_used()).unwrap_or(0)
    }

    /// Forces an epoch swap on the operation log **without** retiring the
    /// sealed half (retirement happens on the next checkpoint or daemon
    /// pass).  Returns `false` when the mode has no log or the other half
    /// is still pending retirement.  Exposed for crash tests and
    /// experiments that need entries split across both epochs at a
    /// deterministic point.
    pub fn seal_oplog_epoch(&self) -> bool {
        self.oplog
            .as_ref()
            .map(|l| l.try_seal().is_some())
            .unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // Cost helpers
    // ------------------------------------------------------------------

    pub(crate) fn charge_usplit(&self) {
        let cost = self.device.cost().clone();
        self.device.charge_software(cost.usplit_bookkeeping_ns);
    }

    fn charge_mmap_lookup(&self) {
        let cost = self.device.cost().clone();
        self.device.charge_software(cost.usplit_mmap_lookup_ns);
    }

    // ------------------------------------------------------------------
    // File-state management
    // ------------------------------------------------------------------

    pub(crate) fn state_for_fd(&self, fd: Fd) -> FsResult<(Descriptor, Arc<RwLock<FileState>>)> {
        let desc = self.fds.get(fd)?;
        let state = self.files.get(desc.ino).ok_or(FsError::BadFd)?;
        Ok((desc, state))
    }

    /// Appends a record to the operation log.  Returns
    /// [`FsError::NoSpace`] when the log is full; the write path reacts by
    /// checkpointing and retrying, while best-effort records (invalidation
    /// markers) are simply dropped — replay stays correct without them
    /// because it is idempotent.
    pub(crate) fn log_append(&self, entry: &LogEntry) -> FsResult<()> {
        match self.oplog.as_ref() {
            Some(oplog) => oplog.append(entry),
            None => Ok(()),
        }
    }

    /// Relinks every file with staged data and truncates the operation log
    /// by **epoch swap** (§3.3: performed when the log fills up, by
    /// [`FileSystem::sync`], and in the background by the maintenance
    /// daemon).
    ///
    /// No stop-the-world pass exists anymore: the active epoch is sealed
    /// (writers continue into the empty half immediately), the sealed
    /// epoch's files are relinked one at a time — never holding two state
    /// locks — and only then is the sealed half re-zeroed.
    pub fn checkpoint(&self) -> FsResult<()> {
        if let Some(oplog) = self.oplog.as_ref() {
            let _ = oplog.try_seal();
        }
        self.retire_sealed(None, true);
        Ok(())
    }

    /// Handles a full active epoch from inside `stage_write`, where the
    /// caller holds `state`'s write lock.  First tries to **seal**: the
    /// empty half becomes active and this writer retries immediately,
    /// while retirement of the sealed half happens in the background (or
    /// inline, best-effort, when the daemon is disabled).  If the other
    /// half is itself still being retired, the log **grows** instead —
    /// this writer never waits on anyone, so `checkpoint_stalls` stays
    /// zero.  The seed's behaviour here — blocking on every other file's
    /// lock while holding one — deadlocked as soon as two writers filled
    /// the log concurrently.
    pub(crate) fn handle_log_full(&self, state: &mut FileState) -> FsResult<()> {
        let Some(oplog) = self.oplog.as_ref() else {
            return Err(FsError::NoSpace);
        };
        if oplog.try_seal().is_some() {
            if self.config.daemon.enabled {
                self.nudge(Task::Checkpoint);
            } else {
                // Inline best-effort retirement: sweep with try-locks only
                // (we hold a state lock), relinking the current file
                // through the reference we already hold.  On contention
                // the sealed half simply stays pending and a later pass
                // (or growth) covers for it.
                self.retire_sealed(Some(state), false);
            }
            return Ok(());
        }
        // The other half is still being retired: grow the active epoch.
        // A growth failure (device full) is a real foreground stall.
        self.grow_oplog().inspect_err(|_| {
            self.device.stats().add_checkpoint_stall(0.0);
            obs::event(obs::SpanEvent::CheckpointStall);
        })
    }

    /// Retires the sealed epoch: relinks every file with staged data (one
    /// state lock at a time — never two), group-commits the `Invalidate`
    /// markers into the *active* epoch, and truncates the sealed half.
    /// With no operation log (POSIX mode) it degrades to a plain
    /// relink-everything sweep.
    ///
    /// `current` is a file whose write lock the caller already holds (it
    /// is relinked through the reference instead of re-locked); with
    /// `blocking` false every lock is `try_*` only, so the pass can run
    /// while the caller holds a state lock without risking deadlock.
    ///
    /// Returns `true` when the sweep covered every file (and the sealed
    /// epoch, if any, was truncated).
    pub(crate) fn retire_sealed(&self, current: Option<&mut FileState>, blocking: bool) -> bool {
        let retire_guard = if blocking {
            Some(self.retire_lock.lock())
        } else {
            match self.retire_lock.try_lock() {
                Some(guard) => Some(guard),
                None => return false, // another retirer owns the sweep
            }
        };
        let _retire_guard = retire_guard;

        // Only a sweep that *started after* the seal may truncate: every
        // sealed entry's staged extent was recorded (under its file lock)
        // before the seal's writer drain, so such a sweep provably visits
        // it.  A sweep that was already running when the seal landed may
        // have passed a file before its sealed entry appeared.
        let sealed_at_start = self
            .oplog
            .as_ref()
            .map(|l| l.sealed_pending())
            .unwrap_or(false);
        let current_ino = current.as_ref().map(|c| c.ino);
        let mut deferred: Vec<LogEntry> = Vec::new();
        let mut complete = true;
        if let Some(st) = current {
            if !st.staged.is_empty() && self.relink_file_deferring(st, &mut deferred).is_err() {
                complete = false;
            }
        }
        for (ino, state) in self.files.snapshot_keyed() {
            if Some(ino) == current_ino {
                // The caller already holds (and relinked through) this
                // state's write lock; touching its lock here — even a
                // read — would self-deadlock.
                continue;
            }
            let guard = if blocking {
                Some(state.write())
            } else {
                state.try_write()
            };
            let Some(mut st) = guard else {
                complete = false;
                continue;
            };
            if !st.staged.is_empty() && self.relink_file_deferring(&mut st, &mut deferred).is_err()
            {
                // A failed relink leaves that file's data staged and its
                // log entries live; the sealed epoch must stay pending.
                complete = false;
            }
        }
        if let Some(oplog) = self.oplog.as_ref() {
            // The markers are an optimization (recovery also skips
            // relinked entries because their staging ranges are holes), so
            // a full active epoch just drops them.
            let _ = oplog.append_batch(&deferred);
            if complete && sealed_at_start {
                oplog.truncate_sealed();
            }
        }
        complete
    }

    /// Doubles the operation log: extends the file, maps the larger range
    /// and swaps it into the live log.  Concurrent growers are harmless
    /// (both compute the same target size; [`OpLog::grow`] ignores
    /// non-growth).
    fn grow_oplog(&self) -> FsResult<()> {
        let oplog = self.oplog.as_ref().ok_or(FsError::NoSpace)?;
        // One grower at a time: a stale second grower would re-zero a
        // region the first already published to appenders, or ftruncate
        // the file back below its live size.
        let _guard = self.grow_lock.lock();
        if !oplog.is_full() {
            // A concurrent grower or checkpoint already made room while we
            // waited for the lock; retry the append instead of doubling
            // the log again.
            return Ok(());
        }
        let old_size = oplog.size();
        let new_size = old_size.saturating_mul(2).max(4096);
        let fd = self
            .kernel
            .open(&self.oplog_file, OpenFlags::read_write())?;
        self.kernel.ftruncate(fd, new_size)?;
        let mapping = self
            .kernel
            .dax_map(fd, 0, new_size, self.config.populate_mmaps)?;
        let _ = self.kernel.close(fd);
        // The extension may sit on recycled blocks still holding
        // checksum-valid entries from an earlier log incarnation (the
        // allocator does not zero freed blocks).  Recovery scans the whole
        // file, so such ghost entries would replay stale data — zero the
        // extension before the log starts using it.
        OpLog::zero_range(&self.device, &mapping, old_size, new_size);
        oplog.grow(mapping, new_size);
        Ok(())
    }

    /// Recycles staging files whose contents were fully retired: each one
    /// gets a durable `StagingRecycle` marker in the operation log (so
    /// recovery never replays a stale entry over the file's fresh blocks),
    /// is truncated and re-provisioned, and rejoins the pool's unconsumed
    /// tail — closing the seed's leak of one staging file per ~16 MiB of
    /// appends.  Runs on the maintenance tick.
    pub(crate) fn recycle_staging(&self) {
        loop {
            let Some(rec) = self.staging.begin_recycle() else {
                return;
            };
            if let Some(oplog) = self.oplog.as_ref() {
                let marker = LogEntry {
                    op: LogOp::StagingRecycle,
                    target_ino: 0,
                    target_offset: 0,
                    len: 0,
                    staging_ino: rec.ino(),
                    staging_offset: 0,
                    seq: oplog.next_seq(),
                    instance_id: self.instance_id,
                };
                if oplog.append(&marker).is_err() {
                    // No log space: put the file back and retry on a later
                    // tick, after a checkpoint has made room.
                    self.staging.abort_recycle(rec);
                    return;
                }
            }
            if self.staging.rebuild(rec).is_err() {
                // Rebuild failure (device full): the file is dropped from
                // the pool; the marker is harmless.
                return;
            }
        }
    }

    /// Relinks every **cold** file: one whose staged extents have not
    /// grown for at least `DaemonConfig::cold_relink_after_ms` simulated
    /// milliseconds.  Retiring their staged bytes makes the staging files
    /// holding them recyclable, which is how the pool reclaims space from
    /// writers that stage and then never `fsync`.  Locks are `try_*` only
    /// (a busy file is by definition not cold) and errors are swallowed —
    /// the staged data stays staged and the next `fsync` retries.
    ///
    /// Returns the number of files relinked.  Runs from the maintenance
    /// tick under staging-space pressure; exposed publicly for tests and
    /// experiments that drive the policy deterministically.
    pub fn reclaim_cold_staging(&self) -> usize {
        let now = self.device.clock().now_ns_f64();
        let threshold_ns = self.config.daemon.cold_relink_after_ms * 1e6;
        let mut relinked = 0;
        for (_ino, state) in self.files.snapshot_keyed() {
            let Some(mut st) = state.try_write() else {
                continue;
            };
            if !st.staged.is_empty()
                && now - st.last_staged_ns >= threshold_ns
                && self.relink_file(&mut st).is_ok()
            {
                relinked += 1;
                self.device.stats().add_staging_cold_relink();
                obs::event(obs::SpanEvent::ColdRelink);
            }
        }
        relinked
    }

    // ------------------------------------------------------------------
    // Tiered capacity: demotion sweep and heat promotion
    // ------------------------------------------------------------------

    /// Demotes long-idle, fully relinked files to the capacity tier.
    /// Extends the cold-staging policy above one step further down the
    /// lifecycle: a file whose staged data was already retired and that
    /// nobody has read or written for `tier_demote_after_ms` gives its PM
    /// blocks back to hot files.
    ///
    /// The sweep runs only while PM utilization is at or above
    /// `tier_pm_watermark`, and the idle requirement **adapts** to
    /// pressure: right at the watermark a candidate must have been idle
    /// for the full threshold, and as PM approaches full the requirement
    /// shrinks (to a quarter at 100%), so a nearly-full fast tier sheds
    /// load more aggressively.  Demotion traffic is QoS-capped at
    /// `tier_bandwidth_per_tick` bytes per pass; candidates deferred by
    /// an exhausted budget are counted in `tier_bandwidth_deferrals` and
    /// picked up by a later tick.
    ///
    /// Locks are `try_*` only (a busy file is by definition not idle) and
    /// errors are swallowed — the file simply stays on PM.  Returns the
    /// number of files demoted.  Runs from the maintenance tick; exposed
    /// publicly for tests and experiments that drive the policy
    /// deterministically.
    pub fn sweep_tier_demotions(&self) -> usize {
        if !self.kernel.is_tiered() {
            return 0;
        }
        let cfg = &self.config.daemon;
        let util = self.kernel.pm_utilization();
        if util < cfg.tier_pm_watermark {
            return 0;
        }
        let headroom = (1.0 - cfg.tier_pm_watermark).max(1e-9);
        let pressure = ((util - cfg.tier_pm_watermark) / headroom).clamp(0.0, 1.0);
        let idle_ns = cfg.tier_demote_after_ms * 1e6 * (1.0 - 0.75 * pressure);
        let now = self.device.clock().now_ns_f64();
        let mut spent = 0u64;
        let mut demoted = 0usize;
        for (_ino, state) in self.files.snapshot_keyed() {
            let Some(mut st) = state.try_write() else {
                continue;
            };
            if st.demoted || st.kernel_size == 0 || !st.staged.is_empty() {
                continue;
            }
            if now - st.last_access_ns.max(st.last_staged_ns) < idle_ns {
                continue;
            }
            if spent >= cfg.tier_bandwidth_per_tick {
                // Budget exhausted: defer this candidate to a later tick.
                self.device.stats().add_tier_bandwidth_deferral();
                continue;
            }
            if let Ok(moved) = self.kernel.ioctl_demote(st.kernel_fd) {
                // The mappings point at PM blocks the kernel just freed;
                // dropping them under the state write lock closes the
                // stale-read window (every read path takes this lock).
                st.mmaps.clear();
                st.demoted = true;
                st.cold_reads = 0;
                spent += moved;
                demoted += 1;
            }
        }
        demoted
    }

    /// Demotes the file behind `fd` to the capacity tier right now,
    /// relinking any staged data first (segments are placed per extent,
    /// so the file must be fully on PM before it moves).  Returns the
    /// bytes migrated.  The policy path is [`Self::sweep_tier_demotions`];
    /// this explicit form lets workloads and experiments build a cold
    /// set deterministically.
    pub fn demote_fd(&self, fd: Fd) -> FsResult<u64> {
        if !self.kernel.is_tiered() {
            return Err(FsError::NotSupported);
        }
        let (_, state) = self.state_for_fd(fd)?;
        let mut st = state.write();
        if !st.staged.is_empty() && self.config.use_staging {
            self.relink_file(&mut st)?;
        }
        let moved = self.kernel.ioctl_demote(st.kernel_fd)?;
        st.mmaps.clear();
        st.demoted = true;
        st.cold_reads = 0;
        Ok(moved)
    }

    /// Promotes the file behind `fd` back to PM right now (the explicit
    /// counterpart of [`Self::demote_fd`]).  Returns the bytes migrated
    /// (0 when the file was already resident).
    pub fn promote_fd(&self, fd: Fd) -> FsResult<u64> {
        let (_, state) = self.state_for_fd(fd)?;
        let mut st = state.write();
        let moved = self.kernel.ioctl_promote(st.kernel_fd)?;
        st.demoted = false;
        st.cold_reads = 0;
        Ok(moved)
    }

    /// Promotes a demoted file back to PM, eagerly.  Called from every
    /// mutating path — a written file is hot by definition — and by the
    /// read path once the heat counter crosses its threshold.  On failure
    /// (e.g. PM full) the flag stays set and the operation falls through
    /// to the kernel, which surfaces the real error.
    pub(crate) fn promote_if_demoted(&self, st: &mut FileState) {
        if st.demoted && self.kernel.ioctl_promote(st.kernel_fd).is_ok() {
            st.demoted = false;
            st.cold_reads = 0;
        }
    }

    /// Accounts one read served while demoted and promotes the file once
    /// it has proven itself hot.
    fn note_cold_read(&self, st: &mut FileState) {
        if !st.demoted {
            return;
        }
        st.cold_reads = st.cold_reads.saturating_add(1);
        if st.cold_reads >= self.config.daemon.tier_promote_after_reads {
            self.promote_if_demoted(st);
        }
    }

    /// Ensures a mapping of the target file covering `offset` exists in the
    /// collection, creating a `mmap_size` region on demand.  Returns the
    /// device offset and contiguous length, or `None` when the region
    /// cannot be mapped (holes) and the caller must fall back to the kernel.
    fn ensure_mapped(&self, state: &mut FileState, offset: u64) -> Option<(u64, u64)> {
        // A demoted file has no PM extents to map; mapping it would force
        // an immediate promotion inside the kernel.  Reads instead bounce
        // through the kernel fallback, which reassembles the capacity-tier
        // segments transparently, and the heat counter decides when the
        // file has earned its way back to PM.
        if state.demoted {
            return None;
        }
        self.charge_mmap_lookup();
        if let Some(hit) = state.mmaps.lookup(offset) {
            return Some(hit);
        }
        // Only ranges the kernel has blocks for can be mapped.
        let alloc_end = state.kernel_size.div_ceil(BLOCK_SIZE as u64) * BLOCK_SIZE as u64;
        if offset >= alloc_end {
            return None;
        }
        let region_start = offset - offset % self.config.mmap_size;
        let region_len = self.config.mmap_size.min(alloc_end - region_start);
        match self.kernel.dax_map(
            state.kernel_fd,
            region_start,
            region_len,
            self.config.populate_mmaps,
        ) {
            Ok(mapping) => {
                state.mmaps.record_mmap_call();
                for seg in &mapping.segments {
                    state
                        .mmaps
                        .insert(seg.file_offset, seg.device_offset, seg.len);
                }
                state.mmaps.lookup(offset)
            }
            Err(_) => None,
        }
    }

    /// Serves a read of committed (non-staged) file content.
    fn read_committed(
        &self,
        state: &mut FileState,
        offset: u64,
        buf: &mut [u8],
        pattern: AccessPattern,
    ) -> FsResult<()> {
        let mut pos = 0usize;
        let mut first = true;
        while pos < buf.len() {
            let file_off = offset + pos as u64;
            if file_off >= state.kernel_size {
                buf[pos..].fill(0);
                break;
            }
            let want = (buf.len() - pos).min((state.kernel_size - file_off) as usize);
            match self.ensure_mapped(state, file_off) {
                Some((dev_off, contig)) => {
                    let n = want.min(contig as usize);
                    let p = if first {
                        pattern
                    } else {
                        AccessPattern::Sequential
                    };
                    self.device.try_read(
                        dev_off,
                        &mut buf[pos..pos + n],
                        p,
                        TimeCategory::UserData,
                    )?;
                    pos += n;
                }
                None => {
                    // Hole or unmappable region: fall back to the kernel
                    // read path for this chunk.
                    let n = self.kernel.read_at(
                        state.kernel_fd,
                        file_off,
                        &mut buf[pos..pos + want],
                    )?;
                    if n == 0 {
                        buf[pos..pos + want].fill(0);
                        pos += want;
                    } else {
                        pos += n;
                    }
                }
            }
            first = false;
        }
        Ok(())
    }

    /// Overlays staged extents (newest last) on top of a read.
    fn overlay_staged(&self, state: &FileState, offset: u64, buf: &mut [u8]) -> FsResult<()> {
        let end = offset + buf.len() as u64;
        for ext in &state.staged {
            let ext_end = ext.target_offset + ext.len;
            if ext.target_offset >= end || ext_end <= offset {
                continue;
            }
            let copy_start = ext.target_offset.max(offset);
            let copy_end = ext_end.min(end);
            let dev = ext.device_offset + (copy_start - ext.target_offset);
            let dst = (copy_start - offset) as usize;
            let n = (copy_end - copy_start) as usize;
            self.device.try_read(
                dev,
                &mut buf[dst..dst + n],
                AccessPattern::Random,
                TimeCategory::UserData,
            )?;
        }
        Ok(())
    }

    /// Writes data in place through the collection of mmaps (POSIX/sync
    /// overwrites).  Falls back to the kernel write path when a region
    /// cannot be mapped.
    fn write_in_place(&self, state: &mut FileState, offset: u64, data: &[u8]) -> FsResult<()> {
        let mut pos = 0usize;
        while pos < data.len() {
            let file_off = offset + pos as u64;
            let want = data.len() - pos;
            match self.ensure_mapped(state, file_off) {
                Some((dev_off, contig)) => {
                    let n = want.min(contig as usize);
                    self.device.write(
                        dev_off,
                        &data[pos..pos + n],
                        PersistMode::NonTemporal,
                        TimeCategory::UserData,
                    );
                    pos += n;
                }
                None => {
                    let n =
                        self.kernel
                            .write_at(state.kernel_fd, file_off, &data[pos..pos + want])?;
                    state.kernel_size = state.kernel_size.max(file_off + n as u64);
                    pos += n;
                }
            }
        }
        Ok(())
    }

    /// Stages `data` at `target_offset`: writes it to staging space, records
    /// the extent and (in sync/strict mode) appends an operation-log entry.
    fn stage_write(&self, state: &mut FileState, target_offset: u64, data: &[u8]) -> FsResult<()> {
        self.stage_writev(state, target_offset, &[IoVec::new(data)])
    }

    /// Stages a gather list at `target_offset` as **one** logical write:
    /// every slice lands in (cursor-contiguous) staging space, a single
    /// fence makes the whole gather durable, and in sync/strict mode the
    /// operation-log entries for all of it group-commit under one more
    /// fence ([`OpLog::append_batch`]).  A gather of N slices therefore
    /// costs two fences total where N staged writes used to cost 2N.
    fn stage_writev(
        &self,
        state: &mut FileState,
        target_offset: u64,
        iov: &[IoVec<'_>],
    ) -> FsResult<()> {
        let total = iov_total_len(iov);
        if total == 0 {
            return Ok(());
        }
        // Phase 1: write every slice into staging space.  Allocations are
        // cursor bumps, so consecutive chunks are contiguous in the staging
        // file and coalesce into one run at relink time.
        let mut pending: Vec<(crate::staging::StagingAllocation, u64, usize)> = Vec::new();
        let mut t_off = target_offset;
        for v in iov {
            let data = v.as_slice();
            let mut pos = 0usize;
            while pos < data.len() {
                let cur = t_off + pos as u64;
                let remaining = (data.len() - pos) as u64;
                let alloc = self.staging.take(remaining, cur % BLOCK_SIZE as u64)?;
                let n = alloc.len.min(remaining) as usize;
                self.device.write(
                    alloc.device_offset,
                    &data[pos..pos + n],
                    PersistMode::NonTemporal,
                    TimeCategory::UserData,
                );
                pending.push((alloc, cur, n));
                pos += n;
            }
            t_off += data.len() as u64;
        }

        // Phase 2: make the gather durable and log it.
        let seqs: Vec<u64> = if self.config.mode.logs_data_ops() {
            // The staged data must be in the persistence domain before a
            // valid log entry can point at it — one fence for the gather.
            self.device.fence(TimeCategory::UserData);
            let entries: Vec<LogEntry> = pending
                .iter()
                .map(|(alloc, cur, n)| LogEntry {
                    op: LogOp::StagedWrite,
                    target_ino: state.ino,
                    target_offset: *cur,
                    len: *n as u64,
                    staging_ino: alloc.staging_ino,
                    staging_offset: alloc.staging_offset,
                    seq: self
                        .oplog
                        .as_ref()
                        .map(|l| l.next_seq())
                        .unwrap_or_default(),
                    instance_id: self.instance_id,
                })
                .collect();
            loop {
                // One entry appends directly; a gather group-commits under
                // a single fence.  On NoSpace: seal (epoch swap) or grow,
                // then retry (concurrent sealers/growers may briefly race
                // a reservation past the new end, so loop).  Every round
                // makes progress — a swap, a growth, or another thread's —
                // so this never busy-waits; the only true stall is a
                // growth failure, counted inside `handle_log_full`.
                let res = match (self.oplog.as_ref(), entries.len()) {
                    (None, _) => Ok(()),
                    (Some(_), 1) => self.log_append(&entries[0]),
                    (Some(oplog), _) => oplog.append_batch(&entries),
                };
                match res {
                    Ok(()) => break,
                    Err(FsError::NoSpace) => self.handle_log_full(state)?,
                    Err(e) => return Err(e),
                }
            }
            // The gather's entries just group-committed: every sequence
            // number in it is durable, so publish the durability epoch
            // (ring completions await it; see `crate::rings`).
            let max_seq = entries.iter().map(|e| e.seq).max().unwrap_or(0);
            self.device.declare(pmem::Promise::OplogCommitted {
                instance: self.instance_id,
                seq: max_seq,
            });
            self.publish_epoch(max_seq);
            entries.iter().map(|e| e.seq).collect()
        } else {
            vec![0; pending.len()]
        };
        for ((alloc, cur, n), seq) in pending.iter().zip(seqs) {
            state.staged.push(StagedExtent {
                target_offset: *cur,
                len: *n as u64,
                staging_ino: alloc.staging_ino,
                staging_fd: alloc.staging_fd,
                staging_offset: alloc.staging_offset,
                device_offset: alloc.device_offset,
                seq,
            });
        }
        state.cached_size = state.cached_size.max(target_offset + total);
        state.last_staged_ns = self.device.clock().now_ns_f64();

        // Nudge the maintenance daemon on threshold crossings.  The
        // condition checks are lock-free (atomic per-lane watermark
        // mirrors and per-task pending flags), so a threshold that stays
        // crossed while the daemon works does not put mutex traffic on
        // every append.
        if self.config.daemon.enabled {
            use std::sync::atomic::Ordering;
            let cfg = &self.config.daemon;
            if self.staging.needs_provisioning()
                && self
                    .provision_nudged
                    .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                self.nudge(Task::ProvisionStaging);
            }
            if let Some(oplog) = self.oplog.as_ref() {
                if oplog.utilization() >= cfg.oplog_checkpoint_fraction
                    && self
                        .checkpoint_nudged
                        .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    self.nudge(Task::Checkpoint);
                }
            }
            if state.staged.len() >= cfg.relink_batch_size.saturating_mul(4) {
                // A long-running writer that never fsyncs would otherwise
                // accumulate unbounded staged state; retire it in the
                // background.
                self.nudge(Task::RelinkFile(state.ino));
            }
        }
        Ok(())
    }
}

impl Drop for SplitFs {
    fn drop(&mut self) {
        // Shut down and join the maintenance workers before the instance's
        // pools and logs disappear.
        if let Some(daemon) = self.daemon.get_mut().take() {
            drop(daemon);
        }
        // Clean shutdown releases the kernel lease; crash emulation
        // abandons it so the lease survives as a recoverable orphan.
        if self.crash_on_drop.load(std::sync::atomic::Ordering::SeqCst) {
            self.kernel.lease_abandon(self.instance_id);
        } else {
            let _ = self.kernel.lease_release(self.instance_id);
        }
    }
}

impl FileSystem for SplitFs {
    fn name(&self) -> String {
        self.config.mode.label().to_string()
    }

    fn consistency(&self) -> ConsistencyClass {
        self.config.mode.consistency_class()
    }

    fn device(&self) -> &Arc<PmemDevice> {
        &self.device
    }

    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        self.charge_usplit();
        let norm = vpath::normalize(path)?;
        // Metadata operation: pass through to the kernel.
        let kernel_fd = self.kernel.open(&norm, flags)?;
        // Cache the attributes (§3.5: "performs stat() on the file and
        // caches its attributes in user-space").
        let stat = self.kernel.fstat(kernel_fd)?;

        // Take the registry shard lock only to find or insert the entry;
        // the state itself is locked after the shard guard is released, so
        // no thread ever holds a registry lock while waiting on a state
        // lock.
        let (state, created) = self.files.get_or_insert_with(stat.ino, || {
            let mut fresh = FileState::new(stat.ino, &norm, kernel_fd, stat.size);
            fresh.kernel_fd_writable = flags.write;
            fresh
        });
        {
            let mut st = state.write();
            if !created && st.kernel_fd != kernel_fd {
                // Keep exactly one kernel descriptor per file, preferring
                // the most capable one: relink and the fallback write path
                // need a writable descriptor even if the application later
                // reopens the file read-only.
                if flags.write && !st.kernel_fd_writable {
                    let old = st.kernel_fd;
                    st.kernel_fd = kernel_fd;
                    st.kernel_fd_writable = true;
                    let _ = self.kernel.close(old);
                } else {
                    let _ = self.kernel.close(kernel_fd);
                }
            }
            if flags.truncate {
                st.kernel_size = 0;
                st.cached_size = 0;
                st.staged.clear();
                st.mmaps.clear();
            } else {
                st.kernel_size = stat.size;
                st.cached_size = st.cached_size.max(stat.size);
            }
            st.path = norm.clone();
            st.open_fds += 1;
            if self.kernel.is_tiered() {
                // A file demoted before this state existed (say, in a
                // previous mount) must start with the flag set so reads
                // bounce through the kernel instead of mapping PM blocks
                // the file no longer owns.
                st.demoted = self.kernel.is_demoted(st.kernel_fd).unwrap_or(false);
            }
        }
        Ok(self.fds.insert(stat.ino, flags))
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        self.charge_usplit();
        let (_, state) = self.state_for_fd(fd)?;
        {
            // Appends are relinked on fsync *or close* (§3.4).
            let mut st = state.write();
            if !st.staged.is_empty() && self.config.use_staging {
                self.relink_file(&mut st)?;
            }
            st.open_fds = st.open_fds.saturating_sub(1);
        }
        self.fds.remove(fd)?;
        // Cached attributes and mappings are retained after close (§3.5).
        Ok(())
    }

    fn read_at(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.charge_usplit();
        let (desc, state) = self.state_for_fd(fd)?;
        if !desc.flags.read {
            return Err(FsError::PermissionDenied);
        }
        let mut st = state.write();
        if offset >= st.cached_size || buf.is_empty() {
            return Ok(0);
        }
        let n = ((st.cached_size - offset) as usize).min(buf.len());
        let pattern = {
            let last = *desc.last_read_end.lock();
            if offset == last {
                AccessPattern::Sequential
            } else {
                AccessPattern::Random
            }
        };
        st.last_access_ns = self.device.clock().now_ns_f64();
        self.note_cold_read(&mut st);
        self.read_committed(&mut st, offset, &mut buf[..n], pattern)?;
        self.overlay_staged(&st, offset, &mut buf[..n])?;
        *desc.last_read_end.lock() = offset + n as u64;
        Ok(n)
    }

    fn write_at(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.charge_usplit();
        let (desc, state) = self.state_for_fd(fd)?;
        if !desc.flags.write {
            return Err(FsError::PermissionDenied);
        }
        if data.is_empty() {
            return Ok(0);
        }
        let mut st = state.write();
        st.last_access_ns = self.device.clock().now_ns_f64();
        self.promote_if_demoted(&mut st);

        if self.config.mode.stages_overwrites() && self.config.use_staging {
            // Strict mode: every data write is staged so it can be applied
            // atomically at the next fsync.
            self.stage_write(&mut st, offset, data)?;
            return Ok(data.len());
        }

        let end = offset + data.len() as u64;
        let overwrite_end = end.min(st.kernel_size);
        if offset < overwrite_end {
            // Overwrite of existing bytes: in place through the mmaps.
            let n = (overwrite_end - offset) as usize;
            self.write_in_place(&mut st, offset, &data[..n])?;
            if self.config.mode.fences_data_ops() {
                self.device.fence(TimeCategory::UserData);
            }
        }
        if end > st.kernel_size {
            // Append portion.
            let append_from = offset.max(st.kernel_size);
            let skip = (append_from - offset) as usize;
            if self.config.use_staging {
                self.stage_write(&mut st, append_from, &data[skip..])?;
            } else {
                // Figure 3 ablation: without staging, appends fall through
                // to the kernel file system.
                self.kernel
                    .write_at(st.kernel_fd, append_from, &data[skip..])?;
                st.kernel_size = end;
                st.cached_size = st.cached_size.max(end);
            }
        }
        st.cached_size = st.cached_size.max(end);
        Ok(data.len())
    }

    fn read_view(&self, fd: Fd, offset: u64, len: usize) -> FsResult<ReadView<'_>> {
        self.charge_usplit();
        let (desc, state) = self.state_for_fd(fd)?;
        if !desc.flags.read {
            return Err(FsError::PermissionDenied);
        }
        let mut st = state.write();
        if offset >= st.cached_size || len == 0 {
            return Ok(ReadView::Owned(Vec::new()));
        }
        let n = ((st.cached_size - offset) as usize).min(len);
        let end = offset + n as u64;
        let pattern = {
            let last = *desc.last_read_end.lock();
            if offset == last {
                AccessPattern::Sequential
            } else {
                AccessPattern::Random
            }
        };
        *desc.last_read_end.lock() = end;
        st.last_access_ns = self.device.clock().now_ns_f64();
        self.note_cold_read(&mut st);

        // Zero-copy when the range holds only committed bytes (no staged
        // overlay) served by one contiguous region of the collection of
        // mmaps: the view is then a borrow of the mapped blocks, the same
        // loads a pointer into the DAX mapping would issue.
        let staged_overlap = st
            .staged
            .iter()
            .any(|e| e.target_offset < end && offset < e.target_offset + e.len);
        if !staged_overlap && end <= st.kernel_size {
            if let Some((dev_off, contig)) = self.ensure_mapped(&mut st, offset) {
                if contig >= n as u64 {
                    if let Some(view) =
                        self.device
                            .try_read_view(dev_off, n, pattern, TimeCategory::UserData)
                    {
                        return Ok(ReadView::Mapped(view));
                    }
                }
            }
        }
        // Fallback: staged overlays, holes, or mapping-discontiguous
        // ranges take the owned-copy path.
        let mut buf = vec![0u8; n];
        self.read_committed(&mut st, offset, &mut buf, pattern)?;
        self.overlay_staged(&st, offset, &mut buf)?;
        Ok(ReadView::Owned(buf))
    }

    fn writev_at(&self, fd: Fd, offset: u64, iov: &[IoVec<'_>]) -> FsResult<usize> {
        self.charge_usplit();
        let (desc, state) = self.state_for_fd(fd)?;
        if !desc.flags.write {
            return Err(FsError::PermissionDenied);
        }
        let total = iov_total_len(iov);
        if total == 0 {
            return Ok(0);
        }
        let mut st = state.write();
        st.last_access_ns = self.device.clock().now_ns_f64();
        self.promote_if_demoted(&mut st);

        if self.config.mode.stages_overwrites() && self.config.use_staging {
            // Strict mode: the whole gather is staged and applied
            // atomically at the next fsync.
            self.stage_writev(&mut st, offset, iov)?;
            return Ok(total as usize);
        }

        let end = offset + total;
        let overwrite_end = end.min(st.kernel_size);
        // Split the gather at the end of the committed file: existing
        // bytes are overwritten in place through the mmaps, the remainder
        // is re-gathered and staged (or falls through to the kernel) as
        // one batch.
        let mut tail: Vec<IoVec<'_>> = Vec::new();
        let mut cur = offset;
        for v in iov {
            let s = v.as_slice();
            if s.is_empty() {
                continue;
            }
            let v_end = cur + s.len() as u64;
            if cur < overwrite_end {
                let n = ((overwrite_end - cur) as usize).min(s.len());
                self.write_in_place(&mut st, cur, &s[..n])?;
                if n < s.len() {
                    tail.push(IoVec::new(&s[n..]));
                }
            } else {
                tail.push(*v);
            }
            cur = v_end;
        }
        if offset < overwrite_end && self.config.mode.fences_data_ops() {
            self.device.fence(TimeCategory::UserData);
        }
        if end > st.kernel_size {
            let append_from = offset.max(st.kernel_size);
            if self.config.use_staging {
                self.stage_writev(&mut st, append_from, &tail)?;
            } else {
                let mut cur = append_from;
                for v in &tail {
                    self.kernel.write_at(st.kernel_fd, cur, v.as_slice())?;
                    cur += v.len() as u64;
                }
                st.kernel_size = end;
            }
        }
        st.cached_size = st.cached_size.max(end);
        Ok(total as usize)
    }

    fn appendv(&self, fd: Fd, iov: &[IoVec<'_>]) -> FsResult<usize> {
        self.charge_usplit();
        let (desc, state) = self.state_for_fd(fd)?;
        if !desc.flags.write {
            return Err(FsError::PermissionDenied);
        }
        let total = iov_total_len(iov);
        if total == 0 {
            return Ok(0);
        }
        let mut st = state.write();
        st.last_access_ns = self.device.clock().now_ns_f64();
        self.promote_if_demoted(&mut st);
        // End of file resolved under the state write lock, so two
        // concurrent appenders serialize instead of racing a stale fstat
        // into overlapping offsets.
        let offset = st.cached_size;
        if self.config.use_staging {
            self.stage_writev(&mut st, offset, iov)?;
        } else {
            // Figure 3 ablation: without staging, appends fall through to
            // the kernel file system.
            let mut cur = offset;
            for v in iov {
                if v.is_empty() {
                    continue;
                }
                self.kernel.write_at(st.kernel_fd, cur, v.as_slice())?;
                cur += v.len() as u64;
            }
            st.kernel_size = st.kernel_size.max(offset + total);
        }
        st.cached_size = st.cached_size.max(offset + total);
        self.device.stats().add_appendv(iov.len() as u64);
        Ok(total as usize)
    }

    fn fsync_many(&self, fds: &[Fd]) -> FsResult<()> {
        self.charge_usplit();
        if fds.is_empty() {
            return Ok(());
        }
        // Resolve the distinct files behind the descriptors and lock them
        // in inode order (the same order the quiesced checkpoint uses, so
        // concurrent batches cannot deadlock against it or each other).
        let mut entries: Vec<(u64, Arc<RwLock<FileState>>)> = Vec::with_capacity(fds.len());
        for &fd in fds {
            let (desc, state) = self.state_for_fd(fd)?;
            entries.push((desc.ino, state));
        }
        entries.sort_by_key(|(ino, _)| *ino);
        entries.dedup_by_key(|(ino, _)| *ino);
        let mut guards: Vec<_> = entries.iter().map(|(_, state)| state.write()).collect();

        if self.config.use_staging && guards.iter().any(|g| !g.staged.is_empty()) {
            self.relink_many(&mut guards)?;
        } else {
            // Nothing staged: push any in-place overwrites done with
            // unfenced non-temporal stores into the persistence domain.
            self.device.fence(TimeCategory::UserData);
        }
        for g in &guards {
            self.device.declare(pmem::Promise::FsyncReturned {
                instance: self.instance_id,
                ino: g.ino,
                size: g.cached_size,
            });
        }
        self.device.stats().add_fsync_many(fds.len() as u64);
        Ok(())
    }

    fn fdatasync(&self, fd: Fd) -> FsResult<()> {
        // SplitFS's fsync is already data-only — relink is the data
        // durability mechanism and metadata is journaled by the kernel at
        // operation time — so fdatasync shares its path.  The distinction
        // matters for the kernel file system underneath, not here.
        self.fsync(fd)
    }

    fn read(&self, fd: Fd, buf: &mut [u8]) -> FsResult<usize> {
        let desc = self.fds.get(fd)?;
        let offset = *desc.offset.lock();
        let n = self.read_at(fd, offset, buf)?;
        *desc.offset.lock() = offset + n as u64;
        Ok(n)
    }

    fn write(&self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        let desc = self.fds.get(fd)?;
        let offset = if desc.flags.append {
            let (_, state) = self.state_for_fd(fd)?;
            let size = state.read().cached_size;
            size
        } else {
            *desc.offset.lock()
        };
        let n = self.write_at(fd, offset, data)?;
        *desc.offset.lock() = offset + n as u64;
        Ok(n)
    }

    fn lseek(&self, fd: Fd, pos: SeekFrom) -> FsResult<u64> {
        // Seeks are resolved entirely in user space against the cached size.
        self.charge_usplit();
        let (desc, state) = self.state_for_fd(fd)?;
        let size = state.read().cached_size;
        let cur = *desc.offset.lock();
        let new = match pos {
            SeekFrom::Start(o) => o as i128,
            SeekFrom::Current(d) => cur as i128 + d as i128,
            SeekFrom::End(d) => size as i128 + d as i128,
        };
        if new < 0 {
            return Err(FsError::InvalidArgument);
        }
        *desc.offset.lock() = new as u64;
        Ok(new as u64)
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        self.charge_usplit();
        let (_, state) = self.state_for_fd(fd)?;
        let mut st = state.write();
        if !st.staged.is_empty() && self.config.use_staging {
            self.relink_file(&mut st)?;
        } else {
            // Push any in-place overwrites done with unfenced non-temporal
            // stores (POSIX mode) into the persistence domain.
            self.device.fence(TimeCategory::UserData);
        }
        // Durability established above — the promise may now be declared
        // (ledger-enabled runs only; see pmem::oracle).
        self.device.declare(pmem::Promise::FsyncReturned {
            instance: self.instance_id,
            ino: st.ino,
            size: st.cached_size,
        });
        Ok(())
    }

    fn ftruncate(&self, fd: Fd, size: u64) -> FsResult<()> {
        self.charge_usplit();
        let (_, state) = self.state_for_fd(fd)?;
        let mut st = state.write();
        self.promote_if_demoted(&mut st);
        self.kernel.ftruncate(st.kernel_fd, size)?;
        st.drop_staged_beyond(size);
        if size < st.kernel_size {
            let shrink = st.kernel_size - size;
            st.mmaps.remove_range(size, shrink);
        }
        st.kernel_size = size;
        st.cached_size = size.max(
            st.staged
                .iter()
                .map(|e| e.target_offset + e.len)
                .max()
                .unwrap_or(0),
        );
        Ok(())
    }

    fn fstat(&self, fd: Fd) -> FsResult<FileStat> {
        self.charge_usplit();
        let (_, state) = self.state_for_fd(fd)?;
        let st = state.read();
        Ok(FileStat {
            ino: st.ino,
            size: st.cached_size,
            blocks: st.cached_size.div_ceil(BLOCK_SIZE as u64),
            is_dir: false,
            nlink: 1,
        })
    }

    fn stat(&self, path: &str) -> FsResult<FileStat> {
        self.charge_usplit();
        let norm = vpath::normalize(path)?;
        // Prefer the cached user-space view so staged appends are visible
        // to the calling process immediately.
        if let Some(state) = self.files.find_by_path(&norm) {
            let st = state.read();
            return Ok(FileStat {
                ino: st.ino,
                size: st.cached_size,
                blocks: st.cached_size.div_ceil(BLOCK_SIZE as u64),
                is_dir: false,
                nlink: 1,
            });
        }
        self.kernel.stat(&norm)
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        self.charge_usplit();
        let cost = self.device.cost().clone();
        let norm = vpath::normalize(path)?;
        // Drop cached state and unmap (the expensive part of unlink in
        // SplitFS, §5.4).
        let ino = self.files.find_by_path(&norm).map(|s| s.read().ino);
        if let Some(ino) = ino {
            if let Some(state) = self.files.remove(ino) {
                let st = state.read();
                // munmap cost per mapped segment.
                self.device
                    .charge_software(st.mmaps.len() as f64 * cost.mmap_setup_ns * 0.5);
                let _ = self.kernel.close(st.kernel_fd);
            }
        }
        self.kernel.unlink(&norm)
    }

    fn rename(&self, old: &str, new: &str) -> FsResult<()> {
        self.charge_usplit();
        let old_norm = vpath::normalize(old)?;
        let new_norm = vpath::normalize(new)?;
        self.kernel.rename(&old_norm, &new_norm)?;
        for state in self.files.snapshot() {
            let mut st = state.write();
            if st.path == old_norm {
                st.path = new_norm.clone();
            } else if st.path == new_norm {
                // The destination was replaced; its cached state is stale.
                st.mmaps.clear();
                st.staged.clear();
            }
        }
        Ok(())
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        self.charge_usplit();
        self.kernel.mkdir(path)
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        self.charge_usplit();
        self.kernel.rmdir(path)
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        self.charge_usplit();
        let mut entries = self.kernel.readdir(path)?;
        // Hide SplitFS's own bookkeeping directory from applications.
        if vpath::normalize(path)? == "/" {
            entries.retain(|e| e != ".splitfs");
        }
        Ok(entries)
    }

    fn sync(&self) -> FsResult<()> {
        self.checkpoint()?;
        self.kernel.sync()
    }

    fn exists(&self, path: &str) -> bool {
        self.stat(path).is_ok()
    }
}
