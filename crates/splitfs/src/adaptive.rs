//! Adaptive staging provisioning: watermarks sized from measured demand.
//!
//! The fixed low/high watermarks the daemon shipped with work for a
//! steady workload but not for a skewed one: a hot lane (one writer
//! saturating its home lane) drains its free list faster than a
//! once-per-tick top-up to a static high watermark can refill it, while
//! idle lanes sit on capacity nobody uses.  The
//! [`WatermarkController`] closes the loop:
//!
//! 1. every maintenance tick samples each lane's **cumulative consumed
//!    bytes** ([`crate::staging::StagingPool::lane_consumed_bytes`])
//!    together with the simulated clock;
//! 2. a sliding [`RateWindow`] per lane turns the samples into a demand
//!    rate in bytes per **simulated** millisecond (simulated time is the
//!    metered quantity in this reproduction — host wall time would make
//!    the controller machine-dependent);
//! 3. [`size_watermarks`] converts the rate into per-lane watermarks: the
//!    high watermark covers `rate × horizon` bytes of future demand (in
//!    staging files), the low watermark trails it, and both respect a
//!    floor derived from `SplitConfig::staging_files` — watermarks never
//!    drop below the configured static pool shape, so an idle system
//!    behaves exactly like the pre-adaptive one — and a per-lane cap so a
//!    rate spike cannot provision the device full of staging files.
//!
//! The controller is pure bookkeeping (no locks, no I/O): the daemon owns
//! one behind its tick and applies the output with
//! [`crate::staging::StagingPool::set_lane_watermarks`], which counts
//! every effective change in the `staging_adaptive_resizes` statistic.

use std::collections::VecDeque;

/// Per-lane provisioning watermarks, in staging files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermarks {
    /// Provision when fewer than this many unconsumed files remain.
    pub low: usize,
    /// Provision up to this many unconsumed files.
    pub high: usize,
}

/// A sliding window over `(simulated time, cumulative bytes)` samples
/// yielding a consumption rate in bytes per simulated millisecond.
#[derive(Debug, Clone)]
pub struct RateWindow {
    window_ms: f64,
    samples: VecDeque<(f64, u64)>,
}

impl RateWindow {
    /// Creates a window spanning `window_ms` simulated milliseconds.
    pub fn new(window_ms: f64) -> Self {
        Self {
            window_ms: window_ms.max(f64::EPSILON),
            samples: VecDeque::new(),
        }
    }

    /// Records a sample of the cumulative consumed-bytes counter taken at
    /// simulated time `now_ms`.  Samples older than the window are
    /// dropped, but one sample at or beyond the window edge is always
    /// retained so the rate is computed over at least the full window
    /// once enough history exists.
    pub fn record(&mut self, now_ms: f64, cumulative_bytes: u64) {
        if let Some(&(last_t, last_b)) = self.samples.back() {
            if now_ms < last_t || cumulative_bytes < last_b {
                // Time or the counter went backwards (a clock/stats reset
                // between experiment phases): restart the window.
                self.samples.clear();
            }
        }
        self.samples.push_back((now_ms, cumulative_bytes));
        while self.samples.len() > 2 && now_ms - self.samples[1].0 >= self.window_ms {
            self.samples.pop_front();
        }
    }

    /// The consumption rate over the window, in bytes per simulated
    /// millisecond.  Zero until two samples with distinct timestamps
    /// exist.
    pub fn rate_bytes_per_ms(&self) -> f64 {
        let (Some(&(t0, b0)), Some(&(t1, b1))) = (self.samples.front(), self.samples.back()) else {
            return 0.0;
        };
        let dt = t1 - t0;
        if dt <= 0.0 {
            return 0.0;
        }
        (b1 - b0) as f64 / dt
    }

    /// Number of samples currently retained (exposed for tests).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Sizes one lane's watermarks from its measured demand rate.
///
/// The high watermark covers `rate_bytes_per_ms × horizon_ms` bytes of
/// future demand, expressed in staging files of `file_size` bytes; the
/// low watermark trails at half that demand.  Both are clamped to
/// `floor` from below (idle lanes shrink back to the configured static
/// shape, never further) and to `cap` from above, and the result always
/// satisfies `high > low` so provisioning makes progress.
pub fn size_watermarks(
    rate_bytes_per_ms: f64,
    horizon_ms: f64,
    file_size: u64,
    floor: Watermarks,
    cap: usize,
) -> Watermarks {
    let file_size = file_size.max(1) as f64;
    let demand_bytes = (rate_bytes_per_ms.max(0.0)) * horizon_ms.max(0.0);
    let demand_files = (demand_bytes / file_size).ceil() as usize;
    let cap = cap.max(floor.high.max(floor.low + 1)).max(2);
    let low = floor.low.max(1).max(demand_files.div_ceil(2)).min(cap - 1);
    let high = floor
        .high
        .max(low + demand_files.max(1))
        .min(cap)
        .max(low + 1);
    Watermarks { low, high }
}

/// Per-lane rate windows plus the sizing parameters; one per pool,
/// sampled by the maintenance daemon.
#[derive(Debug)]
pub struct WatermarkController {
    windows: Vec<RateWindow>,
    horizon_ms: f64,
    file_size: u64,
    floor: Watermarks,
    cap: usize,
}

impl WatermarkController {
    /// Creates a controller for `lanes` lanes.  `floor` is the per-lane
    /// static shape watermarks may never shrink below; `cap` bounds any
    /// single lane's high watermark.
    pub fn new(
        lanes: usize,
        window_ms: f64,
        horizon_ms: f64,
        file_size: u64,
        floor: Watermarks,
        cap: usize,
    ) -> Self {
        Self {
            windows: (0..lanes.max(1))
                .map(|_| RateWindow::new(window_ms))
                .collect(),
            horizon_ms,
            file_size,
            floor,
            cap,
        }
    }

    /// Feeds one sample per lane (cumulative consumed bytes at simulated
    /// time `now_ms`) and returns the watermarks each lane should run
    /// with.  Lanes beyond the controller's width are ignored; missing
    /// samples leave a lane's previous rate in effect.
    pub fn observe(&mut self, now_ms: f64, per_lane_cumulative_bytes: &[u64]) -> Vec<Watermarks> {
        for (window, &bytes) in self.windows.iter_mut().zip(per_lane_cumulative_bytes) {
            window.record(now_ms, bytes);
        }
        self.windows
            .iter()
            .map(|w| {
                size_watermarks(
                    w.rate_bytes_per_ms(),
                    self.horizon_ms,
                    self.file_size,
                    self.floor,
                    self.cap,
                )
            })
            .collect()
    }

    /// The per-lane floor in effect (exposed for tests).
    pub fn floor(&self) -> Watermarks {
        self.floor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1024 * 1024;

    #[test]
    fn rate_window_math_is_a_sliding_slope() {
        let mut w = RateWindow::new(4.0);
        assert_eq!(w.rate_bytes_per_ms(), 0.0, "no samples, no rate");
        w.record(0.0, 0);
        assert_eq!(w.rate_bytes_per_ms(), 0.0, "one sample, no rate");
        w.record(1.0, 1000);
        w.record(2.0, 3000);
        // Slope across the whole window: (3000 - 0) / (2 - 0).
        assert!((w.rate_bytes_per_ms() - 1500.0).abs() < 1e-9);
        // Slide far enough that the early samples age out: only samples
        // within the 4 ms window (plus one edge sample) survive.
        w.record(10.0, 3000);
        w.record(11.0, 3000);
        assert!(w.rate_bytes_per_ms() < 400.0, "old burst ages out");
        w.record(20.0, 3000);
        w.record(24.0, 3000);
        assert_eq!(w.rate_bytes_per_ms(), 0.0, "fully idle window");
    }

    #[test]
    fn rate_window_restarts_after_a_counter_reset() {
        let mut w = RateWindow::new(4.0);
        w.record(5.0, 10_000);
        w.record(6.0, 20_000);
        assert!(w.rate_bytes_per_ms() > 0.0);
        // Stats/clock reset between experiment phases: both go backwards.
        w.record(0.5, 100);
        assert_eq!(w.len(), 1, "window restarted");
        assert_eq!(w.rate_bytes_per_ms(), 0.0);
        w.record(1.5, 200);
        assert!((w.rate_bytes_per_ms() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn hot_lane_grows_and_idle_lane_shrinks_back() {
        let floor = Watermarks { low: 1, high: 2 };
        // Hot: 24 MiB/ms over a 2 ms horizon with 16 MiB files → 3 files
        // of demand; high must cover it above the floor.
        let hot = size_watermarks(24.0 * MIB as f64, 2.0, 16 * MIB, floor, 64);
        assert!(
            hot.high >= 3,
            "hot lane provisions ahead of demand: {hot:?}"
        );
        assert!(hot.low >= 2, "hot lane's low trails demand: {hot:?}");
        assert!(hot.high > hot.low);
        // Idle: zero rate shrinks exactly to the floor.
        let idle = size_watermarks(0.0, 2.0, 16 * MIB, floor, 64);
        assert_eq!(idle, floor, "idle lane returns to the static shape");
    }

    #[test]
    fn watermarks_never_drop_below_the_configured_floor() {
        // The floor models `config.staging_files` split across lanes:
        // whatever the rate says — zero, tiny, or negative-ish — the
        // watermarks keep the configured static pool shape.
        let floor = Watermarks { low: 2, high: 4 };
        for rate in [0.0, 0.001, 1.0] {
            let w = size_watermarks(rate, 2.0, 16 * MIB, floor, 64);
            assert!(w.low >= floor.low, "rate {rate}: {w:?}");
            assert!(w.high >= floor.high, "rate {rate}: {w:?}");
        }
    }

    #[test]
    fn watermarks_are_capped_and_always_make_progress() {
        let floor = Watermarks { low: 1, high: 2 };
        // An absurd rate estimate must not provision unboundedly.
        let w = size_watermarks(1e12, 10.0, 2 * MIB, floor, 8);
        assert!(w.high <= 8, "{w:?}");
        assert!(w.low < w.high, "{w:?}");
        // Degenerate cap still yields a workable pair.
        let w = size_watermarks(1e12, 10.0, 2 * MIB, floor, 0);
        assert!(w.low < w.high, "{w:?}");
    }

    #[test]
    fn controller_sizes_each_lane_independently() {
        let floor = Watermarks { low: 1, high: 2 };
        let mut c = WatermarkController::new(2, 4.0, 2.0, 16 * MIB, floor, 64);
        // Lane 0 consumes 32 MiB/ms, lane 1 is idle.
        let mut marks = Vec::new();
        for step in 0..4u64 {
            let t = step as f64;
            marks = c.observe(t, &[step * 32 * MIB, 0]);
        }
        assert_eq!(marks.len(), 2);
        assert!(marks[0].high > floor.high, "hot lane grew: {marks:?}");
        assert_eq!(marks[1], floor, "idle lane stays at the floor");
        // The hot lane going idle shrinks it back to the floor once the
        // window slides past the burst.
        for step in 4..20u64 {
            marks = c.observe(step as f64, &[3 * 32 * MIB, 0]);
        }
        assert_eq!(marks[0], floor, "former hot lane shrank back: {marks:?}");
    }
}
