//! Crash recovery (paper §5.3), per U-Split instance.
//!
//! In POSIX and sync modes SplitFS needs nothing beyond the kernel file
//! system's own journal recovery.  In strict (and sync-for-appends) mode,
//! an instance's operation log may contain staged writes that were durable
//! in a staging file but had not yet been relinked into their target file
//! when the crash hit.  With multiple instances over one kernel file
//! system, each instance has its **own** log (leased through
//! [`kernelfs::lease`]) and recovery replays each log independently —
//! instance B's log recovers unchanged even when instance A crashed
//! mid-relink.  For one log, recovery:
//!
//! 1. scans the zero-initialized log — **both epochs**, whatever the
//!    sealed/active geometry was at the crash — and keeps every
//!    checksum-valid entry, ordered by the global sequence number,
//! 2. drops entries **tagged with another instance's id** (cross-instance
//!    contamination must never replay; such entries are counted in
//!    [`RecoveryReport::foreign`]),
//! 3. drops entries covered by an `Invalidate` record (their relink
//!    completed before the crash) or by a `StagingRecycle` record (their
//!    staging file was re-provisioned, so its blocks hold unrelated data),
//! 4. for each remaining staged write, checks whether the staging range is
//!    still mapped — if the relink had already moved the blocks the range
//!    is a hole and the entry is skipped (this is what makes replay
//!    idempotent),
//! 5. copies the surviving staged data into the target file through the
//!    kernel, and
//! 6. re-zeroes the log.
//!
//! Which instances need recovery is the lease manager's knowledge: an
//! **orphaned** lease (active on the device, no live holder) marks a
//! crashed instance.  [`recover_orphans`] claims each orphan, replays its
//! log, and releases the lease so the id becomes reusable.
//! [`SplitFs::new`](crate::SplitFs::new) runs it on every mount (unless
//! [`SplitConfig::without_orphan_recovery`](crate::SplitConfig) disables
//! it for tests that stage crashes deliberately).

use std::collections::HashMap;
use std::sync::Arc;

use kernelfs::Ext4Dax;
use vfs::{FileSystem, FsResult, OpenFlags};

use crate::config::SplitConfig;
use crate::oplog::{LogEntry, LogOp, OpLog};

/// Summary of a recovery pass over one instance's log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid entries found in the log.
    pub entries_scanned: usize,
    /// Staged writes replayed into their target files.
    pub replayed: usize,
    /// Entries skipped because an `Invalidate` record covered them.
    pub invalidated: usize,
    /// Entries skipped because the staging range was already relinked.
    pub already_applied: usize,
    /// Entries skipped because their staging file was recycled after their
    /// data was retired.
    pub recycled: usize,
    /// Entries skipped because they carried another instance's id — the
    /// cross-contamination guard.  Always zero in a healthy system.
    pub foreign: usize,
}

/// Replays the **default instance's** (instance 0's) operation log.
///
/// Kept for the single-instance workflows and tests; multi-instance
/// callers use [`recover_instance`] or [`recover_orphans`].  Safe to call
/// when no log exists (returns an empty report) and safe to call
/// repeatedly: replay is idempotent.
pub fn recover(kernel: &Arc<Ext4Dax>, config: &SplitConfig) -> FsResult<RecoveryReport> {
    recover_instance(kernel, config, 0)
}

/// Replays the operation log of one instance, identified by its lease id.
///
/// Only entries tagged with `instance_id` replay; entries carrying any
/// other id are counted as [`RecoveryReport::foreign`] and skipped, so a
/// contaminated log can never bleed one instance's staged writes into
/// another's files.
pub fn recover_instance(
    kernel: &Arc<Ext4Dax>,
    _config: &SplitConfig,
    instance_id: u32,
) -> FsResult<RecoveryReport> {
    let path = kernelfs::lease::oplog_path(instance_id);
    let mut report = RecoveryReport::default();
    if !kernel.exists(&path) {
        return Ok(report);
    }
    let device = Arc::clone(kernel.device());
    let log_fd = kernel.open(&path, OpenFlags::read_write())?;
    // The actual file size, not the configured one: the log grows on
    // demand when it fills while a checkpoint cannot run, and every
    // grown slot must be scanned.
    let log_size = kernel.fstat(log_fd)?.size;
    if log_size == 0 {
        kernel.close(log_fd)?;
        return Ok(report);
    }
    let mapping = kernel.dax_map(log_fd, 0, log_size, false)?;
    let entries = OpLog::scan(&device, &mapping, log_size);
    report.entries_scanned = entries.len();

    // Cross-contamination guard: this log belongs to `instance_id`, so an
    // entry tagged otherwise is corruption (or another instance's write
    // landing in the wrong file) and must not replay.
    let (entries, foreign): (Vec<LogEntry>, Vec<LogEntry>) = entries
        .into_iter()
        .partition(|e| e.instance_id == instance_id);
    report.foreign = foreign.len();

    // Highest invalidated sequence number per target file, and highest
    // recycle sequence number per staging file.
    let mut invalidated_up_to: HashMap<u64, u64> = HashMap::new();
    let mut recycled_up_to: HashMap<u64, u64> = HashMap::new();
    for entry in &entries {
        match entry.op {
            LogOp::Invalidate => {
                let slot = invalidated_up_to.entry(entry.target_ino).or_insert(0);
                *slot = (*slot).max(entry.seq);
            }
            LogOp::StagingRecycle => {
                let slot = recycled_up_to.entry(entry.staging_ino).or_insert(0);
                *slot = (*slot).max(entry.seq);
            }
            LogOp::StagedWrite => {}
        }
    }

    let mut staged: Vec<&LogEntry> = entries
        .iter()
        .filter(|e| e.op == LogOp::StagedWrite)
        .collect();
    staged.sort_by_key(|e| e.seq);

    for entry in staged {
        if invalidated_up_to
            .get(&entry.target_ino)
            .map(|&s| entry.seq <= s)
            .unwrap_or(false)
        {
            report.invalidated += 1;
            continue;
        }
        if recycled_up_to
            .get(&entry.staging_ino)
            .map(|&s| entry.seq <= s)
            .unwrap_or(false)
        {
            // The staging file was truncated and re-provisioned after this
            // entry's data was retired: its blocks hold unrelated bytes
            // now, so the entry must not replay.
            report.recycled += 1;
            continue;
        }
        // Open the staging file and check whether its range still holds the
        // data (idempotency test: a completed relink leaves a hole).
        let staging_fd = match kernel.open_by_ino(entry.staging_ino, OpenFlags::read_write()) {
            Ok(fd) => fd,
            Err(_) => {
                report.already_applied += 1;
                continue;
            }
        };
        let mapped = kernel.range_mapped(staging_fd, entry.staging_offset, entry.len)?;
        if !mapped {
            report.already_applied += 1;
            kernel.close(staging_fd)?;
            continue;
        }
        let target_fd = match kernel.open_by_ino(entry.target_ino, OpenFlags::read_write()) {
            Ok(fd) => fd,
            Err(_) => {
                // The target was unlinked after the write was logged.
                kernel.close(staging_fd)?;
                report.already_applied += 1;
                continue;
            }
        };
        let mut buf = vec![0u8; entry.len as usize];
        // The staging file's size may not cover the staged range (staging
        // files are sized by ftruncate, so normally it does); read_at stops
        // at EOF, so read what is there.
        let n = kernel.read_at(staging_fd, entry.staging_offset, &mut buf)?;
        buf.truncate(n.max(entry.len as usize).min(entry.len as usize));
        if !buf.is_empty() {
            kernel.write_at(target_fd, entry.target_offset, &buf)?;
        }
        kernel.fsync(target_fd)?;
        kernel.close(target_fd)?;
        kernel.close(staging_fd)?;
        report.replayed += 1;
    }

    // The log's contents have been applied; zero it for the next instance.
    let log = OpLog::new(device, mapping, log_size);
    log.reset();
    kernel.close(log_fd)?;
    Ok(report)
}

/// Recovers every **orphaned** instance: leases that are active on the
/// device with no live holder — instances that crashed.  Each orphan is
/// claimed (so concurrent mounts never replay the same log twice),
/// its log replayed independently of every other instance, and its lease
/// released so the id becomes reusable.  Live instances are untouched.
///
/// Returns one `(instance_id, report)` pair per recovered orphan.
pub fn recover_orphans(
    kernel: &Arc<Ext4Dax>,
    config: &SplitConfig,
) -> FsResult<Vec<(u32, RecoveryReport)>> {
    let mut out = Vec::new();
    for id in kernel.lease_orphans() {
        // Claim the orphan: a concurrent mount racing this one skips it.
        if !kernel.lease_claim_orphan(id) {
            continue;
        }
        // A failed replay must put the claim back: the lease has to stay
        // a visible orphan so a later mount retries it, instead of being
        // silently stuck as held-but-dead forever.
        let report = match recover_instance(kernel, config, id) {
            Ok(report) => report,
            Err(e) => {
                kernel.lease_abandon(id);
                return Err(e);
            }
        };
        kernel.lease_release(id)?;
        kernel.device().stats().add_instance_recovered();
        out.push((id, report));
    }
    Ok(out)
}
