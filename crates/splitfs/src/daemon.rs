//! The U-Split background maintenance daemon.
//!
//! The SplitFS paper (§3.3) moves staging-file pre-allocation and
//! log/staging garbage collection off the critical path onto a background
//! thread; this module is that subsystem.  One or more worker threads,
//! owned by a [`MaintenanceDaemon`] attached to a [`SplitFs`] instance,
//! perform three kinds of work:
//!
//! 1. **Asynchronous staging provisioning** — when the
//!    [`StagingPool`](crate::staging::StagingPool) drops below its low
//!    watermark, workers create and map fresh staging files until the high
//!    watermark is restored, so
//!    [`StagingPool::take`](crate::staging::StagingPool::take) never has
//!    to fall back to inline file creation under load.
//! 2. **Batched background relink** — files that accumulate many staged
//!    extents are relinked in the background through
//!    [`kernelfs::Ext4Dax::ioctl_relink_batch`], shrinking the work left
//!    for the next foreground `fsync`.
//! 3. **Operation-log group-commit and truncation** — once the log passes
//!    its configured fill fraction, a worker checkpoints: it quiesces every
//!    cached file (all state locks held), relinks their staged data,
//!    group-commits the resulting `Invalidate` markers under a single
//!    fence, and truncates the log by re-zeroing only its used prefix.
//!    The foreground `NoSpace` fallback still exists but becomes
//!    practically unreachable.
//!
//! Work arrives two ways: foreground paths *nudge* the daemon when they
//! observe a watermark or threshold crossing, and workers also wake on a
//! periodic tick so maintenance happens even without nudges.  The daemon
//! holds only a [`Weak`] reference to its file system; a worker upgrades
//! it for the duration of one task, so an in-flight task briefly keeps
//! the instance alive after the application drops its last handle — the
//! instance's `Drop` (and the worker join) then runs when that task
//! finishes.  No thread ever outlives the instance or touches a
//! torn-down one; callers that need *all* background work finished at a
//! known point (e.g. before simulating a crash) use
//! [`SplitFs::maintenance_quiesce`].
//!
//! Crash safety: every background relink goes through the same journaled,
//! atomic kernel primitive as a foreground `fsync`, and recovery
//! ([`crate::recovery`]) treats relinked staging ranges (holes) and
//! `Invalidate` markers identically whether the relink was foreground or
//! background — a crash before, during, or after a background batch
//! produces identical recovered file contents.

use std::collections::VecDeque;
use std::sync::{Arc, Weak};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};

use crate::config::DaemonConfig;
use crate::fs::SplitFs;
use crate::state::FileState;

/// How often an idle worker wakes to poll watermarks without a nudge.
const TICK: Duration = Duration::from_millis(1);

/// How many times a checkpoint retries acquiring a contended file-state
/// lock before giving up the round (it retries on a later tick).
const CHECKPOINT_LOCK_RETRIES: u32 = 200;

/// One unit of background maintenance work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Provision staging files until the high watermark is restored.
    ProvisionStaging,
    /// Relink the staged extents of the file with this inode.
    RelinkFile(u64),
    /// Relink every cached file and truncate the operation log.
    Checkpoint,
}

#[derive(Debug, Default)]
struct Queue {
    tasks: VecDeque<Task>,
    in_flight: usize,
    shutdown: bool,
}

#[derive(Debug, Default)]
pub(crate) struct Shared {
    queue: Mutex<Queue>,
    /// Signalled when work is submitted or shutdown is requested.
    work: Condvar,
    /// Signalled when the queue drains and no task is in flight.
    idle: Condvar,
}

/// Handle to the worker threads of one U-Split instance.
pub struct MaintenanceDaemon {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for MaintenanceDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintenanceDaemon")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl MaintenanceDaemon {
    /// Starts `config.workers` maintenance threads for `fs`.
    ///
    /// Workers hold only a weak reference: they cannot keep the instance
    /// alive, and they exit as soon as it is gone or shutdown is signalled.
    pub(crate) fn start(fs: &Arc<SplitFs>, config: &DaemonConfig) -> Self {
        let shared = Arc::new(Shared::default());
        let mut workers = Vec::new();
        for i in 0..config.workers.max(1) {
            let weak = Arc::downgrade(fs);
            let shared_handle = Arc::clone(&shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("usplit-maint-{i}"))
                    .spawn(move || worker_loop(weak, shared_handle))
                    .expect("spawn maintenance worker"),
            );
        }
        Self { shared, workers }
    }

    /// Enqueues `task` unless an identical task is already queued.
    pub(crate) fn submit(&self, task: Task) {
        let mut q = self.shared.queue.lock();
        if q.shutdown || q.tasks.contains(&task) {
            return;
        }
        q.tasks.push_back(task);
        drop(q);
        self.shared.work.notify_one();
    }

    /// A clonable handle used to wait for idleness without holding the
    /// owner's daemon mutex.
    pub(crate) fn shared_handle(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// Blocks until the queue is empty and no task is in flight.
    pub(crate) fn wait_idle(shared: &Arc<Shared>) {
        let mut q = shared.queue.lock();
        while !q.shutdown && (!q.tasks.is_empty() || q.in_flight > 0) {
            shared.idle.wait(&mut q);
        }
    }

    fn shutdown(&mut self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.idle.notify_all();
        let me = thread::current().id();
        for handle in self.workers.drain(..) {
            // A worker can be the thread dropping the last Arc<SplitFs>
            // (and therefore the daemon); it must not join itself.
            if handle.thread().id() != me {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for MaintenanceDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(fs: Weak<SplitFs>, shared: Arc<Shared>) {
    loop {
        // Wait for a nudge, a tick timeout, or shutdown.
        let task = {
            let mut q = shared.queue.lock();
            loop {
                if q.shutdown {
                    return;
                }
                if let Some(task) = q.tasks.pop_front() {
                    q.in_flight += 1;
                    break Some(task);
                }
                let timed_out = shared.work.wait_for(&mut q, TICK).timed_out();
                if q.shutdown {
                    return;
                }
                if timed_out {
                    q.in_flight += 1;
                    break None; // periodic tick
                }
            }
        };

        let alive = match fs.upgrade() {
            Some(fs) => {
                match task {
                    Some(Task::ProvisionStaging) | None => fs.maintenance_tick(),
                    Some(Task::RelinkFile(ino)) => fs.background_relink(ino),
                    Some(Task::Checkpoint) => fs.background_checkpoint(),
                }
                true
            }
            None => false,
        };

        {
            let mut q = shared.queue.lock();
            q.in_flight -= 1;
            if q.tasks.is_empty() && q.in_flight == 0 {
                shared.idle.notify_all();
            }
        }
        if !alive {
            return;
        }
    }
}

impl SplitFs {
    /// One maintenance pass: restore the staging watermarks, then
    /// checkpoint if the operation log is past its threshold.  Runs on a
    /// worker for every tick and every [`Task::ProvisionStaging`] nudge.
    pub(crate) fn maintenance_tick(&self) {
        use std::sync::atomic::Ordering;
        let cfg = &self.config.daemon;
        if self.config.use_staging && self.staging.needs_provisioning(cfg.staging_low_watermark) {
            while self.staging.unconsumed_files() < cfg.staging_high_watermark {
                if self.staging.provision_one().is_err() {
                    // Device full or similar: the foreground inline path
                    // will surface the error to the application.
                    break;
                }
            }
        }
        // Re-arm the foreground's provisioning nudge after the pool is
        // refilled (or found healthy).
        self.provision_nudged.store(false, Ordering::Relaxed);
        if let Some(oplog) = self.oplog.as_ref() {
            if oplog.utilization() >= cfg.oplog_checkpoint_fraction {
                self.background_checkpoint();
            }
        }
    }

    /// Background relink of one file's staged extents (batched through
    /// `ioctl_relink_batch` like every relink).  Errors are swallowed: the
    /// staged data stays staged and the next foreground `fsync` retries
    /// and reports them.
    pub(crate) fn background_relink(&self, ino: u64) {
        let state = self.files.read().get(&ino).cloned();
        if let Some(state) = state {
            let mut st = state.write();
            if !st.staged.is_empty() {
                let _ = self.relink_file(&mut st);
            }
        }
    }

    /// Background checkpoint; counted in the device statistics when the
    /// quiesced pass actually ran.
    pub(crate) fn background_checkpoint(&self) {
        let ran = self.checkpoint_quiesced();
        // Re-arm the foreground's checkpoint nudge either way: on success
        // utilization is back to zero; on give-up a later append re-nudges
        // and a later tick retries.
        self.checkpoint_nudged
            .store(false, std::sync::atomic::Ordering::Relaxed);
        if ran {
            self.device.stats().add_daemon_checkpoint();
        }
    }

    /// The safe checkpoint: quiesces every cached file by holding **all**
    /// file-state write locks (plus the registry read lock, so no new file
    /// can be opened mid-pass), relinks all staged data, group-commits the
    /// `Invalidate` markers under one fence, and truncates the log.
    ///
    /// Holding every lock across the truncate closes the seed's race in
    /// which a concurrent writer's fresh log entry could be zeroed before
    /// its data was relinked.  Locks are acquired in inode order with
    /// bounded retries; under contention the pass gives up and returns
    /// `false` (a later tick retries), so it can never deadlock against
    /// foreground writers.
    pub(crate) fn checkpoint_quiesced(&self) -> bool {
        self.checkpoint_quiesced_with(None, CHECKPOINT_LOCK_RETRIES)
    }

    /// Quiesced checkpoint, parameterized for the log-full path: `current`
    /// is a file whose write lock the caller already holds (it is relinked
    /// through the reference instead of re-locked), and `retries` bounds
    /// the per-lock acquisition attempts.
    ///
    /// Every lock here is acquired with `try_*` when the caller holds a
    /// state lock — including the registry read lock, because a blocked
    /// `open` may hold the registry write lock while waiting on a state
    /// lock the caller owns.  Never blocking while holding locks is what
    /// makes this path deadlock-free by construction.
    pub(crate) fn checkpoint_quiesced_with(
        &self,
        current: Option<&mut FileState>,
        retries: u32,
    ) -> bool {
        let under_state_lock = current.is_some();
        let files = if under_state_lock {
            match self.files.try_read() {
                Some(guard) => guard,
                None => return false,
            }
        } else {
            self.files.read()
        };
        let current_ino = current.as_ref().map(|c| c.ino);
        let mut entries: Vec<(u64, Arc<RwLock<FileState>>)> = files
            .iter()
            .filter(|(ino, _)| Some(**ino) != current_ino)
            .map(|(ino, st)| (*ino, Arc::clone(st)))
            .collect();
        entries.sort_by_key(|(ino, _)| *ino);

        let mut guards = Vec::with_capacity(entries.len());
        for (_, state) in &entries {
            let mut attempts = 0;
            loop {
                if let Some(guard) = state.try_write() {
                    guards.push(guard);
                    break;
                }
                attempts += 1;
                if attempts > retries {
                    return false; // contended: the caller retries later
                }
                thread::sleep(Duration::from_micros(20));
            }
        }

        let mut deferred = Vec::new();
        for guard in guards.iter_mut() {
            if !guard.staged.is_empty()
                && self
                    .relink_file_deferring(&mut *guard, &mut deferred)
                    .is_err()
            {
                // A failed relink leaves that file's data staged and its
                // log entries live; skip the truncate and let the
                // foreground path surface the error.
                return false;
            }
        }
        if let Some(st) = current {
            if !st.staged.is_empty() && self.relink_file_deferring(st, &mut deferred).is_err() {
                return false;
            }
        }
        if let Some(oplog) = self.oplog.as_ref() {
            // The markers are an optimization (recovery also skips
            // relinked entries because their staging ranges are holes), so
            // a full log just drops them.
            let _ = oplog.append_batch(&deferred);
            oplog.reset();
        }
        true
    }
}
