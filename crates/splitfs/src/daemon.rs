//! The U-Split background maintenance daemon.
//!
//! The SplitFS paper (§3.3) moves staging-file pre-allocation and
//! log/staging garbage collection off the critical path onto a background
//! thread; this module is that subsystem.  One or more worker threads,
//! owned by a [`MaintenanceDaemon`] attached to a [`SplitFs`] instance,
//! perform four kinds of work:
//!
//! 1. **Asynchronous staging provisioning** — when any lane of the
//!    [`StagingPool`](crate::staging::StagingPool) drops below its low
//!    watermark, workers create and map fresh staging files until that
//!    lane's high watermark is restored, so
//!    [`StagingPool::take`](crate::staging::StagingPool::take) never has
//!    to fall back to inline file creation under load.  Watermarks are
//!    sized **adaptively** from each lane's measured consumption rate
//!    (see [`crate::adaptive`]), and when provisioning fails for lack of
//!    space, the **cold-file relink policy**
//!    ([`crate::SplitFs::reclaim_cold_staging`]) retires long-unsynced
//!    staged extents so their staging files become recyclable.
//! 2. **Batched background relink** — files that accumulate many staged
//!    extents are relinked in the background through
//!    [`kernelfs::Ext4Dax::ioctl_relink_batch`], shrinking the work left
//!    for the next foreground `fsync`.
//! 3. **Epoch checkpointing** — once the active epoch of the operation
//!    log passes its configured fill fraction, a worker *seals* it
//!    ([`crate::oplog::OpLog::try_seal`]: the empty half becomes active and
//!    foreground writers continue immediately), relinks the sealed
//!    entries' files **one at a time** — never holding two state locks,
//!    never quiescing the instance — group-commits the resulting
//!    `Invalidate` markers under a single fence, and re-zeroes only the
//!    sealed half ([`crate::oplog::OpLog::truncate_sealed`]).  The seed's
//!    stop-the-world quiesced checkpoint (every file lock held across the
//!    truncate) is gone.
//! 4. **Staging recycling** — staging files whose contents were fully
//!    relinked are truncated, re-provisioned and returned to the pool
//!    instead of leaking until shutdown.
//! 5. **Tier demotion** — on a tiered device, fully relinked files idle
//!    past the demotion threshold migrate to the capacity tier once PM
//!    crosses its utilization watermark, QoS-capped per tick
//!    ([`crate::SplitFs::sweep_tier_demotions`]); heat promotion on the
//!    read/write paths brings them back.
//!
//! Work arrives two ways: foreground paths *nudge* the daemon when they
//! observe a watermark or threshold crossing, and workers also wake on a
//! periodic tick so maintenance happens even without nudges.  Each worker
//! owns a **private queue**: nudges are routed by task (relinks shard by
//! inode), so submitting work for different files never contends on one
//! daemon mutex.  The daemon holds only a [`Weak`] reference to its file
//! system; a worker upgrades it for the duration of one task, so an
//! in-flight task briefly keeps the instance alive after the application
//! drops its last handle — the instance's `Drop` (and the worker join)
//! then runs when that task finishes.  No thread ever outlives the
//! instance or touches a torn-down one; callers that need *all*
//! background work finished at a known point (e.g. before simulating a
//! crash) use [`SplitFs::maintenance_quiesce`].
//!
//! Crash safety: every background relink goes through the same journaled,
//! atomic kernel primitive as a foreground `fsync`, and recovery
//! ([`crate::recovery`]) treats relinked staging ranges (holes),
//! `Invalidate` markers and `StagingRecycle` markers identically whether
//! the work was foreground or background — a crash before, during, or
//! after a background pass produces identical recovered file contents.

use std::collections::VecDeque;
use std::sync::{Arc, Weak};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::config::DaemonConfig;
use crate::fs::SplitFs;

/// How often an idle worker wakes to poll watermarks without a nudge.
const TICK: Duration = Duration::from_millis(1);

/// One unit of background maintenance work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Provision staging files until the high watermark is restored.
    ProvisionStaging,
    /// Relink the staged extents of the file with this inode.
    RelinkFile(u64),
    /// Seal the active operation-log epoch (if not already sealed) and
    /// retire the sealed half: relink its files one at a time, then
    /// truncate it.
    Checkpoint,
}

#[derive(Debug, Default)]
struct Queue {
    tasks: VecDeque<Task>,
    in_flight: usize,
    shutdown: bool,
}

#[derive(Debug, Default)]
pub(crate) struct Shared {
    queue: Mutex<Queue>,
    /// Signalled when work is submitted or shutdown is requested.
    work: Condvar,
    /// Signalled when the queue drains and no task is in flight.
    idle: Condvar,
}

/// Handle to the worker threads of one U-Split instance.  Each worker has
/// its own queue; `submit` routes tasks so relinks for different inodes
/// land on different workers.
pub struct MaintenanceDaemon {
    shareds: Vec<Arc<Shared>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for MaintenanceDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintenanceDaemon")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl MaintenanceDaemon {
    /// Starts `config.workers` maintenance threads for `fs`.
    ///
    /// Workers hold only a weak reference: they cannot keep the instance
    /// alive, and they exit as soon as it is gone or shutdown is signalled.
    pub(crate) fn start(fs: &Arc<SplitFs>, config: &DaemonConfig) -> Self {
        let count = config.workers.max(1);
        let mut shareds = Vec::with_capacity(count);
        let mut workers = Vec::with_capacity(count);
        for i in 0..count {
            let shared = Arc::new(Shared::default());
            let weak = Arc::downgrade(fs);
            let shared_handle = Arc::clone(&shared);
            shareds.push(shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("usplit-maint-{i}"))
                    .spawn(move || worker_loop(weak, shared_handle))
                    .expect("spawn maintenance worker"),
            );
        }
        Self { shareds, workers }
    }

    /// Routes `task` to its worker's queue.  Relinks shard by inode so
    /// different files' background work proceeds on different workers;
    /// provisioning and checkpointing get stable homes at the two ends so
    /// they do not queue behind each other when two or more workers run.
    fn route(&self, task: Task) -> &Arc<Shared> {
        let n = self.shareds.len();
        let idx = match task {
            Task::ProvisionStaging => 0,
            Task::Checkpoint => n - 1,
            Task::RelinkFile(ino) => ino as usize % n,
        };
        &self.shareds[idx]
    }

    /// Enqueues `task` unless an identical task is already queued on its
    /// worker.
    pub(crate) fn submit(&self, task: Task) {
        let shared = self.route(task);
        let mut q = shared.queue.lock();
        if q.shutdown || q.tasks.contains(&task) {
            return;
        }
        q.tasks.push_back(task);
        drop(q);
        shared.work.notify_one();
    }

    /// Clonable handles used to wait for idleness without holding the
    /// owner's daemon mutex.
    pub(crate) fn shared_handles(&self) -> Vec<Arc<Shared>> {
        self.shareds.clone()
    }

    /// Queued-but-unexecuted tasks across every worker (queue lag, for
    /// the health probe).  Busy queues are skipped (`try_lock`): the
    /// probe is a gauge, not an audit, and the tick calling it must
    /// never block on a queue a worker holds.
    pub(crate) fn queue_depth(&self) -> usize {
        self.shareds
            .iter()
            .filter_map(|s| s.queue.try_lock().map(|q| q.tasks.len()))
            .sum()
    }

    /// Blocks until every queue is empty and no task is in flight.
    pub(crate) fn wait_idle(shareds: &[Arc<Shared>]) {
        for shared in shareds {
            let mut q = shared.queue.lock();
            while !q.shutdown && (!q.tasks.is_empty() || q.in_flight > 0) {
                shared.idle.wait(&mut q);
            }
        }
    }

    fn shutdown(&mut self) {
        for shared in &self.shareds {
            let mut q = shared.queue.lock();
            q.shutdown = true;
            drop(q);
            shared.work.notify_all();
            shared.idle.notify_all();
        }
        let me = thread::current().id();
        for handle in self.workers.drain(..) {
            // A worker can be the thread dropping the last Arc<SplitFs>
            // (and therefore the daemon); it must not join itself.
            if handle.thread().id() != me {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for MaintenanceDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(fs: Weak<SplitFs>, shared: Arc<Shared>) {
    loop {
        // Wait for a nudge, a tick timeout, or shutdown.
        let task = {
            let mut q = shared.queue.lock();
            loop {
                if q.shutdown {
                    return;
                }
                if let Some(task) = q.tasks.pop_front() {
                    q.in_flight += 1;
                    break Some(task);
                }
                let timed_out = shared.work.wait_for(&mut q, TICK).timed_out();
                if q.shutdown {
                    return;
                }
                if timed_out {
                    q.in_flight += 1;
                    break None; // periodic tick
                }
            }
        };

        let alive = match fs.upgrade() {
            Some(fs) => {
                // Ring drains run first and outside the Maintenance
                // span (spans are outermost-only, and the drain opens
                // its own RingDrain span).
                fs.drain_rings();
                // Background work gets its own Maintenance span so the
                // per-op time breakdown accounts for daemon charges too.
                let _span = fs.maintenance_span();
                match task {
                    Some(Task::ProvisionStaging) | None => fs.maintenance_tick(),
                    Some(Task::RelinkFile(ino)) => fs.background_relink(ino),
                    Some(Task::Checkpoint) => fs.background_checkpoint(),
                }
                true
            }
            None => false,
        };

        {
            let mut q = shared.queue.lock();
            q.in_flight -= 1;
            if q.tasks.is_empty() && q.in_flight == 0 {
                shared.idle.notify_all();
            }
        }
        if !alive {
            return;
        }
    }
}

impl SplitFs {
    /// One maintenance pass: resize the lane watermarks from measured
    /// demand, restore every lane to its high watermark, recycle
    /// exhausted staging files (relinking cold files first when staging
    /// space is under pressure), then checkpoint if the operation log is
    /// past its threshold.  Runs on a worker for every tick and every
    /// [`Task::ProvisionStaging`] nudge.
    pub(crate) fn maintenance_tick(&self) {
        use std::sync::atomic::Ordering;
        let cfg = &self.config.daemon;
        if self.config.use_staging {
            // Adaptive provisioning: sample each lane's cumulative
            // consumption and size its watermarks from the observed rate.
            // Hot lanes get staging files ahead of demand; idle lanes
            // shrink back to the configured floor.
            if cfg.adaptive_watermarks {
                let lanes = self.staging.lane_count();
                let now_ms = self.device.clock().now_ns_f64() / 1e6;
                let consumed: Vec<u64> = (0..lanes)
                    .map(|i| self.staging.lane_consumed_bytes(i))
                    .collect();
                let marks = self.adaptive.lock().observe(now_ms, &consumed);
                for (i, w) in marks.iter().enumerate() {
                    self.staging.set_lane_watermarks(i, w.low, w.high);
                }
            }
            // Per-lane refill: a lane below its low watermark is
            // provisioned back up to its high watermark.
            let mut pressure = false;
            for lane in 0..self.staging.lane_count() {
                let (low, high) = self.staging.lane_watermarks(lane);
                if self.staging.lane_unconsumed(lane) >= low {
                    continue;
                }
                while self.staging.lane_unconsumed(lane) < high {
                    if self.staging.provision_lane(lane).is_err() {
                        // Device full or similar: reclaim below, and let
                        // the foreground inline path surface persistent
                        // errors to the application.
                        pressure = true;
                        break;
                    }
                }
            }
            // Return fully-relinked staging files to the pool.
            self.recycle_staging();
            // Shrink: a lane holding more pristine files than its
            // (possibly just lowered) high watermark releases the surplus
            // so burst-peak staging space goes back to the allocator —
            // lowering watermarks alone only stops new provisioning.
            for lane in 0..self.staging.lane_count() {
                self.staging.release_surplus(lane);
            }
            if pressure {
                // Staging space could not be provisioned: retire cold
                // files' staged extents so their staging files become
                // recyclable, then recycle again.
                if self.reclaim_cold_staging() > 0 {
                    self.recycle_staging();
                }
            }
        }
        // Re-arm the foreground's provisioning nudge after the pool is
        // refilled (or found healthy).
        self.provision_nudged.store(false, Ordering::Relaxed);
        if let Some(oplog) = self.oplog.as_ref() {
            if oplog.sealed_pending() || oplog.utilization() >= cfg.oplog_checkpoint_fraction {
                self.background_checkpoint();
            }
        }
        // On a tiered device, shed long-idle files to the capacity tier
        // once PM crosses the utilization watermark (bandwidth-capped per
        // tick; see `sweep_tier_demotions`).
        self.sweep_tier_demotions();
        self.publish_health();
    }

    /// Publishes the daemon's current view — lane free-list depths,
    /// watermark targets, queue lag, log utilization — into the health
    /// probe.  Gauges only; every read below is lock-free or `try_lock`.
    pub(crate) fn publish_health(&self) {
        let lanes = (0..self.staging.lane_count())
            .map(|i| obs::LaneHealth {
                free_files: self.staging.lane_unconsumed(i),
                watermark: self.staging.lane_watermarks(i).0,
            })
            .collect();
        let queue_depth = self
            .daemon
            .try_lock()
            .and_then(|d| d.as_ref().map(|d| d.queue_depth()))
            .unwrap_or(0);
        self.health.publish(obs::HealthSnapshot {
            ticks: 0, // stamped by HealthProbe::publish
            lanes,
            queue_depth,
            oplog_utilization: self.oplog.as_ref().map(|o| o.utilization()).unwrap_or(0.0),
        });
    }

    /// Background relink of one file's staged extents (batched through
    /// `ioctl_relink_batch` like every relink).  Errors are swallowed: the
    /// staged data stays staged and the next foreground `fsync` retries
    /// and reports them.
    pub(crate) fn background_relink(&self, ino: u64) {
        if let Some(state) = self.files.get(ino) {
            let mut st = state.write();
            if !st.staged.is_empty() {
                let _ = self.relink_file(&mut st);
            }
        }
    }

    /// The background epoch checkpoint: seal the active epoch (writers
    /// continue into the empty half immediately — no quiesce, no
    /// stop-the-world), then retire the sealed half by relinking its
    /// files one state lock at a time and truncating it.  Counted in the
    /// device statistics when a full retirement pass ran.
    pub(crate) fn background_checkpoint(&self) {
        let mut ran = false;
        if let Some(oplog) = self.oplog.as_ref() {
            let _ = oplog.try_seal();
            if oplog.sealed_pending() {
                ran = self.retire_sealed(None, true);
            }
        }
        // Re-arm the foreground's checkpoint nudge either way: on success
        // utilization is back to zero; on give-up a later append re-nudges
        // and a later tick retries.
        self.checkpoint_nudged
            .store(false, std::sync::atomic::Ordering::Relaxed);
        if ran {
            self.device.stats().add_daemon_checkpoint();
        }
    }
}
