//! Async submission/completion rings over SplitFS: cross-file fence
//! coalescing and durability-epoch publication.
//!
//! The synchronous write path pays two fences per staged gather — one
//! for the staged bytes, one for the operation-log group commit — and
//! it structurally cannot do better, because by the time `appendv`
//! returns there is no second operation to share a fence with.  A
//! drained ring batch *does* have the second operation in hand: this
//! module stages every write in the batch (across **unrelated
//! files**), fences once, and group-commits every file's log entries
//! under one more fence — two fences for the whole batch where the
//! synchronous path pays two per write.
//!
//! **Durability epochs.**  The operation log's sequence numbers double
//! as the epoch currency: once a group commit's fence retires, every
//! sequence number in it is durable, and the instance publishes the
//! batch's maximum with a `fetch_max` (rule: publish only *after* the
//! fence).  A completion's [`aio::Cqe::epoch`] is the largest sequence
//! number covering that operation, so `published_epoch() >= cqe.epoch`
//! means "this write survives any crash from now on" — the caller
//! awaits that instead of issuing `fsync`.  Modes that do not log data
//! operations (POSIX) fall back to a private epoch counter bumped
//! after the batch's staging fence; the epoch then promises exactly
//! what the mode itself promises (staged bytes durable, no atomicity).
//!
//! **Lock ordering.**  [`SplitFs::ring_batch`] locks the batch's file
//! states in **inode order** (the `fsync_many` rule) and is always
//! entered from a drain — never while the caller holds a file-state
//! lock.  The hub's drain lock is therefore ordered *before* every
//! file-state lock: do not submit, drain, or await an epoch while
//! holding one.

use std::sync::{Arc, Weak};

use aio::{Cqe, RingBackend, RingFs, Sqe, SqeOp};
use kernelfs::BLOCK_SIZE;
use pmem::{PersistMode, PmemDevice, TimeCategory};
use vfs::{FileSystem, FsError, FsResult};

use crate::daemon::Task;
use crate::fs::SplitFs;
use crate::oplog::{LogEntry, LogOp};
use crate::staging::StagingAllocation;
use crate::state::StagedExtent;

/// How many drain rounds one daemon pass performs before yielding back
/// to provisioning/checkpoint work, so a firehose of submissions
/// cannot starve the rest of maintenance.
const DAEMON_DRAIN_ROUNDS: usize = 4;

/// An unexecuted write pulled out of a drained batch: the sqe's index,
/// its fd (later re-resolved to an inode), the explicit offset for
/// `writev_at` (`None` for appends), and the payload slices.
type PendingWrite<'a> = (usize, u64, Option<u64>, &'a [Vec<u8>]);

/// One write submission resolved against its file state, carried
/// between the staging, logging and recording phases of a batch.
struct WriteOp {
    /// Index of the originating sqe (and its completion slot).
    sqe_index: usize,
    /// Index into the batch's sorted unique-state guard vector.
    guard_index: usize,
    /// Resolved absolute target offset (end of file for appends).
    target_offset: u64,
    /// Total payload bytes.
    total: u64,
    /// Gather slices (owned buffers from the sqe).
    buf_range: usize,
    /// Staged chunks: allocation, target offset, length.
    pending: Vec<(StagingAllocation, u64, usize)>,
}

impl SplitFs {
    /// The highest durability epoch this instance has published: every
    /// operation-log sequence number ≤ the returned value is covered
    /// by a group-commit fence and survives a crash.
    pub fn published_epoch(&self) -> u64 {
        self.published_epoch
            .load(std::sync::atomic::Ordering::Acquire)
    }

    /// Publishes `epoch` (monotone `fetch_max`).  Callers must only
    /// pass sequence numbers whose log entries are already fenced.
    pub(crate) fn publish_epoch(&self, epoch: u64) {
        self.published_epoch
            .fetch_max(epoch, std::sync::atomic::Ordering::AcqRel);
        // The caller's contract (entries already fenced) is exactly the
        // oracle's declaration rule, so the durability promise rides here.
        self.device.declare(pmem::Promise::EpochDurable { epoch });
    }

    /// Attaches `hub` so the maintenance daemon's workers drain its
    /// rings on every tick.  Held weakly — the hub's backend owns the
    /// strong reference to this instance.
    pub fn attach_ring_hub(&self, hub: &Arc<RingFs>) {
        *self.ring_hub.write() = Some(Arc::downgrade(hub));
    }

    /// Drains the attached ring hub (a bounded number of rounds),
    /// under a [`obs::OpKind::RingDrain`] span when a recorder is
    /// attached.  Called by daemon workers; a no-op without a hub.
    pub(crate) fn drain_rings(&self) {
        let hub = match self.ring_hub.read().as_ref().and_then(Weak::upgrade) {
            Some(hub) => hub,
            None => return,
        };
        let _span = self
            .recorder
            .read()
            .as_ref()
            .map(|r| r.span(obs::OpKind::RingDrain));
        for _ in 0..DAEMON_DRAIN_ROUNDS {
            if hub.drain(aio::DEFAULT_DRAIN_BATCH) == 0 {
                break;
            }
        }
    }

    /// Executes one drained cross-ring batch: reads and fsyncs run
    /// through the synchronous paths; the batch's writes stage
    /// together, share **one** data fence and **one** log group
    /// commit across every file they touch, and complete with the
    /// durability epoch that covers them.  Returns one [`Cqe`] per
    /// sqe, in order.  Operations within a batch are unordered with
    /// respect to each other (io_uring semantics without links).
    pub fn ring_batch(&self, sqes: Vec<Sqe>) -> Vec<Cqe> {
        let mut cqes: Vec<Option<Cqe>> = (0..sqes.len()).map(|_| None).collect();

        // Reads and fsyncs first, through the synchronous entry points
        // (they take file-state locks internally, so they must run
        // before the batch's write guards are held).
        for (i, sqe) in sqes.iter().enumerate() {
            match &sqe.op {
                SqeOp::Read { fd, offset, len } => {
                    let mut buf = vec![0u8; *len];
                    let (result, data) = match self.read_at(*fd, *offset, &mut buf) {
                        Ok(n) => {
                            buf.truncate(n);
                            (Ok(n as u64), Some(buf))
                        }
                        Err(e) => (Err(e), None),
                    };
                    cqes[i] = Some(Cqe {
                        user_data: sqe.user_data,
                        result,
                        epoch: self.published_epoch(),
                        data,
                    });
                }
                SqeOp::Fsync { fd } => {
                    let result = FileSystem::fsync(self, *fd).map(|_| 0u64);
                    if result.is_ok() && !self.config.mode.logs_data_ops() {
                        // Without a log the relink/fence that fsync just
                        // performed *is* the durability point.
                        self.published_epoch
                            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
                    }
                    cqes[i] = Some(Cqe {
                        user_data: sqe.user_data,
                        result,
                        epoch: self.published_epoch(),
                        data: None,
                    });
                }
                SqeOp::Appendv { .. } | SqeOp::WritevAt { .. } => {}
            }
        }

        self.ring_write_batch(&sqes, &mut cqes);

        sqes.into_iter()
            .zip(cqes)
            .map(|(sqe, cqe)| {
                cqe.unwrap_or(Cqe {
                    user_data: sqe.user_data,
                    result: Err(FsError::InvalidArgument),
                    epoch: self.published_epoch(),
                    data: None,
                })
            })
            .collect()
    }

    /// The coalesced write half of [`SplitFs::ring_batch`].
    fn ring_write_batch(&self, sqes: &[Sqe], cqes: &mut [Option<Cqe>]) {
        let fail = |cqes: &mut [Option<Cqe>], i: usize, e: FsError, epoch: u64| {
            cqes[i] = Some(Cqe {
                user_data: sqes[i].user_data,
                result: Err(e),
                epoch,
                data: None,
            });
        };

        // Resolve every write's descriptor and file state.
        let mut writes: Vec<PendingWrite<'_>> = Vec::new();
        for (i, sqe) in sqes.iter().enumerate() {
            let (fd, offset, bufs) = match &sqe.op {
                SqeOp::Appendv { fd, bufs } => (*fd, None, bufs.as_slice()),
                SqeOp::WritevAt { fd, offset, bufs } => (*fd, Some(*offset), bufs.as_slice()),
                _ => continue,
            };
            writes.push((i, fd, offset, bufs));
        }
        if writes.is_empty() {
            return;
        }
        self.charge_usplit();

        if !self.config.use_staging {
            // Staging ablation: no fence to coalesce — run each write
            // through the synchronous path and fence the batch once.
            let mut any_ok = false;
            for (i, fd, offset, bufs) in writes {
                let iov: Vec<vfs::IoVec<'_>> = bufs.iter().map(|b| vfs::IoVec::new(b)).collect();
                let result = match offset {
                    None => self.appendv(fd, &iov),
                    Some(off) => self.writev_at(fd, off, &iov),
                };
                any_ok |= result.is_ok();
                let epoch = self.published_epoch();
                match result {
                    Ok(n) => {
                        cqes[i] = Some(Cqe {
                            user_data: sqes[i].user_data,
                            result: Ok(n as u64),
                            epoch,
                            data: None,
                        });
                    }
                    Err(e) => fail(cqes, i, e, epoch),
                }
            }
            if any_ok {
                self.device.fence(TimeCategory::UserData);
                self.published_epoch
                    .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
                let epoch = self.published_epoch();
                for cqe in cqes.iter_mut().flatten() {
                    if cqe.result.is_ok() {
                        cqe.epoch = epoch;
                    }
                }
            }
            return;
        }

        // Lock the batch's distinct files in inode order (the
        // `fsync_many` rule, so concurrent batches, fsync batches and
        // the checkpoint sweep can never deadlock against each other).
        let mut unique: Vec<(u64, Arc<parking_lot::RwLock<crate::state::FileState>>)> = Vec::new();
        let mut resolved: Vec<PendingWrite<'_>> = Vec::new();
        for (i, fd, offset, bufs) in writes {
            match self.state_for_fd(fd) {
                Ok((desc, state)) if desc.flags.write => {
                    unique.push((desc.ino, state));
                    resolved.push((i, desc.ino, offset, bufs));
                }
                Ok(_) => fail(cqes, i, FsError::PermissionDenied, self.published_epoch()),
                Err(e) => fail(cqes, i, e, self.published_epoch()),
            }
        }
        if resolved.is_empty() {
            return;
        }
        unique.sort_by_key(|(ino, _)| *ino);
        unique.dedup_by_key(|(ino, _)| *ino);
        let mut guards: Vec<_> = unique.iter().map(|(_, state)| state.write()).collect();
        let guard_index =
            |ino: u64| -> usize { unique.binary_search_by_key(&ino, |(i, _)| *i).unwrap() };
        // Remember each file's pre-batch size so a failed group commit
        // can roll the size cache back (the staged bytes are then
        // unreachable, exactly as after a failed synchronous stage).
        let pre_sizes: Vec<u64> = guards.iter().map(|g| g.cached_size).collect();

        // Phase 1: stage every write's slices.  Cursor-bump
        // allocations, non-temporal writes, **no fence yet**.
        let mut staged: Vec<WriteOp> = Vec::new();
        for (i, ino, offset, bufs) in resolved {
            let gi = guard_index(ino);
            let target_offset = offset.unwrap_or(guards[gi].cached_size);
            let total: u64 = bufs.iter().map(|b| b.len() as u64).sum();
            if total == 0 {
                cqes[i] = Some(Cqe {
                    user_data: sqes[i].user_data,
                    result: Ok(0),
                    epoch: self.published_epoch(),
                    data: None,
                });
                continue;
            }
            let mut pending: Vec<(StagingAllocation, u64, usize)> = Vec::new();
            let mut t_off = target_offset;
            let mut error = None;
            'slices: for buf in bufs {
                let mut pos = 0usize;
                while pos < buf.len() {
                    let cur = t_off + pos as u64;
                    let remaining = (buf.len() - pos) as u64;
                    let alloc = match self.staging.take(remaining, cur % BLOCK_SIZE as u64) {
                        Ok(alloc) => alloc,
                        Err(e) => {
                            error = Some(e);
                            break 'slices;
                        }
                    };
                    let n = alloc.len.min(remaining) as usize;
                    self.device.write(
                        alloc.device_offset,
                        &buf[pos..pos + n],
                        PersistMode::NonTemporal,
                        TimeCategory::UserData,
                    );
                    pending.push((alloc, cur, n));
                    pos += n;
                }
                t_off += buf.len() as u64;
            }
            if let Some(e) = error {
                fail(cqes, i, e, self.published_epoch());
                continue;
            }
            // Advance the cached size immediately so a second append to
            // the same file in this batch stages after this one.
            guards[gi].cached_size = guards[gi].cached_size.max(target_offset + total);
            staged.push(WriteOp {
                sqe_index: i,
                guard_index: gi,
                target_offset,
                total,
                buf_range: bufs.len(),
                pending,
            });
        }
        if staged.is_empty() {
            return;
        }

        // Phase 2: one fence for every op's staged bytes, then (in
        // logging modes) one group commit for every file's entries —
        // the cross-file amortization the synchronous path cannot do.
        let logging = self.config.mode.logs_data_ops();
        self.device.fence(TimeCategory::UserData);
        let mut op_seqs: Vec<Vec<u64>> = Vec::with_capacity(staged.len());
        let epoch = if logging {
            let mut entries: Vec<LogEntry> = Vec::new();
            let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(staged.len());
            for op in &staged {
                let start = entries.len();
                for (alloc, cur, n) in &op.pending {
                    entries.push(LogEntry {
                        op: LogOp::StagedWrite,
                        target_ino: unique[op.guard_index].0,
                        target_offset: *cur,
                        len: *n as u64,
                        staging_ino: alloc.staging_ino,
                        staging_offset: alloc.staging_offset,
                        seq: self
                            .oplog
                            .as_ref()
                            .map(|l| l.next_seq())
                            .unwrap_or_default(),
                        instance_id: self.instance_id,
                    });
                }
                ranges.push((start, entries.len()));
            }
            if let Err(e) = self.ring_log_commit(&entries, &mut guards) {
                // The whole group commit failed: no entry is durable.
                // Roll the size caches back and fail every staged op.
                for (guard, pre) in guards.iter_mut().zip(&pre_sizes) {
                    guard.cached_size = *pre;
                }
                let epoch = self.published_epoch();
                for op in &staged {
                    fail(cqes, op.sqe_index, e.clone(), epoch);
                }
                return;
            }
            let max_seq = entries.iter().map(|e| e.seq).max().unwrap_or(0);
            self.publish_epoch(max_seq);
            for (start, end) in ranges {
                op_seqs.push(entries[start..end].iter().map(|e| e.seq).collect());
            }
            if staged.len() >= 2 {
                // The synchronous path would have paid a data fence and
                // a log fence per write; the batch paid one pair total.
                self.device
                    .stats()
                    .add_fences_amortized(2 * (staged.len() as u64 - 1));
            }
            max_seq
        } else {
            // No log: the staging fence above is the durability point
            // (the mode's own guarantee — staged bytes durable, no
            // atomicity).  One private epoch per batch.
            for op in &staged {
                op_seqs.push(vec![0; op.pending.len()]);
            }
            if staged.len() >= 2 {
                self.device
                    .stats()
                    .add_fences_amortized(staged.len() as u64 - 1);
            }
            self.published_epoch
                .fetch_add(1, std::sync::atomic::Ordering::AcqRel)
                + 1
        };

        // Phase 3: record the staged extents and complete the ops.
        let now_ns = self.device.clock().now_ns_f64();
        for (op, seqs) in staged.iter().zip(op_seqs) {
            let guard = &mut guards[op.guard_index];
            for ((alloc, cur, n), seq) in op.pending.iter().zip(seqs) {
                guard.staged.push(StagedExtent {
                    target_offset: *cur,
                    len: *n as u64,
                    staging_ino: alloc.staging_ino,
                    staging_fd: alloc.staging_fd,
                    staging_offset: alloc.staging_offset,
                    device_offset: alloc.device_offset,
                    seq,
                });
            }
            guard.cached_size = guard.cached_size.max(op.target_offset + op.total);
            guard.last_staged_ns = now_ns;
            self.device.stats().add_appendv(op.buf_range as u64);
            cqes[op.sqe_index] = Some(Cqe {
                user_data: sqes[op.sqe_index].user_data,
                result: Ok(op.total),
                epoch,
                data: None,
            });
        }

        // Same maintenance nudges as the synchronous staging path, once
        // per batch (and a relink nudge per heavily-staged file).
        if self.config.daemon.enabled {
            use std::sync::atomic::Ordering;
            let cfg = &self.config.daemon;
            if self.staging.needs_provisioning()
                && self
                    .provision_nudged
                    .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                self.nudge(Task::ProvisionStaging);
            }
            if let Some(oplog) = self.oplog.as_ref() {
                if oplog.utilization() >= cfg.oplog_checkpoint_fraction
                    && self
                        .checkpoint_nudged
                        .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    self.nudge(Task::Checkpoint);
                }
            }
            for guard in &guards {
                if guard.staged.len() >= cfg.relink_batch_size.saturating_mul(4) {
                    self.nudge(Task::RelinkFile(guard.ino));
                }
            }
        }
    }

    /// Group-commits `entries` with the stage-path's full-log handling
    /// (seal the epoch or grow the log, then retry).  `guards[0]` is
    /// the already-held state the full-log handler may relink through.
    fn ring_log_commit(
        &self,
        entries: &[LogEntry],
        guards: &mut [parking_lot::RwLockWriteGuard<'_, crate::state::FileState>],
    ) -> FsResult<()> {
        loop {
            let res = match (self.oplog.as_ref(), entries.len()) {
                (None, _) | (_, 0) => Ok(()),
                (Some(_), 1) => self.log_append(&entries[0]),
                (Some(oplog), _) => oplog.append_batch(entries),
            };
            match res {
                Ok(()) => return Ok(()),
                Err(FsError::NoSpace) => self.handle_log_full(&mut guards[0])?,
                Err(e) => return Err(e),
            }
        }
    }
}

/// The [`RingBackend`] that runs drained batches through
/// [`SplitFs::ring_batch`] — cross-file fence coalescing plus
/// operation-log durability epochs.
pub struct SplitRingBackend {
    fs: Arc<SplitFs>,
}

impl SplitRingBackend {
    /// Wraps a SplitFS instance.
    pub fn new(fs: Arc<SplitFs>) -> Self {
        Self { fs }
    }
}

impl RingBackend for SplitRingBackend {
    fn run_batch(&self, sqes: Vec<Sqe>) -> Vec<Cqe> {
        self.fs.ring_batch(sqes)
    }

    fn published_epoch(&self) -> u64 {
        self.fs.published_epoch()
    }

    fn device(&self) -> &Arc<PmemDevice> {
        FileSystem::device(&*self.fs)
    }
}

/// Builds a ring hub over `fs` and attaches it, so the instance's
/// maintenance daemon drains the hub's rings on every tick.  The hub
/// keeps the instance alive (its backend holds the `Arc`); the
/// instance holds the hub only weakly.
pub fn ring_hub(fs: &Arc<SplitFs>) -> Arc<RingFs> {
    let hub = RingFs::with_backend(Arc::new(SplitRingBackend::new(Arc::clone(fs))));
    fs.attach_ring_hub(&hub);
    hub
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplitConfig;
    use crate::modes::Mode;
    use vfs::OpenFlags;

    fn strict_fs() -> Arc<SplitFs> {
        let device = pmem::PmemBuilder::new(256 * 1024 * 1024)
            .track_persistence(false)
            .build();
        let kernel = kernelfs::Ext4Dax::mkfs(device).unwrap();
        let config = SplitConfig::new(Mode::Strict)
            .with_staging(4, 8 * 1024 * 1024)
            .with_oplog_size(512 * 1024);
        SplitFs::new(kernel, config).unwrap()
    }

    #[test]
    fn batch_coalesces_fences_across_unrelated_files() {
        let fs = strict_fs();
        let hub = ring_hub(&fs);
        let ring = hub.ring(16);
        let mut fds = Vec::new();
        for i in 0..4 {
            fds.push(
                fs.open(&format!("/ring-{i}.log"), OpenFlags::create())
                    .unwrap(),
            );
        }
        fs.maintenance_quiesce();
        let before = FileSystem::device(&*fs).stats().snapshot();
        for (i, fd) in fds.iter().enumerate() {
            ring.try_submit(Sqe::appendv(i as u64, *fd, vec![vec![i as u8; 64]]))
                .unwrap();
        }
        hub.drain(aio::DEFAULT_DRAIN_BATCH);
        let delta = FileSystem::device(&*fs).stats().snapshot().delta(&before);
        // Four writes to four different files, two fences total — the
        // synchronous path would have paid eight.
        assert_eq!(delta.fences, 2, "one data fence + one log fence");
        assert_eq!(delta.fences_amortized, 2 * 3);
        assert_eq!(delta.ring_depth, 4);
        assert_eq!(delta.completion_batch, 1);

        let mut cqes = Vec::new();
        ring.harvest(&mut cqes);
        assert_eq!(cqes.len(), 4);
        let epoch = cqes.iter().map(|c| c.epoch).max().unwrap();
        assert!(epoch > 0 && epoch <= fs.published_epoch());
        hub.await_epoch(epoch).unwrap();
        for (i, fd) in fds.iter().enumerate() {
            FileSystem::fsync(&*fs, *fd).unwrap();
            assert_eq!(
                fs.read_file(&format!("/ring-{i}.log")).unwrap(),
                vec![i as u8; 64]
            );
        }
    }

    #[test]
    fn appends_to_one_file_in_a_batch_never_overlap() {
        let fs = strict_fs();
        let hub = ring_hub(&fs);
        let ring = hub.ring(8);
        let fd = fs.open("/seq.log", OpenFlags::create()).unwrap();
        for i in 0..6u64 {
            ring.try_submit(Sqe::appendv(i, fd, vec![vec![i as u8 + 1; 32]]))
                .unwrap();
        }
        hub.drain(aio::DEFAULT_DRAIN_BATCH);
        let mut cqes = Vec::new();
        ring.harvest(&mut cqes);
        assert!(cqes.iter().all(|c| c.result == Ok(32)));
        FileSystem::fsync(&*fs, fd).unwrap();
        let data = fs.read_file("/seq.log").unwrap();
        assert_eq!(data.len(), 6 * 32);
        // Each append occupies its own disjoint range, in some order.
        let mut seen: Vec<u8> = data.chunks(32).map(|c| c[0]).collect();
        for chunk in data.chunks(32) {
            assert!(chunk.iter().all(|&b| b == chunk[0]));
        }
        seen.sort_unstable();
        assert_eq!(seen, (1..=6).collect::<Vec<_>>());
    }

    #[test]
    fn mixed_batch_reads_fsyncs_and_writes_complete() {
        let fs = strict_fs();
        let hub = ring_hub(&fs);
        let ring = hub.ring(8);
        let fd = fs.open("/mixed.log", OpenFlags::create()).unwrap();
        fs.append(fd, b"pre-existing").unwrap();
        ring.try_submit(Sqe::read(1, fd, 0, 12)).unwrap();
        ring.try_submit(Sqe::appendv(2, fd, vec![b"-more".to_vec()]))
            .unwrap();
        ring.try_submit(Sqe::fsync(3, fd)).unwrap();
        hub.drain(aio::DEFAULT_DRAIN_BATCH);
        let mut cqes = Vec::new();
        ring.harvest(&mut cqes);
        assert_eq!(cqes.len(), 3);
        let read = cqes.iter().find(|c| c.user_data == 1).unwrap();
        assert_eq!(read.data.as_deref(), Some(&b"pre-existing"[..]));
        assert!(cqes.iter().all(|c| c.result.is_ok()));
        let epoch = cqes.iter().map(|c| c.epoch).max().unwrap();
        assert!(epoch <= fs.published_epoch());
    }

    #[test]
    fn daemon_drains_rings_without_caller_drains() {
        let fs = strict_fs();
        let hub = ring_hub(&fs);
        let ring = hub.ring(8);
        let fd = fs.open("/daemon.log", OpenFlags::create()).unwrap();
        for i in 0..4u64 {
            ring.try_submit(Sqe::appendv(i, fd, vec![vec![7u8; 16]]))
                .unwrap();
        }
        // Never call hub.drain from this thread: the maintenance tick
        // must pick the submissions up on its own.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut cqes = Vec::new();
        while cqes.len() < 4 {
            ring.harvest(&mut cqes);
            assert!(
                std::time::Instant::now() < deadline,
                "daemon never drained the ring"
            );
            std::thread::yield_now();
        }
        assert!(cqes.iter().all(|c| c.result == Ok(16)));
    }

    #[test]
    fn epoch_is_never_reported_ahead_of_publication() {
        let fs = strict_fs();
        let hub = ring_hub(&fs);
        let ring = hub.ring(32);
        let fd = fs.open("/epochs.log", OpenFlags::create()).unwrap();
        let mut harvested = 0u64;
        let mut cqes = Vec::new();
        for round in 0..8u64 {
            for i in 0..4u64 {
                ring.try_submit(Sqe::appendv(round * 4 + i, fd, vec![vec![1u8; 48]]))
                    .unwrap();
            }
            hub.drain(aio::DEFAULT_DRAIN_BATCH);
            cqes.clear();
            ring.harvest(&mut cqes);
            for cqe in &cqes {
                // The invariant the whole design hangs on: a completion
                // may never claim an epoch the instance has not fenced.
                assert!(cqe.epoch <= fs.published_epoch());
                assert!(cqe.result.is_ok());
            }
            harvested += cqes.len() as u64;
        }
        assert_eq!(harvested, 32);
    }
}
