//! The SplitFS operation log (paper §3.3, "Optimized logging"), as a
//! **two-epoch (segment-swap) log**.
//!
//! In strict (and sync, for appends) mode, U-Split records each staged data
//! operation in a per-instance operation log so that a crash before the
//! next `fsync`/relink can be recovered.  The log is a pre-allocated,
//! zero-initialized file on the kernel file system that U-Split maps once
//! and then writes with non-temporal stores — no kernel involvement per
//! entry.  The optimizations the paper describes are all present:
//!
//! * one 64 B entry and **one** fence per operation (NOVA needs two cache
//!   lines and two fences),
//! * a 4 B checksum inside the entry distinguishes valid from torn entries,
//!   so no second fence is needed to persist a tail pointer,
//! * the tail lives only in DRAM and is advanced with an atomic
//!   fetch-and-add so concurrent threads can reserve slots without locks,
//! * the log is zeroed at initialization; recovery treats any non-zero,
//!   checksum-valid 64 B slot as a potentially valid entry.
//!
//! # Epochs
//!
//! The seed's log was one region: when it filled, the owner had to
//! *quiesce* — take every file-state lock, relink everything, and re-zero
//! the log — a stop-the-world pause on the write hot path.  The log is now
//! split into **two epochs** (halves).  Writers group-commit into the
//! active epoch; when it fills (or the checkpoint threshold is crossed),
//! [`OpLog::try_seal`] atomically swaps the empty other half in as the new
//! active epoch.  The sealed half is then retired *in the background*: its
//! files are relinked one at a time (never holding two state locks), and
//! only then is the sealed half re-zeroed ([`OpLog::truncate_sealed`]).
//! If the new active epoch also fills before retirement finishes, the log
//! *grows* instead of stalling — `checkpoint_stalls` stays zero by design.
//!
//! Each epoch is a list of byte extents of the log file, not a fixed
//! half: [`OpLog::grow`] appends the file extension to the **active**
//! epoch only, preserving the sealed/active split (a sealed entry is never
//! moved or rescanned into the wrong epoch by a grow).
//!
//! Recovery does not care about the split: it scans every slot of the file
//! (both epochs, any geometry) and replays valid entries **in sequence
//! order**, which is global across epochs.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use kernelfs::DaxMapping;
use pmem::{PersistMode, PmemDevice, TimeCategory};
use vfs::util::checksum32;
use vfs::{FsError, FsResult};

/// Size of one log entry.
pub const ENTRY_SIZE: u64 = 64;

/// Magic tag in every entry.
const ENTRY_MAGIC: u16 = 0x4F4C; // "OL"

/// The kind of a log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogOp {
    /// Data was written to a staging file and must be moved to the target
    /// file (by relink) if a crash happens before the next `fsync`.
    StagedWrite,
    /// Every staged write for `target_ino` with sequence number ≤ `seq` has
    /// been relinked into the target and must not be replayed.
    Invalidate,
    /// The staging file `staging_ino` was recycled (truncated and
    /// re-provisioned) after all of its staged data was retired: staged
    /// writes referencing it with sequence number ≤ `seq` must not be
    /// replayed, because the file's blocks now hold unrelated new data.
    StagingRecycle,
}

impl LogOp {
    fn tag(self) -> u8 {
        match self {
            LogOp::StagedWrite => 1,
            LogOp::Invalidate => 2,
            LogOp::StagingRecycle => 3,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(LogOp::StagedWrite),
            2 => Some(LogOp::Invalidate),
            3 => Some(LogOp::StagingRecycle),
            _ => None,
        }
    }
}

/// A decoded operation-log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// Entry kind.
    pub op: LogOp,
    /// Target file inode.
    pub target_ino: u64,
    /// Offset within the target file the staged data belongs at.
    pub target_offset: u64,
    /// Length of the staged data in bytes (for `Invalidate`: unused).
    pub len: u64,
    /// Staging file inode holding the data.
    pub staging_ino: u64,
    /// Offset of the data within the staging file.
    pub staging_offset: u64,
    /// Monotonic sequence number assigned by the log.
    pub seq: u64,
    /// Id of the U-Split instance that wrote the entry (see
    /// [`kernelfs::lease`]).  Each instance has its own log file, so the
    /// tag is a cross-contamination check: recovery of instance N's log
    /// refuses to replay an entry tagged with another instance's id.
    pub instance_id: u32,
}

impl LogEntry {
    /// Serializes the entry into its 64-byte on-log form.
    pub fn encode(&self) -> [u8; ENTRY_SIZE as usize] {
        let mut buf = [0u8; ENTRY_SIZE as usize];
        buf[0..2].copy_from_slice(&ENTRY_MAGIC.to_le_bytes());
        buf[2] = self.op.tag();
        // buf[3] reserved
        buf[4..12].copy_from_slice(&self.target_ino.to_le_bytes());
        buf[12..20].copy_from_slice(&self.target_offset.to_le_bytes());
        buf[20..28].copy_from_slice(&self.len.to_le_bytes());
        buf[28..36].copy_from_slice(&self.staging_ino.to_le_bytes());
        buf[36..44].copy_from_slice(&self.staging_offset.to_le_bytes());
        buf[44..52].copy_from_slice(&self.seq.to_le_bytes());
        buf[52..56].copy_from_slice(&self.instance_id.to_le_bytes());
        let crc = checksum32(&buf[..60]);
        buf[60..64].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes a 64-byte slot.  Returns `None` for all-zero slots (never
    /// written), torn entries (checksum mismatch) and unknown tags.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < ENTRY_SIZE as usize {
            return None;
        }
        if buf.iter().all(|&b| b == 0) {
            return None;
        }
        let magic = u16::from_le_bytes([buf[0], buf[1]]);
        if magic != ENTRY_MAGIC {
            return None;
        }
        let crc_stored = u32::from_le_bytes([buf[60], buf[61], buf[62], buf[63]]);
        if checksum32(&buf[..60]) != crc_stored {
            return None;
        }
        let read_u64 = |o: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[o..o + 8]);
            u64::from_le_bytes(b)
        };
        Some(Self {
            op: LogOp::from_tag(buf[2])?,
            target_ino: read_u64(4),
            target_offset: read_u64(12),
            len: read_u64(20),
            staging_ino: read_u64(28),
            staging_offset: read_u64(36),
            seq: read_u64(44),
            instance_id: u32::from_le_bytes([buf[52], buf[53], buf[54], buf[55]]),
        })
    }
}

/// One epoch (half) of the log: a list of byte extents of the log file,
/// an epoch-relative tail, and a high-water mark for cheap truncation.
#[derive(Debug)]
struct Epoch {
    /// `(file_offset, len)` extents composing this epoch, in order.
    /// Grows only for the active epoch (see [`OpLog::grow`]).
    extents: RwLock<Vec<(u64, u64)>>,
    /// Total capacity in bytes.
    cap: AtomicU64,
    /// Epoch-relative byte offset of the next free slot (DRAM-only).
    tail: AtomicU64,
    /// One past the last byte ever written since the previous truncate.
    high_water: AtomicU64,
    /// Appends currently writing into this epoch; a seal waits for this to
    /// drain before the sweep starts, and a truncate can only run on an
    /// epoch no writer can reach anymore.
    writers: AtomicU64,
}

impl Epoch {
    fn new(extents: Vec<(u64, u64)>) -> Self {
        let cap: u64 = extents.iter().map(|(_, len)| len).sum();
        Self {
            extents: RwLock::new(extents),
            cap: AtomicU64::new(cap),
            tail: AtomicU64::new(0),
            // A fresh epoch wraps mapping content of unknown provenance;
            // the first reset must zero everything.
            high_water: AtomicU64::new(cap),
            writers: AtomicU64::new(0),
        }
    }

    /// Translates an epoch-relative offset to a log-file offset.
    fn file_offset(&self, off: u64) -> Option<u64> {
        let extents = self.extents.read();
        let mut rem = off;
        for &(start, len) in extents.iter() {
            if rem < len {
                return Some(start + rem);
            }
            rem -= len;
        }
        None
    }
}

/// The two-epoch operation log of one U-Split instance.
#[derive(Debug)]
pub struct OpLog {
    device: Arc<PmemDevice>,
    /// Mapping of the log file.  Behind a lock because the log can *grow*:
    /// when the active epoch fills while the sealed epoch is still being
    /// retired, the owner extends the file and swaps in a larger mapping
    /// instead of stalling — see [`crate::fs::SplitFs`]'s log-full
    /// handling.
    mapping: RwLock<DaxMapping>,
    epochs: [Epoch; 2],
    /// Index of the active epoch.
    active: AtomicUsize,
    /// Set while the non-active epoch holds sealed entries awaiting
    /// retirement (relink of their files, then truncation).
    sealed_pending: AtomicBool,
    /// Serializes the two geometry mutations — the active-epoch swap
    /// ([`OpLog::try_seal`]) and the extent-list extension
    /// ([`OpLog::grow`]) — so a growth can never attach the file
    /// extension to an epoch that a concurrent seal just retired.
    geometry: Mutex<()>,
    /// Total log-file size in bytes.
    size: AtomicU64,
    /// Monotonic sequence counter, global across epochs.
    seq: AtomicU64,
}

impl OpLog {
    /// Wraps an already-mapped log file of `size` bytes.  The file is
    /// split into two epochs at an entry-aligned midpoint.
    pub fn new(device: Arc<PmemDevice>, mapping: DaxMapping, size: u64) -> Self {
        let half = (size / 2) / ENTRY_SIZE * ENTRY_SIZE;
        Self {
            device,
            mapping: RwLock::new(mapping),
            epochs: [
                Epoch::new(vec![(0, half)]),
                Epoch::new(vec![(half, size - half)]),
            ],
            active: AtomicUsize::new(0),
            sealed_pending: AtomicBool::new(false),
            geometry: Mutex::new(()),
            size: AtomicU64::new(size),
            seq: AtomicU64::new(1),
        }
    }

    /// Number of entries currently in the log (both epochs).
    pub fn entries_used(&self) -> u64 {
        self.epochs
            .iter()
            .map(|e| {
                e.tail
                    .load(Ordering::Relaxed)
                    .min(e.cap.load(Ordering::Relaxed))
            })
            .sum::<u64>()
            / ENTRY_SIZE
    }

    /// Whether an append to the active epoch would not fit.
    pub fn is_full(&self) -> bool {
        let epoch = &self.epochs[self.active.load(Ordering::Relaxed)];
        epoch.tail.load(Ordering::Relaxed) + ENTRY_SIZE > epoch.cap.load(Ordering::Relaxed)
    }

    /// Current capacity of the log file in bytes (grows on demand).
    pub fn size(&self) -> u64 {
        self.size.load(Ordering::Relaxed)
    }

    /// Whether the sealed epoch still holds entries awaiting retirement.
    pub fn sealed_pending(&self) -> bool {
        self.sealed_pending.load(Ordering::SeqCst)
    }

    /// Fraction of the active epoch currently in use, in `[0, 1]`.  The
    /// maintenance daemon seals and retires in the background once this
    /// passes its configured threshold so the foreground never observes
    /// [`FsError::NoSpace`].
    pub fn utilization(&self) -> f64 {
        let epoch = &self.epochs[self.active.load(Ordering::Relaxed)];
        let cap = epoch.cap.load(Ordering::Relaxed);
        epoch.tail.load(Ordering::Relaxed).min(cap) as f64 / cap.max(1) as f64
    }

    /// Reserves the next sequence number.
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::SeqCst)
    }

    /// Seals the active epoch and swaps the empty half in as the new
    /// active epoch.  Returns the sequence-number watermark at the swap
    /// (every sealed entry's `seq` is below it), or `None` when the other
    /// half is still being retired (the caller should grow instead — never
    /// stall).
    ///
    /// After the swap, this waits for in-flight appends to the sealed
    /// epoch to drain, so by the time the caller sweeps the file states,
    /// every sealed entry's staged extent is recorded under its file lock.
    pub fn try_seal(&self) -> Option<u64> {
        if self
            .sealed_pending
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return None;
        }
        let old = {
            let _geometry = self.geometry.lock();
            let old = self.active.load(Ordering::SeqCst);
            let new = 1 - old;
            debug_assert_eq!(self.epochs[new].tail.load(Ordering::SeqCst), 0);
            self.active.store(new, Ordering::SeqCst);
            old
        };
        // Drain writers that reserved in the old epoch before the swap.
        while self.epochs[old].writers.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        self.device.stats().add_oplog_epoch_swap();
        obs::event(obs::SpanEvent::EpochSwap);
        Some(self.seq.load(Ordering::SeqCst))
    }

    /// Re-zeroes the sealed epoch's used prefix and arms it as the next
    /// swap target.  Call only after every staged write logged in it has
    /// been relinked (or otherwise invalidated) — the epoch-checkpoint
    /// sweep in [`crate::daemon`] is the only caller.
    pub fn truncate_sealed(&self) {
        let sealed = 1 - self.active.load(Ordering::SeqCst);
        self.truncate_epoch(sealed);
        self.sealed_pending.store(false, Ordering::SeqCst);
        self.device.stats().add_oplog_epoch_truncate();
    }

    fn truncate_epoch(&self, idx: usize) {
        let epoch = &self.epochs[idx];
        let used = epoch
            .high_water
            .load(Ordering::Relaxed)
            .min(epoch.cap.load(Ordering::Relaxed));
        let mapping = self.mapping.read();
        let extents = epoch.extents.read();
        let mut rem = used;
        for &(start, len) in extents.iter() {
            if rem == 0 {
                break;
            }
            let chunk = rem.min(len);
            Self::zero_range(&self.device, &mapping, start, start + chunk);
            rem -= chunk;
        }
        epoch.high_water.store(0, Ordering::Relaxed);
        epoch.tail.store(0, Ordering::Relaxed);
    }

    /// Installs a larger mapping after the log file was extended.  The new
    /// mapping must cover `[0, new_size)` of the same file, and the caller
    /// must have **zeroed the extension** `[size, new_size)` first — the
    /// kernel allocator recycles freed blocks without zeroing, and a
    /// checksum-valid ghost entry in the extension would be replayed by
    /// recovery.  The extension is appended to the **active** epoch's
    /// extent list, preserving the sealed/active split: sealed entries
    /// keep their file offsets and are still truncated (and only them)
    /// when retirement finishes.  Shrinking is not supported.  Safe under
    /// concurrent appends: a reservation past the old capacity fails with
    /// `NoSpace` and is retried by the caller after the growth lands.
    pub fn grow(&self, mapping: DaxMapping, new_size: u64) {
        let mut m = self.mapping.write();
        // The geometry lock pins `active` across the extension: without
        // it a concurrent seal could swap epochs between the load and the
        // push, attaching the extension to the just-sealed half.
        let _geometry = self.geometry.lock();
        let old_size = self.size();
        if new_size <= old_size {
            return;
        }
        *m = mapping;
        let epoch = &self.epochs[self.active.load(Ordering::SeqCst)];
        epoch.extents.write().push((old_size, new_size - old_size));
        epoch.cap.fetch_add(new_size - old_size, Ordering::SeqCst);
        self.size.store(new_size, Ordering::SeqCst);
        self.device.stats().add_oplog_grow();
    }

    /// Appends an entry: one 64 B non-temporal write plus one fence.
    ///
    /// Returns [`FsError::NoSpace`] when the active epoch is full; the
    /// caller is expected to seal (epoch swap) or grow and retry.
    pub fn append(&self, entry: &LogEntry) -> FsResult<()> {
        self.append_batch(std::slice::from_ref(entry))
    }

    /// Appends several entries under **one** fence (group commit).
    ///
    /// The slots are reserved with a single fetch-and-add on the active
    /// epoch's DRAM tail, every entry is written with non-temporal stores,
    /// and one fence makes the whole group durable together.  Callers must
    /// only use this for entries whose durability may land together.
    ///
    /// Returns [`FsError::NoSpace`] (reserving nothing) when the group
    /// does not fit in the active epoch.
    pub fn append_batch(&self, entries: &[LogEntry]) -> FsResult<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let cost = self.device.cost().clone();
        let need = ENTRY_SIZE * entries.len() as u64;
        let (epoch, offset) = loop {
            let idx = self.active.load(Ordering::SeqCst);
            let epoch = &self.epochs[idx];
            epoch.writers.fetch_add(1, Ordering::SeqCst);
            if self.active.load(Ordering::SeqCst) != idx {
                // Lost a race with a seal; the old epoch must not receive
                // this append (its sweep may already be underway).
                epoch.writers.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let offset = epoch.tail.fetch_add(need, Ordering::Relaxed);
            if offset + need > epoch.cap.load(Ordering::Relaxed) {
                // Roll the reservation back so a later swap starts clean.
                epoch.tail.fetch_sub(need, Ordering::Relaxed);
                epoch.writers.fetch_sub(1, Ordering::SeqCst);
                return Err(FsError::NoSpace);
            }
            break (epoch, offset);
        };
        let mapping = self.mapping.read();
        for (i, entry) in entries.iter().enumerate() {
            self.device.charge_software(cost.usplit_log_entry_cpu_ns);
            let slot = offset + ENTRY_SIZE * i as u64;
            let bail = |e: FsError| {
                // Roll the reservation back when no later writer has
                // reserved past it (an unconditional subtract could slide
                // the tail under a live neighbour's slot); otherwise the
                // unfenced slots simply read as torn/empty.
                let _ = epoch.tail.compare_exchange(
                    offset + need,
                    offset,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                epoch.writers.fetch_sub(1, Ordering::SeqCst);
                Err(e)
            };
            let file_off = match epoch.file_offset(slot) {
                Some(off) => off,
                None => return bail(FsError::Io("operation log epoch hole".into())),
            };
            let (dev_off, _) = match mapping.translate(file_off) {
                Some(pair) => pair,
                None => return bail(FsError::Io("operation log mapping hole".into())),
            };
            self.device.write(
                dev_off,
                &entry.encode(),
                PersistMode::NonTemporal,
                TimeCategory::OpLog,
            );
        }
        self.device.fence(TimeCategory::OpLog);
        epoch.high_water.fetch_max(offset + need, Ordering::Relaxed);
        epoch.writers.fetch_sub(1, Ordering::SeqCst);
        if entries.len() > 1 {
            self.device.stats().add_oplog_group_commit();
            obs::event(obs::SpanEvent::GroupCommit);
        }
        Ok(())
    }

    /// Zeroes the used prefix of **both** epochs and resets all DRAM state
    /// (initialization and post-recovery; §3.3: the log is zeroed at
    /// initialization so recovery can tell written slots from never-used
    /// ones).  Not a checkpoint — live truncation goes through
    /// [`OpLog::try_seal`] / [`OpLog::truncate_sealed`].
    pub fn reset(&self) {
        self.truncate_epoch(0);
        self.truncate_epoch(1);
        self.active.store(0, Ordering::SeqCst);
        self.sealed_pending.store(false, Ordering::SeqCst);
    }

    /// Zeroes `[from, to)` of a log mapping with non-temporal stores and
    /// one trailing fence.  Used by epoch truncation and by the owner when
    /// zeroing a freshly grown extension before [`OpLog::grow`] installs
    /// it.
    pub fn zero_range(device: &Arc<PmemDevice>, mapping: &DaxMapping, from: u64, to: u64) {
        let zeros = [0u8; 4096];
        let mut off = from;
        while off < to {
            let chunk = (to - off).min(zeros.len() as u64) as usize;
            if let Some((dev_off, contig)) = mapping.translate(off) {
                let n = chunk.min(contig as usize);
                device.write(
                    dev_off,
                    &zeros[..n],
                    PersistMode::NonTemporal,
                    TimeCategory::OpLog,
                );
                off += n as u64;
            } else {
                off += chunk as u64;
            }
        }
        device.fence(TimeCategory::OpLog);
    }

    /// Scans the whole log (recovery path) and returns every valid entry,
    /// sorted by sequence number.  Sequence numbers are global across
    /// epochs, so the scan needs no knowledge of the sealed/active split
    /// or of any grow history: both epochs are read and the merge happens
    /// by `seq`.  Torn or zero slots are skipped; the cost of the scan is
    /// charged as software time.
    pub fn scan(device: &Arc<PmemDevice>, mapping: &DaxMapping, size: u64) -> Vec<LogEntry> {
        let cost = device.cost().clone();
        let mut entries = Vec::new();
        let mut buf = [0u8; ENTRY_SIZE as usize];
        let mut off = 0u64;
        while off + ENTRY_SIZE <= size {
            if let Some((dev_off, _)) = mapping.translate(off) {
                device.read_uncharged(dev_off, &mut buf);
                device.charge_software(cost.pm_read_cost(ENTRY_SIZE as usize, true));
                if let Some(entry) = LogEntry::decode(&buf) {
                    entries.push(entry);
                }
            }
            off += ENTRY_SIZE;
        }
        entries.sort_by_key(|e| e.seq);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelfs::MapSegment;
    use pmem::PmemBuilder;

    fn log(size: u64) -> (Arc<PmemDevice>, OpLog, DaxMapping) {
        let device = PmemBuilder::new(16 * 1024 * 1024).build();
        // Map the log region directly at device offset 1 MiB for the unit
        // tests; in the real system the mapping comes from Ext4Dax::dax_map.
        let mapping = DaxMapping {
            ino: 99,
            file_offset: 0,
            len: size,
            segments: vec![MapSegment {
                file_offset: 0,
                device_offset: 1024 * 1024,
                len: size,
            }],
            huge: true,
        };
        let oplog = OpLog::new(Arc::clone(&device), mapping.clone(), size);
        (device, oplog, mapping)
    }

    fn sample_entry(seq: u64) -> LogEntry {
        LogEntry {
            op: LogOp::StagedWrite,
            target_ino: 12,
            target_offset: 8192,
            len: 4096,
            staging_ino: 77,
            staging_offset: 65536,
            seq,
            instance_id: 7,
        }
    }

    #[test]
    fn entry_round_trips_through_64_bytes() {
        let e = sample_entry(5);
        let bytes = e.encode();
        assert_eq!(bytes.len(), 64);
        assert_eq!(LogEntry::decode(&bytes), Some(e));
        let mut recycle = sample_entry(9);
        recycle.op = LogOp::StagingRecycle;
        assert_eq!(LogEntry::decode(&recycle.encode()), Some(recycle));
    }

    #[test]
    fn torn_entry_is_rejected_by_checksum() {
        let mut bytes = sample_entry(5).encode();
        bytes[20] ^= 0xFF;
        assert_eq!(LogEntry::decode(&bytes), None);
        assert_eq!(LogEntry::decode(&[0u8; 64]), None);
    }

    #[test]
    fn append_writes_one_line_and_one_fence() {
        let (device, oplog, _) = log(64 * 1024);
        let before = device.stats().snapshot();
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        let delta = device.stats().snapshot().delta_since(&before);
        assert_eq!(delta.written(TimeCategory::OpLog), 64);
        assert_eq!(delta.fences, 1, "exactly one fence per logged operation");
    }

    #[test]
    fn entries_survive_crash_and_scan_in_order() {
        let (device, oplog, mapping) = log(64 * 1024);
        for _ in 0..5 {
            let seq = oplog.next_seq();
            oplog.append(&sample_entry(seq)).unwrap();
        }
        device.crash();
        let entries = OpLog::scan(&device, &mapping, 64 * 1024);
        assert_eq!(entries.len(), 5);
        assert!(entries.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn full_active_epoch_reports_no_space_and_reset_clears_it() {
        let (device, oplog, mapping) = log(256); // 2 epochs x 2 entries
        for _ in 0..2 {
            let seq = oplog.next_seq();
            oplog.append(&sample_entry(seq)).unwrap();
        }
        assert!(oplog.is_full(), "active epoch is full");
        assert_eq!(
            oplog.append(&sample_entry(oplog.next_seq())),
            Err(FsError::NoSpace)
        );
        oplog.reset();
        assert_eq!(oplog.entries_used(), 0);
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        device.fence(TimeCategory::OpLog);
        let entries = OpLog::scan(&device, &mapping, 256);
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn seal_swaps_epochs_without_stopping_writers() {
        let (device, oplog, mapping) = log(256); // 2 entries per epoch
        oplog.reset();
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        assert!(oplog.is_full());
        let before = device.stats().snapshot();
        let watermark = oplog.try_seal().expect("other epoch is free");
        assert!(watermark > 2);
        assert!(oplog.sealed_pending());
        // Writers continue immediately into the fresh epoch.
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        // A second seal is refused until the sealed half is retired.
        assert!(oplog.try_seal().is_none());
        // All three entries visible across both epochs, in seq order.
        device.fence(TimeCategory::OpLog);
        let entries = OpLog::scan(&device, &mapping, 256);
        assert_eq!(entries.len(), 3);
        assert!(entries.windows(2).all(|w| w[0].seq < w[1].seq));
        // Truncating the sealed half removes only its entries.
        oplog.truncate_sealed();
        assert!(!oplog.sealed_pending());
        let entries = OpLog::scan(&device, &mapping, 256);
        assert_eq!(entries.len(), 1, "only the new-epoch entry survives");
        let delta = device.stats().snapshot().delta_since(&before);
        assert_eq!(delta.oplog_epoch_swaps, 1);
        assert_eq!(delta.oplog_epoch_truncates, 1);
        // The other half is free again, so a new seal succeeds.
        assert!(oplog.try_seal().is_some());
    }

    #[test]
    fn grow_preserves_the_sealed_active_split() {
        // Regression test for grow-during-checkpoint: the file extension
        // must join the ACTIVE epoch only; sealed entries stay where they
        // are and are removed (and only them) by the eventual truncate.
        let size = 256u64;
        let (device, oplog, _mapping) = log(size);
        oplog.reset();
        // Fill the active epoch and seal it (2 entries in the sealed half).
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        oplog.try_seal().unwrap();
        // Fill the new active epoch too; now both halves are full and the
        // sealed half is still pending — exactly the grow-during-checkpoint
        // situation.
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        assert_eq!(
            oplog.append(&sample_entry(oplog.next_seq())),
            Err(FsError::NoSpace)
        );
        // Grow the file to twice the size (extension is zeroed first, as
        // the SplitFs grow path does).
        let new_size = size * 2;
        let grown = DaxMapping {
            ino: 99,
            file_offset: 0,
            len: new_size,
            segments: vec![MapSegment {
                file_offset: 0,
                device_offset: 1024 * 1024,
                len: new_size,
            }],
            huge: true,
        };
        OpLog::zero_range(&device, &grown, size, new_size);
        oplog.grow(grown.clone(), new_size);
        // Appends proceed into the grown active epoch.
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        device.fence(TimeCategory::OpLog);
        let entries = OpLog::scan(&device, &grown, new_size);
        assert_eq!(entries.len(), 6, "sealed + active + grown all visible");
        assert!(entries.windows(2).all(|w| w[0].seq < w[1].seq));
        // Retiring the sealed half drops exactly the two sealed entries.
        oplog.truncate_sealed();
        let entries = OpLog::scan(&device, &grown, new_size);
        assert_eq!(entries.len(), 4);
        assert!(entries.iter().all(|e| e.seq >= 3));
    }

    #[test]
    fn group_commit_uses_one_fence_for_many_entries() {
        let (device, oplog, mapping) = log(64 * 1024);
        oplog.reset(); // establish a known-zero log, then measure
        let before = device.stats().snapshot();
        let batch: Vec<LogEntry> = (0..8).map(|_| sample_entry(oplog.next_seq())).collect();
        oplog.append_batch(&batch).unwrap();
        let delta = device.stats().snapshot().delta_since(&before);
        assert_eq!(delta.written(TimeCategory::OpLog), 8 * 64);
        assert_eq!(delta.fences, 1, "one fence covers the whole group");
        assert_eq!(delta.oplog_group_commits, 1);
        let entries = OpLog::scan(&device, &mapping, 64 * 1024);
        assert_eq!(entries.len(), 8);
    }

    #[test]
    fn group_commit_rejects_oversized_batches_without_reserving() {
        let (_device, oplog, _mapping) = log(256); // 2 entries per epoch
        let batch: Vec<LogEntry> = (0..3).map(|_| sample_entry(oplog.next_seq())).collect();
        assert_eq!(oplog.append_batch(&batch), Err(FsError::NoSpace));
        assert_eq!(oplog.entries_used(), 0, "failed batch reserves nothing");
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
    }

    #[test]
    fn reset_only_zeroes_the_used_prefix() {
        let (device, oplog, _mapping) = log(1024 * 1024);
        oplog.reset(); // first reset pays for the whole (unknown) log
        for _ in 0..4 {
            oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        }
        let before = device.stats().snapshot();
        oplog.reset();
        let delta = device.stats().snapshot().delta_since(&before);
        assert_eq!(
            delta.written(TimeCategory::OpLog),
            4 * 64,
            "truncation work is proportional to entries used, not log size"
        );
        assert_eq!(oplog.entries_used(), 0);
    }

    #[test]
    fn utilization_tracks_active_epoch_fill_fraction() {
        let (_device, oplog, _mapping) = log(512); // 4 entries per epoch
        assert_eq!(oplog.utilization(), 0.0);
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        oplog.append(&sample_entry(oplog.next_seq())).unwrap();
        assert!((oplog.utilization() - 0.5).abs() < 1e-9);
        // Sealing swaps in the empty epoch: utilization drops to zero.
        oplog.try_seal().unwrap();
        assert_eq!(oplog.utilization(), 0.0);
    }

    #[test]
    fn concurrent_appends_reserve_distinct_slots() {
        use std::sync::Arc as StdArc;
        let (device, oplog, mapping) = log(64 * 1024);
        let oplog = StdArc::new(oplog);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let oplog = StdArc::clone(&oplog);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let mut e = sample_entry(0);
                    e.seq = oplog.next_seq();
                    e.target_offset = t * 1000 + i;
                    oplog.append(&e).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        device.fence(TimeCategory::OpLog);
        let entries = OpLog::scan(&device, &mapping, 64 * 1024);
        assert_eq!(entries.len(), 200);
        // All sequence numbers distinct.
        let mut seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 200);
    }

    #[test]
    fn concurrent_appends_race_a_seal_without_losing_entries() {
        use std::sync::Arc as StdArc;
        let (device, oplog, mapping) = log(64 * 1024);
        oplog.reset();
        let oplog = StdArc::new(oplog);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let oplog = StdArc::clone(&oplog);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let mut e = sample_entry(0);
                    e.seq = oplog.next_seq();
                    e.target_offset = t * 1000 + i;
                    oplog.append(&e).unwrap();
                }
            }));
        }
        // Seal mid-stream; writers must continue into the new epoch.
        let sealer = {
            let oplog = StdArc::clone(&oplog);
            std::thread::spawn(move || oplog.try_seal())
        };
        for h in handles {
            h.join().unwrap();
        }
        sealer.join().unwrap();
        device.fence(TimeCategory::OpLog);
        let entries = OpLog::scan(&device, &mapping, 64 * 1024);
        assert_eq!(entries.len(), 200, "no append lost across the swap");
    }
}
